file(REMOVE_RECURSE
  "libhublab_sumindex.a"
)
