file(REMOVE_RECURSE
  "../bench/bench_pll_orderings"
  "../bench/bench_pll_orderings.pdb"
  "CMakeFiles/bench_pll_orderings.dir/bench_pll_orderings.cpp.o"
  "CMakeFiles/bench_pll_orderings.dir/bench_pll_orderings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pll_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
