#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Invariant checking for hublab.
///
/// `HUBLAB_ASSERT` guards internal invariants (programming errors); it stays
/// enabled in all build types because this library's correctness claims are
/// the whole point of the reproduction.  User-input errors (bad files, bad
/// parameters) throw exceptions instead -- see util/error.hpp.

namespace hublab::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "hublab assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hublab::detail

#define HUBLAB_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) ::hublab::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define HUBLAB_ASSERT_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) ::hublab::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
