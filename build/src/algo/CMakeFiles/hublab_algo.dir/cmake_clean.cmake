file(REMOVE_RECURSE
  "CMakeFiles/hublab_algo.dir/distance_matrix.cpp.o"
  "CMakeFiles/hublab_algo.dir/distance_matrix.cpp.o.d"
  "CMakeFiles/hublab_algo.dir/shortest_paths.cpp.o"
  "CMakeFiles/hublab_algo.dir/shortest_paths.cpp.o.d"
  "libhublab_algo.a"
  "libhublab_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
