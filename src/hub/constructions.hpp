#pragma once

#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/graph.hpp"
#include "hub/labeling.hpp"
#include "util/rng.hpp"

/// \file constructions.hpp
/// Baseline hub-labeling constructions besides PLL:
///  - the trivial full labeling (every vertex stores everything),
///  - a greedy pair-cover for small graphs,
///  - the random distant-pair cover underlying both the [ADKP16]-style
///    sublinear schemes and step (*) of Theorem 4.1.

namespace hublab {

/// Every vertex stores all n vertices: the Graham-Pollak-style trivial
/// scheme, always a cover.  O(n) hubs per vertex.
HubLabeling full_labeling(const Graph& g, const DistanceMatrix& truth);

/// Greedy cover for small graphs (n <= ~150): repeatedly pick the vertex
/// lying on shortest paths of the most uncovered pairs and give it to both
/// endpoints of every pair it covers.
HubLabeling greedy_cover(const Graph& g, const DistanceMatrix& truth);

/// Statistics of the random distant cover.
struct DistantCoverStats {
  std::size_t sample_size = 0;     ///< |S|
  std::size_t ball_hubs = 0;       ///< total hubs contributed by radius-D balls
  std::size_t patched_pairs = 0;   ///< far pairs S missed, fixed explicitly
};

/// Random distant-pair scheme with threshold D (paper Section 1.2 and
/// [ADKP16]): a shared random set S of size ~ (n/D) ln D covers most pairs
/// at distance >= D; pairs at distance < D are covered by storing the ball
/// of radius D - 1 around each vertex (so the far endpoint itself is a
/// common hub); the few far pairs S misses are patched explicitly.
/// Exact by construction.  `stats_out` may be null.
HubLabeling random_distant_cover(const Graph& g, const DistanceMatrix& truth, std::size_t D,
                                 Rng& rng, DistantCoverStats* stats_out = nullptr);

}  // namespace hublab
