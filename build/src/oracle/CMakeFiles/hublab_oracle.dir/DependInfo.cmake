
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oracle/alt.cpp" "src/oracle/CMakeFiles/hublab_oracle.dir/alt.cpp.o" "gcc" "src/oracle/CMakeFiles/hublab_oracle.dir/alt.cpp.o.d"
  "/root/repo/src/oracle/arc_flags.cpp" "src/oracle/CMakeFiles/hublab_oracle.dir/arc_flags.cpp.o" "gcc" "src/oracle/CMakeFiles/hublab_oracle.dir/arc_flags.cpp.o.d"
  "/root/repo/src/oracle/contraction_hierarchy.cpp" "src/oracle/CMakeFiles/hublab_oracle.dir/contraction_hierarchy.cpp.o" "gcc" "src/oracle/CMakeFiles/hublab_oracle.dir/contraction_hierarchy.cpp.o.d"
  "/root/repo/src/oracle/oracle.cpp" "src/oracle/CMakeFiles/hublab_oracle.dir/oracle.cpp.o" "gcc" "src/oracle/CMakeFiles/hublab_oracle.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hublab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hublab_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/hub/CMakeFiles/hublab_hub.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hublab_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hublab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
