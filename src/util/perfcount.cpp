#include "util/perfcount.hpp"

#if HUBLAB_PERF_ENABLED

#include <atomic>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace hublab::perf {

namespace {

std::atomic<bool> g_enabled{false};

#if defined(__linux__)

/// Logical counter slots, in HwCounters order.  cycles and instructions
/// are mandatory (no IPC without them); the cache/branch events are
/// best-effort — some PMUs or virtualized hosts expose only a subset.
constexpr int kNumEvents = 5;

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t cache_config(std::uint64_t cache) {
  return cache | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
}

const EventSpec kSpecs[kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE, cache_config(PERF_COUNT_HW_CACHE_L1D)},
    {PERF_TYPE_HW_CACHE, cache_config(PERF_COUNT_HW_CACHE_LL)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int open_event(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // works under perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
  return static_cast<int>(fd);
}

/// The calling thread's counter group.  Opened lazily on first read (so
/// pool workers pick up counters the first time a chunk measures itself),
/// closed when the thread exits.
struct ThreadGroup {
  bool tried = false;
  int leader = -1;                ///< cycles fd; < 0 when the group is unusable
  int fds[kNumEvents] = {-1, -1, -1, -1, -1};
  int slot_of[kNumEvents] = {-1, -1, -1, -1, -1};  ///< position in the group read
  int nr = 0;                     ///< events actually opened

  void open() {
    tried = true;
    for (int i = 0; i < kNumEvents; ++i) {
      const int fd = open_event(kSpecs[i], leader);
      if (fd < 0) {
        // cycles or instructions missing means no IPC: give up entirely.
        if (i < 2) {
          close_all();
          return;
        }
        continue;
      }
      if (leader < 0) leader = fd;
      fds[i] = fd;
      slot_of[i] = nr;
      ++nr;
    }
  }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    leader = -1;
  }

  ~ThreadGroup() { close_all(); }
};

thread_local ThreadGroup t_group;

/// Probe once per process: a usable group needs at least
/// cycles+instructions on the calling thread.
bool probe() {
  ThreadGroup g;
  g.open();
  const bool ok = g.leader >= 0;
  g.close_all();
  return ok;
}

#endif  // __linux__

}  // namespace

bool available() {
#if defined(__linux__)
  static const bool avail = probe();
  return avail;
#else
  return false;
#endif
}

void set_enabled(bool on) { g_enabled.store(on && available(), std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

const char* describe() {
  if (!available()) return "unavailable (perf_event_open failed; timer-only fallback)";
  if (!enabled()) return "off (pass --perf-counters to enable)";
  return "hardware (cycles, instructions, cache and branch misses)";
}

HwCounters read_thread() {
#if defined(__linux__)
  if (!enabled()) return HwCounters{};
  ThreadGroup& g = t_group;
  if (!g.tried) g.open();
  if (g.leader < 0) return HwCounters{};
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in open order.
  std::uint64_t buf[1 + kNumEvents] = {};
  const ssize_t n = read(g.leader, buf, sizeof buf);
  if (n < static_cast<ssize_t>(2 * sizeof(std::uint64_t))) return HwCounters{};
  const auto value = [&](int i) -> std::uint64_t {
    return g.slot_of[i] >= 0 ? buf[1 + g.slot_of[i]] : 0;
  };
  HwCounters out;
  out.cycles = value(0);
  out.instructions = value(1);
  out.l1d_misses = value(2);
  out.llc_misses = value(3);
  out.branch_misses = value(4);
  out.valid = true;
  return out;
#else
  return HwCounters{};
#endif
}

}  // namespace hublab::perf

#endif  // HUBLAB_PERF_ENABLED
