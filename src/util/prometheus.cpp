#include "util/prometheus.hpp"

#include <cctype>
#include <ostream>

namespace hublab::metrics {

namespace {

/// `# HELP` precedes `# TYPE` for every family (OpenMetrics ordering); the
/// help text echoes the registry-side name, which the sanitized Prometheus
/// name mangles.
void write_header(std::ostream& out, const std::string& name, std::string_view kind,
                  const std::string& original) {
  out << "# HELP " << name << " hublab " << kind << " " << original << "\n";
  out << "# TYPE " << name << " " << kind << "\n";
}

/// Empty-histogram buckets are skipped; Prometheus still needs the +Inf
/// series, so emission is unconditional there.
void write_histogram(std::ostream& out, const std::string& name, const HistogramSnapshot& snap) {
  write_header(out, name, "histogram", snap.name);
  std::uint64_t cumulative = 0;
  for (const auto& [upper_bound, in_bucket] : snap.buckets) {
    cumulative += in_bucket;
    out << name << "_bucket{le=\"" << upper_bound << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  out << name << "_sum " << snap.sum << "\n";
  out << name << "_count " << snap.count << "\n";
}

/// OpenMetrics exemplar suffix: `# {labels} value` after a bucket sample.
/// The witness is the retained exemplar with the highest seq in the
/// bucket, its measured latency as the exemplar value.
void write_exemplar_suffix(std::ostream& out, const Exemplar& e) {
  out << " # {seq=\"" << e.seq << "\",s=\"" << e.s << "\",t=\"" << e.t << "\",hub=\""
      << e.meeting_hub << "\",scan=\"" << e.scan_cost << "\"} " << e.latency_ns;
}

/// An exemplar store renders as a histogram over the capture buckets with
/// an OpenMetrics exemplar attached to every bucket that retained one.
void write_exemplar_store(std::ostream& out, const std::string& name,
                          const ExemplarStoreSnapshot& snap) {
  write_header(out, name, "histogram", snap.name);
  std::uint64_t cumulative = 0;
  for (const ExemplarBucket& bucket : snap.buckets) {
    cumulative += bucket.count;
    out << name << "_bucket{le=\"" << bucket.le << "\"} " << cumulative;
    if (!bucket.exemplars.empty()) write_exemplar_suffix(out, bucket.exemplars.back());
    out << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  out << name << "_count " << snap.count << "\n";
}

/// Heavy hitters render as one labeled gauge series per retained key,
/// weight-descending (the snapshot's order), plus the exact total.
void write_heavy_hitter(std::ostream& out, const std::string& name,
                        const HeavyHitterSnapshot& snap) {
  write_header(out, name, "gauge", snap.name);
  for (const SpaceSavingSketch::Entry& entry : snap.entries) {
    out << name << "{key=\"" << entry.key << "\"} " << entry.weight << "\n";
  }
  out << name << "{key=\"total\"} " << snap.total_weight << "\n";
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "hublab_";
  for (const char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

void write_prometheus_text(const Registry& reg, std::ostream& out) {
  for (const CounterSnapshot& c : reg.counters()) {
    const std::string name = prometheus_metric_name(c.name);
    write_header(out, name, "counter", c.name);
    out << name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : reg.gauges()) {
    const std::string name = prometheus_metric_name(g.name);
    write_header(out, name, "gauge", g.name);
    out << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : reg.histograms()) {
    write_histogram(out, prometheus_metric_name(h.name), h);
  }
  for (const SketchSnapshot& s : reg.sketches()) {
    const std::string name = prometheus_metric_name(s.name);
    write_header(out, name, "summary", s.name);
    out << name << "{quantile=\"0.5\"} " << s.p50 << "\n";
    out << name << "{quantile=\"0.9\"} " << s.p90 << "\n";
    out << name << "{quantile=\"0.99\"} " << s.p99 << "\n";
    out << name << "{quantile=\"0.999\"} " << s.p999 << "\n";
    out << name << "_sum " << s.sum << "\n";
    out << name << "_count " << s.count << "\n";
  }
  for (const ExemplarStoreSnapshot& e : reg.exemplars()) {
    write_exemplar_store(out, prometheus_metric_name(e.name), e);
  }
  for (const HeavyHitterSnapshot& hh : reg.heavy_hitters()) {
    write_heavy_hitter(out, prometheus_metric_name(hh.name), hh);
  }
}

}  // namespace hublab::metrics
