#pragma once

#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/graph.hpp"
#include "hub/labeling.hpp"

/// \file highway.hpp
/// Shortest-path covers and highway-dimension-style labelings.
///
/// Section 1.1 of the paper explains why hub labeling works so well on
/// transportation networks: Abraham et al. [ADF+16] show that if every
/// ball of radius 2r can be hit by few vertices covering all shortest
/// paths of length in (r, 2r] (low *highway dimension*), then hub
/// labelings of size O~(h) exist.  This module implements the multiscale
/// construction directly:
///
///   scale k (r = 2^k):  C_k  = greedy hitting set for all pairs with
///                              r < dist(u,v) <= 2r,
///   S(v) = {v} + N(v) + union_k { w in C_k : dist(v, w) <= 2*2^k }.
///
/// Exactness: a pair at distance d in (r, 2r] has a cover vertex w on a
/// shortest path with dist(u,w), dist(w,v) <= d <= 2r, so w is a common
/// hub; d = 1 pairs meet at the far endpoint.  The per-scale *ball load*
/// max_v |C_k intersect B_2r(v)| is the empirical highway-dimension
/// statistic: small on road-like graphs, large on expanders -- which is
/// exactly the paper's point about where hub labeling is and is not cheap.

namespace hublab {

/// Greedy hitting set for all pairs with r < dist(u,v) <= 2r: repeatedly
/// pick the vertex lying on shortest paths of the most uncovered pairs.
/// Unweighted graphs only.  O(n^2 * n * iterations); analysis-scale.
std::vector<Vertex> greedy_sp_cover(const Graph& g, const DistanceMatrix& truth, Dist r);

/// True if `cover` hits a shortest path of every pair with r < d <= 2r.
bool is_sp_cover(const DistanceMatrix& truth, const std::vector<Vertex>& cover, Dist r);

/// Per-scale accounting of the multiscale construction.
struct ScaleStats {
  Dist r = 0;                 ///< scale radius (covers d in (r, 2r])
  std::size_t cover_size = 0; ///< |C_k|
  std::size_t max_ball_load = 0;  ///< max_v |C_k in B_{2r}(v)| -- "h" estimate
};

struct MultiscaleStats {
  std::vector<ScaleStats> scales;

  /// Largest per-scale ball load: the empirical highway-dimension proxy.
  [[nodiscard]] std::size_t highway_dimension_estimate() const;
};

/// The multiscale cover labeling described above.  Unweighted connected or
/// disconnected graphs; exact by construction (verified in tests).
HubLabeling multiscale_cover_labeling(const Graph& g, const DistanceMatrix& truth,
                                      MultiscaleStats* stats_out = nullptr);

}  // namespace hublab
