#include "rs/rs_graph.hpp"

#include <map>

#include "rs/behrend.hpp"
#include "util/error.hpp"

namespace hublab::rs {

RsGraph build_rs_graph(std::uint64_t M, const std::vector<std::uint64_t>& progression_free_set) {
  if (M == 0) throw InvalidArgument("build_rs_graph needs M >= 1");
  for (std::uint64_t a : progression_free_set) {
    if (a >= M) throw InvalidArgument("build_rs_graph: set element >= M");
  }
  if (!is_progression_free(progression_free_set)) {
    throw InvalidArgument("build_rs_graph: set is not 3-AP-free");
  }

  RsGraph out;
  out.M = M;
  out.set_size = progression_free_set.size();

  GraphBuilder b(3 * M);
  // Edge classes keyed by apex h = x + 2a.
  std::map<std::uint64_t, EdgeList> classes;
  for (std::uint64_t x = 0; x < M; ++x) {
    for (std::uint64_t a : progression_free_set) {
      const auto u = static_cast<Vertex>(x);
      const auto v = static_cast<Vertex>(M + x + a);
      b.add_edge(u, v);
      classes[x + 2 * a].emplace_back(u, v);
    }
  }
  out.graph = b.build();
  out.partition.matchings.reserve(classes.size());
  for (auto& [h, edges] : classes) out.partition.matchings.push_back(std::move(edges));
  return out;
}

RsGraph behrend_rs_graph(std::uint64_t M) { return build_rs_graph(M, behrend_set(M)); }

RsWitness measure_rs_witness(const Graph& g) {
  RsWitness w;
  w.num_vertices = g.num_vertices();
  w.num_edges = g.num_edges();
  const auto part = greedy_induced_partition(g);
  w.num_matchings = part.num_matchings();
  w.density_ratio = w.num_edges == 0
                        ? 0.0
                        : static_cast<double>(w.num_vertices) * static_cast<double>(w.num_vertices) /
                              static_cast<double>(w.num_edges);
  return w;
}

}  // namespace hublab::rs
