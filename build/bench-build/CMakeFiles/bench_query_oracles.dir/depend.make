# Empty dependencies file for bench_query_oracles.
# This may be replaced when dependencies are built.
