#include "hub/upperbound.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/transforms.hpp"
#include "matching/bipartite.hpp"
#include "matching/induced_matching.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace hublab {

namespace {

/// Shared first half of the pipeline: sample S, color V, classify pairs.
struct PipelineState {
  std::size_t n = 0;
  std::size_t D = 0;
  std::vector<Vertex> sample;                 ///< sorted S
  std::vector<std::uint32_t> color;           ///< D^3 colors
  std::vector<std::vector<Vertex>> q_of;      ///< Q_v (plus distance-0 partners)
  std::vector<std::vector<Vertex>> r_of;      ///< R_v
  /// E^h_{a,b} keyed by ((h * (D+1)) + a) * (D+1) + b.
  std::map<std::uint64_t, std::vector<std::pair<Vertex, Vertex>>> groups;

  [[nodiscard]] std::uint64_t key(Vertex h, Dist a, Dist b) const {
    return (static_cast<std::uint64_t>(h) * (D + 1) + a) * (D + 1) + b;
  }
  [[nodiscard]] Vertex key_hub(std::uint64_t k) const {
    return static_cast<Vertex>(k / ((D + 1) * (D + 1)));
  }
  [[nodiscard]] Dist key_a(std::uint64_t k) const { return (k / (D + 1)) % (D + 1); }
};

PipelineState classify_pairs(const Graph& g, const DistanceMatrix& truth, std::size_t D,
                             Rng& rng) {
  if (D < 2) throw InvalidArgument("upper_bound_labeling needs D >= 2");
  if (g.max_weight() > 1) {
    throw InvalidArgument("upper_bound_labeling needs {0,1} edge weights");
  }
  PipelineState st;
  st.n = g.num_vertices();
  st.D = D;
  const auto n = static_cast<Vertex>(st.n);

  // (*) Random sample S of size ~ (n/D) ln D.
  const double target =
      static_cast<double>(n) / static_cast<double>(D) * std::log(static_cast<double>(D));
  const std::size_t sample_size =
      std::min<std::size_t>(n, std::max<std::size_t>(1, static_cast<std::size_t>(target) + 1));
  std::vector<Vertex> pool(n);
  for (Vertex v = 0; v < n; ++v) pool[v] = v;
  shuffle(pool, rng);
  st.sample.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(sample_size));
  std::sort(st.sample.begin(), st.sample.end());

  // Random D^3-coloring.
  const std::uint64_t num_colors = static_cast<std::uint64_t>(D) * D * D;
  st.color.resize(n);
  for (Vertex v = 0; v < n; ++v) st.color[v] = static_cast<std::uint32_t>(rng.next_below(num_colors));

  st.q_of.resize(n);
  st.r_of.resize(n);

  std::vector<std::uint32_t> color_seen(num_colors, 0);
  std::uint32_t epoch = 0;

  for (Vertex u = 0; u < n; ++u) {
    const Dist* ru = truth.row(u);
    for (Vertex v = u + 1; v < n; ++v) {
      const Dist duv = truth.at(u, v);
      if (duv == kInfDist) continue;
      if (duv == 0) {
        // Distance-0 pair (possible with weight-0 edges): the partner itself
        // is a valid shared hub; route it through the Q mechanism.
        st.q_of[u].push_back(v);
        continue;
      }
      // Covered by the shared sample?
      const Dist* rv = truth.row(v);
      bool covered = false;
      for (Vertex h : st.sample) {
        if (ru[h] != kInfDist && rv[h] != kInfDist && ru[h] + rv[h] == duv) {
          covered = true;
          break;
        }
      }
      if (covered) continue;

      const auto hubs = truth.valid_hubs(u, v);
      if (hubs.size() >= D) {
        st.q_of[u].push_back(v);
        continue;
      }
      // Rainbow check over H_uv.
      ++epoch;
      bool conflict = false;
      for (Vertex h : hubs) {
        if (color_seen[st.color[h]] == epoch) {
          conflict = true;
          break;
        }
        color_seen[st.color[h]] = epoch;
      }
      if (conflict) {
        st.r_of[u].push_back(v);
        continue;
      }
      for (Vertex h : hubs) {
        const Dist a = ru[h];
        const Dist b = rv[h];
        HUBLAB_ASSERT(a + b == duv && duv <= D);
        st.groups[st.key(h, a, b)].emplace_back(u, v);
      }
    }
  }
  return st;
}

/// Compressed bipartite graph of one E^h_{a,b} group plus id mappings.
struct GroupGraph {
  BipartiteGraph bip;
  std::vector<Vertex> left_ids;
  std::vector<Vertex> right_ids;
};

GroupGraph build_group_graph(const std::vector<std::pair<Vertex, Vertex>>& pairs) {
  std::vector<Vertex> lefts;
  std::vector<Vertex> rights;
  lefts.reserve(pairs.size());
  rights.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    lefts.push_back(u);
    rights.push_back(v);
  }
  std::sort(lefts.begin(), lefts.end());
  lefts.erase(std::unique(lefts.begin(), lefts.end()), lefts.end());
  std::sort(rights.begin(), rights.end());
  rights.erase(std::unique(rights.begin(), rights.end()), rights.end());

  auto index_of = [](const std::vector<Vertex>& ids, Vertex v) {
    return static_cast<std::uint32_t>(std::lower_bound(ids.begin(), ids.end(), v) - ids.begin());
  };

  GroupGraph gg{BipartiteGraph(lefts.size(), rights.size()), std::move(lefts), std::move(rights)};
  for (const auto& [u, v] : pairs) {
    gg.bip.add_edge(index_of(gg.left_ids, u), index_of(gg.right_ids, v));
  }
  return gg;
}

}  // namespace

HubLabeling upper_bound_labeling(const Graph& g, const DistanceMatrix& truth, std::size_t D,
                                 Rng& rng, UpperBoundStats* stats_out) {
  PipelineState st = classify_pairs(g, truth, D, rng);
  const auto n = static_cast<Vertex>(st.n);
  UpperBoundStats stats;
  stats.n = st.n;
  stats.D = D;
  stats.sample_size = st.sample.size();

  // Vertex covers -> F_v (seeded with v itself, as in the proof).
  std::vector<std::vector<Vertex>> f_of(n);
  for (Vertex v = 0; v < n; ++v) f_of[v].push_back(v);
  for (const auto& [key, pairs] : st.groups) {
    const Vertex h = st.key_hub(key);
    const GroupGraph gg = build_group_graph(pairs);
    const Matching mm = hopcroft_karp(gg.bip);
    const VertexCover vc = koenig_cover(gg.bip, mm);
    HUBLAB_ASSERT(vc.size() == mm.size());
    for (auto li : vc.left) f_of[gg.left_ids[li]].push_back(h);
    for (auto ri : vc.right) f_of[gg.right_ids[ri]].push_back(h);
    ++stats.num_groups;
    stats.sum_matchings += mm.size();
  }

  // Assemble final labels: S union Q_v union R_v union N(F_v).
  HubLabeling labeling(n);
  auto add_if_reachable = [&labeling, &truth](Vertex v, Vertex hub) {
    const Dist d = truth.at(v, hub);
    if (d != kInfDist) labeling.add_hub(v, hub, d);
  };
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex s : st.sample) add_if_reachable(v, s);
    for (Vertex w : st.q_of[v]) add_if_reachable(v, w);
    for (Vertex w : st.r_of[v]) add_if_reachable(v, w);
    for (Vertex x : f_of[v]) {
      add_if_reachable(v, x);
      for (const Arc& a : g.arcs(x)) add_if_reachable(v, a.to);
      // N(F_v) accounting: x and its neighbors.
      stats.sum_nf += 1 + g.degree(x);
    }
    stats.sum_q += st.q_of[v].size();
    stats.sum_r += st.r_of[v].size();
    stats.sum_f += f_of[v].size() - 1;  // exclude the seeded v
  }
  labeling.finalize();
  stats.total_hubs = labeling.total_hubs();
  stats.average_label_size = labeling.average_label_size();
  if (stats_out != nullptr) *stats_out = stats;

  // Mirror the Theorem 4.1 stage sizes into the metrics registry so traces
  // and bench JSON pick them up without threading UpperBoundStats around.
  metrics::Registry& reg = metrics::registry();
  reg.gauge("thm41.sample_size").set(static_cast<std::int64_t>(stats.sample_size));
  reg.gauge("thm41.sum_q").set(static_cast<std::int64_t>(stats.sum_q));
  reg.gauge("thm41.sum_r").set(static_cast<std::int64_t>(stats.sum_r));
  reg.gauge("thm41.sum_f").set(static_cast<std::int64_t>(stats.sum_f));
  reg.gauge("thm41.sum_nf").set(static_cast<std::int64_t>(stats.sum_nf));
  reg.gauge("thm41.num_groups").set(static_cast<std::int64_t>(stats.num_groups));
  reg.gauge("thm41.cover_size").set(static_cast<std::int64_t>(stats.sum_matchings));
  reg.gauge("thm41.total_hubs").set(static_cast<std::int64_t>(stats.total_hubs));
  reg.counter("thm41.runs").add(1);
  return labeling;
}

HubLabeling upper_bound_labeling_sparse(const Graph& g, std::size_t D, Rng& rng,
                                        UpperBoundStats* stats_out) {
  if (g.is_weighted()) {
    throw InvalidArgument("upper_bound_labeling_sparse needs an unweighted graph");
  }
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  const std::size_t cap = n == 0 ? 1 : std::max<std::size_t>(1, (m + n - 1) / n);
  const DegreeReduction red = reduce_degree(g, cap);
  const DistanceMatrix truth = DistanceMatrix::compute(red.graph);
  const HubLabeling inner = upper_bound_labeling(red.graph, truth, D, rng, stats_out);

  // Project back: the label of v is the label of its representative copy,
  // with every hub copy mapped to its original vertex.  Weight-0 chains
  // preserve all the distances involved.
  HubLabeling out(n);
  for (Vertex v = 0; v < n; ++v) {
    for (const HubEntry& e : inner.label(red.representative[v])) {
      out.add_hub(v, red.origin[e.hub], e.dist);
    }
  }
  out.finalize();
  return out;
}

bool verify_lemma_4_2(const Graph& g, const DistanceMatrix& truth, std::size_t D, Rng& rng) {
  PipelineState st = classify_pairs(g, truth, D, rng);
  const auto n = static_cast<Vertex>(st.n);

  // Regroup the (h, a, b) classes by (color(h), a, b); within one class the
  // lemma asserts each MM^h_{a,b} is an induced matching of the union graph
  // G^c_{a,b} over the class.
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_color_ab;
  for (const auto& [key, pairs] : st.groups) {
    const Vertex h = st.key_hub(key);
    const std::uint64_t cab = key - static_cast<std::uint64_t>(h) * (D + 1) * (D + 1) +
                              static_cast<std::uint64_t>(st.color[h]) * (D + 1) * (D + 1);
    by_color_ab[cab].push_back(key);
  }

  for (const auto& [cab, keys] : by_color_ab) {
    (void)cab;
    // Maximal matchings per hub, in original vertex ids (left u, right n+v).
    std::vector<EdgeList> matchings;
    GraphBuilder union_builder(2 * static_cast<std::size_t>(n));
    for (std::uint64_t key : keys) {
      const auto& pairs = st.groups.at(key);
      const GroupGraph gg = build_group_graph(pairs);
      const Matching mm = hopcroft_karp(gg.bip);
      EdgeList edges;
      for (std::uint32_t li = 0; li < gg.bip.num_left(); ++li) {
        if (mm.left_match[li] == kUnmatched) continue;
        const Vertex u = gg.left_ids[li];
        const Vertex v = gg.right_ids[mm.left_match[li]];
        edges.emplace_back(u, static_cast<Vertex>(n + v));
        union_builder.add_edge(u, static_cast<Vertex>(n + v));
      }
      matchings.push_back(std::move(edges));
    }
    const Graph union_graph = union_builder.build();
    for (const EdgeList& mm : matchings) {
      if (!is_induced_matching(union_graph, mm)) return false;
    }
  }
  return true;
}

}  // namespace hublab
