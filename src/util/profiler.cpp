#include "util/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <ostream>
#include <string>

#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/resource.hpp"

#if defined(__linux__) && defined(__GLIBC__)
#define HUBLAB_PROF_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#else
#define HUBLAB_PROF_SUPPORTED 0
#endif

namespace hublab::prof {

namespace {

/// One sampled thread's ring: single writer (the thread, inside SIGPROF),
/// publishing with a release store of `head`; readers are write_folded /
/// samples(), both in normal context after stop().
struct Sample {
  std::uint32_t depth = 0;
  std::uint32_t worker = 0;
  void* frames[kMaxDepth];
};

struct Ring {
  std::atomic<std::uint64_t> head{0};
  Sample samples[kMaxSamples];
};

/// Static storage only: a thread claims a slot with one fetch_add, so the
/// handler never allocates.  Slots are never reused (see reset()).
Ring g_rings[kMaxThreads];
std::atomic<std::uint32_t> g_slots{0};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_active{false};

thread_local int t_slot = -1;  ///< -1 unclaimed, -2 slots exhausted

bool g_running = false;  ///< normal-context bookkeeping (start/stop callers)
std::uint64_t g_published_samples = 0;
std::uint64_t g_published_drops = 0;

#if HUBLAB_PROF_SUPPORTED

struct sigaction g_old_action;

void on_prof_tick(int /*sig*/) {
  const int saved_errno = errno;
  // Satellite duty: every tick records the current RSS into the process
  // peak (async-signal-safe; see util/resource.hpp).
  sample_rss_peak();
  if (g_active.load(std::memory_order_acquire)) {
    if (t_slot == -1) {
      const std::uint32_t s = g_slots.fetch_add(1, std::memory_order_relaxed);
      t_slot = s < kMaxThreads ? static_cast<int>(s) : -2;
    }
    if (t_slot >= 0) {
      Ring& ring = g_rings[t_slot];
      const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
      if (h < kMaxSamples) {
        Sample& smp = ring.samples[h];
        const int depth = backtrace(smp.frames, static_cast<int>(kMaxDepth));
        smp.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
        smp.worker = static_cast<std::uint32_t>(par::worker_index());
        ring.head.store(h + 1, std::memory_order_release);
        g_samples.fetch_add(1, std::memory_order_relaxed);
      } else {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

/// Folded-stack frames must not contain the format's separators; spaces
/// separate the count, semicolons separate frames.
void append_sanitized(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == ' ') c = '_';
    if (c == ';') c = ':';
    out.push_back(c);
  }
}

void append_frame(std::string& out, void* addr) {
  Dl_info info;
  if (dladdr(addr, &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      if (status == 0 && demangled != nullptr) {
        append_sanitized(out, demangled);
      } else {
        append_sanitized(out, info.dli_sname);
      }
      std::free(demangled);
      return;
    }
    if (info.dli_fname != nullptr) {
      // Strip the directory: the module base name plus the load offset is
      // enough to resolve offline (addr2line) without -rdynamic.
      const char* base = info.dli_fname;
      for (const char* p = info.dli_fname; *p != '\0'; ++p) {
        if (*p == '/') base = p + 1;
      }
      append_sanitized(out, base);
      char buf[32];
      const auto off = static_cast<unsigned long long>(
          reinterpret_cast<const char*>(addr) -
          reinterpret_cast<const char*>(info.dli_fbase));
      std::snprintf(buf, sizeof buf, "+0x%llx", off);
      out += buf;
      return;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%p", addr);
  out += buf;
}

#endif  // HUBLAB_PROF_SUPPORTED

}  // namespace

bool supported() noexcept { return HUBLAB_PROF_SUPPORTED != 0; }

bool start(const ProfilerConfig& config) {
#if HUBLAB_PROF_SUPPORTED
  if (g_running) return false;
  // Pre-warm backtrace: its first call lazily loads the unwinder (which
  // may allocate); do that here, never inside the handler.
  void* warm[4];
  (void)backtrace(warm, 4);

  struct sigaction sa = {};
  sa.sa_handler = on_prof_tick;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &sa, &g_old_action) != 0) return false;

  g_active.store(true, std::memory_order_release);
  const std::uint64_t hz = std::clamp<std::uint64_t>(config.hz, 1, 1000);
  const auto usec = static_cast<long>(1000000 / hz);
  itimerval timer = {};
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = usec;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_old_action, nullptr);
    return false;
  }
  g_running = true;
  return true;
#else
  (void)config;
  return false;
#endif
}

void stop() {
#if HUBLAB_PROF_SUPPORTED
  if (!g_running) return;
  itimerval off = {};
  setitimer(ITIMER_PROF, &off, nullptr);
  g_active.store(false, std::memory_order_release);
  // Let any in-flight handler drain before the old disposition returns.
  usleep(20000);
  sigaction(SIGPROF, &g_old_action, nullptr);
  g_running = false;

  const std::uint64_t total_samples = g_samples.load(std::memory_order_acquire);
  const std::uint64_t total_drops = g_dropped.load(std::memory_order_acquire);
  metrics::registry().counter("perf.samples").add(total_samples - g_published_samples);
  metrics::registry().counter("perf.sample_drops").add(total_drops - g_published_drops);
  g_published_samples = total_samples;
  g_published_drops = total_drops;
#endif
}

bool running() noexcept { return g_running; }

std::uint64_t samples() noexcept { return g_samples.load(std::memory_order_acquire); }

std::uint64_t dropped() noexcept { return g_dropped.load(std::memory_order_acquire); }

void write_folded(std::ostream& out) {
#if HUBLAB_PROF_SUPPORTED
  std::map<std::string, std::uint64_t> agg;  // sorted => deterministic output order
  std::map<void*, std::string> symbols;
  const std::uint32_t slots =
      std::min<std::uint32_t>(g_slots.load(std::memory_order_acquire),
                              static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    const Ring& ring = g_rings[slot];
    const std::uint64_t n =
        std::min<std::uint64_t>(ring.head.load(std::memory_order_acquire), kMaxSamples);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Sample& smp = ring.samples[i];
      std::string stack = "worker" + std::to_string(smp.worker);
      // backtrace() is leaf-first; folded stacks read root-first.
      for (std::uint32_t d = smp.depth; d > 0; --d) {
        stack.push_back(';');
        void* addr = smp.frames[d - 1];
        auto it = symbols.find(addr);
        if (it == symbols.end()) {
          std::string sym;
          append_frame(sym, addr);
          it = symbols.emplace(addr, std::move(sym)).first;
        }
        stack += it->second;
      }
      std::uint64_t& count = agg[stack];
      count += 1;
    }
  }
  for (const auto& [stack, count] : agg) {
    out << stack << ' ' << count << '\n';
  }
#else
  (void)out;
#endif
}

void reset() {
  if (g_running) return;  // refuse while the handler may still write
  for (Ring& ring : g_rings) {
    ring.head.store(0, std::memory_order_relaxed);
  }
  // Thread slots are NOT reclaimed: live threads keep their t_slot, so
  // handing a claimed slot to a new thread would create a second writer.
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_published_samples = 0;
  g_published_drops = 0;
}

}  // namespace hublab::prof
