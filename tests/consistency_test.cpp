#include <gtest/gtest.h>

#include <memory>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/constructions.hpp"
#include "hub/pll.hpp"
#include "hub/structured.hpp"
#include "labeling/distance_labeling.hpp"
#include "oracle/alt.hpp"
#include "oracle/arc_flags.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "oracle/oracle.hpp"
#include "util/rng.hpp"

/// Cross-implementation consistency matrix: every exact method in the
/// library must return the same distance on the same pair.  With ~8
/// independent implementations, a silent bug in any one of them loses the
/// vote and fails loudly here.

namespace hublab {
namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

struct FamilyCase {
  std::string name;
  Graph graph;
};

std::vector<FamilyCase> families() {
  std::vector<FamilyCase> out;
  out.push_back({"grid6x7", gen::grid(6, 7)});
  {
    Rng rng(1);
    out.push_back({"gnm", gen::connected_gnm(60, 130, rng)});
  }
  {
    Rng rng(2);
    out.push_back({"weighted-road", gen::road_like(6, 6, 0.25, 9, rng)});
  }
  {
    Rng rng(3);
    out.push_back({"disconnected", gen::gnm(50, 45, rng)});
  }
  {
    Rng rng(4);
    out.push_back({"scale-free", gen::barabasi_albert(60, 2, rng)});
  }
  return out;
}

class ConsistencyMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConsistencyMatrix, AllExactMethodsAgree) {
  const FamilyCase fc = families()[GetParam()];
  const Graph& g = fc.graph;
  const auto n = static_cast<Vertex>(g.num_vertices());
  const DistanceMatrix truth = DistanceMatrix::compute(g);

  // Oracles.
  std::vector<std::unique_ptr<DistanceOracle>> oracles;
  oracles.push_back(std::make_unique<ApspOracle>(g));
  oracles.push_back(std::make_unique<SsspOracle>(g));
  oracles.push_back(std::make_unique<BidirectionalOracle>(g));
  oracles.push_back(std::make_unique<HubLabelOracle>(g, pruned_landmark_labeling(g)));
  oracles.push_back(std::make_unique<ContractionHierarchy>(g));
  oracles.push_back(std::make_unique<ArcFlagsOracle>(g, 5));
  oracles.push_back(std::make_unique<AltOracle>(g, farthest_landmarks(g, 4)));

  // Labelings queried directly.
  std::vector<HubLabeling> labelings;
  labelings.push_back(pruned_landmark_labeling(g, VertexOrder::kRandom, 9));
  labelings.push_back(bfs_separator_labeling(g));
  {
    Rng rng(5);
    labelings.push_back(random_distant_cover(g, truth, 3, rng));
  }

  // Bit-level schemes.
  const HubDistanceLabeling scheme(&pll_natural);
  const EncodedLabels encoded = scheme.encode(g);

  Rng pick(6);
  for (int trial = 0; trial < 150; ++trial) {
    const auto u = static_cast<Vertex>(pick.next_below(n));
    const auto v = static_cast<Vertex>(pick.next_below(n));
    const Dist expected = truth.at(u, v);
    for (const auto& oracle : oracles) {
      ASSERT_EQ(oracle->distance(u, v), expected)
          << fc.name << " " << oracle->name() << " " << u << "-" << v;
    }
    for (const auto& labeling : labelings) {
      ASSERT_EQ(labeling.query(u, v), expected) << fc.name << " labeling " << u << "-" << v;
    }
    ASSERT_EQ(scheme.decode(encoded.labels[u], encoded.labels[v]), expected)
        << fc.name << " bit-scheme " << u << "-" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ConsistencyMatrix, ::testing::Values(0, 1, 2, 3, 4));

TEST(Consistency, QueriesAreSymmetric) {
  Rng rng(7);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const ContractionHierarchy ch(g);
  for (Vertex u = 0; u < 50; u += 3) {
    for (Vertex v = 0; v < 50; v += 7) {
      EXPECT_EQ(pll.query(u, v), pll.query(v, u));
      EXPECT_EQ(ch.distance(u, v), ch.distance(v, u));
    }
  }
}

TEST(Consistency, TruthMatrixTriangleInequality) {
  Rng rng(8);
  Graph g = gen::connected_gnm(40, 90, rng);
  g = gen::randomize_weights(g, 9, rng);
  const DistanceMatrix m = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < 40; ++u) {
    for (Vertex v = 0; v < 40; ++v) {
      for (Vertex w = 0; w < 40; w += 5) {
        if (m.at(u, w) != kInfDist && m.at(w, v) != kInfDist) {
          EXPECT_LE(m.at(u, v), m.at(u, w) + m.at(w, v));
        }
      }
    }
  }
}

TEST(Consistency, MonotoneClosureIsIdempotent) {
  Rng rng(9);
  const Graph g = gen::connected_gnm(30, 60, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling once = monotone_closure(g, pll);
  const HubLabeling twice = monotone_closure(g, once);
  // A second closure may pick different tree paths, but sizes must not
  // change if the first result was already ancestor-closed w.r.t. the
  // same deterministic trees.
  EXPECT_EQ(once.total_hubs(), twice.total_hubs());
}

}  // namespace
}  // namespace hublab
