#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "oracle/alt.hpp"
#include "oracle/arc_flags.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

void expect_arcflags_exact(const Graph& g, std::size_t regions, std::uint64_t seed = 1) {
  const ArcFlagsOracle oracle(g, regions, seed);
  const auto truth = DistanceMatrix::compute(g);
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(oracle.distance(u, v), truth.at(u, v)) << u << "-" << v << " k=" << regions;
    }
  }
}

TEST(ArcFlags, ExactOnGridAllRegionCounts) {
  const Graph g = gen::grid(5, 5);
  for (const std::size_t k : {1u, 2u, 4u, 8u}) expect_arcflags_exact(g, k);
}

TEST(ArcFlags, ExactOnWeighted) {
  Rng rng(1);
  expect_arcflags_exact(gen::road_like(5, 5, 0.3, 9, rng), 4);
}

TEST(ArcFlags, ExactOnDisconnected) {
  Rng rng(2);
  expect_arcflags_exact(gen::gnm(30, 35, rng), 4);
}

class ArcFlagsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArcFlagsSweep, ExactOnRandomSparse) {
  Rng rng(GetParam());
  const Graph g = gen::connected_gnm(50, 100, rng);
  expect_arcflags_exact(g, 6, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcFlagsSweep, ::testing::Values(1, 2, 3));

TEST(ArcFlags, RegionsPartition) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const ArcFlagsOracle oracle(g, 5);
  for (Vertex v = 0; v < 40; ++v) EXPECT_LT(oracle.region_of(v), 5u);
}

TEST(ArcFlags, PruningActuallyHappens) {
  // On a long path with many regions, queries toward a target should not
  // settle the entire graph, and flag density must be well below 1.
  const Graph g = gen::path(120);
  const ArcFlagsOracle oracle(g, 8);
  EXPECT_LT(oracle.flag_density(), 0.9);
  (void)oracle.distance(0, 5);
  EXPECT_LT(oracle.last_settled(), 40u);  // plain Dijkstra would settle ~all
}

TEST(ArcFlags, ZeroRegionsRejected) {
  const Graph g = gen::path(4);
  EXPECT_THROW(ArcFlagsOracle(g, 0), InvalidArgument);
}

TEST(FarthestLandmarks, SpreadOnPath) {
  const Graph g = gen::path(50);
  const auto lms = farthest_landmarks(g, 2, 7);
  ASSERT_EQ(lms.size(), 2u);
  // The second landmark must be an endpoint (farthest from the first).
  EXPECT_TRUE(lms[1] == 0 || lms[1] == 49);
}

TEST(FarthestLandmarks, CoversComponents) {
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const auto lms = farthest_landmarks(g, 4, 1);
  EXPECT_EQ(lms.size(), 4u);
}

void expect_alt_exact(const Graph& g, std::size_t num_landmarks) {
  const AltOracle oracle(g, farthest_landmarks(g, num_landmarks, 3));
  const auto truth = DistanceMatrix::compute(g);
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(oracle.distance(u, v), truth.at(u, v)) << u << "-" << v;
    }
  }
}

TEST(Alt, ExactOnGrid) { expect_alt_exact(gen::grid(6, 6), 4); }

TEST(Alt, ExactOnWeightedRoad) {
  Rng rng(4);
  expect_alt_exact(gen::road_like(5, 5, 0.2, 9, rng), 3);
}

TEST(Alt, ExactOnDisconnected) {
  Rng rng(5);
  expect_alt_exact(gen::gnm(30, 32, rng), 4);
}

class AltSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AltSweep, ExactOnRandom) {
  Rng rng(GetParam());
  Graph g = gen::connected_gnm(50, 120, rng);
  g = gen::randomize_weights(g, 7, rng);
  expect_alt_exact(g, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltSweep, ::testing::Values(1, 2, 3));

TEST(Alt, GoalDirectionReducesSettles) {
  const Graph g = gen::grid(20, 20);
  const AltOracle alt(g, farthest_landmarks(g, 8, 1));
  (void)alt.distance(0, 21);  // nearby target
  const std::size_t near_settles = alt.last_settled();
  EXPECT_LT(near_settles, g.num_vertices() / 4);
}

TEST(Alt, NeedsLandmarks) {
  const Graph g = gen::path(4);
  EXPECT_THROW(AltOracle(g, {}), InvalidArgument);
}

}  // namespace
}  // namespace hublab
