/// \file bench_highway_dimension.cpp
/// Experiment for the Section 1.1 discussion of [ADF+16]: hub labeling is
/// cheap exactly where the *highway dimension* is low.
///
/// For each family, build the multiscale shortest-path-cover labeling and
/// report the per-scale greedy cover sizes and ball loads.  Road-like and
/// path-like networks show small loads (a handful of "highways" per
/// scale); random regular graphs (expander-like) and the paper's gadget
/// show large loads -- the same dichotomy Theorem 1.1 formalizes.

#include <cstdio>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/highway.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "highway_dimension",
                         "Experiment HWY: highway-dimension proxy across graph families");
  bool all_ok = true;

  struct Family {
    std::string name;
    Graph graph;
  };
  const std::size_t n = harness.smoke() ? 100 : 196;
  std::vector<Family> families;
  families.push_back({"grid (road-like)", harness.smoke() ? gen::grid(10, 10) : gen::grid(14, 14)});
  families.push_back({"path", gen::path(n)});
  {
    Rng rng(1);
    families.push_back({"random 3-regular", gen::random_regular(n, 3, rng)});
  }
  {
    Rng rng(2);
    families.push_back({"barabasi-albert", gen::barabasi_albert(n, 2, rng)});
  }
  {
    // Degree-3 gadget of Theorem 2.1 (unweighted expansion of H_{1,1}).
    const lb::LayeredGadget h(lb::GadgetParams{1, 1});
    families.push_back({"gadget G_{1,1} (n=90)", lb::Degree3Gadget(h).graph()});
  }

  auto sweep_span = harness.phase("multiscale-covers");
  TextTable table({"family", "n", "h estimate", "scales", "sum covers", "avg label",
                   "PLL avg", "exact"});
  for (const auto& f : families) {
    const Graph& g = f.graph;
    harness.add_graph(f.name, g.num_vertices(), g.num_edges());
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    MultiscaleStats stats;
    const HubLabeling l = multiscale_cover_labeling(g, truth, &stats);
    const bool exact = !verify_labeling(g, l, truth).has_value();
    all_ok = all_ok && exact;
    std::size_t sum_covers = 0;
    for (const auto& s : stats.scales) sum_covers += s.cover_size;
    const HubLabeling pll = pruned_landmark_labeling(g);
    table.add_row({f.name, fmt_u64(g.num_vertices()),
                   fmt_u64(stats.highway_dimension_estimate()), fmt_u64(stats.scales.size()),
                   fmt_u64(sum_covers), fmt_double(l.average_label_size(), 2),
                   fmt_double(pll.average_label_size(), 2), exact ? "ok" : "FAIL"});
  }
  sweep_span.end();
  harness.print(table, "multiscale SP-cover labeling; 'h estimate' = max per-scale ball load");

  // Per-scale detail for the two extremes.
  auto detail_span = harness.phase("per-scale-detail");
  for (const char* pick : {"grid (road-like)", "random 3-regular"}) {
    for (const auto& f : families) {
      if (f.name != pick) continue;
      const DistanceMatrix truth = DistanceMatrix::compute(f.graph);
      MultiscaleStats stats;
      (void)multiscale_cover_labeling(f.graph, truth, &stats);
      TextTable detail({"scale r", "covers d in", "|C_r|", "max ball load"});
      for (const auto& s : stats.scales) {
        detail.add_row({fmt_u64(s.r),
                        "(" + fmt_u64(s.r) + "," + fmt_u64(2 * s.r) + "]",
                        fmt_u64(s.cover_size), fmt_u64(s.max_ball_load)});
      }
      harness.print(detail, std::string("per-scale detail: ") + pick);
    }
  }
  detail_span.end();

  return harness.finish("HWY experiment", all_ok);
}
