#!/usr/bin/env bash
# Full correctness matrix (see docs/correctness.md):
#
#   1. RelWithDebInfo build + full test suite        (preset dev)
#   2. ASan+UBSan build + full test suite            (preset asan-ubsan)
#   3. ThreadSanitizer build + parallel-path tests   (preset tsan)
#   4. clang-tidy gate                               (run-tidy; skips w/o clang-tidy)
#   5. hublab_lint incl. header self-containment     (run-lint)
#   6. hublab_lint --sarif + SARIF 2.1.0 validation  (CI artifact)
#   7. bench smoke: every bench --smoke + JSON schema validation
#   8. bench-compare: smoke runs vs bench/baselines/  (relaxed thresholds)
#   9. trajectory: headline gauges appended to bench/trajectory.jsonl
#  10. serve-sim smoke + SERVE_*.json schema validation + Prometheus dump
#  11. open-loop serve smoke: `hublab serve` at low wall QPS (nothing
#      shed) and under virtual-time overload (deterministic shedding),
#      both reports schema-validated
#  12. perf-counters smoke: bench --perf-counters banner + schema-v3 hw
#      blocks (validated when the host has hardware counters, cleanly
#      skipped where perf_event_open is unavailable)
#  13. batch kernel: ISA-tier banner, HUBLAB_FORCE_SCALAR forced-scalar
#      run, and the pract.batch_query_pct_of_scalar.gnm2000 <= 70 gate
#  14. -Wall -Wextra -Werror build of the full tree  (preset werror)
#
# Exits non-zero on the first failing stage.  Run from anywhere.
#
# Helper mode: `tools/check.sh regen-baselines` rebuilds the dev preset,
# reruns every bench with --smoke, and refreshes bench/baselines/ with the
# freshly emitted JSON (current schema version).  Use it after an emitter
# or schema change, then review the diff before committing.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

stage() {
  echo
  echo "=== check.sh: $* ==="
}

if [ "${1:-}" = "regen-baselines" ]; then
  stage "regen-baselines: rebuild + rerun every bench --smoke"
  cmake --preset dev
  cmake --build --preset dev -j "${jobs}"
  regen_dir="$(mktemp -d)"
  trap 'rm -rf "${regen_dir}"' EXIT
  repo_root="$(pwd -P)"
  for bench in build/dev/bench/bench_*; do
    [ -x "${bench}" ] || continue
    echo "--- $(basename "${bench}") --smoke"
    (cd "${regen_dir}" && "${repo_root}/${bench}" --smoke > /dev/null)
  done
  build/dev/tools/hublab validate-bench --quiet "${regen_dir}"/BENCH_*.json
  cp "${regen_dir}"/BENCH_*.json bench/baselines/
  count="$(find "${regen_dir}" -name 'BENCH_*.json' | wc -l)"
  echo "regen-baselines: ${count} schema-valid baselines refreshed in bench/baselines/"
  exit 0
fi

stage "1/14 RelWithDebInfo build + tests"
cmake --preset dev
cmake --build --preset dev -j "${jobs}"
ctest --preset dev -j "${jobs}"

stage "2/14 ASan+UBSan build + tests"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${jobs}"
ctest --preset asan-ubsan -j "${jobs}"

stage "3/14 TSan build + parallel-path tests"
# The suites that drive util/parallel's pool with threads > 1: the pool
# itself, every parallelized hub-labeling entry point, the flat kernel, the
# threaded serve loop and the sketch merges it reduces with, plus the open
# -loop server's SPSC rings and generator/worker handoff.  -fsanitize=
# thread aborts on the first data race (no recovery), so a green run means
# zero reports.
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}"
ctest --preset tsan -j "${jobs}" \
  -R 'StaticChunks|ResolveThreads|HardwareThreads|ParallelFor|RunChunks|ParallelDeterminism|FlatHubLabeling|BatchQuery|RunSim|QuantileSketch|PllBp|SpscRing|ServeOpen'

stage "4/14 clang-tidy gate"
cmake --build --preset dev --target run-tidy

stage "5/14 hublab_lint (with header self-containment)"
cmake --build --preset dev --target run-lint

stage "6/14 hublab_lint SARIF artifact"
# Re-run the analyzer emitting SARIF (the CI-consumable artifact) and prove
# the document is well-formed 2.1.0 with the full rule catalog.  Headers
# were already probed in stage 5.
sarif_out="$(mktemp)"
build/dev/tools/hublab_lint --root . --no-header-check --sarif "${sarif_out}" > /dev/null
python3 - "${sarif_out}" <<'PY'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
assert doc["version"] == "2.1.0", doc["version"]
run = doc["runs"][0]
rules = run["tool"]["driver"]["rules"]
assert len(rules) >= 20, f"expected >= 20 rule descriptors, got {len(rules)}"
print(f"sarif: valid 2.1.0, {len(rules)} rules, {len(run['results'])} results")
PY
rm -f "${sarif_out}"

stage "7/14 bench smoke + BENCH_*.json schema validation"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
repo_root="$(pwd -P)"
bench_count=0
for bench in build/dev/bench/bench_*; do
  [ -x "${bench}" ] || continue
  bench_count=$((bench_count + 1))
  echo "--- $(basename "${bench}") --smoke"
  (cd "${smoke_dir}" && "${repo_root}/${bench}" --smoke > /dev/null)
done
json_count="$(find "${smoke_dir}" -name 'BENCH_*.json' | wc -l)"
if [ "${json_count}" -ne "${bench_count}" ]; then
  echo "bench-smoke: ${bench_count} benches but ${json_count} BENCH_*.json files" >&2
  exit 1
fi
build/dev/tools/hublab validate-bench "${smoke_dir}"/BENCH_*.json
echo "bench-smoke: ${bench_count} benches, ${json_count} schema-valid JSON files"

stage "8/14 bench-compare vs committed baselines"
# Wall-clock thresholds are deliberately loose here (different machines,
# shared CI runners); structural metrics are seeded and should stay close.
compare_failures=0
for json in "${smoke_dir}"/BENCH_*.json; do
  baseline="bench/baselines/$(basename "${json}")"
  if [ ! -f "${baseline}" ]; then
    echo "bench-compare: missing ${baseline} (regenerate with: $(basename "${json%.json}" | sed 's/^BENCH_/bench_/') --smoke into bench/baselines/)" >&2
    compare_failures=$((compare_failures + 1))
    continue
  fi
  echo "--- bench-compare $(basename "${json}")"
  build/dev/tools/hublab bench-compare "${baseline}" "${json}" \
    --threshold 500 --structural-threshold 25 \
    || compare_failures=$((compare_failures + 1))
done
if [ "${compare_failures}" -ne 0 ]; then
  echo "bench-compare: ${compare_failures} bench(es) regressed or lacked a baseline" >&2
  exit 1
fi
echo "bench-compare: all benches within thresholds of bench/baselines/"

# The bit-parallel construction kernel must keep its win: the scalar-vs-bp
# phase of bench_pll_orderings records BP construction time as a percent of
# the scalar builder's, and the acceptance bar is <= 70%.
bp_pct="$(grep -o '"pract.bp_construct_pct_of_scalar": [0-9]*' \
  "${smoke_dir}/BENCH_pll_orderings.json" | grep -o '[0-9]*$')"
if [ -z "${bp_pct}" ]; then
  echo "bench-compare: pract.bp_construct_pct_of_scalar missing from BENCH_pll_orderings.json" >&2
  exit 1
fi
if [ "${bp_pct}" -gt 70 ]; then
  echo "bench-compare: bp construction at ${bp_pct}% of scalar (must be <= 70%)" >&2
  exit 1
fi
echo "bench-compare: bp construction at ${bp_pct}% of scalar (<= 70%)"

stage "9/14 bench trajectory (headline gauges -> bench/trajectory.jsonl)"
# Append this run's headline practicality gauges to the committed history
# so `git log -p bench/trajectory.jsonl` reads as a perf trajectory across
# revisions.  One line per git revision: re-running check.sh at the same
# HEAD refreshes the last point instead of duplicating it.
python3 - "${smoke_dir}" <<'PY'
import json, subprocess, sys, time

smoke_dir = sys.argv[1]

def gauges(name):
    with open(f"{smoke_dir}/{name}") as fh:
        return json.load(fh)["gauges"]

headline = {}
orderings = gauges("BENCH_pll_orderings.json")
headline["pract.bp_construct_pct_of_scalar"] = orderings["pract.bp_construct_pct_of_scalar"]
for key, value in sorted(gauges("BENCH_query_oracles.json").items()):
    if key.startswith(("pract.flat_query_pct_of_vector.",
                       "pract.batch_query_pct_of_scalar.")):
        headline[key] = value
assert any(k.startswith("pract.flat_query_pct_of_vector.") for k in headline), \
    "BENCH_query_oracles.json carries no pract.flat_query_pct_of_vector.* gauges"
assert any(k.startswith("pract.batch_query_pct_of_scalar.") for k in headline), \
    "BENCH_query_oracles.json carries no pract.batch_query_pct_of_scalar.* gauges"
for key, value in sorted(gauges("BENCH_serve_scaling.json").items()):
    if key.startswith(("pract.serve_peak_qps.", "pract.serve_p99_at_halfpeak_ns.")):
        headline[key] = value
assert any(k.startswith("pract.serve_peak_qps.") for k in headline), \
    "BENCH_serve_scaling.json carries no pract.serve_peak_qps.* gauges"

rev = subprocess.check_output(
    ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
entry = {"ts_unix_ms": int(time.time() * 1000), "git_rev": rev,
         "gauges": headline}

path = "bench/trajectory.jsonl"
try:
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
except FileNotFoundError:
    lines = []
if lines and json.loads(lines[-1]).get("git_rev") == rev:
    lines.pop()
lines.append(json.dumps(entry, sort_keys=True))
with open(path, "w") as fh:
    fh.write("\n".join(lines) + "\n")
print(f"trajectory: {len(lines)} point(s), latest {json.dumps(headline)}")
PY

stage "10/14 serve-sim smoke + SERVE_*.json schema validation"
(cd "${smoke_dir}" \
  && "${repo_root}/build/dev/tools/hublab" gen gadget-g --b 2 --l 1 -o serve_graph.txt > /dev/null \
  && "${repo_root}/build/dev/tools/hublab" serve-sim serve_graph.txt \
       --oracle pll --workload uniform --smoke --prom-out SERVE_pll.prom > /dev/null \
  && "${repo_root}/build/dev/tools/hublab" serve-sim serve_graph.txt \
       --oracle pll-flat --workload uniform --smoke --threads 4 \
       --json-out SERVE_pll_flat.json > /dev/null)
build/dev/tools/hublab validate-bench --quiet "${smoke_dir}"/SERVE_*.json
grep -q "hublab_serve_query_ns" "${smoke_dir}/SERVE_pll.prom"
grep -q "hublab_proc_peak_rss_bytes" "${smoke_dir}/SERVE_pll.prom"
grep -q '"threads": 4' "${smoke_dir}/SERVE_pll_flat.json"
echo "serve-sim: SERVE_*.json schema-valid, Prometheus dump has serve metrics"

stage "11/14 open-loop serve smoke (hublab serve, wall + virtual overload)"
# Two runs against the gadget graph from stage 10: a wall-clock run at a
# QPS the box trivially sustains (block admission: nothing is shed) and a
# virtual-time overload run offering 8x the simulated capacity against a
# small ring (shed admission: rejections are mandatory and deterministic).
(cd "${smoke_dir}" \
  && "${repo_root}/build/dev/tools/hublab" serve serve_graph.txt \
       --oracle pll-flat --workload uniform --smoke --workers 2 \
       --qps 20000 --admission block \
       --json-out SERVE_open_low.json > /dev/null \
  && "${repo_root}/build/dev/tools/hublab" serve serve_graph.txt \
       --oracle pll-flat --workload uniform --smoke --workers 2 \
       --timing virtual --virtual-service-ns 1000 --qps 16000000 \
       --ring 64 --admission shed \
       --json-out SERVE_open_overload.json > /dev/null)
build/dev/tools/hublab validate-bench --quiet \
  "${smoke_dir}/SERVE_open_low.json" "${smoke_dir}/SERVE_open_overload.json"
python3 - "${smoke_dir}" <<'PY'
import json, sys
smoke_dir = sys.argv[1]
with open(f"{smoke_dir}/SERVE_open_low.json") as fh:
    low = json.load(fh)
assert low["rejected"] == 0, f"low-QPS block run shed {low['rejected']} queries"
assert low["queries"] == low["offered"], (low["queries"], low["offered"])
with open(f"{smoke_dir}/SERVE_open_overload.json") as fh:
    over = json.load(fh)
assert over["rejected"] > 0, "virtual overload run shed nothing"
assert over["queries"] + over["rejected"] == over["offered"], \
    (over["queries"], over["rejected"], over["offered"])
print(f"serve-open: low rejected=0/{low['offered']}, "
      f"overload rejected={over['rejected']}/{over['offered']}")
PY
echo "serve-open: SERVE_open_*.json schema-valid, admission behaves at both extremes"

stage "12/14 perf-counters smoke + schema-v3 hw validation"
# The banner always states a verdict ("hardware ..." / "unavailable ...");
# hw blocks in the JSON are required only on hardware-capable hosts —
# containers and locked-down kernels degrade to the timer-only fallback.
perf_dir="${smoke_dir}/perf"
mkdir -p "${perf_dir}"
perf_log="${perf_dir}/bench_query_oracles.log"
(cd "${perf_dir}" \
  && "${repo_root}/build/dev/bench/bench_query_oracles" --smoke --perf-counters > "${perf_log}")
grep -q '^perf counters: ' "${perf_log}"
build/dev/tools/hublab validate-bench --quiet "${perf_dir}"/BENCH_*.json
if grep -q '^perf counters: hardware' "${perf_log}"; then
  if ! grep -q '"hw"' "${perf_dir}"/BENCH_*.json; then
    echo "perf-smoke: counters report hardware but no hw blocks in the JSON" >&2
    exit 1
  fi
  echo "perf-smoke: hardware counters live, per-phase hw blocks schema-valid"
else
  echo "perf-smoke: $(grep '^perf counters: ' "${perf_log}") -- hw blocks not required"
fi

stage "13/14 batch query kernel: tier banner, forced-scalar run, pct gate"
# The batched kernel's three-tier dispatch must (a) report which ISA tier
# it resolved, (b) degrade to the scalar tier under HUBLAB_FORCE_SCALAR=1
# with the identity checks still green, and (c) keep its win on the sparse
# family: batched block time <= 70% of the per-query scalar loop on
# gnm2000 (the road family's labels are small enough that batching is not
# gated there).
batch_dir="${smoke_dir}/batch"
mkdir -p "${batch_dir}"
batch_log="${batch_dir}/bench_query_oracles.log"
(cd "${batch_dir}" \
  && "${repo_root}/build/dev/bench/bench_query_oracles" --smoke > "${batch_log}")
grep -q '^batch kernel: tier=' "${batch_log}"
echo "batch-kernel: $(grep '^batch kernel: tier=' "${batch_log}")"
scalar_dir="${batch_dir}/forced-scalar"
mkdir -p "${scalar_dir}"
scalar_log="${scalar_dir}/bench_query_oracles.log"
(cd "${scalar_dir}" \
  && HUBLAB_FORCE_SCALAR=1 "${repo_root}/build/dev/bench/bench_query_oracles" \
       --smoke > "${scalar_log}")
grep -q '^batch kernel: tier=scalar$' "${scalar_log}"
echo "batch-kernel: forced-scalar run green (tier=scalar, identity checks passed)"
batch_pct="$(grep -o '"pract.batch_query_pct_of_scalar.gnm2000": [0-9]*' \
  "${batch_dir}/BENCH_query_oracles.json" | grep -o '[0-9]*$')"
if [ -z "${batch_pct}" ]; then
  echo "batch-kernel: pract.batch_query_pct_of_scalar.gnm2000 missing from BENCH_query_oracles.json" >&2
  exit 1
fi
if [ "${batch_pct}" -gt 70 ]; then
  echo "batch-kernel: batched queries at ${batch_pct}% of scalar on gnm2000 (must be <= 70%)" >&2
  exit 1
fi
echo "batch-kernel: batched queries at ${batch_pct}% of scalar on gnm2000 (<= 70%)"

stage "14/14 Werror build"
cmake --preset werror
cmake --build --preset werror -j "${jobs}"

stage "all stages passed"
