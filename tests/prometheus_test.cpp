// Strict line-grammar suite for the Prometheus/OpenMetrics text emitter
// (util/prometheus.cpp).  A small recursive-descent parser accepts exactly
// the grammar the emitter is specified to produce -- HELP/TYPE pairing,
// label syntax, exemplar suffixes, cumulative buckets -- and the tests run
// it over (a) a registry populated with every collector kind and (b) the
// file `hublab serve-sim --prom-out` actually writes, so a grammar
// regression in either layer fails here before any scrape does.

#include "util/prometheus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli.hpp"
#include "util/exemplar.hpp"
#include "util/metrics.hpp"
#include "util/qsketch.hpp"

namespace hublab::metrics {
namespace {

bool is_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!is_name_char(s[i], i == 0)) return false;
  }
  return true;
}

bool valid_number(const std::string& s) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  try {
    (void)std::stod(s, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == s.size();
}

struct Sample {
  std::string name;                         ///< full series name incl. suffix
  std::map<std::string, std::string> labels;
  std::string value;
  bool has_exemplar = false;
};

struct Family {
  std::string name;
  std::string kind;
  std::vector<Sample> samples;
};

/// Parse `key="value",...` between braces.  Returns false on any grammar
/// violation; `out` receives the pairs.
bool parse_labels(const std::string& body, std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eq = body.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string key = body.substr(pos, eq - pos);
    if (key.empty() || !is_name_char(key[0], true)) return false;
    for (std::size_t i = 1; i < key.size(); ++i) {
      if (!is_name_char(key[i], false) && !(key[i] >= '0' && key[i] <= '9')) return false;
    }
    if (eq + 1 >= body.size() || body[eq + 1] != '"') return false;
    const std::size_t close = body.find('"', eq + 2);
    if (close == std::string::npos) return false;
    const std::string value = body.substr(eq + 2, close - eq - 2);
    if (value.find('\\') != std::string::npos || value.find('\n') != std::string::npos) {
      return false;  // emitter never escapes, so never emits these
    }
    if (!out.emplace(key, value).second) return false;  // duplicate label
    pos = close + 1;
    if (pos < body.size()) {
      if (body[pos] != ',') return false;
      ++pos;
      if (pos == body.size()) return false;  // trailing comma
    }
  }
  return true;
}

/// Parse one sample line (`name[{labels}] value [# {labels} value]`).
bool parse_sample(const std::string& line, Sample& out) {
  std::size_t pos = 0;
  while (pos < line.size() && is_name_char(line[pos], pos == 0)) ++pos;
  out.name = line.substr(0, pos);
  if (!valid_metric_name(out.name)) return false;
  if (pos < line.size() && line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return false;
    if (!parse_labels(line.substr(pos + 1, close - pos - 1), out.labels)) return false;
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  ++pos;
  const std::size_t exemplar_at = line.find(" # ", pos);
  out.value = line.substr(pos, exemplar_at == std::string::npos ? std::string::npos
                                                                : exemplar_at - pos);
  if (!valid_number(out.value)) return false;
  if (exemplar_at != std::string::npos) {
    out.has_exemplar = true;
    // Exemplar grammar: `# {key="v",...} value`.
    std::size_t epos = exemplar_at + 3;
    if (epos >= line.size() || line[epos] != '{') return false;
    const std::size_t eclose = line.find('}', epos);
    if (eclose == std::string::npos) return false;
    std::map<std::string, std::string> exemplar_labels;
    if (!parse_labels(line.substr(epos + 1, eclose - epos - 1), exemplar_labels)) return false;
    if (exemplar_labels.empty()) return false;
    epos = eclose + 1;
    if (epos >= line.size() || line[epos] != ' ') return false;
    if (!valid_number(line.substr(epos + 1))) return false;
  }
  return true;
}

/// True when `series` belongs to family `base`: the name itself or one of
/// the sanctioned suffixes.
bool in_family(const std::string& series, const std::string& base) {
  if (series == base) return true;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    if (series == base + suffix) return true;
  }
  return false;
}

/// Parse a full exposition into `families`, failing the test (with the
/// offending line) on any grammar violation.  Out-parameter because
/// ASSERT_* requires a void-returning function.
void parse_exposition(const std::string& text, std::vector<Family>& families) {
  std::istringstream in(text);
  std::string line;
  bool expect_type = false;  // previous line was HELP
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    EXPECT_FALSE(line.empty()) << "blank line " << lineno;
    if (line.rfind("# HELP ", 0) == 0) {
      EXPECT_FALSE(expect_type) << "HELP not followed by TYPE, line " << lineno;
      const std::size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos) << line;
      Family fam;
      fam.name = line.substr(7, name_end - 7);
      EXPECT_TRUE(valid_metric_name(fam.name)) << line;
      EXPECT_LT(name_end + 1, line.size()) << "empty HELP text, line " << lineno;
      families.push_back(fam);
      expect_type = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_TRUE(expect_type) << "TYPE without immediately preceding HELP, line " << lineno;
      expect_type = false;
      ASSERT_FALSE(families.empty());
      Family& fam = families.back();
      const std::size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos) << line;
      EXPECT_EQ(line.substr(7, name_end - 7), fam.name)
          << "TYPE names a different family than its HELP, line " << lineno;
      fam.kind = line.substr(name_end + 1);
      EXPECT_TRUE(fam.kind == "counter" || fam.kind == "gauge" || fam.kind == "histogram" ||
                  fam.kind == "summary")
          << line;
      continue;
    }
    EXPECT_FALSE(expect_type) << "HELP not followed by TYPE, line " << lineno;
    Sample sample;
    ASSERT_TRUE(parse_sample(line, sample)) << "bad sample line " << lineno << ": " << line;
    ASSERT_FALSE(families.empty()) << "sample before any family, line " << lineno;
    Family& fam = families.back();
    EXPECT_TRUE(in_family(sample.name, fam.name))
        << "series `" << sample.name << "` outside family `" << fam.name << "`, line " << lineno;
    EXPECT_TRUE(!sample.has_exemplar ||
                (fam.kind == "histogram" && sample.name == fam.name + "_bucket"))
        << "exemplar outside a histogram bucket, line " << lineno;
    fam.samples.push_back(sample);
  }
  EXPECT_FALSE(expect_type) << "trailing HELP without TYPE";
}

/// Family-level invariants: unique names, no empty families, histogram
/// buckets cumulative with a final +Inf equal to _count.
void check_families(const std::vector<Family>& families) {
  std::map<std::string, int> seen;
  for (const Family& fam : families) {
    EXPECT_EQ(++seen[fam.name], 1) << "family emitted twice: " << fam.name;
    EXPECT_FALSE(fam.samples.empty()) << "family with no samples: " << fam.name;
    if (fam.kind != "histogram") continue;
    std::uint64_t last_cumulative = 0;
    double last_le = -1.0;
    bool saw_inf = false;
    std::uint64_t inf_value = 0;
    std::uint64_t count_value = 0;
    for (const Sample& s : fam.samples) {
      if (s.name == fam.name + "_count") {
        count_value = static_cast<std::uint64_t>(std::stod(s.value));
        continue;
      }
      if (s.name != fam.name + "_bucket") continue;
      const auto le = s.labels.find("le");
      ASSERT_NE(le, s.labels.end()) << "bucket without le label in " << fam.name;
      const std::uint64_t cumulative = static_cast<std::uint64_t>(std::stod(s.value));
      EXPECT_GE(cumulative, last_cumulative) << "non-cumulative buckets in " << fam.name;
      last_cumulative = cumulative;
      if (le->second == "+Inf") {
        saw_inf = true;
        inf_value = cumulative;
      } else {
        EXPECT_FALSE(saw_inf) << "+Inf bucket is not last in " << fam.name;
        const double bound = std::stod(le->second);
        EXPECT_GT(bound, last_le) << "le bounds not ascending in " << fam.name;
        last_le = bound;
      }
    }
    EXPECT_TRUE(saw_inf) << "histogram without +Inf bucket: " << fam.name;
    EXPECT_EQ(inf_value, count_value) << "+Inf bucket != _count in " << fam.name;
  }
}

TEST(PrometheusGrammar, EveryCollectorKindEmitsValidFamilies) {
  Registry& reg = registry();
  reg.reset();
  reg.counter("gram.hits").add(3);
  reg.gauge("gram.level").set(-7);
  reg.histogram("gram.sizes").record(1);
  reg.histogram("gram.sizes").record(100);
  QuantileSketch sketch;
  for (std::uint64_t i = 1; i <= 50; ++i) sketch.record(i);
  reg.sketch("gram.lat").merge(sketch);

  ExemplarReservoir reservoir(11, 2);
  for (std::uint64_t i = 0; i < 40; ++i) {
    Exemplar e;
    e.seq = i;
    e.s = static_cast<std::uint32_t>(i);
    e.t = static_cast<std::uint32_t>(i + 1);
    e.latency_ns = (i % 7) * 50 + 1;
    e.scan_cost = i;
    e.meeting_hub = static_cast<std::uint32_t>(i % 3);
    reservoir.offer(e);
  }
  ExemplarStore& store = reg.exemplar("gram.exemplars");
  store.configure(11, 2);
  store.merge(reservoir);
  HeavyHitter& hh = reg.heavy_hitter("gram.hot");
  hh.add(5, 100);
  hh.add(9, 40);

  std::ostringstream os;
  write_prometheus_text(reg, os);
  std::vector<Family> families;
  parse_exposition(os.str(), families);
  check_families(families);
  reg.reset();

  // With the registry compiled out the dump is empty: the parse/check
  // above still proves the writer emits a valid (vacuous) document, but
  // the per-family content below only exists with live collectors.
#if HUBLAB_METRICS_ENABLED
  std::map<std::string, std::string> kinds;
  for (const Family& fam : families) kinds[fam.name] = fam.kind;
  EXPECT_EQ(kinds["hublab_gram_hits"], "counter");
  EXPECT_EQ(kinds["hublab_gram_level"], "gauge");
  EXPECT_EQ(kinds["hublab_gram_sizes"], "histogram");
  EXPECT_EQ(kinds["hublab_gram_lat"], "summary");
  EXPECT_EQ(kinds["hublab_gram_exemplars"], "histogram");
  EXPECT_EQ(kinds["hublab_gram_hot"], "gauge");

  // The exemplar store must attach at least one exemplar suffix, and the
  // heavy hitter must carry the exact total series.
  bool any_exemplar = false;
  bool hh_total = false;
  for (const Family& fam : families) {
    for (const Sample& s : fam.samples) {
      if (fam.name == "hublab_gram_exemplars" && s.has_exemplar) any_exemplar = true;
      if (fam.name == "hublab_gram_hot") {
        const auto key = s.labels.find("key");
        ASSERT_NE(key, s.labels.end());
        if (key->second == "total") {
          hh_total = true;
          EXPECT_EQ(s.value, "140");
        }
      }
    }
  }
  EXPECT_TRUE(any_exemplar);
  EXPECT_TRUE(hh_total);
#endif  // HUBLAB_METRICS_ENABLED
}

TEST(PrometheusGrammar, ServeSimPromOutRoundTrips) {
  const std::string graph = testing::TempDir() + "/prom_rt_graph.txt";
  const std::string prom = testing::TempDir() + "/prom_rt_dump.txt";
  std::ostringstream out;
  ASSERT_EQ(cli::run({"gen", "gadget-g", "--b", "2", "--l", "1", "-o", graph}, out, out), 0)
      << out.str();
  ASSERT_EQ(cli::run({"serve-sim", graph, "--smoke", "--slow-query-ms", "0.0001",
                      "--window-ms", "5", "--json-out", testing::TempDir() + "/prom_rt.json",
                      "--prom-out", prom},
                     out, out),
            0)
      << out.str();

  std::ifstream in(prom);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<Family> families;
  parse_exposition(buf.str(), families);
  check_families(families);

#if HUBLAB_METRICS_ENABLED
  std::map<std::string, std::string> kinds;
  for (const Family& fam : families) kinds[fam.name] = fam.kind;
  EXPECT_EQ(kinds["hublab_serve_query_ns"], "summary");
  EXPECT_EQ(kinds["hublab_serve_query_exemplars"], "histogram");
  EXPECT_EQ(kinds["hublab_hub_scan_cost"], "gauge");
  EXPECT_EQ(kinds["hublab_serve_slow_queries"], "counter");
  EXPECT_EQ(kinds["hublab_serve_window_count"], "gauge");
#endif  // HUBLAB_METRICS_ENABLED
  std::remove(graph.c_str());
  std::remove(prom.c_str());
}

}  // namespace
}  // namespace hublab::metrics
