#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace hublab {

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (Vertex u = 0; u < num_vertices(); ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_arcs()) / static_cast<double>(num_vertices());
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto out = arcs(u);
  const auto it = std::lower_bound(out.begin(), out.end(), v,
                                   [](const Arc& a, Vertex t) { return a.to < t; });
  return it != out.end() && it->to == v;
}

Dist Graph::edge_weight(Vertex u, Vertex v) const {
  const auto out = arcs(u);
  const auto it = std::lower_bound(out.begin(), out.end(), v,
                                   [](const Arc& a, Vertex t) { return a.to < t; });
  if (it == out.end() || it->to != v) return kInfDist;
  return it->weight;
}

Weight Graph::max_weight() const {
  Weight best = 1;
  for (const Arc& a : arcs_) best = std::max(best, a.weight);
  return best;
}

void GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw InvalidArgument("edge endpoint out of range");
  }
  if (u == v) throw InvalidArgument("self-loops are not supported");
  edges_u_.push_back(u);
  edges_v_.push_back(v);
  edge_w_.push_back(weight);
}

Graph GraphBuilder::build() {
  Graph g;
  const std::size_t n = num_vertices_;
  const std::size_t m = edges_u_.size();

  // Counting sort arcs by source; each undirected edge yields two arcs.
  std::vector<std::size_t> counts(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++counts[edges_u_[e] + 1];
    ++counts[edges_v_[e] + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<Arc> arcs(2 * m);
  {
    std::vector<std::size_t> cursor = counts;
    for (std::size_t e = 0; e < m; ++e) {
      arcs[cursor[edges_u_[e]]++] = Arc{edges_v_[e], edge_w_[e]};
      arcs[cursor[edges_v_[e]]++] = Arc{edges_u_[e], edge_w_[e]};
    }
  }

  // Sort each adjacency list and collapse parallel edges to min weight.
  std::vector<std::size_t> new_offsets(n + 1, 0);
  std::size_t write = 0;
  for (Vertex u = 0; u < n; ++u) {
    const std::size_t lo = counts[u];
    const std::size_t hi = counts[u + 1];
    std::sort(arcs.begin() + static_cast<std::ptrdiff_t>(lo),
              arcs.begin() + static_cast<std::ptrdiff_t>(hi),
              [](const Arc& a, const Arc& b) {
                return a.to != b.to ? a.to < b.to : a.weight < b.weight;
              });
    new_offsets[u] = write;
    for (std::size_t i = lo; i < hi; ++i) {
      if (write > new_offsets[u] && arcs[write - 1].to == arcs[i].to) continue;  // dup: keep min
      arcs[write++] = arcs[i];
    }
  }
  new_offsets[n] = write;
  arcs.resize(write);
  arcs.shrink_to_fit();

  g.offsets_ = std::move(new_offsets);
  g.arcs_ = std::move(arcs);
  g.weighted_ =
      std::any_of(g.arcs_.begin(), g.arcs_.end(), [](const Arc& a) { return a.weight != 1; });

  edges_u_.clear();
  edges_v_.clear();
  edge_w_.clear();
  return g;
}

}  // namespace hublab
