#include "util/bench_compare.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace hublab {
namespace {

/// A minimal schema-v2 report with one slow phase, one fast phase, a
/// counter, a gauge, a histogram and a latency sketch — enough surface to
/// exercise every comparison section.
std::string fixture_json(double build_wall_s, double tiny_wall_s, double counter_value,
                         double sketch_p99) {
  std::ostringstream os;
  os << R"({
    "schema_version": 2,
    "bench": "fixture",
    "git_rev": "deadbeef",
    "smoke": true,
    "ok": true,
    "repetitions": 1,
    "start_unix_ms": 1754000000000,
    "peak_rss_bytes": 1048576,
    "graphs": [{"family": "gadget-g", "n": 100, "m": 400}],
    "phases": [
      {"name": "build", "wall_s": )"
     << build_wall_s << R"(, "depth": 0, "counters": {}},
      {"name": "tiny", "wall_s": )"
     << tiny_wall_s << R"(, "depth": 0, "counters": {}}
    ],
    "counters": {"pll.pruned": )"
     << counter_value << R"(},
    "gauges": {"labels.bytes": 4096},
    "histograms": {"label.size": {"count": 100, "sum": 1000, "min": 1, "max": 64,
                                  "p50": 8, "p90": 20, "p99": 60}},
    "sketches": {"query.ns": {"count": 500, "sum": 500000, "min": 100, "max": 9000,
                              "p50": 800, "p90": 2000, "p99": )"
     << sketch_p99 << R"(, "p999": 8000, "rank_error": 4}}
  })";
  return os.str();
}

JsonValue fixture(double build_wall_s = 0.5, double tiny_wall_s = 1e-5,
                  double counter_value = 1000, double sketch_p99 = 4000) {
  return parse_json(fixture_json(build_wall_s, tiny_wall_s, counter_value, sketch_p99));
}

/// JsonValue::find is const-only; tests that doctor a parsed fixture need a
/// writable handle.
JsonValue* mutable_member(JsonValue& obj, std::string_view name) {
  for (auto& [key, value] : obj.object_members) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(BenchCompare, IdenticalReportsHaveNoRegressions) {
  const CompareReport report = compare_bench_json(fixture(), fixture(), CompareOptions{});
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_regressions(), 0u);
  EXPECT_FALSE(report.rows.empty());
  for (const CompareRow& row : report.rows) EXPECT_EQ(row.base, row.next) << row.metric;
}

TEST(BenchCompare, DetectsInjectedTwoTimesSlowdown) {
  // The acceptance fixture: every wall-clock metric doubled must trip the
  // default 20% threshold.
  const JsonValue base = fixture(0.5, 1e-5, 1000, 4000);
  const JsonValue slow = fixture(1.0, 2e-5, 1000, 8000);
  const CompareReport report = compare_bench_json(base, slow, CompareOptions{});
  EXPECT_TRUE(report.errors.empty());
  EXPECT_FALSE(report.ok());
  bool build_regressed = false;
  bool total_regressed = false;
  bool p99_regressed = false;
  bool tiny_regressed = false;
  for (const CompareRow& row : report.rows) {
    if (row.metric == "phase.build.wall_s") build_regressed = row.regressed;
    if (row.metric == "total.wall_s") total_regressed = row.regressed;
    if (row.metric == "sketch.query.ns.p99") p99_regressed = row.regressed;
    if (row.metric == "phase.tiny.wall_s") tiny_regressed = row.regressed;
  }
  EXPECT_TRUE(build_regressed);
  EXPECT_TRUE(total_regressed);
  EXPECT_TRUE(p99_regressed);
  // Phases under min_wall_s never gate, even when doubled: too noisy.
  EXPECT_FALSE(tiny_regressed);
}

TEST(BenchCompare, ImprovementsNeverRegress) {
  const CompareReport report =
      compare_bench_json(fixture(0.5, 1e-5, 1000, 4000), fixture(0.1, 1e-5, 200, 500),
                         CompareOptions{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_regressions(), 0u);
}

TEST(BenchCompare, StructuralCountersUseTighterThreshold) {
  // +10% on a counter is under the 20% wall threshold but over the 5%
  // structural one.
  const CompareReport report =
      compare_bench_json(fixture(0.5, 1e-5, 1000, 4000), fixture(0.5, 1e-5, 1100, 4000),
                         CompareOptions{});
  EXPECT_EQ(report.num_regressions(), 1u);
  for (const CompareRow& row : report.rows) {
    if (row.metric == "counter.pll.pruned") {
      EXPECT_TRUE(row.regressed);
      EXPECT_NEAR(row.delta_pct, 10.0, 1e-9);
    }
  }
}

/// A fixture whose gauges span the three direction classes: a throughput
/// (`_qps` segment), a latency (`_ns` segment) and a structural size.
JsonValue gauge_fixture(double peak_qps, double p99_ns, double bytes) {
  JsonValue doc = fixture();
  std::ostringstream os;
  os << R"({"pract.serve_peak_qps.flat": )" << peak_qps
     << R"(, "pract.serve_p99_at_halfpeak_ns.flat": )" << p99_ns
     << R"(, "labels.bytes": )" << bytes << "}";
  *mutable_member(doc, "gauges") = parse_json(os.str());
  return doc;
}

TEST(BenchCompare, ThroughputGaugesGateDecreasesOnly) {
  // A qps gauge doubling is an improvement; the increase-bad rule must not
  // fire on it, and a drop past the threshold factor must.
  const JsonValue base = gauge_fixture(1000, 5000, 4096);
  const CompareReport faster =
      compare_bench_json(base, gauge_fixture(2000, 5000, 4096), CompareOptions{});
  EXPECT_TRUE(faster.ok()) << "a throughput increase regressed";
  // Default threshold 20%: the symmetric bound gates next < base / 1.2.
  const CompareReport small_drop =
      compare_bench_json(base, gauge_fixture(900, 5000, 4096), CompareOptions{});
  EXPECT_TRUE(small_drop.ok());
  const CompareReport big_drop =
      compare_bench_json(base, gauge_fixture(800, 5000, 4096), CompareOptions{});
  EXPECT_EQ(big_drop.num_regressions(), 1u);
  for (const CompareRow& row : big_drop.rows) {
    if (row.metric == "gauge.pract.serve_peak_qps.flat") {
      EXPECT_TRUE(row.regressed);
    }
  }
}

TEST(BenchCompare, LatencyGaugesUseWallThresholdNotStructural) {
  // +30% on an `_ns` gauge: over the 5% structural threshold but under the
  // 20-times-looser wall threshold it actually gates through.
  const JsonValue base = gauge_fixture(1000, 5000, 4096);
  CompareOptions options;
  options.threshold_pct = 50.0;
  const CompareReport noisy =
      compare_bench_json(base, gauge_fixture(1000, 6500, 4096), options);
  EXPECT_TRUE(noisy.ok()) << "+30% latency gauge regressed at a 50% threshold";
  const CompareReport slow =
      compare_bench_json(base, gauge_fixture(1000, 9000, 4096), options);
  EXPECT_EQ(slow.num_regressions(), 1u);
  // Latency dropping is an improvement, never a regression.
  const CompareReport fast =
      compare_bench_json(base, gauge_fixture(1000, 100, 4096), options);
  EXPECT_TRUE(fast.ok());
}

TEST(BenchCompare, StructuralGaugesKeepTheTighterThreshold) {
  // +10% on a plain gauge: under the wall threshold, over the structural.
  const CompareReport report = compare_bench_json(
      gauge_fixture(1000, 5000, 4096), gauge_fixture(1000, 5000, 4506), CompareOptions{});
  EXPECT_EQ(report.num_regressions(), 1u);
  for (const CompareRow& row : report.rows) {
    if (row.metric == "gauge.labels.bytes") {
      EXPECT_TRUE(row.regressed);
    }
  }
}

TEST(BenchCompare, ThresholdIsConfigurable) {
  CompareOptions loose;
  loose.threshold_pct = 150.0;
  loose.structural_threshold_pct = 150.0;
  const CompareReport report =
      compare_bench_json(fixture(0.5, 1e-5, 1000, 4000), fixture(1.0, 2e-5, 1000, 8000), loose);
  EXPECT_TRUE(report.ok()) << "2x slowdown must pass a 150% threshold";
}

TEST(BenchCompare, DroppedAndNewMetricsAreInformational) {
  const JsonValue base = fixture();
  JsonValue next = fixture();
  // Rename the counter: old name drops out, new name appears.
  JsonValue* counters = mutable_member(next, "counters");
  ASSERT_NE(counters, nullptr);
  counters->object_members[0].first = "pll.visited";
  const CompareReport report = compare_bench_json(base, next, CompareOptions{});
  EXPECT_TRUE(report.ok()) << "renames must not hard-fail old baselines";
  bool saw_dropped = false;
  bool saw_new = false;
  for (const CompareRow& row : report.rows) {
    saw_dropped = saw_dropped || row.metric == "counter.pll.pruned [dropped]";
    saw_new = saw_new || row.metric == "counter.pll.visited [new]";
  }
  EXPECT_TRUE(saw_dropped);
  EXPECT_TRUE(saw_new);
}

TEST(BenchCompare, SchemaViolationsSuppressRowDiff) {
  JsonValue bad = fixture();
  JsonValue* version = mutable_member(bad, "schema_version");
  ASSERT_NE(version, nullptr);
  version->number_value = 99;
  const CompareReport report = compare_bench_json(fixture(), bad, CompareOptions{});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.errors.empty());
  EXPECT_TRUE(report.rows.empty());
  EXPECT_NE(report.errors.front().find("new: "), std::string::npos);
}

TEST(BenchCompare, TableListsRegressionsAndTrailer) {
  const CompareReport report =
      compare_bench_json(fixture(0.5, 1e-5, 1000, 4000), fixture(1.2, 1e-5, 1000, 4000),
                         CompareOptions{});
  std::ostringstream os;
  write_compare_table(os, report, /*all_rows=*/false);
  const std::string out = os.str();
  EXPECT_NE(out.find("phase.build.wall_s"), std::string::npos);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);
  EXPECT_NE(out.find("regression(s)"), std::string::npos);
  // Unchanged rows stay hidden without --all.
  EXPECT_EQ(out.find("gauge.labels.bytes"), std::string::npos);

  std::ostringstream all;
  write_compare_table(all, report, /*all_rows=*/true);
  EXPECT_NE(all.str().find("gauge.labels.bytes"), std::string::npos);
}

TEST(BenchCompare, TablePrintsErrorsForInvalidInput) {
  CompareReport report;
  report.errors.push_back("base: bench: missing");
  std::ostringstream os;
  write_compare_table(os, report);
  EXPECT_NE(os.str().find("error: base: bench: missing"), std::string::npos);
}

}  // namespace
}  // namespace hublab
