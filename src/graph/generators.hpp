#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

/// \file generators.hpp
/// Synthetic graph families used by tests and benchmarks.
///
/// The paper's claims concern *sparse* graphs (m = O(n)), often with bounded
/// maximum degree; the generators here produce exactly those families, plus
/// the structured instances (grids, trees) used as sanity workloads.

namespace hublab::gen {

/// Simple path v0 - v1 - ... - v_{n-1}.
Graph path(std::size_t n);

/// Cycle on n >= 3 vertices.
Graph cycle(std::size_t n);

/// Complete graph K_n (dense; only for small validation instances).
Graph complete(std::size_t n);

/// Star with one center and n-1 leaves.
Graph star(std::size_t n);

/// rows x cols 4-neighbor grid; a stand-in for road-like planar networks.
Graph grid(std::size_t rows, std::size_t cols);

/// Complete binary tree with n vertices (heap numbering).
Graph binary_tree(std::size_t n);

/// Uniform random labeled tree via Pruefer-like attachment: vertex i >= 1
/// attaches to a uniform random earlier vertex.  Always connected, n-1 edges.
Graph random_tree(std::size_t n, Rng& rng);

/// Erdos-Renyi G(n, m): m distinct uniform random edges.  With m = c*n this
/// is the canonical "sparse graph" of the paper.  Not necessarily connected.
Graph gnm(std::size_t n, std::size_t m, Rng& rng);

/// Connected sparse graph: random spanning tree plus (m - n + 1) extra
/// uniform random edges.
Graph connected_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Random d-regular graph via the pairing model with retries; rejects
/// self-loops/multi-edges.  Requires n*d even and d < n.
Graph random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Preferential-attachment (Barabasi-Albert) graph: each new vertex attaches
/// k edges to existing vertices sampled by degree.  Sparse with heavy-tailed
/// degrees -- exercises the "large degree vertices in sparse graphs" caveat
/// the paper mentions for the [ADKP16] construction.
Graph barabasi_albert(std::size_t n, std::size_t k, Rng& rng);

/// Road-network-like instance: grid with random diagonal shortcuts and
/// random integer weights in [1, max_weight].  Used by the oracle benches.
Graph road_like(std::size_t rows, std::size_t cols, double shortcut_prob, Weight max_weight,
                Rng& rng);

/// Assign uniform random integer weights in [1, max_weight] to a graph's
/// edges (rebuilds the graph; deterministic given rng state).
Graph randomize_weights(const Graph& g, Weight max_weight, Rng& rng);

}  // namespace hublab::gen
