#pragma once

#include <cstdint>

/// \file resource.hpp
/// Process-level resource observations for the run reports: peak resident
/// set size and wall-clock (epoch) time.  Everything else in the
/// observability layer measures monotonic durations; these two are the
/// only places a report touches the OS, kept together so the platform
/// `#if`s live in one file.

namespace hublab {

/// Peak resident set size of this process in bytes (`getrusage`); 0 on
/// platforms without the interface.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Milliseconds since the Unix epoch (system clock — NOT monotonic; for
/// report timestamps only, never for measuring durations).
[[nodiscard]] std::uint64_t unix_time_ms();

}  // namespace hublab
