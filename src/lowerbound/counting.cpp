#include "lowerbound/counting.hpp"

#include "util/error.hpp"

namespace hublab::lb {

CountingFamily::CountingFamily(std::size_t k) : k_(k) {
  if (k < 2) throw InvalidArgument("CountingFamily needs k >= 2 terminals");
  if (k > 2000) throw InvalidArgument("CountingFamily: k too large");
}

std::size_t CountingFamily::num_vertices() const {
  // k terminals + per pair: 2 vertices on the always-present length-3 path
  // and 1 vertex for the optional length-2 path (always allocated so that
  // vertex ids are stable across the family; unused ones stay isolated).
  return k_ + num_bits() * 3;
}

Vertex CountingFamily::terminal(std::size_t i) const {
  HUBLAB_ASSERT(i < k_);
  return static_cast<Vertex>(i);
}

std::size_t CountingFamily::bit_index(std::size_t i, std::size_t j) const {
  HUBLAB_ASSERT(i < j && j < k_);
  // Pairs in lexicographic order: offset of row i plus (j - i - 1).
  return i * k_ - i * (i + 1) / 2 + (j - i - 1);
}

Graph CountingFamily::instance(const std::vector<std::uint8_t>& bits) const {
  if (bits.size() != num_bits()) throw InvalidArgument("CountingFamily: wrong bit count");
  GraphBuilder b(num_vertices());
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = i + 1; j < k_; ++j) {
      const std::size_t bit = bit_index(i, j);
      const auto base = static_cast<Vertex>(k_ + bit * 3);
      // Length-3 backbone: t_i - base - base+1 - t_j (always present).
      b.add_edge(terminal(i), base);
      b.add_edge(base, static_cast<Vertex>(base + 1));
      b.add_edge(static_cast<Vertex>(base + 1), terminal(j));
      // Optional length-2 shortcut through base+2.
      if (bits[bit] != 0) {
        b.add_edge(terminal(i), static_cast<Vertex>(base + 2));
        b.add_edge(static_cast<Vertex>(base + 2), terminal(j));
      }
    }
  }
  return b.build();
}

int CountingFamily::decode_bit(Dist terminal_distance) {
  if (terminal_distance == 2) return 1;
  if (terminal_distance == 3) return 0;
  return -1;  // not a valid family distance
}

}  // namespace hublab::lb
