#include "util/flightrec.hpp"

#include <atomic>
#include <new>
#include <ostream>

#include "util/parallel.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace hublab::fr {

namespace {

/// One thread's ring.  Single writer (the owning thread); the crash
/// handler is the only concurrent reader, synchronized through the
/// release-store of `head`.  The event being overwritten while a dump
/// reads it can tear, which a post-mortem format tolerates by design.
struct ThreadRing {
  std::atomic<std::uint64_t> head{0};  ///< total events ever recorded here
  std::uint64_t worker = 0;            ///< par::worker_index() at registration
  ThreadRing* next = nullptr;
  Event events[kEventsPerThread];
};

std::atomic<ThreadRing*> g_rings{nullptr};
std::atomic<std::uint64_t> g_total{0};
std::atomic<std::uint64_t> g_epoch_ns{0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumping{false};
char g_path[512] = {};

thread_local ThreadRing* t_ring = nullptr;

/// Register the calling thread's ring (lock-free list push).  Nodes are
/// deliberately never freed: the crash handler must be able to walk the
/// list at any time, and the leak is bounded by the thread count.
ThreadRing* ring_for_this_thread() noexcept {
  if (t_ring != nullptr) return t_ring;
  auto* ring = new (std::nothrow) ThreadRing;
  if (ring == nullptr) return nullptr;  // OOM: drop the event, not the process
  ring->worker = static_cast<std::uint64_t>(par::worker_index());
  ThreadRing* list = g_rings.load(std::memory_order_acquire);
  do {
    ring->next = list;
  } while (!g_rings.compare_exchange_weak(list, ring, std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  t_ring = ring;
  return ring;
}

std::uint64_t epoch_ns() noexcept {
  std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) {
    std::uint64_t expected = 0;
    const std::uint64_t now = monotonic_ns() | 1;  // never 0
    g_epoch_ns.compare_exchange_strong(expected, now, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
    epoch = g_epoch_ns.load(std::memory_order_relaxed);
  }
  return epoch;
}

#if defined(__unix__) || defined(__APPLE__)

void write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = write(fd, data + done, len - done);
    if (n <= 0) return;  // nothing useful to do on a crash path
    done += static_cast<std::size_t>(n);
  }
}

#endif

/// Shared dump body over a minimal sink (fd for the signal path, ostream
/// for tests/tooling).  Only `str`/`num` calls; no allocation.
struct FdSink {
#if defined(__unix__) || defined(__APPLE__)
  int fd;
  void str(const char* s) noexcept {
    std::size_t len = 0;
    while (s[len] != '\0') ++len;
    write_all(fd, s, len);
  }
  void num(std::uint64_t v) noexcept {
    char buf[24];
    const std::size_t n = format_u64(buf, sizeof buf, v);
    write_all(fd, buf, n);
  }
#else
  int fd;
  void str(const char*) noexcept {}
  void num(std::uint64_t) noexcept {}
#endif
};

struct StreamSink {
  std::ostream& out;
  void str(const char* s) { out << s; }
  void num(std::uint64_t v) { out << v; }
};

template <typename Sink>
void dump_impl(Sink& sink, int signal_number) {
  sink.str("hublab-flightrec v1\nsignal ");
  if (signal_number < 0) {
    sink.str("-1");
  } else {
    sink.num(static_cast<std::uint64_t>(signal_number));
  }
  sink.str("\n");
  std::uint64_t index = 0;
  for (ThreadRing* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    const std::uint64_t recorded = r->head.load(std::memory_order_acquire);
    const std::uint64_t count = recorded < kEventsPerThread ? recorded : kEventsPerThread;
    sink.str("thread ");
    sink.num(index);
    sink.str(" worker ");
    sink.num(r->worker);
    sink.str(" recorded ");
    sink.num(recorded);
    sink.str(" dropped ");
    sink.num(recorded - count);
    sink.str("\n");
    for (std::uint64_t i = recorded - count; i < recorded; ++i) {
      const Event& e = r->events[i % kEventsPerThread];
      sink.str("  ");
      sink.num(e.t_ns);
      sink.str(" ");
      sink.str(event_kind_name(e.kind));
      sink.str(" ");
      sink.num(e.arg);
      sink.str(" ");
      sink.str(e.text);
      sink.str("\n");
    }
    ++index;
  }
  sink.str("end\n");
}

#if defined(__unix__) || defined(__APPLE__)

void crash_handler(int sig) {
  bool expected = false;
  if (g_dumping.compare_exchange_strong(expected, true, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    const int fd = open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_to_fd(fd, sig);
      close(fd);
      FdSink err{2};
      err.str("hublab: flight recorder dump written to ");
      err.str(g_path);
      err.str("\n");
    }
  }
  // SA_RESETHAND restored the default disposition; die with the original
  // signal so exit statuses and core dumps are unchanged.
  raise(sig);
}

#endif

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSpanBegin: return "span-begin";
    case EventKind::kSpanEnd: return "span-end";
    case EventKind::kLog: return "log";
    case EventKind::kNote: return "note";
    case EventKind::kAssert: return "assert";
  }
  return "note";
}

void record(EventKind kind, const char* text, std::uint64_t arg) noexcept {
  ThreadRing* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  const std::uint64_t epoch = epoch_ns();
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  Event& e = ring->events[h % kEventsPerThread];
  e.t_ns = monotonic_ns() - epoch;
  e.arg = arg;
  e.kind = kind;
  std::size_t n = 0;
  if (text != nullptr) {
    for (; n < kEventTextMax && text[n] != '\0'; ++n) e.text[n] = text[n];
  }
  e.text[n] = '\0';
  ring->head.store(h + 1, std::memory_order_release);
  g_total.fetch_add(1, std::memory_order_relaxed);
}

void install_crash_handler(const char* path) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    return;  // first caller's path wins
  }
  const char* src = path != nullptr ? path : kDefaultDumpPath;
  std::size_t n = 0;
  for (; n + 1 < sizeof g_path && src[n] != '\0'; ++n) g_path[n] = src[n];
  g_path[n] = '\0';

  struct sigaction sa = {};
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(sig, &sa, nullptr);
  }
#else
  (void)path;
#endif
}

bool crash_handler_installed() noexcept {
  return g_installed.load(std::memory_order_acquire);
}

const char* dump_path() noexcept { return g_path; }

std::uint64_t events_recorded() noexcept { return g_total.load(std::memory_order_relaxed); }

void dump_to_fd(int fd, int signal_number) noexcept {
  FdSink sink{fd};
  dump_impl(sink, signal_number);
}

void dump(std::ostream& out) {
  StreamSink sink{out};
  dump_impl(sink, -1);
}

std::size_t format_u64(char* buf, std::size_t cap, std::uint64_t value) noexcept {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n] = static_cast<char>('0' + (value % 10));
    ++n;
    value /= 10;
  } while (value != 0);
  if (n > cap) return 0;
  for (std::size_t i = 0; i < n; ++i) buf[i] = digits[n - 1 - i];
  return n;
}

/// Flight-recorder hook for HUBLAB_ASSERT (declared in util/assert.hpp so
/// the assert header needs no extra include).
void note_assert_fail(const char* expr, const char* file, int line) noexcept {
  (void)file;  // the surrounding span events locate the failure
  record(EventKind::kAssert, expr, static_cast<std::uint64_t>(line));
}

}  // namespace hublab::fr
