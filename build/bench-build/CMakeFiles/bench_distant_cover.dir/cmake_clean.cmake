file(REMOVE_RECURSE
  "../bench/bench_distant_cover"
  "../bench/bench_distant_cover.pdb"
  "CMakeFiles/bench_distant_cover.dir/bench_distant_cover.cpp.o"
  "CMakeFiles/bench_distant_cover.dir/bench_distant_cover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distant_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
