/// \file bench_query_oracles.cpp
/// Experiment PRACT (DESIGN.md): "hub labeling in practice" (Section 1.1 of
/// the paper) -- microbenchmarks of exact distance-query strategies on
/// road-like and random sparse graphs, using google-benchmark.
///
/// Expected shape: hub-label queries are orders of magnitude faster than
/// Dijkstra-style searches, at the cost of preprocessed space -- the
/// tradeoff the paper's oracle discussion formalizes.

#include <benchmark/benchmark.h>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "oracle/oracle.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

struct Workload {
  Graph graph;
  HubLabeling labels;
  std::vector<std::pair<Vertex, Vertex>> queries;
};

const Workload& road_workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(1);
    wl.graph = gen::road_like(40, 40, 0.15, 10, rng);
    wl.labels = pruned_landmark_labeling(wl.graph);
    Rng pick(2);
    for (int i = 0; i < 1024; ++i) {
      wl.queries.emplace_back(static_cast<Vertex>(pick.next_below(wl.graph.num_vertices())),
                              static_cast<Vertex>(pick.next_below(wl.graph.num_vertices())));
    }
    return wl;
  }();
  return w;
}

const Workload& sparse_workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(3);
    wl.graph = gen::connected_gnm(2000, 4000, rng);
    wl.labels = pruned_landmark_labeling(wl.graph);
    Rng pick(4);
    for (int i = 0; i < 1024; ++i) {
      wl.queries.emplace_back(static_cast<Vertex>(pick.next_below(wl.graph.num_vertices())),
                              static_cast<Vertex>(pick.next_below(wl.graph.num_vertices())));
    }
    return wl;
  }();
  return w;
}

void bm_hub_query(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & 1023];
    benchmark::DoNotOptimize(w.labels.query(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_bidirectional(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & 1023];
    benchmark::DoNotOptimize(bidirectional_distance(w.graph, u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_full_sssp(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & 1023];
    benchmark::DoNotOptimize(sssp_distances(w.graph, u)[v]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_pll_construction(benchmark::State& state) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(2 * state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruned_landmark_labeling(g));
  }
}

BENCHMARK_CAPTURE(bm_hub_query, road40x40, road_workload());
BENCHMARK_CAPTURE(bm_bidirectional, road40x40, road_workload());
BENCHMARK_CAPTURE(bm_full_sssp, road40x40, road_workload())->Iterations(200);
BENCHMARK_CAPTURE(bm_hub_query, gnm2000, sparse_workload());
BENCHMARK_CAPTURE(bm_bidirectional, gnm2000, sparse_workload());
BENCHMARK_CAPTURE(bm_full_sssp, gnm2000, sparse_workload())->Iterations(200);
BENCHMARK(bm_pll_construction)->Arg(250)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hublab

BENCHMARK_MAIN();
