/// \file main.cpp
/// Entry point of the `hublab` command-line tool (see cli.hpp).

#include <iostream>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hublab::cli::run(args, std::cout, std::cerr);
}
