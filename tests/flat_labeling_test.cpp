#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

/// Every pair must query identically through the vector and the flat
/// representation — distance *and* meeting hub (the merge visits common
/// hubs in the same ascending order, so ties break the same way).
void expect_query_equivalence(const Graph& g, const HubLabeling& labels) {
  const FlatHubLabeling flat(labels);
  ASSERT_EQ(flat.num_vertices(), labels.num_vertices());
  EXPECT_EQ(flat.total_hubs(), labels.total_hubs());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const HubQueryResult a = labels.query_with_hub(u, v);
      const HubQueryResult b = flat.query_with_hub(u, v);
      ASSERT_EQ(a.dist, b.dist) << "query(" << u << "," << v << ")";
      ASSERT_EQ(a.meeting_hub, b.meeting_hub) << "hub(" << u << "," << v << ")";
    }
  }
}

TEST(FlatHubLabeling, MatchesVectorQueriesOnPllLabeling) {
  Rng rng(21);
  const Graph g = gen::connected_gnm(60, 120, rng);
  expect_query_equivalence(g, pruned_landmark_labeling(g));
}

TEST(FlatHubLabeling, MatchesVectorQueriesOnGrid) {
  const Graph g = gen::grid(6, 6);
  expect_query_equivalence(g, pruned_landmark_labeling(g));
}

TEST(FlatHubLabeling, HandlesDisconnectedPairs) {
  // Two components: cross-component queries must stay kInfDist through the
  // sentinel-terminated merge.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const HubLabeling labels = pruned_landmark_labeling(g);
  const FlatHubLabeling flat(labels);
  EXPECT_EQ(flat.query(0, 5), kInfDist);
  EXPECT_EQ(flat.query_with_hub(2, 3).meeting_hub, kInvalidVertex);
  EXPECT_EQ(flat.query(0, 2), 2u);
  EXPECT_EQ(flat.query(3, 5), 2u);
}

TEST(FlatHubLabeling, PerVertexSpansMatchSource) {
  Rng rng(22);
  const Graph g = gen::connected_gnm(30, 60, rng);
  const HubLabeling labels = pruned_landmark_labeling(g);
  const FlatHubLabeling flat(labels);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto src = labels.label(v);
    const auto hubs = flat.hubs(v);
    const auto dists = flat.dists(v);
    ASSERT_EQ(flat.label_size(v), src.size());
    ASSERT_EQ(hubs.size(), src.size());
    ASSERT_EQ(dists.size(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(hubs[i], src[i].hub);
      EXPECT_EQ(dists[i], src[i].dist);
      if (i > 0) {
        EXPECT_LT(hubs[i - 1], hubs[i]);  // ascending, deduplicated
      }
    }
  }
}

TEST(FlatHubLabeling, EmptyLabelsQueryInfinite) {
  HubLabeling empty(4);
  empty.finalize();
  const FlatHubLabeling flat(empty);
  EXPECT_EQ(flat.num_vertices(), 4u);
  EXPECT_EQ(flat.total_hubs(), 0u);
  EXPECT_EQ(flat.label_size(2), 0u);
  EXPECT_EQ(flat.query(0, 3), kInfDist);
}

TEST(FlatHubLabeling, DefaultConstructedIsEmpty) {
  const FlatHubLabeling flat;
  EXPECT_EQ(flat.num_vertices(), 0u);
  EXPECT_EQ(flat.total_hubs(), 0u);
}

TEST(FlatHubLabeling, MemoryBytesCoversArrays) {
  Rng rng(23);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const HubLabeling labels = pruned_landmark_labeling(g);
  const FlatHubLabeling flat(labels);
  // Lower bound: the exact payload of the three arrays (offsets n+1, one
  // sentinel per vertex after each label).
  const std::size_t n = g.num_vertices();
  const std::size_t slots = labels.total_hubs() + n;
  const std::size_t floor_bytes =
      (n + 1) * sizeof(std::size_t) + slots * (sizeof(Vertex) + sizeof(Dist));
  EXPECT_GE(flat.memory_bytes(), floor_bytes);
  // The SoA layout never pays the per-vertex vector headers, so for any
  // real labeling it undercuts the vector-of-vectors heap footprint.
  EXPECT_LT(flat.memory_bytes(), labels.memory_bytes());
}

}  // namespace
}  // namespace hublab
