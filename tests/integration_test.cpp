#include <gtest/gtest.h>

#include <memory>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "hub/constructions.hpp"
#include "hub/pll.hpp"
#include "hub/upperbound.hpp"
#include "labeling/distance_labeling.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/oracle.hpp"
#include "rs/rs_graph.hpp"
#include "sumindex/sumindex.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

/// End-to-end: road-like network -> PLL oracle -> agrees with Dijkstra.
TEST(Integration, RoadNetworkOracle) {
  Rng rng(1);
  const Graph g = gen::road_like(12, 12, 0.2, 9, rng);
  const HubLabelOracle oracle(g, pruned_landmark_labeling(g));
  Rng pick(2);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<Vertex>(pick.next_below(g.num_vertices()));
    const auto v = static_cast<Vertex>(pick.next_below(g.num_vertices()));
    EXPECT_EQ(oracle.distance(u, v), bidirectional_distance(g, u, v));
  }
}

/// End-to-end lower-bound workflow: gadget -> PLL -> measured average
/// exceeds the certified counting bound (Theorem 2.1 (iii) on H).
TEST(Integration, GadgetCertifiedBoundRespected) {
  for (const lb::GadgetParams p : {lb::GadgetParams{2, 1}, lb::GadgetParams{2, 2},
                                   lb::GadgetParams{3, 1}}) {
    const lb::LayeredGadget h(p);
    const HubLabeling pll = pruned_landmark_labeling(h.graph());
    const auto truth = DistanceMatrix::compute(h.graph());
    EXPECT_FALSE(verify_labeling(h.graph(), pll, truth).has_value());
    const Dist hop_diam = diameter_exact(unweighted_copy(h.graph()));
    EXPECT_LE(hop_diam, p.hop_diameter_bound());
    const double bound =
        lb::certified_avg_hub_lower_bound(p.num_triplets(), p.num_h_vertices(), hop_diam);
    EXPECT_GE(pll.average_label_size(), bound);
  }
}

/// The Theorem 1.4 pipeline end to end on a sparse graph, compared to PLL.
TEST(Integration, SparsePipelineVsPll) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(60, 180, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling ub = upper_bound_labeling_sparse(g, 3, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  EXPECT_FALSE(verify_labeling(g, ub, truth).has_value());
  EXPECT_FALSE(verify_labeling(g, pll, truth).has_value());
  // Both exact; PLL is the practical yardstick and should not be worse.
  EXPECT_LE(pll.average_label_size(), ub.average_label_size() * 10 + 10);
}

/// Sum-Index protocol driven by the degree-3 gadget distance labels,
/// wired through the full stack (gadget -> PLL -> bit encoding -> referee).
TEST(Integration, SumIndexThroughDegree3Gadget) {
  const auto scheme = std::make_shared<HubDistanceLabeling>(&pll_natural, "pll");
  const si::GadgetProtocol protocol(lb::GadgetParams{2, 2}, scheme, /*use_degree3=*/false);
  const si::ProtocolStats stats = si::evaluate_protocol(protocol, 40, 9, 10);
  EXPECT_TRUE(stats.all_correct());
}

/// The monotone closure of any exact labeling of the gadget must pay for
/// all counting triplets (the heart of the Theorem 1.1 proof).
TEST(Integration, ClosureChargesAllTriplets) {
  const lb::GadgetParams p{2, 2};
  const lb::LayeredGadget h(p);
  const auto truth = DistanceMatrix::compute(h.graph());
  // Use two very different exact labelings.
  const HubLabeling pll = pruned_landmark_labeling(h.graph());
  Rng rng(4);
  DistantCoverStats unused;
  const HubLabeling rdc = random_distant_cover(h.graph(), truth, 4, rng, &unused);
  for (const HubLabeling* l : {&pll, &rdc}) {
    const lb::ClosureAudit audit = lb::audit_closure_bound(h.graph(), *l, p.num_triplets());
    EXPECT_TRUE(audit.ok());
  }
}

/// RS machinery feeding the hub upper bound story: the per-color matchings
/// extracted by the pipeline form valid induced matchings (Lemma 4.2), and
/// standalone RS graphs verify end to end.
TEST(Integration, RsGraphAndLemma42) {
  const rs::RsGraph rsg = rs::behrend_rs_graph(50);
  EXPECT_TRUE(is_valid_induced_partition(rsg.graph, rsg.partition));

  Rng rng(5);
  const Graph g = gen::random_regular(40, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_TRUE(verify_lemma_4_2(g, truth, 3, rng));
}

/// Degree reduction plus PLL: distances on the reduced graph projected back.
TEST(Integration, DegreeReductionPreservesPllAnswers) {
  Rng rng(6);
  const Graph g = gen::barabasi_albert(70, 3, rng);
  const DegreeReduction red = reduce_degree(g, 3);
  const HubLabeling pll_red = pruned_landmark_labeling(red.graph);
  const auto truth = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < g.num_vertices(); u += 5) {
    for (Vertex v = 0; v < g.num_vertices(); v += 7) {
      EXPECT_EQ(pll_red.query(red.representative[u], red.representative[v]), truth.at(u, v));
    }
  }
}

/// The two halves of the paper meet: run the Theorem 4.1 upper-bound
/// pipeline on the Theorem 2.1 lower-bound instance (the degree-3 gadget).
/// It must still be exact -- and its size is forced up by the counting
/// bound like any other labeling.
TEST(Integration, UpperBoundPipelineOnLowerBoundGadget) {
  const lb::GadgetParams p{1, 1};
  const lb::LayeredGadget h(p);
  const lb::Degree3Gadget g3(h);
  const Graph& g = g3.graph();
  const auto truth = DistanceMatrix::compute(g);
  Rng rng(11);
  UpperBoundStats stats;
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng, &stats);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  const double bound = lb::certified_bound_g(p, g.num_vertices());
  EXPECT_GE(l.average_label_size(), bound);
}

/// Degree reduction then Theorem 4.1 on a scale-free graph: the full
/// Theorem 1.4 statement on the paper's "hard case" of sparse graphs with
/// high-degree vertices.
TEST(Integration, Theorem14OnHeavyTails) {
  Rng rng(12);
  const Graph g = gen::barabasi_albert(80, 2, rng);
  EXPECT_GT(g.max_degree(), 8u);  // genuinely heavy-tailed
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling_sparse(g, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

/// Full-stack size comparison mirroring the paper's framing: the gadget
/// forces large labels while a random sparse graph of the same size allows
/// much smaller ones.
TEST(Integration, GadgetIsHarderThanRandomSparse) {
  const lb::GadgetParams p{3, 2};
  const lb::LayeredGadget h(p);
  const HubLabeling gadget_pll = pruned_landmark_labeling(h.graph());

  Rng rng(7);
  const std::size_t n = h.graph().num_vertices();
  const Graph random_sparse = gen::connected_gnm(n, h.graph().num_edges(), rng);
  const HubLabeling random_pll = pruned_landmark_labeling(random_sparse);

  // The layered gadget is built to defeat hub labelings; PLL labels on it
  // should be clearly larger than on an unstructured graph of equal size.
  EXPECT_GT(gadget_pll.average_label_size(), random_pll.average_label_size());
}

}  // namespace
}  // namespace hublab
