file(REMOVE_RECURSE
  "CMakeFiles/upperbound_test.dir/upperbound_test.cpp.o"
  "CMakeFiles/upperbound_test.dir/upperbound_test.cpp.o.d"
  "upperbound_test"
  "upperbound_test.pdb"
  "upperbound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upperbound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
