# Empty compiler generated dependencies file for hublab_hub.
# This may be replaced when dependencies are built.
