#include "hub/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace hublab {

namespace {

constexpr char kMagic[4] = {'H', 'L', 'A', 'B'};

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw ParseError("labeling file truncated");
  return value;
}

}  // namespace

void save_labeling(const HubLabeling& labeling, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_pod<std::uint32_t>(out, kLabelingFormatVersion);
  write_pod<std::uint64_t>(out, labeling.num_vertices());
  for (Vertex v = 0; v < labeling.num_vertices(); ++v) {
    const auto label = labeling.label(v);
    write_pod<std::uint64_t>(out, label.size());
    for (const HubEntry& e : label) {
      write_pod<std::uint32_t>(out, e.hub);
      write_pod<std::uint64_t>(out, e.dist);
    }
  }
  if (!out) throw Error("labeling write failed");
}

HubLabeling load_labeling(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("labeling file: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kLabelingFormatVersion) throw ParseError("labeling file: unsupported version");
  const auto n = read_pod<std::uint64_t>(in);
  if (n > (1ULL << 32)) throw ParseError("labeling file: implausible vertex count");

  HubLabeling labeling(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    const auto count = read_pod<std::uint64_t>(in);
    if (count > n) throw ParseError("labeling file: label larger than vertex count");
    std::uint64_t prev_hub_plus_one = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto hub = read_pod<std::uint32_t>(in);
      const auto dist = read_pod<std::uint64_t>(in);
      if (hub >= n) throw ParseError("labeling file: hub id out of range");
      if (hub + 1ULL <= prev_hub_plus_one) throw ParseError("labeling file: hubs not ascending");
      prev_hub_plus_one = hub + 1ULL;
      labeling.add_hub(static_cast<Vertex>(v), hub, dist);
    }
  }
  labeling.finalize();
  return labeling;
}

void save_labeling_file(const HubLabeling& labeling, const std::string& file_path) {
  std::ofstream out(file_path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + file_path);
  save_labeling(labeling, out);
}

HubLabeling load_labeling_file(const std::string& file_path) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) throw Error("cannot open: " + file_path);
  return load_labeling(in);
}

}  // namespace hublab
