#include "util/spsc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

namespace hublab {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoSingleThread) {
  SpscRing<int> ring(8);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRing, RejectsWhenFullAndRecoversAfterPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  // Full: the admission-control signal.
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(SpscRing, WraparoundPreservesFifo) {
  // Monotonic indices must stay correct across many times the capacity.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GE(next_push, 100u * ring.capacity());
}

TEST(SpscRing, PopBulkDrainsInFifoBlocks) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> block(4, -1);
  EXPECT_EQ(ring.pop_bulk(block.data(), 4), 4u);
  EXPECT_EQ(block, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_bulk(block.data(), 4), 4u);
  EXPECT_EQ(block, (std::vector<int>{4, 5, 6, 7}));
  // A partial tail block, then empty.
  EXPECT_EQ(ring.pop_bulk(block.data(), 4), 2u);
  EXPECT_EQ(block[0], 8);
  EXPECT_EQ(block[1], 9);
  EXPECT_EQ(ring.pop_bulk(block.data(), 4), 0u);
}

TEST(SpscRing, PopBulkLimitedByMaxItems) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.try_push(i));
  int out = -1;
  EXPECT_EQ(ring.pop_bulk(&out, 1), 1u);
  EXPECT_EQ(out, 0);
  std::vector<int> rest(8, -1);
  EXPECT_EQ(ring.pop_bulk(rest.data(), 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rest[static_cast<std::size_t>(i)], i + 1);
}

/// The concurrency shape the server uses: one producer chunk, one consumer
/// chunk, both hosted on the deterministic pool.  This is the tsan target
/// for the ring's acquire/release pairing (tools/check.sh runs this suite
/// under ThreadSanitizer).
TEST(SpscRing, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  bool ordered = true;
  par::run_chunks(par::static_chunks(0, 2, 2), 2, [&](const par::ChunkRange& chunk) {
    if (chunk.index == 0) {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!ring.try_push(i)) par::yield();
      }
    } else {
      std::uint64_t block[16];
      std::uint64_t expect = 0;
      while (expect < kItems) {
        const std::size_t got = ring.pop_bulk(block, 16);
        if (got == 0) {
          par::yield();
          continue;
        }
        for (std::size_t i = 0; i < got; ++i) {
          ordered = ordered && block[i] == expect;
          sum += block[i];
          ++expect;
        }
      }
      received = expect;
    }
  });
  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

}  // namespace
}  // namespace hublab
