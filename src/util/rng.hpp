#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every randomized component of hublab takes an explicit seed so that tests
/// and benchmarks are reproducible across runs and platforms.  We use
/// xoshiro256** seeded via splitmix64, the conventional pairing; the engine
/// satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with standard distributions as well.

namespace hublab {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine (Blackman & Vigna).  Deterministic given a seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    HUBLAB_ASSERT(bound > 0);
    // Lemire-style rejection sampling: unbiased.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    HUBLAB_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher-Yates shuffle of a random-access range.
template <typename Container>
void shuffle(Container& items, Rng& rng) {
  const auto n = items.size();
  if (n <= 1) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.next_below(i + 1);
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace hublab
