// The shared file model: loading, comment/string stripping, include
// extraction, identifier helpers, and inline suppression markers.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_identifier(const std::string& text, const std::string& ident) {
  std::size_t pos = 0;
  while ((pos = text.find(ident, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string last_identifier(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) --end;
  // `adj_[u]` names adj_, not the index expression: peel trailing [...]
  // (and (...), for completeness) before reading the identifier.
  while (end > 0 && (expr[end - 1] == ']' || expr[end - 1] == ')')) {
    const char close = expr[end - 1];
    const char open = close == ']' ? '[' : '(';
    std::size_t depth = 0;
    std::size_t i = end;
    while (i > 0) {
      --i;
      if (expr[i] == close) ++depth;
      if (expr[i] == open && --depth == 0) break;
    }
    end = i;
    while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

namespace {

/// Strip // and /* */ comments (tracking block state across lines) and
/// string/char literals, so banned tokens inside either never count.
std::vector<std::string> stripped_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  bool in_block = false;
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      in_string = in_char = false;  // unterminated literals never span lines here
      continue;
    }
    if (in_block) {
      if (c == '*' && next == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (in_char) {
      if (c == '\\') ++i;
      else if (c == '\'') in_char = false;
      continue;
    }
    if (c == '/' && next == '/') {
      while (i + 1 < text.size() && text[i + 1] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += ' ';
      continue;
    }
    if (c == '\'' && !(i > 0 && is_ident_char(text[i - 1]))) {
      // A char literal; identifier-adjacent ' is a digit separator (1'000).
      in_char = true;
      continue;
    }
    current += c;
  }
  lines.push_back(current);
  return lines;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Include targets are read from the RAW lines (string stripping blanks
/// the quoted target in `code`), but only where the stripped line still
/// starts with `#`, so commented-out includes never count.
std::vector<IncludeEdge> extract_includes(const std::vector<std::string>& raw,
                                          const std::vector<std::string>& code) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < raw.size() && i < code.size(); ++i) {
    const std::size_t hash = code[i].find_first_not_of(" \t");
    if (hash == std::string::npos || code[i][hash] != '#') continue;
    if (code[i].find("include", hash) == std::string::npos) continue;
    const std::string& line = raw[i];
    const std::size_t inc = line.find("include");
    if (inc == std::string::npos) continue;
    const std::size_t open = line.find_first_of("\"<", inc);
    if (open == std::string::npos) continue;
    const char close_char = line[open] == '"' ? '"' : '>';
    const std::size_t close = line.find(close_char, open + 1);
    if (close == std::string::npos) continue;
    edges.push_back(IncludeEdge{line.substr(open + 1, close - open - 1), i + 1,
                                line[open] == '"'});
  }
  return edges;
}

std::string module_of(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  const std::string top = slash == std::string::npos ? rel : rel.substr(0, slash);
  if (top != "src") return top;
  const std::size_t second = rel.find('/', slash + 1);
  if (second == std::string::npos) return top;
  return rel.substr(slash + 1, second - slash - 1);
}

}  // namespace

std::vector<SourceFile> load_tree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    auto it = fs::recursive_directory_iterator(base);
    for (const auto& entry : it) {
      // Seeded violation trees (tests/lint_fixtures/...) are analyzer test
      // data, not repo code.
      if (entry.is_directory() && entry.path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile f;
    f.abs = path;
    f.rel = fs::relative(path, root).generic_string();
    f.module = module_of(f.rel);
    f.text = read_file(path);
    {
      std::istringstream stream(f.text);
      std::string raw;
      while (std::getline(stream, raw)) f.raw_lines.push_back(raw);
      if (f.raw_lines.empty()) f.raw_lines.emplace_back();
    }
    f.code = stripped_lines(f.text);
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      for (std::size_t k = 0; k <= f.code[i].size(); ++k) f.flat_line.push_back(i + 1);
      f.flat += f.code[i];
      f.flat += '\n';
    }
    f.includes = extract_includes(f.raw_lines, f.code);
    f.is_header = path.extension() == ".hpp";
    f.in_src = f.rel.rfind("src/", 0) == 0;
    files.push_back(std::move(f));
  }
  return files;
}

bool inline_suppressed(const SourceFile& file, std::size_t line, const std::string& rule) {
  const std::string marker = std::string("hublab-lint-allow(") + rule + ")";
  const std::string legacy = std::string("hublab-lint: allow ") + rule;
  const auto carries = [&](std::size_t idx) {
    if (idx >= file.raw_lines.size()) return false;
    const std::string& raw = file.raw_lines[idx];
    return raw.find(marker) != std::string::npos || raw.find(legacy) != std::string::npos;
  };
  if (line == 0) line = 1;
  return carries(line - 1) || (line >= 2 && carries(line - 2));
}

void Sink::add(const SourceFile& file, std::size_t line, const std::string& rule,
               std::string message) {
  if (inline_suppressed(file, line, rule)) {
    ++suppressed;
    return;
  }
  findings.push_back(Finding{file.rel, line, rule, std::move(message)});
}

void Sink::add_external(std::string file, std::size_t line, const std::string& rule,
                        std::string message) {
  findings.push_back(Finding{std::move(file), line, rule, std::move(message)});
}

}  // namespace hublab::lint
