#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

/// \file bench_schema.hpp
/// Schema checks for the machine-readable run reports — BENCH_<name>.json
/// from bench/harness.hpp and SERVE_<oracle>.json from `hublab serve-sim`,
/// both emitted through util/report.hpp (see docs/observability.md for the
/// schema).  Used by `hublab validate-bench` and the bench-smoke /
/// bench-compare stages of tools/check.sh, so a producer that silently
/// stops reporting a field fails CI instead of producing holes in the
/// perf trajectory.
///
/// Version history (the validator accepts all listed versions; the
/// emitter writes the newest):
///   1  phases + counters + gauges (+ optional histograms)
///   2  adds required `start_unix_ms` and `peak_rss_bytes`
///      (+ optional `sketches`; later also an optional `threads` member,
///      a number >= 1 — reports with and without it both validate)
///   3  phases gain an optional `tid` (worker index of the opening thread,
///      a number >= 0) and an optional `hw` object of hardware-counter
///      deltas: required `cycles`, `instructions`, `ipc`; optional
///      `l1d_misses`, `llc_misses`, `branch_misses`, `llc_miss_rate`,
///      `branch_miss_rate` — all numbers >= 0.  `hw` appears only on
///      perf-capable hosts with `--perf-counters`, so reports without it
///      still validate.
///   4  per-query attribution members, all optional (serve-sim emits them,
///      benches do not): `windows` (array of per-window objects: required
///      `index`, `queries`, `qps`, `p50_ns`, `p99_ns` numbers >= 0),
///      `slow_queries` (array of exemplar objects) and `exemplars` /
///      `heavy_hitters` (objects keyed by store name) — see
///      docs/observability.md for the member-by-member shapes.

namespace hublab {

/// Current schema_version emitted by util/report.hpp.
inline constexpr std::uint64_t kBenchSchemaVersion = 4;

/// Oldest schema_version the validator still accepts.
inline constexpr std::uint64_t kBenchSchemaMinVersion = 1;

/// All schema violations in `doc` (empty result == valid).  Messages are
/// human-readable, e.g. "phases[2].wall_s: expected a number".
std::vector<std::string> validate_bench_json(const JsonValue& doc);

}  // namespace hublab
