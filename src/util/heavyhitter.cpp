#include "util/heavyhitter.hpp"

#include <algorithm>

namespace hublab::metrics {

SpaceSavingSketch::SpaceSavingSketch(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpaceSavingSketch::add(std::uint64_t key, std::uint64_t weight) {
  if (weight == 0) return;
  total_weight_ += weight;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.weight += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, Entry{key, weight, 0});
    return;
  }
  // Evict the minimum-weight entry (smallest key on ties — map order) and
  // let the newcomer inherit its count as the classic error bound.
  auto min_it = entries_.begin();
  for (auto probe = entries_.begin(); probe != entries_.end(); ++probe) {
    if (probe->second.weight < min_it->second.weight) min_it = probe;
  }
  const std::uint64_t inherited = min_it->second.weight;
  entries_.erase(min_it);
  entries_.emplace(key, Entry{key, inherited + weight, inherited});
}

void SpaceSavingSketch::merge(const SpaceSavingSketch& other) {
  // Deterministic: std::map iterates keys ascending.
  for (const auto& [key, entry] : other.entries_) {
    add(key, entry.weight);
    const auto it = entries_.find(key);
    if (it != entries_.end()) it->second.error += entry.error;
  }
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::top(std::size_t k) const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSavingSketch::reset() {
  total_weight_ = 0;
  entries_.clear();
}

}  // namespace hublab::metrics
