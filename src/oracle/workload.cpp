#include "oracle/workload.hpp"

#include <algorithm>

#include "algo/shortest_paths.hpp"
#include "util/assert.hpp"

namespace hublab::serve {

std::string_view workload_kind_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kNear: return "near";
    case WorkloadKind::kFar: return "far";
  }
  return "uniform";
}

std::optional<WorkloadKind> parse_workload_kind(std::string_view name) noexcept {
  if (name == "uniform") return WorkloadKind::kUniform;
  if (name == "zipf") return WorkloadKind::kZipf;
  if (name == "near") return WorkloadKind::kNear;
  if (name == "far") return WorkloadKind::kFar;
  return std::nullopt;
}

WorkloadGenerator::WorkloadGenerator(const Graph& g, WorkloadKind kind, std::uint64_t seed)
    : g_(g), kind_(kind), rng_(seed) {
  HUBLAB_ASSERT_MSG(g.num_vertices() > 0, "workload over an empty graph");
  const std::size_t n = g.num_vertices();
  if (kind_ == WorkloadKind::kZipf) {
    // Zipf(s=1) popularity over vertex ids: weight of rank i is 1/(i+1).
    zipf_cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      zipf_cdf_.push_back(total);
    }
  } else if (kind_ == WorkloadKind::kFar) {
    // Distance sweep from a high-degree root; endpoints come from opposite
    // finite-distance quartiles, so pairs cross most of the graph.
    Vertex root = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (g.degree(v) > g.degree(root)) root = v;
    }
    const std::vector<Dist> dist = sssp_distances(g, root);
    std::vector<Vertex> reachable_by_dist;
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] != kInfDist) reachable_by_dist.push_back(v);
    }
    std::sort(reachable_by_dist.begin(), reachable_by_dist.end(),
              [&](Vertex a, Vertex b) { return dist[a] < dist[b]; });
    const std::size_t quartile = std::max<std::size_t>(1, reachable_by_dist.size() / 4);
    near_pool_.assign(reachable_by_dist.begin(), reachable_by_dist.begin() + quartile);
    far_pool_.assign(reachable_by_dist.end() - quartile, reachable_by_dist.end());
  }
}

Vertex WorkloadGenerator::zipf_vertex() {
  const double r = rng_.next_double() * zipf_cdf_.back();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), r);
  return static_cast<Vertex>(it - zipf_cdf_.begin());
}

Vertex WorkloadGenerator::walk_from(Vertex u) {
  const std::uint64_t hops = 1 + rng_.next_below(4);
  Vertex v = u;
  for (std::uint64_t i = 0; i < hops; ++i) {
    const auto arcs = g_.arcs(v);
    if (arcs.empty()) break;
    v = arcs[rng_.next_below(arcs.size())].to;
  }
  return v;
}

std::pair<Vertex, Vertex> WorkloadGenerator::next() {
  const auto n = static_cast<std::uint64_t>(g_.num_vertices());
  switch (kind_) {
    case WorkloadKind::kUniform:
      return {static_cast<Vertex>(rng_.next_below(n)), static_cast<Vertex>(rng_.next_below(n))};
    case WorkloadKind::kZipf:
      return {zipf_vertex(), zipf_vertex()};
    case WorkloadKind::kNear: {
      const auto u = static_cast<Vertex>(rng_.next_below(n));
      return {u, walk_from(u)};
    }
    case WorkloadKind::kFar:
      return {near_pool_[rng_.next_below(near_pool_.size())],
              far_pool_[rng_.next_below(far_pool_.size())]};
  }
  HUBLAB_UNREACHABLE();
}

std::vector<std::pair<Vertex, Vertex>> WorkloadGenerator::block(std::size_t count) {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) pairs.push_back(next());
  return pairs;
}

}  // namespace hublab::serve
