#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Exception types for recoverable (user-facing) errors.

namespace hublab {

/// Base class for all recoverable hublab errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (graph files, label byte streams, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A caller-supplied parameter is outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

}  // namespace hublab
