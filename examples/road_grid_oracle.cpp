/// \file road_grid_oracle.cpp
/// Domain example: exact point-to-point distances on a synthetic road
/// network (weighted grid with shortcuts), comparing the oracle options a
/// routing service would choose between.  This is the "hub labeling in
/// practice" story of Section 1.1 of the paper.
///
/// Usage: road_grid_oracle [rows] [cols]   (defaults: 30 30)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "oracle/oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  std::size_t rows = 30;
  std::size_t cols = 30;
  if (argc > 1) rows = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) cols = static_cast<std::size_t>(std::atoi(argv[2]));

  Rng rng(7);
  const Graph g = gen::road_like(rows, cols, /*shortcut_prob=*/0.2, /*max_weight=*/10, rng);
  std::printf("road network: %zux%zu grid with shortcuts -> n=%zu m=%zu\n", rows, cols,
              g.num_vertices(), g.num_edges());

  Timer build;
  const HubLabeling labels = pruned_landmark_labeling(g);
  std::printf("PLL preprocessing: %.2f ms, avg label %.1f hubs, %zu KiB\n", build.elapsed_ms(),
              labels.average_label_size(), labels.memory_bytes() / 1024);

  const HubLabelOracle hub_oracle(g, labels);
  const BidirectionalOracle bidir(g);

  Rng pick(8);
  std::vector<std::pair<Vertex, Vertex>> queries;
  for (int i = 0; i < 1000; ++i) {
    queries.emplace_back(static_cast<Vertex>(pick.next_below(g.num_vertices())),
                         static_cast<Vertex>(pick.next_below(g.num_vertices())));
  }

  // Cross-check and time both strategies.
  std::size_t agree = 0;
  Timer t_hub;
  std::uint64_t sink = 0;
  for (const auto& [u, v] : queries) sink += hub_oracle.distance(u, v);
  const double hub_us = t_hub.elapsed_s() * 1e6 / static_cast<double>(queries.size());

  Timer t_bidir;
  for (const auto& [u, v] : queries) {
    if (bidir.distance(u, v) == hub_oracle.distance(u, v)) ++agree;
  }
  const double bidir_us = t_bidir.elapsed_s() * 1e6 / static_cast<double>(queries.size());

  TextTable table({"strategy", "prep space (KiB)", "avg query (us)", "agreement"});
  table.add_row({"hub labels (PLL)", fmt_u64(hub_oracle.space_bytes() / 1024),
                 fmt_double(hub_us, 2), fmt_u64(agree) + "/1000"});
  table.add_row({"bidirectional dijkstra", "0", fmt_double(bidir_us, 2), "(reference)"});
  table.print(std::cout, "routing strategies");

  // Show one concrete route.
  const Vertex s = 0;
  const Vertex t = static_cast<Vertex>(g.num_vertices() - 1);
  const SsspResult tree = sssp(g, s);
  const auto path = extract_path(tree, s, t);
  std::printf("\nsample route corner-to-corner: length %llu, %zu hops, via hub %u\n",
              static_cast<unsigned long long>(tree.dist[t]), path.size() - 1,
              hub_oracle.labeling().query_with_hub(s, t).meeting_hub);
  (void)sink;
  return agree == queries.size() ? 0 : 1;
}
