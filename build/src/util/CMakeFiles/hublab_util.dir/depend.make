# Empty dependencies file for hublab_util.
# This may be replaced when dependencies are built.
