file(REMOVE_RECURSE
  "CMakeFiles/hublab_labeling.dir/distance_labeling.cpp.o"
  "CMakeFiles/hublab_labeling.dir/distance_labeling.cpp.o.d"
  "libhublab_labeling.a"
  "libhublab_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
