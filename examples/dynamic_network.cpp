/// \file dynamic_network.cpp
/// Domain example: a routing service whose network grows over time.
///
/// Starts from a road-like grid, serves exact queries from hub labels,
/// then "opens new roads" (edge insertions) and repairs the labels
/// incrementally instead of rebuilding -- printing how distances and the
/// label store evolve.  Also demonstrates path unpacking from labels.

#include <cstdio>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/incremental.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace hublab;

int main() {
  Rng rng(11);
  const std::size_t rows = 14;
  const std::size_t cols = 14;
  const Graph g = gen::road_like(rows, cols, 0.0, 9, rng);  // pure grid, no shortcuts yet
  std::printf("initial network: %zux%zu weighted grid, n=%zu m=%zu\n", rows, cols,
              g.num_vertices(), g.num_edges());

  Timer build;
  IncrementalPll routing(g);
  std::printf("labeling built in %.1f ms, %zu hub entries\n\n", build.elapsed_ms(),
              routing.total_hubs());

  const Vertex hq = 0;
  const Vertex depot = static_cast<Vertex>(g.num_vertices() - 1);
  std::printf("corner-to-corner distance before upgrades: %llu\n",
              static_cast<unsigned long long>(routing.query(hq, depot)));

  // Open five diagonal "express roads" across the map.
  auto id = [cols](std::size_t r, std::size_t c) { return static_cast<Vertex>(r * cols + c); };
  const std::pair<Vertex, Vertex> upgrades[] = {
      {id(0, 0), id(7, 7)},   {id(7, 7), id(13, 13)}, {id(0, 13), id(7, 7)},
      {id(13, 0), id(7, 7)},  {id(3, 3), id(10, 10)},
  };
  for (const auto& [a, b] : upgrades) {
    Timer t;
    routing.insert_edge(a, b, 3);
    std::printf("opened road %u <-> %u (w=3) in %.2f ms; corner-to-corner now %llu\n", a, b,
                t.elapsed_ms(), static_cast<unsigned long long>(routing.query(hq, depot)));
  }

  std::printf("\nlabel store after upgrades: %zu entries\n", routing.total_hubs());

  // Unpack an actual route from the labels alone.
  GraphBuilder current(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) current.add_edge(u, a.to, a.weight);
    }
  }
  for (const auto& [a, b] : upgrades) current.add_edge(a, b, 3);
  const Graph now = current.build();
  const HubLabeling labels = routing.labels();
  const auto route = unpack_shortest_path(now, labels, hq, depot);
  std::printf("route (%zu hops): ", route.size() - 1);
  for (std::size_t i = 0; i < route.size(); ++i) {
    std::printf("%u%s", route[i], i + 1 < route.size() ? " -> " : "\n");
  }
  std::printf("route length %llu == queried %llu: %s\n",
              static_cast<unsigned long long>(path_length(now, route)),
              static_cast<unsigned long long>(routing.query(hq, depot)),
              path_length(now, route) == routing.query(hq, depot) ? "yes" : "NO");
  return 0;
}
