#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/audit.hpp"

/// \file graph.hpp
/// Core immutable graph type in compressed sparse row (CSR) form.
///
/// Graphs in this library are undirected (each edge is stored as two arcs)
/// and optionally integer-weighted.  The lower-bound gadget H_{b,l} of the
/// paper needs weights up to (3l+1)*2^{2b}; the degree-reduction gadget of
/// Theorem 1.4 needs weight-0 edges, so Weight is an unsigned 32-bit integer
/// and distances accumulate in 64 bits.

namespace hublab {

using Vertex = std::uint32_t;
using Weight = std::uint32_t;
using Dist = std::uint64_t;

inline constexpr Vertex kInvalidVertex = std::numeric_limits<Vertex>::max();
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// One endpoint record of an undirected edge, as seen from a vertex.
struct Arc {
  Vertex to;
  Weight weight;

  bool operator==(const Arc&) const = default;
};

/// Immutable undirected graph in CSR form.  Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Number of vertices.
  [[nodiscard]] std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges (arcs / 2).
  [[nodiscard]] std::size_t num_edges() const { return arcs_.size() / 2; }

  /// Number of stored arcs (2x edges).
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }

  /// True if any edge has weight != 1.
  [[nodiscard]] bool is_weighted() const { return weighted_; }

  /// Arcs out of vertex u.
  [[nodiscard]] std::span<const Arc> arcs(Vertex u) const {
    HUBLAB_ASSERT_RANGE(u, num_vertices());
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::size_t degree(Vertex u) const {
    HUBLAB_ASSERT_RANGE(u, num_vertices());
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::size_t max_degree() const;

  /// Average degree = 2m/n (0 for the empty graph).
  [[nodiscard]] double average_degree() const;

  /// True if an edge {u, v} exists (binary search; arcs are sorted by target).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// Weight of edge {u, v}; kInfDist if absent.
  [[nodiscard]] Dist edge_weight(Vertex u, Vertex v) const;

  /// Largest edge weight (1 for unweighted / empty graphs).
  [[nodiscard]] Weight max_weight() const;

  /// Rough memory footprint of the CSR arrays in bytes.
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(std::size_t) + arcs_.size() * sizeof(Arc);
  }

  /// Deep invariant audit (see util/audit.hpp): CSR well-formedness
  /// (offset monotonicity, sorted deduplicated adjacency, in-range targets,
  /// no self-loops) and undirected symmetry (every arc has a reverse arc of
  /// equal weight).  O(m log d).
  [[nodiscard]] AuditReport audit() const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // n + 1 entries
  std::vector<Arc> arcs_;             // sorted by target within each vertex
  bool weighted_ = false;
};

/// Mutable edge-list accumulator that finalizes into a CSR Graph.
class GraphBuilder {
 public:
  /// Create a builder for a graph with n vertices (ids 0..n-1).
  explicit GraphBuilder(std::size_t n) : num_vertices_(n) {}

  /// Add undirected edge {u, v} with the given weight.  Self-loops are
  /// rejected (they never help shortest paths and break degree accounting);
  /// parallel edges are collapsed to the minimum weight at build() time.
  void add_edge(Vertex u, Vertex v, Weight weight = 1);

  /// Append a fresh vertex and return its id.
  Vertex add_vertex() { return static_cast<Vertex>(num_vertices_++); }

  [[nodiscard]] std::size_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_pending_edges() const { return edges_u_.size(); }

  /// Finalize into an immutable CSR graph.  The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  std::size_t num_vertices_;
  std::vector<Vertex> edges_u_;
  std::vector<Vertex> edges_v_;
  std::vector<Weight> edge_w_;
};

}  // namespace hublab
