# Empty compiler generated dependencies file for hublab.
# This may be replaced when dependencies are built.
