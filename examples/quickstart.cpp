/// \file quickstart.cpp
/// Five-minute tour of the hublab public API:
///   1. build a graph,
///   2. construct a hub labeling with PLL,
///   3. answer exact distance queries from the labels,
///   4. verify the labeling and inspect its size,
///   5. serialize labels to bits (distance labeling) and decode.

#include <cstdio>
#include <memory>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "labeling/distance_labeling.hpp"
#include "util/rng.hpp"

using namespace hublab;

namespace {

HubLabeling pll_factory(const Graph& g) { return pruned_landmark_labeling(g); }

}  // namespace

int main() {
  // 1. A sparse random graph (m = 2n), the regime the paper studies.
  Rng rng(2024);
  const Graph g = gen::connected_gnm(/*n=*/500, /*m=*/1000, rng);
  std::printf("graph: n=%zu m=%zu avg_degree=%.2f\n", g.num_vertices(), g.num_edges(),
              g.average_degree());

  // 2. Hub labeling via Pruned Landmark Labeling (degree order).
  const HubLabeling labels = pruned_landmark_labeling(g);
  std::printf("hub labeling: avg |S(v)| = %.2f, max = %zu, memory = %zu bytes\n",
              labels.average_label_size(), labels.max_label_size(), labels.memory_bytes());

  // 3. Exact distance queries: merge the two hub lists.
  for (const auto& [u, v] : {std::pair<Vertex, Vertex>{0, 499}, {17, 256}, {42, 43}}) {
    const HubQueryResult q = labels.query_with_hub(u, v);
    std::printf("dist(%u, %u) = %llu  (meeting hub %u; Dijkstra agrees: %s)\n", u, v,
                static_cast<unsigned long long>(q.dist), q.meeting_hub,
                q.dist == sssp_distances(g, u)[v] ? "yes" : "NO");
  }

  // 4. Verify the cover property on random samples.
  const auto defect = verify_labeling_sampled(g, labels, /*num_samples=*/200, /*seed=*/7);
  std::printf("sampled verification: %s\n", defect ? "DEFECT FOUND" : "clean");

  // 5. Bit-level distance labels (what the paper measures in bits).
  const HubDistanceLabeling scheme(&pll_factory, "pll");
  const EncodedLabels encoded = scheme.encode(g);
  std::printf("distance labels: avg %.1f bits per vertex (max %zu)\n", encoded.average_bits(),
              encoded.max_bits());
  const Dist decoded = scheme.decode(encoded.labels[0], encoded.labels[499]);
  std::printf("decoded dist(0, 499) from two bit strings alone: %llu\n",
              static_cast<unsigned long long>(decoded));
  return 0;
}
