// Fixture: float-reduce -- FP accumulation inside a parallel_for body.

namespace fixture {

double sum_parallel() {
  double acc = 0.0;
  parallel_for(0, 100, [&](int i) { acc += static_cast<double>(i); });
  return acc;
}

}  // namespace fixture
