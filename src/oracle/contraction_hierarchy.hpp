#pragma once

#include <vector>

#include "hub/labeling.hpp"
#include "oracle/oracle.hpp"

/// \file contraction_hierarchy.hpp
/// Contraction hierarchies (Geisberger et al.), the shortest-path heuristic
/// Section 1.1 of the paper cites alongside hub labeling and arc flags.
///
/// Preprocessing contracts vertices in importance order (lazy
/// edge-difference heuristic); whenever removing v would break a shortest
/// u-w path, a *shortcut* edge (u, w) of weight d(u,v)+d(v,w) is inserted.
/// Queries run a bidirectional Dijkstra over *upward* edges only (towards
/// higher contraction rank) and return the best meeting vertex -- exact,
/// because every shortest path has an "apex" decomposition into two upward
/// halves.
///
/// Hub labels can be read off a CH by collecting each vertex's upward
/// search space; the paper's Theorem 1.1 therefore also limits CH-derived
/// labelings on sparse graphs.

namespace hublab {

class ContractionHierarchy final : public DistanceOracle {
 public:
  /// Preprocess g (any non-negative integer weights).  The witness searches
  /// are capped at `witness_settle_limit` settled vertices; inconclusive
  /// searches conservatively add the shortcut (never breaks exactness).
  explicit ContractionHierarchy(const Graph& g, std::size_t witness_settle_limit = 64);

  [[nodiscard]] std::string name() const override { return "contraction-hierarchy"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  /// Attribution variant: records the two upward-search-space sizes as the
  /// "label" sizes, two-pointer advances as the scan cost, candidate apexes
  /// as matches, and the apex of the best up-down path as the meeting hub.
  [[nodiscard]] Dist distance_with_stats(Vertex u, Vertex v,
                                         metrics::QueryStats& stats) const override;
  [[nodiscard]] std::size_t space_bytes() const override;

  [[nodiscard]] std::size_t num_shortcuts() const { return num_shortcuts_; }
  /// Contraction rank of a vertex (0 = contracted first).
  [[nodiscard]] std::uint32_t rank(Vertex v) const {
    HUBLAB_ASSERT(v < rank_.size());
    return rank_[v];
  }
  /// Average number of upward arcs per vertex (the search-space driver).
  [[nodiscard]] double average_upward_degree() const;

  /// Read hub labels off the hierarchy: S(v) = the upward search space of
  /// v, filtered to the entries whose upward distance is exact (dropping
  /// overestimates preserves the cover: the apex of any shortest path has
  /// exact upward distances on both sides).  This is how practical hub
  /// labelings are built from CH -- and why Theorem 1.1's lower bound
  /// applies to CH search spaces on sparse graphs too.
  [[nodiscard]] HubLabeling extract_hub_labeling() const;

 private:
  /// Upward arc with a 64-bit weight (shortcut weights can exceed Weight).
  struct UpArc {
    Vertex to;
    Dist weight;
  };

  /// Exhaustive upward Dijkstra from `source`: the settled (vertex,
  /// distance) pairs sorted by vertex id, so both the query intersection
  /// and the label extraction consume them in deterministic order.
  [[nodiscard]] std::vector<std::pair<Vertex, Dist>> upward_search(Vertex source) const;

  std::vector<std::vector<UpArc>> up_;  ///< upward arcs (to higher-rank vertices)
  std::vector<std::uint32_t> rank_;
  std::size_t num_shortcuts_ = 0;
};

}  // namespace hublab
