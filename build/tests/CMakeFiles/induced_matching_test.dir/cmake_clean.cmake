file(REMOVE_RECURSE
  "CMakeFiles/induced_matching_test.dir/induced_matching_test.cpp.o"
  "CMakeFiles/induced_matching_test.dir/induced_matching_test.cpp.o.d"
  "induced_matching_test"
  "induced_matching_test.pdb"
  "induced_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/induced_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
