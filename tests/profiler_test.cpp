/// \file profiler_test.cpp
/// Sampling profiler (util/profiler.hpp): arm/disarm lifecycle, sample
/// capture under CPU load, folded-stack output shape and determinism, the
/// `perf.samples` counter contract, and the RSS piggyback sampling
/// (util/resource.hpp satellite).

#include "util/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "util/metrics.hpp"
#include "util/resource.hpp"

namespace hublab {
namespace {

/// Burn CPU until the profiler has captured at least one sample (SIGPROF
/// counts CPU time, so sleeping would never tick) — bounded so a broken
/// profiler fails the expectations instead of hanging the test.
void burn_until_sampled() {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t outer = 0; outer < 200000 && prof::samples() == 0; ++outer) {
    for (std::uint64_t i = 0; i < 10000; ++i) sink = sink + i;
  }
}

TEST(Profiler, LifecycleAndSampleCapture) {
  if (!prof::supported()) {
    EXPECT_FALSE(prof::start());
    prof::stop();  // must be a harmless no-op
    GTEST_SKIP() << "sampling profiler unsupported on this platform";
  }
  metrics::registry().reset();
  prof::reset();
  EXPECT_EQ(prof::samples(), 0u);
  ASSERT_TRUE(prof::start(prof::ProfilerConfig{997}));
  EXPECT_TRUE(prof::running());
  EXPECT_FALSE(prof::start()) << "double start must be refused";

  burn_until_sampled();
  prof::stop();
  EXPECT_FALSE(prof::running());
  EXPECT_GT(prof::samples(), 0u);

  // stop() publishes the counters into the registry (compiled-out under
  // HUBLAB_METRICS=OFF, where the registry is a stub).
#if HUBLAB_METRICS_ENABLED
  EXPECT_EQ(metrics::registry().counter("perf.samples").value(), prof::samples());
  EXPECT_EQ(metrics::registry().counter("perf.sample_drops").value(), prof::dropped());
#endif

  // Folded output: non-empty, worker-rooted lines ending in a count, and
  // byte-identical across two calls (deterministic aggregation order).
  std::ostringstream first;
  prof::write_folded(first);
  const std::string folded = first.str();
  ASSERT_FALSE(folded.empty());
  EXPECT_EQ(folded.rfind("worker", 0), 0u) << folded.substr(0, 120);
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
  }
  std::ostringstream second;
  prof::write_folded(second);
  EXPECT_EQ(folded, second.str());

  // reset() drops the samples (and the folded output with them).
  prof::reset();
  EXPECT_EQ(prof::samples(), 0u);
  std::ostringstream after_reset;
  prof::write_folded(after_reset);
  EXPECT_TRUE(after_reset.str().empty());
}

TEST(Profiler, TicksSampleRssPeak) {
  if (!prof::supported()) GTEST_SKIP() << "unsupported";
  // The satellite contract: profiler ticks feed sample_rss_peak(), so a
  // profiled run's peak_rss_bytes() reflects in-flight residency.
  prof::reset();
  ASSERT_TRUE(prof::start(prof::ProfilerConfig{997}));
  burn_until_sampled();
  prof::stop();
  if (current_rss_bytes() == 0) GTEST_SKIP() << "no /proc RSS on this platform";
  EXPECT_GT(sampled_peak_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), sampled_peak_rss_bytes());
}

TEST(Resource, SampledPeakIsMonotoneMax) {
  const std::uint64_t now = current_rss_bytes();
  if (now == 0) GTEST_SKIP() << "no /proc RSS on this platform";
  sample_rss_peak();
  const std::uint64_t peak = sampled_peak_rss_bytes();
  EXPECT_GE(peak, now / 2) << "sampled peak wildly below current RSS";
  sample_rss_peak();
  EXPECT_GE(sampled_peak_rss_bytes(), peak) << "sampled peak must never decrease";
}

}  // namespace
}  // namespace hublab
