#include "util/qsketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hublab {
namespace {

/// Check the certified guarantee on every standard quantile: the returned
/// value's rank interval [#(< value) + 1, #(<= value)] (an interval because
/// of duplicates) comes within rank_error_bound() of the nearest-rank
/// target.
void expect_quantiles_within_bound(const QuantileSketch& sketch,
                                   const std::vector<std::uint64_t>& data) {
  const std::uint64_t bound = sketch.rank_error_bound();
  for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const std::uint64_t value = sketch.quantile(p);
    const double exact = p * static_cast<double>(data.size());
    auto target = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(target) < exact) ++target;
    if (target == 0) target = 1;
    const auto below = static_cast<std::uint64_t>(
        std::count_if(data.begin(), data.end(), [&](std::uint64_t v) { return v < value; }));
    const auto at_or_below = static_cast<std::uint64_t>(
        std::count_if(data.begin(), data.end(), [&](std::uint64_t v) { return v <= value; }));
    const std::uint64_t rank_lo = below + 1;
    const std::uint64_t rank_hi = at_or_below;
    EXPECT_LE(rank_lo, target + bound) << "p=" << p << " value=" << value << " bound=" << bound;
    EXPECT_GE(rank_hi + bound, target) << "p=" << p << " value=" << value << " bound=" << bound;
  }
}

TEST(QuantileSketch, EmptyAndSingleValue) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.rank_error_bound(), 0u);

  s.record(42);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.sum(), 42u);
  EXPECT_EQ(s.min(), 42u);
  EXPECT_EQ(s.max(), 42u);
  for (const double p : {0.0, 0.5, 1.0}) EXPECT_EQ(s.quantile(p), 42u);
}

TEST(QuantileSketch, ExactBelowCapacity) {
  QuantileSketch s(64);
  for (std::uint64_t v = 1; v <= 63; ++v) s.record(v);
  EXPECT_EQ(s.rank_error_bound(), 0u);  // no compaction yet
  EXPECT_EQ(s.quantile(0.5), 32u);
  EXPECT_EQ(s.quantile(1.0), 63u);
  EXPECT_EQ(s.quantile(0.0), 1u);  // nearest-rank: ceil(0) clamps to rank 1
}

TEST(QuantileSketch, CapacityIsRoundedUpToEvenFloorEight) {
  EXPECT_EQ(QuantileSketch(0).buffer_capacity(), 8u);
  EXPECT_EQ(QuantileSketch(7).buffer_capacity(), 8u);
  EXPECT_EQ(QuantileSketch(9).buffer_capacity(), 10u);
  EXPECT_EQ(QuantileSketch(256).buffer_capacity(), 256u);
}

TEST(QuantileSketch, DeterministicAcrossIdenticalStreams) {
  QuantileSketch a(32);
  QuantileSketch b(32);
  Rng rng(7);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(rng.next_below(1u << 20));
  for (const std::uint64_t v : stream) a.record(v);
  for (const std::uint64_t v : stream) b.record(v);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
  EXPECT_EQ(a.stored_items(), b.stored_items());
  for (const double p : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(p), b.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, RankErrorBoundOnUniformStream) {
  QuantileSketch s(128);
  Rng rng(13);
  std::vector<std::uint64_t> data;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.next_below(1'000'000);
    data.push_back(v);
    s.record(v);
  }
  EXPECT_EQ(s.count(), data.size());
  // The bound must be a small fraction of the stream, or the sketch is
  // useless: with k=128 the certified bound stays well under 10% here.
  EXPECT_LT(s.rank_error_bound(), data.size() / 10);
  expect_quantiles_within_bound(s, data);
}

TEST(QuantileSketch, RankErrorBoundOnAdversarialStreams) {
  // Sorted, reverse-sorted, sawtooth and constant streams are the classic
  // compaction adversaries; the certified bound must hold on all of them.
  const std::size_t n = 10000;
  std::vector<std::vector<std::uint64_t>> streams;
  std::vector<std::uint64_t> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = i;
  streams.push_back(sorted);
  std::vector<std::uint64_t> reversed(sorted.rbegin(), sorted.rend());
  streams.push_back(reversed);
  std::vector<std::uint64_t> sawtooth(n);
  for (std::size_t i = 0; i < n; ++i) sawtooth[i] = i % 97;
  streams.push_back(sawtooth);
  streams.push_back(std::vector<std::uint64_t>(n, 5));

  for (const auto& data : streams) {
    QuantileSketch s(64);
    for (const std::uint64_t v : data) s.record(v);
    EXPECT_LT(s.rank_error_bound(), data.size() / 4);
    expect_quantiles_within_bound(s, data);
  }
}

TEST(QuantileSketch, MergePreservesCountSumMinMax) {
  QuantileSketch a(32);
  QuantileSketch b(32);
  Rng rng(99);
  std::uint64_t sum = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = 1 + rng.next_below(1000);
    sum += v;
    (i % 2 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 3000u);
  EXPECT_EQ(a.sum(), sum);
  EXPECT_GE(a.min(), 1u);
  EXPECT_LE(a.max(), 1000u);
}

TEST(QuantileSketch, MergeIsAssociativeWithinCertifiedBounds) {
  // Bitwise associativity is not promised (compaction order differs), but
  // both associations must certify bounds that hold against the union.
  Rng rng(3);
  std::vector<std::uint64_t> data;
  QuantileSketch parts[3] = {QuantileSketch(32), QuantileSketch(32), QuantileSketch(32)};
  for (int i = 0; i < 9000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 16);
    data.push_back(v);
    parts[i % 3].record(v);
  }

  QuantileSketch left(32);   // (p0 + p1) + p2
  left.merge(parts[0]);
  left.merge(parts[1]);
  left.merge(parts[2]);
  QuantileSketch right(32);  // p0 + (p1 + p2)
  QuantileSketch inner(32);
  inner.merge(parts[1]);
  inner.merge(parts[2]);
  right.merge(parts[0]);
  right.merge(inner);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  expect_quantiles_within_bound(left, data);
  expect_quantiles_within_bound(right, data);
}

TEST(QuantileSketch, MergeIntoEmptyMatchesSource) {
  QuantileSketch src(16);
  for (std::uint64_t v = 0; v < 500; ++v) src.record(v * 3);
  QuantileSketch dst(16);
  dst.merge(src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.sum(), src.sum());
  EXPECT_EQ(dst.min(), src.min());
  EXPECT_EQ(dst.max(), src.max());
  for (const double p : {0.1, 0.5, 0.9}) EXPECT_EQ(dst.quantile(p), src.quantile(p));
}

TEST(QuantileSketch, QuantileReturnsRecordedValues) {
  // The sketch keeps real samples (never interpolates), so every reported
  // quantile must be a value that was actually recorded.
  QuantileSketch s(16);
  std::vector<std::uint64_t> data;
  Rng rng(21);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 30);
    data.push_back(v);
    s.record(v);
  }
  std::sort(data.begin(), data.end());
  for (const double p : {0.05, 0.5, 0.95, 0.999}) {
    EXPECT_TRUE(std::binary_search(data.begin(), data.end(), s.quantile(p))) << "p=" << p;
  }
}

TEST(QuantileSketch, ChunkMergeIsExecutionOrderInvariant) {
  // The serve-sim reduction pattern (oracle/serve.cpp): the stream is cut
  // into a *fixed* number of chunks, each chunk builds its own sketch, and
  // the chunks are merged into the result in chunk-index order.  Workers
  // may *execute* chunks in any order, so the merged sketch must depend
  // only on the chunk contents and the merge order — not on when each
  // chunk sketch was built.
  constexpr std::size_t kChunks = 16;
  Rng rng(31);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 8000; ++i) stream.push_back(rng.next_below(1u << 24));
  const std::size_t per = stream.size() / kChunks;

  auto build_chunk = [&](std::size_t c) {
    QuantileSketch s(64);
    for (std::size_t i = c * per; i < (c + 1) * per; ++i) s.record(stream[i]);
    return s;
  };

  // Execution order 0,1,2,...  vs reversed; slots keyed by chunk index.
  std::vector<QuantileSketch> forward(kChunks, QuantileSketch(64));
  for (std::size_t c = 0; c < kChunks; ++c) forward[c] = build_chunk(c);
  std::vector<QuantileSketch> backward(kChunks, QuantileSketch(64));
  for (std::size_t c = kChunks; c-- > 0;) backward[c] = build_chunk(c);

  QuantileSketch a(64);
  for (std::size_t c = 0; c < kChunks; ++c) a.merge(forward[c]);
  QuantileSketch b(64);
  for (std::size_t c = 0; c < kChunks; ++c) b.merge(backward[c]);

  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.stored_items(), b.stored_items());
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
  for (const double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(p), b.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, ResetClearsEverything) {
  QuantileSketch s(16);
  for (std::uint64_t v = 0; v < 1000; ++v) s.record(v);
  ASSERT_GT(s.rank_error_bound(), 0u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0u);
  EXPECT_EQ(s.stored_items(), 0u);
  EXPECT_EQ(s.rank_error_bound(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0u);
  s.record(7);  // usable again after reset
  EXPECT_EQ(s.quantile(0.5), 7u);
}

}  // namespace
}  // namespace hublab
