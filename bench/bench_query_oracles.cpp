/// \file bench_query_oracles.cpp
/// Experiment PRACT (DESIGN.md): "hub labeling in practice" (Section 1.1 of
/// the paper) -- microbenchmarks of exact distance-query strategies on
/// road-like and random sparse graphs, using google-benchmark.
///
/// Expected shape: hub-label queries are orders of magnitude faster than
/// Dijkstra-style searches, at the cost of preprocessed space -- the
/// tradeoff the paper's oracle discussion formalizes.
///
/// Unlike the table benches this one drives google-benchmark, so main()
/// registers the cases explicitly (capped iteration counts under --smoke)
/// and forwards only benchmark's own flags to its parser.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "algo/shortest_paths.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/pll.hpp"
#include "hub/simd_kernel.hpp"
#include "oracle/oracle.hpp"
#include "oracle/workload.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hublab {
namespace {

/// Pairs per workload; pair streams come from the same WorkloadGenerator
/// serve-sim serves (oracle/workload.hpp), generated once per family and
/// shared by every phase.  Power of two so the google-benchmark loops can
/// mask instead of dividing.
constexpr std::size_t kQueryPairs = 1024;
static_assert((kQueryPairs & (kQueryPairs - 1)) == 0);

struct Workload {
  Graph graph;
  HubLabeling labels;
  FlatHubLabeling flat;
  std::vector<std::pair<Vertex, Vertex>> queries;
};

const Workload& road_workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(1);
    wl.graph = gen::road_like(40, 40, 0.15, 10, rng);
    wl.labels = pruned_landmark_labeling(wl.graph);
    wl.flat = FlatHubLabeling(wl.labels);
    wl.queries =
        serve::WorkloadGenerator(wl.graph, serve::WorkloadKind::kUniform, 2).block(kQueryPairs);
    return wl;
  }();
  return w;
}

const Workload& sparse_workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(3);
    wl.graph = gen::connected_gnm(2000, 4000, rng);
    wl.labels = pruned_landmark_labeling(wl.graph);
    wl.flat = FlatHubLabeling(wl.labels);
    wl.queries =
        serve::WorkloadGenerator(wl.graph, serve::WorkloadKind::kUniform, 4).block(kQueryPairs);
    return wl;
  }();
  return w;
}

void bm_hub_query(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & (kQueryPairs - 1)];
    benchmark::DoNotOptimize(w.labels.query(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_flat_query(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & (kQueryPairs - 1)];
    benchmark::DoNotOptimize(w.flat.query(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_bidirectional(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & (kQueryPairs - 1)];
    benchmark::DoNotOptimize(bidirectional_distance(w.graph, u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_full_sssp(benchmark::State& state, const Workload& w) {
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [u, v] = w.queries[i++ & (kQueryPairs - 1)];
    benchmark::DoNotOptimize(sssp_distances(w.graph, u)[v]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_pll_construction(benchmark::State& state) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(2 * state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruned_landmark_labeling(g));
  }
}

void register_benchmarks(bool smoke) {
  using Fn = void (*)(benchmark::State&, const Workload&);
  struct QueryCase {
    const char* name;
    Fn fn;
    const Workload& (*workload)();
    std::int64_t smoke_iterations;  ///< 0 = let benchmark pick, even in smoke
  };
  const std::vector<QueryCase> cases{
      {"bm_hub_query/road40x40", &bm_hub_query, &road_workload, 256},
      {"bm_flat_query/road40x40", &bm_flat_query, &road_workload, 256},
      {"bm_bidirectional/road40x40", &bm_bidirectional, &road_workload, 16},
      {"bm_full_sssp/road40x40", &bm_full_sssp, &road_workload, 4},
      {"bm_hub_query/gnm2000", &bm_hub_query, &sparse_workload, 256},
      {"bm_flat_query/gnm2000", &bm_flat_query, &sparse_workload, 256},
      {"bm_bidirectional/gnm2000", &bm_bidirectional, &sparse_workload, 16},
      {"bm_full_sssp/gnm2000", &bm_full_sssp, &sparse_workload, 4},
  };
  for (const QueryCase& c : cases) {
    auto* b = benchmark::RegisterBenchmark(
        c.name, [fn = c.fn, wl = c.workload](benchmark::State& s) { fn(s, wl()); });
    if (smoke) {
      b->Iterations(c.smoke_iterations);
    } else if (std::strstr(c.name, "bm_full_sssp") != nullptr) {
      b->Iterations(200);
    }
  }
  auto* pll = benchmark::RegisterBenchmark("bm_pll_construction", &bm_pll_construction)
                  ->Unit(benchmark::kMillisecond);
  if (smoke) {
    pll->Arg(250)->Iterations(1);
  } else {
    pll->Arg(250)->Arg(500)->Arg(1000);
  }
}

/// Vector-label vs flat-label merge on the *same* labeling: equal answers
/// (checksummed) and a relative timing.  The gauge records flat time as a
/// percent of vector time — lower is better, so bench-compare's
/// increase-only gate fires exactly when the flat kernel's advantage
/// erodes.  Byte gauges expose the AoS-vs-SoA space cost side by side.
bool run_flat_phase(bench::Harness& harness, const char* family, const Workload& w) {
  const std::size_t passes = harness.smoke() ? 32 : 256;
  std::uint64_t vector_sum = 0;
  std::uint64_t flat_sum = 0;

  Timer vector_timer;
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& [u, v] : w.queries) {
      const Dist d = w.labels.query(u, v);
      if (d != kInfDist) vector_sum += d;
    }
  }
  const double vector_s = vector_timer.elapsed_s();

  Timer flat_timer;
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& [u, v] : w.queries) {
      const Dist d = w.flat.query(u, v);
      if (d != kInfDist) flat_sum += d;
    }
  }
  const double flat_s = flat_timer.elapsed_s();

  const double pct = vector_s > 0.0 ? 100.0 * flat_s / vector_s : 100.0;
  metrics::Registry& reg = metrics::registry();
  reg.gauge(std::string("pract.flat_query_pct_of_vector.") + family)
      .set(static_cast<std::int64_t>(pct));
  reg.gauge(std::string("pract.label_bytes.") + family)
      .set(static_cast<std::int64_t>(w.labels.memory_bytes()));
  reg.gauge(std::string("pract.flat_label_bytes.") + family)
      .set(static_cast<std::int64_t>(w.flat.memory_bytes()));
  std::printf("flat/%s: vector=%.3fms flat=%.3fms (%.0f%%), bytes %zu -> %zu, checksums %s\n",
              family, vector_s * 1e3, flat_s * 1e3, pct, w.labels.memory_bytes(),
              w.flat.memory_bytes(), vector_sum == flat_sum ? "agree" : "DISAGREE");
  return vector_sum == flat_sum;
}

/// Batched vs per-query flat kernel on the same pairs: the headline gauge
/// `pract.batch_query_pct_of_scalar.<family>` records the batched block's
/// wall time as a percent of the one-query-at-a-time loop (lower is
/// better; bench-compare's increase-only gate fires when the SIMD kernel's
/// advantage erodes).  Before timing, every host-supported dispatch tier
/// is swept over the full block and checked byte-identical — distance AND
/// meeting hub — against per-query query_with_hub.
bool run_batch_phase(bench::Harness& harness, const char* family, const Workload& w) {
  const std::size_t passes = harness.smoke() ? 32 : 256;
  const std::span<const std::pair<Vertex, Vertex>> pairs(w.queries);
  std::vector<HubQueryResult> answers(w.queries.size());

  bool identical = true;
  for (const simd::Tier tier : simd::supported_tiers()) {
    w.flat.query_batch_tier(pairs, answers, tier);
    for (std::size_t i = 0; i < w.queries.size(); ++i) {
      const HubQueryResult ref = w.flat.query_with_hub(w.queries[i].first, w.queries[i].second);
      if (answers[i].dist != ref.dist || answers[i].meeting_hub != ref.meeting_hub) {
        std::printf("batch/%s: tier=%s pair %zu DISAGREES with query_with_hub\n", family,
                    simd::tier_name(tier), i);
        identical = false;
        break;
      }
    }
  }

  std::uint64_t scalar_sum = 0;
  Timer scalar_timer;
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& [u, v] : w.queries) {
      const Dist d = w.flat.query(u, v);
      if (d != kInfDist) scalar_sum += d;
    }
  }
  const double scalar_s = scalar_timer.elapsed_s();

  std::uint64_t batch_sum = 0;
  Timer batch_timer;
  for (std::size_t p = 0; p < passes; ++p) {
    w.flat.query_batch(pairs, answers);
    for (const HubQueryResult& r : answers) {
      if (r.dist != kInfDist) batch_sum += r.dist;
    }
  }
  const double batch_s = batch_timer.elapsed_s();

  const double pct = scalar_s > 0.0 ? 100.0 * batch_s / scalar_s : 100.0;
  metrics::Registry& reg = metrics::registry();
  reg.gauge("pract.batch_query_pct_of_scalar." + std::string(family))
      .set(static_cast<std::int64_t>(pct));
  reg.gauge("pract.query_pairs." + std::string(family))
      .set(static_cast<std::int64_t>(w.queries.size()));
  std::printf("batch/%s: scalar=%.3fms batch=%.3fms (%.0f%%), checksums %s\n", family,
              scalar_s * 1e3, batch_s * 1e3, pct, scalar_sum == batch_sum ? "agree" : "DISAGREE");
  return identical && scalar_sum == batch_sum;
}

/// With --perf-counters on a perf-capable host: LLC misses per thousand
/// hub queries over a fixed sweep, the cache-residency number behind the
/// flat-vs-vector comparison (a hub query is a scan of two label arrays,
/// so LLC misses *are* its cost model).  Silently skipped when counters
/// are unavailable — the gauge simply doesn't appear.
void run_llc_phase(bench::Harness& harness, const char* family, const Workload& w) {
  if (!perf::enabled()) return;
  const std::size_t passes = harness.smoke() ? 8 : 64;
  perf::HwCounters hw;
  std::uint64_t queries = 0;
  {
    perf::ScopedHw scope(hw);
    for (std::size_t p = 0; p < passes; ++p) {
      for (const auto& [u, v] : w.queries) {
        benchmark::DoNotOptimize(w.flat.query(u, v));
        ++queries;
      }
    }
  }
  if (!hw.valid || queries == 0) return;
  const double per_kquery =
      1000.0 * static_cast<double>(hw.llc_misses) / static_cast<double>(queries);
  metrics::registry()
      .gauge(std::string("pract.llc_miss_per_kquery.") + family)
      .set(static_cast<std::int64_t>(per_kquery));
  std::printf("llc/%s: %llu queries, %.1f LLC misses per kquery (ipc %.2f)\n", family,
              static_cast<unsigned long long>(queries), per_kquery, hw.ipc());
}

}  // namespace
}  // namespace hublab

int main(int argc, char** argv) {
  hublab::bench::Harness harness(
      argc, argv, "query_oracles",
      "Experiment PRACT: exact distance-query microbenchmarks (google-benchmark)");

  // Forward only benchmark's own flags; the harness flags are not its.
  std::vector<char*> bm_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) bm_argv.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());

  hublab::register_benchmarks(harness.smoke());
  harness.add_graph("road-like-40x40", hublab::road_workload().graph.num_vertices(),
                    hublab::road_workload().graph.num_edges());
  harness.add_graph("connected-gnm", hublab::sparse_workload().graph.num_vertices(),
                    hublab::sparse_workload().graph.num_edges());

  std::size_t ran = 0;
  {
    auto run_span = harness.phase("run-benchmarks");
    ran = benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();

  bool flat_ok = true;
  {
    auto flat_span = harness.phase("flat-vs-vector");
    flat_ok = hublab::run_flat_phase(harness, "road40x40", hublab::road_workload());
    flat_ok = hublab::run_flat_phase(harness, "gnm2000", hublab::sparse_workload()) && flat_ok;
  }
  bool batch_ok = true;
  {
    auto batch_span = harness.phase("batch-vs-scalar");
    std::printf("batch kernel: tier=%s\n",
                hublab::simd::tier_name(hublab::simd::active_tier()));
    batch_ok = hublab::run_batch_phase(harness, "road40x40", hublab::road_workload());
    batch_ok = hublab::run_batch_phase(harness, "gnm2000", hublab::sparse_workload()) && batch_ok;
  }
  {
    auto llc_span = harness.phase("llc-miss-scan");
    hublab::run_llc_phase(harness, "road40x40", hublab::road_workload());
    hublab::run_llc_phase(harness, "gnm2000", hublab::sparse_workload());
  }
  return harness.finish("PRACT microbench", ran > 0 && flat_ok && batch_ok);
}
