file(REMOVE_RECURSE
  "../bench/bench_sumindex_protocol"
  "../bench/bench_sumindex_protocol.pdb"
  "CMakeFiles/bench_sumindex_protocol.dir/bench_sumindex_protocol.cpp.o"
  "CMakeFiles/bench_sumindex_protocol.dir/bench_sumindex_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sumindex_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
