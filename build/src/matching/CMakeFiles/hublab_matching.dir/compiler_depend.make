# Empty compiler generated dependencies file for hublab_matching.
# This may be replaced when dependencies are built.
