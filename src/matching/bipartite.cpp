#include "matching/bipartite.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace hublab {

namespace {

constexpr std::uint32_t kInfLevel = std::numeric_limits<std::uint32_t>::max();

/// BFS phase of Hopcroft-Karp: layer the free left vertices; true if an
/// augmenting path exists.
bool hk_bfs(const BipartiteGraph& g, const std::vector<std::uint32_t>& left_match,
            const std::vector<std::uint32_t>& right_match, std::vector<std::uint32_t>& level) {
  std::queue<std::uint32_t> q;
  for (std::uint32_t u = 0; u < g.num_left(); ++u) {
    if (left_match[u] == kUnmatched) {
      level[u] = 0;
      q.push(u);
    } else {
      level[u] = kInfLevel;
    }
  }
  bool found = false;
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t r : g.neighbors(u)) {
      const std::uint32_t w = right_match[r];
      if (w == kUnmatched) {
        found = true;
      } else if (level[w] == kInfLevel) {
        level[w] = level[u] + 1;
        q.push(w);
      }
    }
  }
  return found;
}

/// DFS phase: find a vertex-disjoint augmenting path from left vertex u.
bool hk_dfs(const BipartiteGraph& g, std::uint32_t u, std::vector<std::uint32_t>& left_match,
            std::vector<std::uint32_t>& right_match, std::vector<std::uint32_t>& level) {
  for (std::uint32_t r : g.neighbors(u)) {
    const std::uint32_t w = right_match[r];
    if (w == kUnmatched || (level[w] == level[u] + 1 && hk_dfs(g, w, left_match, right_match, level))) {
      left_match[u] = r;
      right_match[r] = u;
      return true;
    }
  }
  level[u] = kInfLevel;  // dead end; prune for this phase
  return false;
}

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& g) {
  Matching m;
  m.left_match.assign(g.num_left(), kUnmatched);
  m.right_match.assign(g.num_right(), kUnmatched);
  std::vector<std::uint32_t> level(g.num_left());
  while (hk_bfs(g, m.left_match, m.right_match, level)) {
    for (std::uint32_t u = 0; u < g.num_left(); ++u) {
      if (m.left_match[u] == kUnmatched) {
        hk_dfs(g, u, m.left_match, m.right_match, level);
      }
    }
  }
  return m;
}

VertexCover koenig_cover(const BipartiteGraph& g, const Matching& matching) {
  HUBLAB_ASSERT(matching.left_match.size() == g.num_left());
  HUBLAB_ASSERT(matching.right_match.size() == g.num_right());

  // Alternating BFS from free left vertices.  Z = reachable set;
  // cover = (L \ Z_L) union (R intersect Z_R).
  std::vector<bool> visited_left(g.num_left(), false);
  std::vector<bool> visited_right(g.num_right(), false);
  std::queue<std::uint32_t> q;
  for (std::uint32_t u = 0; u < g.num_left(); ++u) {
    if (matching.left_match[u] == kUnmatched) {
      visited_left[u] = true;
      q.push(u);
    }
  }
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint32_t r : g.neighbors(u)) {
      if (matching.left_match[u] == r) continue;  // follow non-matching edges L -> R
      if (!visited_right[r]) {
        visited_right[r] = true;
        const std::uint32_t w = matching.right_match[r];
        if (w != kUnmatched && !visited_left[w]) {  // matching edge R -> L
          visited_left[w] = true;
          q.push(w);
        }
      }
    }
  }

  VertexCover cover;
  for (std::uint32_t u = 0; u < g.num_left(); ++u) {
    if (!visited_left[u]) cover.left.push_back(u);
  }
  for (std::uint32_t r = 0; r < g.num_right(); ++r) {
    if (visited_right[r]) cover.right.push_back(r);
  }
  return cover;
}

bool is_vertex_cover(const BipartiteGraph& g, const VertexCover& cover) {
  std::vector<bool> in_left(g.num_left(), false);
  std::vector<bool> in_right(g.num_right(), false);
  for (auto u : cover.left) {
    if (u >= g.num_left()) return false;
    in_left[u] = true;
  }
  for (auto r : cover.right) {
    if (r >= g.num_right()) return false;
    in_right[r] = true;
  }
  for (std::uint32_t u = 0; u < g.num_left(); ++u) {
    if (in_left[u]) continue;
    for (std::uint32_t r : g.neighbors(u)) {
      if (!in_right[r]) return false;
    }
  }
  return true;
}

bool is_matching(const BipartiteGraph& g, const Matching& m) {
  if (m.left_match.size() != g.num_left() || m.right_match.size() != g.num_right()) return false;
  for (std::uint32_t u = 0; u < g.num_left(); ++u) {
    const std::uint32_t r = m.left_match[u];
    if (r == kUnmatched) continue;
    if (r >= g.num_right() || m.right_match[r] != u) return false;
    if (std::find(g.neighbors(u).begin(), g.neighbors(u).end(), r) == g.neighbors(u).end()) {
      return false;
    }
  }
  for (std::uint32_t r = 0; r < g.num_right(); ++r) {
    const std::uint32_t u = m.right_match[r];
    if (u == kUnmatched) continue;
    if (u >= g.num_left() || m.left_match[u] != r) return false;
  }
  return true;
}

namespace {

std::size_t brute_rec(const BipartiteGraph& g, std::uint32_t u, std::vector<bool>& right_used) {
  if (u == g.num_left()) return 0;
  // Option 1: leave u unmatched.
  std::size_t best = brute_rec(g, u + 1, right_used);
  // Option 2: match u to any free neighbor.
  for (std::uint32_t r : g.neighbors(u)) {
    if (!right_used[r]) {
      right_used[r] = true;
      best = std::max(best, 1 + brute_rec(g, u + 1, right_used));
      right_used[r] = false;
    }
  }
  return best;
}

}  // namespace

std::size_t brute_force_max_matching(const BipartiteGraph& g) {
  HUBLAB_ASSERT_MSG(g.num_left() <= 20, "brute force limited to tiny graphs");
  std::vector<bool> right_used(g.num_right(), false);
  return brute_rec(g, 0, right_used);
}

}  // namespace hublab
