/// \file bench_lowerbound_certify.cpp
/// Experiments THM2.1 + LEM2.2 (DESIGN.md): certify Theorem 2.1 on a sweep
/// of gadget instances.
///
/// For every (b, l):
///   (i)   instance sizes of H_{b,l} and its degree-3 expansion G_{b,l};
///   (ii)  max degree of G is 3;
///   (iii) Lemma 2.2 verified (unique shortest paths through the midpoint);
///         the counting bound then certifies a lower bound on the average
///         hub-set size of ANY labeling; for small instances we run PLL and
///         confirm the measured average respects (and exceeds) the bound.

#include <cstdio>

#include "algo/shortest_paths.hpp"
#include "bench/harness.hpp"
#include "graph/transforms.hpp"
#include "hub/pll.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "lowerbound_certify",
                         "Experiment THM2.1/LEM2.2: certifying the lower-bound gadget family");

  const std::vector<lb::GadgetParams> full_sweep{
      {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {1, 2}, {2, 2}, {3, 2}, {4, 2}, {1, 3}, {2, 3}, {3, 3},
  };
  const std::vector<lb::GadgetParams> smoke_sweep{{1, 1}, {2, 1}, {1, 2}, {2, 2}};
  const auto& sweep = harness.smoke() ? smoke_sweep : full_sweep;

  TextTable table({"b", "l", "n_H", "m_H", "triplets T", "lemma2.2", "hop diam",
                   "certified avg lb (H)", "PLL avg (H)", "ratio"});
  bool all_ok = true;

  auto sweep_span = harness.phase("certify-H-sweep");
  for (const auto& p : sweep) {
    const lb::LayeredGadget h(p);
    harness.add_graph("layered-gadget", h.graph().num_vertices(), h.graph().num_edges());
    const lb::Lemma22Report report = verify_lemma_2_2(h, /*max_sources=*/256, /*seed=*/1);
    all_ok = all_ok && report.ok();

    const std::uint64_t n_h = h.graph().num_vertices();
    // Exact hop diameter for small instances, 4l bound otherwise.
    std::uint64_t hop_diam = p.hop_diameter_bound();
    std::string diam_str;
    if (n_h <= 2000) {
      hop_diam = diameter_exact(unweighted_copy(h.graph()));
      diam_str = fmt_u64(hop_diam);
    } else {
      diam_str = "<=" + fmt_u64(hop_diam);
    }
    const double bound =
        lb::certified_avg_hub_lower_bound(p.num_triplets(), n_h, hop_diam);

    std::string pll_avg = "-";
    std::string ratio = "-";
    if (n_h <= 4000) {
      const HubLabeling pll = pruned_landmark_labeling(h.graph());
      pll_avg = fmt_double(pll.average_label_size(), 2);
      if (bound > 0) ratio = fmt_double(pll.average_label_size() / bound, 2);
      all_ok = all_ok && (pll.average_label_size() >= bound);
    }

    table.add_row({fmt_u64(p.b), fmt_u64(p.ell), fmt_u64(n_h), fmt_u64(h.graph().num_edges()),
                   fmt_u64(p.num_triplets()), report.ok() ? "ok" : "FAIL", diam_str,
                   fmt_double(bound, 3), pll_avg, ratio});
  }
  sweep_span.end();
  harness.print(table,
                "Theorem 2.1 certification on H_{b,l} (PLL average must be >= certified bound)");

  // Degree-3 expansions: claim (ii) of Theorem 2.1 plus cross-level
  // distance preservation spot checks.
  auto g3_span = harness.phase("certify-G-degree3");
  TextTable g3table({"b", "l", "n_G", "m_G", "max deg", "lemma2.2 on G",
                     "certified avg lb (G)"});
  for (const auto& p : std::vector<lb::GadgetParams>{{1, 1}, {2, 1}, {1, 2}, {2, 2}}) {
    const lb::LayeredGadget h(p);
    const lb::Degree3Gadget g3(h);
    harness.add_graph("degree3-gadget", g3.graph().num_vertices(), g3.graph().num_edges());
    const lb::Lemma22Report report = verify_lemma_2_2_degree3(h, g3, /*max_sources=*/64, 1);
    all_ok = all_ok && report.ok() && g3.graph().max_degree() <= 3;
    g3table.add_row({fmt_u64(p.b), fmt_u64(p.ell), fmt_u64(g3.graph().num_vertices()),
                     fmt_u64(g3.graph().num_edges()), fmt_u64(g3.graph().max_degree()),
                     report.ok() ? "ok" : "FAIL",
                     fmt_sci(lb::certified_bound_g(p, g3.graph().num_vertices()), 2)});
  }
  g3_span.end();
  harness.print(g3table, "Theorem 2.1 (i)-(iii) on the degree-3 expansion G_{b,l}");

  return harness.finish("THM2.1 certification", all_ok);
}
