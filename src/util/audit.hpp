#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file audit.hpp
/// Deep invariant audits.
///
/// `HUBLAB_ASSERT` guards cheap preconditions on every call; an *audit* is
/// the expensive counterpart: an O(n)-or-worse walk over a whole structure
/// that re-derives its invariants from scratch (CSR well-formedness, label
/// sortedness, cover properties, gadget layer structure, ...).  Audits never
/// abort -- they collect every violation into an AuditReport so one run of
/// the randomized self-check test reports all drift at once, and so
/// sanitizer builds exercise the deep read paths of each module.
///
/// Contract for per-module checkers (see docs/correctness.md):
///   * named `audit_<structure>`, declared in the structure's own header;
///   * read-only: auditing a structure never mutates it;
///   * every issue message names the offending element and both the expected
///     and the observed value;
///   * a default-constructed (empty) structure audits clean.

namespace hublab {

/// One violated invariant found by a deep audit.
struct AuditIssue {
  std::string context;  ///< which structure/module, e.g. "graph" or "rs"
  std::string message;  ///< what is wrong, with offending values

  [[nodiscard]] std::string to_string() const { return context + ": " + message; }
};

/// Accumulates audit issues.  Recording caps at `kMaxRecorded` messages so a
/// completely corrupt structure cannot allocate without bound, but the total
/// violation count stays exact.
class AuditReport {
 public:
  static constexpr std::size_t kMaxRecorded = 64;

  /// Record a failed invariant.
  void fail(const std::string& context, const std::string& message);

  /// Record a failure iff `ok` is false; returns `ok` so callers can guard
  /// dependent checks:  `if (report.require(...)) { ...deeper checks... }`.
  bool require(bool ok, const std::string& context, const std::string& message);

  /// True when no invariant was violated.
  [[nodiscard]] bool ok() const { return num_issues_ == 0; }

  /// Total number of violations found (may exceed issues().size()).
  [[nodiscard]] std::size_t num_issues() const { return num_issues_; }

  /// The first kMaxRecorded violations, in discovery order.
  [[nodiscard]] const std::vector<AuditIssue>& issues() const { return issues_; }

  /// Human-readable summary, one line per recorded issue.
  [[nodiscard]] std::string to_string() const;

  /// Fold another report's issues into this one.
  void merge(const AuditReport& other);

 private:
  std::vector<AuditIssue> issues_;
  std::size_t num_issues_ = 0;
};

}  // namespace hublab
