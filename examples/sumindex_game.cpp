/// \file sumindex_game.cpp
/// Play one round of the Sum-Index game of Theorem 1.6, narrated.
///
/// Usage: sumindex_game [b] [l] [seed]    (defaults: b=3 l=2 seed=42)
///
/// Alice and Bob share a random bitstring S of length m = (s/2)^l; Alice
/// draws a, Bob draws b.  Both build the masked gadget G'_{b,l} (midlevel
/// vertex v_{l,y} kept iff S[repr(y)] = 1), label it deterministically, and
/// send one label each.  The referee -- who never sees S -- recovers
/// S[(a+b) mod m] from the two labels.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "hub/pll.hpp"
#include "sumindex/sumindex.hpp"
#include "util/rng.hpp"

using namespace hublab;

namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

}  // namespace

int main(int argc, char** argv) {
  lb::GadgetParams params{3, 2};
  std::uint64_t seed = 42;
  if (argc > 1) params.b = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) params.ell = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) seed = static_cast<std::uint64_t>(std::atoll(argv[3]));

  const auto scheme = std::make_shared<HubDistanceLabeling>(&pll_natural, "pll");
  const si::GadgetProtocol protocol(params, scheme);
  const std::uint64_t m = protocol.universe_size();

  Rng rng(seed);
  std::vector<std::uint8_t> S(m);
  for (auto& bit : S) bit = static_cast<std::uint8_t>(rng.next_below(2));
  const std::uint64_t a = rng.next_below(m);
  const std::uint64_t b = rng.next_below(m);

  std::printf("Sum-Index over m = %llu (gadget H'_{%u,%u})\n",
              static_cast<unsigned long long>(m), params.b, params.ell);
  std::printf("shared S = ");
  for (auto bit : S) std::printf("%d", bit);
  std::printf("\nAlice holds a = %llu, Bob holds b = %llu; target bit S[(a+b)%%m] = S[%llu] = %d\n",
              static_cast<unsigned long long>(a), static_cast<unsigned long long>(b),
              static_cast<unsigned long long>((a + b) % m), S[(a + b) % m]);

  const si::Message ma = protocol.alice(S, a);
  const si::Message mb = protocol.bob(S, b);
  std::printf("Alice's message: %zu label bits + index (total %zu bits)\n",
              ma.payload.size_bits(), ma.total_bits(m));
  std::printf("Bob's   message: %zu label bits + index (total %zu bits)\n",
              mb.payload.size_bits(), mb.total_bits(m));
  std::printf("(trivial protocol would ship all of S: %llu bits)\n",
              static_cast<unsigned long long>(m + ceil_log2(m < 2 ? 2 : m)));

  const int out = protocol.referee(ma, mb);
  std::printf("Referee decodes: %d  ->  %s\n", out,
              out == (S[(a + b) % m] != 0 ? 1 : 0) ? "CORRECT" : "WRONG");

  // A quick batch to show it is not luck.
  const si::ProtocolStats stats = si::evaluate_protocol(protocol, 32, seed + 1, 8);
  std::printf("batch check: %llu/%llu correct\n",
              static_cast<unsigned long long>(stats.correct),
              static_cast<unsigned long long>(stats.trials));
  return stats.all_correct() ? 0 : 1;
}
