# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/induced_matching_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/hub_labeling_test[1]_include.cmake")
include("/root/repo/build/tests/pll_test[1]_include.cmake")
include("/root/repo/build/tests/constructions_test[1]_include.cmake")
include("/root/repo/build/tests/canonical_approx_test[1]_include.cmake")
include("/root/repo/build/tests/structured_test[1]_include.cmake")
include("/root/repo/build/tests/highway_test[1]_include.cmake")
include("/root/repo/build/tests/contraction_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/goal_directed_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/theory_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_cli_test[1]_include.cmake")
include("/root/repo/build/tests/upperbound_test[1]_include.cmake")
include("/root/repo/build/tests/lowerbound_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_scheme_test[1]_include.cmake")
include("/root/repo/build/tests/sumindex_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
