/// \file no_pragma.hpp
/// Fixture: pragma-once -- header missing the pragma.

namespace fixture {}
