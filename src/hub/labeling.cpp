#include "hub/labeling.hpp"

#include <algorithm>
#include <string>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "util/rng.hpp"

namespace hublab {

void HubLabeling::finalize() {
  if (finalized_) return;
  for (auto& label : labels_) {
    std::sort(label.begin(), label.end(), [](const HubEntry& a, const HubEntry& b) {
      return a.hub != b.hub ? a.hub < b.hub : a.dist < b.dist;
    });
    label.erase(std::unique(label.begin(), label.end(),
                            [](const HubEntry& a, const HubEntry& b) { return a.hub == b.hub; }),
                label.end());
    label.shrink_to_fit();
  }
  finalized_ = true;
}

Dist HubLabeling::query(Vertex u, Vertex v) const { return query_with_hub(u, v).dist; }

HubQueryResult HubLabeling::query_with_hub(Vertex u, Vertex v) const {
  HUBLAB_ASSERT_RANGE(u, labels_.size());
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  HUBLAB_ASSERT_MSG(finalized_, "HubLabeling::finalize() must be called before querying");
  const auto& a = labels_[u];
  const auto& b = labels_[v];
  HubQueryResult best;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub < b[j].hub) {
      ++i;
    } else if (a[i].hub > b[j].hub) {
      ++j;
    } else {
      const Dist d = a[i].dist + b[j].dist;
      if (d < best.dist) {
        best.dist = d;
        best.meeting_hub = a[i].hub;
      }
      ++i;
      ++j;
    }
  }
  return best;
}

bool HubLabeling::has_hub(Vertex v, Vertex hub) const {
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  const auto& label = labels_[v];
  const auto it = std::lower_bound(label.begin(), label.end(), hub,
                                   [](const HubEntry& e, Vertex h) { return e.hub < h; });
  return it != label.end() && it->hub == hub;
}

std::size_t HubLabeling::total_hubs() const {
  std::size_t total = 0;
  for (const auto& label : labels_) total += label.size();
  return total;
}

double HubLabeling::average_label_size() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(total_hubs()) / static_cast<double>(labels_.size());
}

std::size_t HubLabeling::max_label_size() const {
  std::size_t best = 0;
  for (const auto& label : labels_) best = std::max(best, label.size());
  return best;
}

AuditReport HubLabeling::audit(const Graph& g, std::size_t num_samples,
                               std::uint64_t seed) const {
  AuditReport report;
  const std::string ctx = "hub-labeling";
  const std::size_t n = labels_.size();

  if (!report.require(n == g.num_vertices(), ctx,
                      "labeling has " + std::to_string(n) + " vertices, graph has " +
                          std::to_string(g.num_vertices()))) {
    return report;
  }
  report.require(finalized_ || total_hubs() == 0, ctx,
                 "labeling has entries but finalize() was not called since the last add_hub()");

  for (Vertex v = 0; v < n; ++v) {
    const auto& label = labels_[v];
    for (std::size_t i = 0; i < label.size(); ++i) {
      const std::string entry = "label S(" + std::to_string(v) + ") entry #" + std::to_string(i);
      report.require(label[i].hub < n, ctx,
                     entry + " hub " + std::to_string(label[i].hub) + " out of range, n=" +
                         std::to_string(n));
      if (i > 0) {
        report.require(label[i - 1].hub < label[i].hub, ctx,
                       entry + " hub " + std::to_string(label[i].hub) +
                           " not strictly after previous hub " +
                           std::to_string(label[i - 1].hub) + " (unsorted or duplicate)");
      }
      if (label[i].hub == v) {
        report.require(label[i].dist == 0, ctx,
                       entry + " self-hub distance expected 0, observed " +
                           std::to_string(label[i].dist));
      }
    }
  }
  if (!report.ok() || num_samples == 0 || n == 0) return report;

  // Sampled cover property: entries are exact and sampled pairs query exact.
  Rng rng(seed);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const std::vector<Dist> dist_u = sssp_distances(g, u);
    for (const HubEntry& e : labels_[u]) {
      report.require(dist_u[e.hub] == e.dist, ctx,
                     "S(" + std::to_string(u) + ") stores dist " + std::to_string(e.dist) +
                         " to hub " + std::to_string(e.hub) + ", true distance is " +
                         std::to_string(dist_u[e.hub]));
    }
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (dist_u[v] == kInfDist) continue;
    const Dist answered = query(u, v);
    report.require(answered == dist_u[v], ctx,
                   "query(" + std::to_string(u) + ", " + std::to_string(v) + ") = " +
                       (answered == kInfDist ? std::string("inf (uncovered pair)")
                                             : std::to_string(answered)) +
                       ", true distance is " + std::to_string(dist_u[v]));
  }
  return report;
}

std::optional<LabelingDefect> verify_labeling(const Graph& g, const HubLabeling& labeling,
                                              const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n && truth.num_vertices() == n);
  for (Vertex v = 0; v < n; ++v) {
    for (const HubEntry& e : labeling.label(v)) {
      if (e.hub >= n || truth.at(v, e.hub) != e.dist) {
        return LabelingDefect{LabelingDefect::Kind::kWrongDistance, v, e.hub, e.dist,
                              e.hub < n ? truth.at(v, e.hub) : kInfDist};
      }
    }
  }
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u; v < n; ++v) {
      const Dist actual = truth.at(u, v);
      if (actual == kInfDist) continue;
      const Dist answered = labeling.query(u, v);
      if (answered != actual) {
        return LabelingDefect{LabelingDefect::Kind::kUncoveredPair, u, v, answered, actual};
      }
    }
  }
  return std::nullopt;
}

std::optional<LabelingDefect> verify_labeling_sampled(const Graph& g, const HubLabeling& labeling,
                                                      std::size_t num_samples,
                                                      std::uint64_t seed) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n);
  if (n == 0) return std::nullopt;
  Rng rng(seed);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto dist_u = sssp_distances(g, u);
    // Check u's own entries while we have its distances.
    for (const HubEntry& e : labeling.label(u)) {
      if (e.hub >= n || dist_u[e.hub] != e.dist) {
        return LabelingDefect{LabelingDefect::Kind::kWrongDistance, u, e.hub, e.dist,
                              e.hub < n ? dist_u[e.hub] : kInfDist};
      }
    }
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (dist_u[v] == kInfDist) continue;
    const Dist answered = labeling.query(u, v);
    if (answered != dist_u[v]) {
      return LabelingDefect{LabelingDefect::Kind::kUncoveredPair, u, v, answered, dist_u[v]};
    }
  }
  return std::nullopt;
}

HubLabeling monotone_closure(const Graph& g, const HubLabeling& labeling) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n);
  HubLabeling closed(n);
  for (Vertex v = 0; v < n; ++v) {
    const SsspResult tree = sssp(g, v);
    // Mark every tree ancestor of every hub; collect marked vertices.
    std::vector<bool> marked(n, false);
    for (const HubEntry& e : labeling.label(v)) {
      HUBLAB_ASSERT_MSG(e.hub < n && tree.dist[e.hub] == e.dist,
                        "monotone_closure requires exact-distance labels");
      for (Vertex x = e.hub; x != kInvalidVertex && !marked[x]; x = tree.parent[x]) {
        marked[x] = true;
        if (x == v) break;
      }
    }
    marked[v] = true;  // v always belongs to its own closed label
    for (Vertex x = 0; x < n; ++x) {
      if (marked[x]) closed.add_hub(v, x, tree.dist[x]);
    }
  }
  closed.finalize();
  return closed;
}

}  // namespace hublab
