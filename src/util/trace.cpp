#include "util/trace.hpp"

#include <ostream>

#include "util/assert.hpp"
#include "util/flightrec.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace hublab {

namespace {

/// Name-wise counter difference; both inputs are sorted by name (the
/// registry guarantees it).  Counters registered mid-span appear with their
/// full value; zero deltas are dropped.
std::vector<metrics::CounterSnapshot> snapshot_delta(
    const std::vector<metrics::CounterSnapshot>& before,
    const std::vector<metrics::CounterSnapshot>& after) {
  std::vector<metrics::CounterSnapshot> delta;
  std::size_t i = 0;
  for (const auto& a : after) {
    while (i < before.size() && before[i].name < a.name) ++i;
    const std::uint64_t base =
        (i < before.size() && before[i].name == a.name) ? before[i].value : 0;
    if (a.value != base) delta.push_back({a.name, a.value - base});
  }
  return delta;
}

}  // namespace

Tracer::Tracer(metrics::Registry& reg) : registry_(reg) {}

Tracer::Span Tracer::span(std::string name) {
  const std::size_t parent = open_stack_.empty() ? kNoParent : open_stack_.back();
  Record rec;
  rec.name = std::move(name);
  rec.start_s = timer_.elapsed_s();
  rec.depth = static_cast<int>(open_stack_.size());
  rec.parent = parent;
  rec.tid = static_cast<std::uint64_t>(par::worker_index());
  records_.push_back(std::move(rec));
  const std::size_t index = records_.size() - 1;
  fr::record(fr::EventKind::kSpanBegin, records_[index].name.c_str(), index);
  open_stack_.push_back(index);
  open_snapshots_.push_back(registry_.counters());
  open_hw_.push_back(perf::enabled() ? perf::read_thread() : perf::HwCounters{});
  return Span(this, index);
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  tracer_->end_span(index_);
  tracer_ = nullptr;
}

void Tracer::end_span(std::size_t index) {
  if (index >= records_.size() || !records_[index].open) return;  // cleared or stale
  HUBLAB_ASSERT_MSG(!open_stack_.empty() && open_stack_.back() == index,
                    "Tracer spans must close LIFO");
  Record& rec = records_[index];
  rec.dur_s = timer_.elapsed_s() - rec.start_s;
  rec.counter_deltas = snapshot_delta(open_snapshots_.back(), registry_.counters());
  const perf::HwCounters& begin = open_hw_.back();
  if (begin.valid) {
    rec.hw = perf::read_thread().minus(begin);
  }
  rec.open = false;
  fr::record(fr::EventKind::kSpanEnd, rec.name.c_str(), index);
  open_stack_.pop_back();
  open_snapshots_.pop_back();
  open_hw_.pop_back();
}

void Tracer::clear() {
  records_.clear();
  open_stack_.clear();
  open_snapshots_.clear();
  open_hw_.clear();
}

void Tracer::write_tree(std::ostream& out) const {
  for (const Record& rec : records_) {
    for (int i = 0; i < rec.depth; ++i) out << "  ";
    out << rec.name << "  ";
    if (rec.open) {
      out << "(open)";
    } else {
      out << fmt_double(rec.dur_s * 1e3, 3) << " ms";
    }
    for (const auto& d : rec.counter_deltas) out << "  " << d.name << " +" << d.value;
    out << "\n";
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  JsonWriter w(out, 0);
  w.begin_object().key("traceEvents").begin_array();
  for (const Record& rec : records_) {
    if (rec.open) continue;  // incomplete spans have no duration
    w.begin_object()
        .kv("name", std::string_view(rec.name))
        .kv("ph", "X")
        .kv("ts", rec.start_s * 1e6)
        .kv("dur", rec.dur_s * 1e6)
        .kv("pid", std::uint64_t{0})
        .kv("tid", rec.tid);
    w.key("args").begin_object();
    for (const auto& d : rec.counter_deltas) w.kv(std::string_view(d.name), d.value);
    w.end_object();
    w.end_object();
  }
  w.end_array().end_object();
}

}  // namespace hublab
