file(REMOVE_RECURSE
  "CMakeFiles/theory_bounds_test.dir/theory_bounds_test.cpp.o"
  "CMakeFiles/theory_bounds_test.dir/theory_bounds_test.cpp.o.d"
  "theory_bounds_test"
  "theory_bounds_test.pdb"
  "theory_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
