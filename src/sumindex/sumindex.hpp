#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "labeling/distance_labeling.hpp"
#include "lowerbound/gadget.hpp"
#include "util/bitstream.hpp"

/// \file sumindex.hpp
/// The Sum-Index communication problem (Definition 1.5 of the paper) and
/// the reduction of Theorem 1.6: any distance labeling of sparse graphs
/// yields a simultaneous-messages protocol for Sum-Index, so distance
/// labels of the gadget family must be at least SUMINDEX(m) / 2^{Theta(
/// sqrt(log n))} bits.
///
/// Problem: Alice and Bob both know S in {0,1}^m; Alice privately holds a,
/// Bob privately holds b (both in [0, m)).  Each simultaneously sends one
/// message to a referee who must output S[(a+b) mod m].  The referee never
/// sees S, a or b directly -- only the two messages.

namespace hublab::si {

/// One player's message: an opaque payload plus the player's own index
/// (the index costs ceil(log2 m) bits and is part of the message).
struct Message {
  BitString payload;
  std::uint64_t index = 0;

  [[nodiscard]] std::size_t total_bits(std::uint64_t m) const {
    return payload.size_bits() + ceil_log2(m < 2 ? 2 : m);
  }
};

/// A simultaneous-messages protocol for Sum-Index over {0,1}^m.
class SumIndexProtocol {
 public:
  virtual ~SumIndexProtocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Universe size m this protocol instance is configured for.
  [[nodiscard]] virtual std::uint64_t universe_size() const = 0;

  [[nodiscard]] virtual Message alice(const std::vector<std::uint8_t>& S, std::uint64_t a) const = 0;
  [[nodiscard]] virtual Message bob(const std::vector<std::uint8_t>& S, std::uint64_t b) const = 0;

  /// Referee: decode the bit from the two messages alone.
  [[nodiscard]] virtual int referee(const Message& alice_msg, const Message& bob_msg) const = 0;
};

/// Baseline: Alice ships all of S; the referee indexes it directly.
/// m + O(log m) bits from Alice, O(log m) from Bob.  Always correct.
class TrivialProtocol final : public SumIndexProtocol {
 public:
  explicit TrivialProtocol(std::uint64_t m) : m_(m) {}

  [[nodiscard]] std::string name() const override { return "trivial-ship-S"; }
  [[nodiscard]] std::uint64_t universe_size() const override { return m_; }
  [[nodiscard]] Message alice(const std::vector<std::uint8_t>& S, std::uint64_t a) const override;
  [[nodiscard]] Message bob(const std::vector<std::uint8_t>& S, std::uint64_t b) const override;
  [[nodiscard]] int referee(const Message& alice_msg, const Message& bob_msg) const override;

 private:
  std::uint64_t m_;
};

/// The paper's protocol (proof of Theorem 1.6): both players build the
/// masked gadget G'_{b,l} (midlevel vertex v_{l,y} present iff
/// S[repr(y)] == 1), compute an agreed-upon deterministic distance
/// labeling of it, and send the label of their own endpoint
/// (v_{0,2x} for Alice, v_{2l,2z} for Bob).  The referee decodes the
/// distance and compares with the Lemma 2.2 closed form: equality means
/// the midpoint v_{l,x+z} is present, i.e. S[(a+b) mod m] == 1.
///
/// `use_degree3` selects whether labels are computed on the max-degree-3
/// expansion G' (faithful to the theorem statement) or on the weighted
/// layered graph H' (equivalent distances, much smaller).
class GadgetProtocol final : public SumIndexProtocol {
 public:
  GadgetProtocol(lb::GadgetParams params, std::shared_ptr<const DistanceLabelingScheme> scheme,
                 bool use_degree3 = false);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t universe_size() const override { return m_; }
  [[nodiscard]] Message alice(const std::vector<std::uint8_t>& S, std::uint64_t a) const override;
  [[nodiscard]] Message bob(const std::vector<std::uint8_t>& S, std::uint64_t b) const override;
  [[nodiscard]] int referee(const Message& alice_msg, const Message& bob_msg) const override;

  /// repr(y) = (sum_k y_k * (s/2)^k) mod m, for y in [0, s-1]^l.
  [[nodiscard]] std::uint64_t repr(const lb::Coords& y) const;

  /// Decompose a < m into its base-(s/2) digit vector of length l.
  [[nodiscard]] lb::Coords digits(std::uint64_t a) const;

  /// Midlevel mask for a given S: present iff bit is 1.
  [[nodiscard]] std::vector<bool> removal_mask(const std::vector<std::uint8_t>& S) const;

 private:
  /// Build (or fetch from the single-entry cache) the labels for S.
  const EncodedLabels& labels_for(const std::vector<std::uint8_t>& S) const;

  lb::GadgetParams params_;
  std::shared_ptr<const DistanceLabelingScheme> scheme_;
  bool use_degree3_;
  std::uint64_t m_;

  // Single-entry cache: alice() and bob() both need the same expensive
  // labeling, and the evaluation driver calls them with the same S many
  // times.  Not thread-safe (documented).
  mutable std::vector<std::uint8_t> cached_s_;
  mutable bool cache_valid_ = false;
  mutable EncodedLabels cached_labels_;
  mutable std::vector<Vertex> alice_vertex_;  ///< a -> label index
  mutable std::vector<Vertex> bob_vertex_;    ///< b -> label index
};

/// Result of one protocol evaluation.
struct ProtocolRun {
  int output = -1;
  int expected = -1;
  std::size_t alice_bits = 0;
  std::size_t bob_bits = 0;

  [[nodiscard]] bool correct() const { return output == expected; }
};

/// Evaluate one instance end to end.
ProtocolRun run_protocol(const SumIndexProtocol& protocol, const std::vector<std::uint8_t>& S,
                         std::uint64_t a, std::uint64_t b);

/// Evaluate `num_trials` random (S, a, b) instances; returns the number of
/// correct answers and the maximum message size observed.
struct ProtocolStats {
  std::uint64_t trials = 0;
  std::uint64_t correct = 0;
  std::size_t max_alice_bits = 0;
  std::size_t max_bob_bits = 0;

  [[nodiscard]] bool all_correct() const { return correct == trials; }
};

ProtocolStats evaluate_protocol(const SumIndexProtocol& protocol, std::uint64_t num_trials,
                                std::uint64_t seed, std::uint64_t queries_per_s = 8);

}  // namespace hublab::si
