file(REMOVE_RECURSE
  "libhublab_labeling.a"
)
