
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hub/approx.cpp" "src/hub/CMakeFiles/hublab_hub.dir/approx.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/approx.cpp.o.d"
  "/root/repo/src/hub/canonical.cpp" "src/hub/CMakeFiles/hublab_hub.dir/canonical.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/canonical.cpp.o.d"
  "/root/repo/src/hub/constructions.cpp" "src/hub/CMakeFiles/hublab_hub.dir/constructions.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/constructions.cpp.o.d"
  "/root/repo/src/hub/highway.cpp" "src/hub/CMakeFiles/hublab_hub.dir/highway.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/highway.cpp.o.d"
  "/root/repo/src/hub/incremental.cpp" "src/hub/CMakeFiles/hublab_hub.dir/incremental.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/incremental.cpp.o.d"
  "/root/repo/src/hub/labeling.cpp" "src/hub/CMakeFiles/hublab_hub.dir/labeling.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/labeling.cpp.o.d"
  "/root/repo/src/hub/order.cpp" "src/hub/CMakeFiles/hublab_hub.dir/order.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/order.cpp.o.d"
  "/root/repo/src/hub/pll.cpp" "src/hub/CMakeFiles/hublab_hub.dir/pll.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/pll.cpp.o.d"
  "/root/repo/src/hub/serialize.cpp" "src/hub/CMakeFiles/hublab_hub.dir/serialize.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/serialize.cpp.o.d"
  "/root/repo/src/hub/structured.cpp" "src/hub/CMakeFiles/hublab_hub.dir/structured.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/structured.cpp.o.d"
  "/root/repo/src/hub/upperbound.cpp" "src/hub/CMakeFiles/hublab_hub.dir/upperbound.cpp.o" "gcc" "src/hub/CMakeFiles/hublab_hub.dir/upperbound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hublab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hublab_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hublab_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hublab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
