#include "hub/canonical.hpp"

#include <algorithm>
#include <vector>

namespace hublab {

namespace {

/// Distance answered for pair (a, b) when entry (v, hub) is ignored.
/// `a` must equal v; entries of b's label are all usable.
Dist query_without(const HubLabeling& labeling, Vertex v, Vertex hub, Vertex b) {
  const auto la = labeling.label(v);
  const auto lb = labeling.label(b);
  Dist best = kInfDist;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < la.size() && j < lb.size()) {
    if (la[i].hub < lb[j].hub) {
      ++i;
    } else if (la[i].hub > lb[j].hub) {
      ++j;
    } else {
      if (la[i].hub != hub) best = std::min(best, la[i].dist + lb[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

}  // namespace

bool entry_is_redundant(const Graph& g, const HubLabeling& labeling, const DistanceMatrix& truth,
                        Vertex v, Vertex hub) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.has_hub(v, hub));
  // Removing (v, hub) can only affect pairs involving v.  The pair stays
  // covered iff the hub-less query still returns the true distance.
  for (Vertex u = 0; u < n; ++u) {
    const Dist actual = truth.at(v, u);
    if (actual == kInfDist) continue;
    if (query_without(labeling, v, hub, u) != actual) return false;
  }
  return true;
}

std::optional<std::pair<Vertex, Vertex>> find_redundant_entry(const Graph& g,
                                                              const HubLabeling& labeling,
                                                              const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex v = 0; v < n; ++v) {
    for (const HubEntry& e : labeling.label(v)) {
      if (entry_is_redundant(g, labeling, truth, v, e.hub)) {
        return std::make_pair(v, e.hub);
      }
    }
  }
  return std::nullopt;
}

bool is_minimal(const Graph& g, const HubLabeling& labeling, const DistanceMatrix& truth) {
  return !find_redundant_entry(g, labeling, truth).has_value();
}

HubLabeling prune_to_minimal(const Graph& g, const HubLabeling& labeling,
                             const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  // Work on a mutable copy of the entry lists.
  std::vector<std::vector<HubEntry>> entries(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto label = labeling.label(v);
    entries[v].assign(label.begin(), label.end());
  }

  auto rebuild = [&entries, n] {
    HubLabeling l(n);
    for (Vertex v = 0; v < n; ++v) {
      for (const HubEntry& e : entries[v]) l.add_hub(v, e.hub, e.dist);
    }
    l.finalize();
    return l;
  };

  HubLabeling current = rebuild();
  // Single pass per entry suffices: redundancy is monotone under removal
  // re-checks (an entry that became essential stays essential), but an
  // entry checked earlier may become essential later, so we re-verify each
  // candidate against the *current* labeling before dropping it.
  for (Vertex v = n; v-- > 0;) {
    bool changed = false;
    for (std::size_t i = entries[v].size(); i-- > 0;) {
      const Vertex hub = entries[v][i].hub;
      if (entry_is_redundant(g, current, truth, v, hub)) {
        entries[v].erase(entries[v].begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        current = rebuild();
      }
    }
    if (changed) current = rebuild();
  }
  return current;
}

}  // namespace hublab
