#include <gtest/gtest.h>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(Components, SingleComponent) {
  const Graph g = gen::grid(4, 4);
  EXPECT_EQ(num_connected_components(g), 1u);
}

TEST(Components, CountsIsolatedVertices) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(num_connected_components(g), 4u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Components, LargestComponentExtraction) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  std::vector<Vertex> mapping;
  const Graph big = largest_component(g, &mapping);
  EXPECT_EQ(big.num_vertices(), 3u);
  EXPECT_EQ(big.num_edges(), 2u);
  EXPECT_NE(mapping[0], kInvalidVertex);
  EXPECT_EQ(mapping[5], kInvalidVertex);
}

TEST(Relabel, PreservesStructure) {
  const Graph g = gen::path(4);
  const std::vector<Vertex> perm{3, 2, 1, 0};
  const Graph h = relabel(g, perm);
  EXPECT_TRUE(h.has_edge(3, 2));
  EXPECT_TRUE(h.has_edge(1, 0));
  EXPECT_FALSE(h.has_edge(3, 1));
}

TEST(Relabel, RejectsNonPermutation) {
  const Graph g = gen::path(3);
  EXPECT_THROW(relabel(g, {0, 0, 1}), InvalidArgument);
  EXPECT_THROW(relabel(g, {0, 1}), InvalidArgument);
}

TEST(UnweightedCopy, StripsWeights) {
  Rng rng(1);
  const Graph g = gen::road_like(4, 4, 0.2, 9, rng);
  const Graph u = unweighted_copy(g);
  EXPECT_FALSE(u.is_weighted());
  EXPECT_EQ(u.num_edges(), g.num_edges());
}

TEST(ReduceDegree, CapRespected) {
  const Graph g = gen::star(20);  // center degree 19
  const DegreeReduction red = reduce_degree(g, 3);
  EXPECT_LE(red.graph.max_degree(), 3u + 2u);
  EXPECT_GT(red.graph.num_vertices(), g.num_vertices());
}

TEST(ReduceDegree, InvalidCapThrows) {
  const Graph g = gen::path(3);
  EXPECT_THROW(reduce_degree(g, 0), InvalidArgument);
}

TEST(ReduceDegree, MappingsConsistent) {
  const Graph g = gen::star(10);
  const DegreeReduction red = reduce_degree(g, 2);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(red.representative[v], red.graph.num_vertices());
    EXPECT_EQ(red.origin[red.representative[v]], v);
  }
  for (Vertex c = 0; c < red.graph.num_vertices(); ++c) {
    EXPECT_LT(red.origin[c], g.num_vertices());
  }
}

TEST(ReduceDegree, LowDegreeGraphUnchangedInSize) {
  const Graph g = gen::cycle(10);
  const DegreeReduction red = reduce_degree(g, 2);
  EXPECT_EQ(red.graph.num_vertices(), 10u);
  EXPECT_EQ(red.graph.num_edges(), 10u);
}

/// The core property: distances between original vertices are preserved.
class ReduceDegreeDistance : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReduceDegreeDistance, PreservesAllPairs) {
  const auto [n, m, cap] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(m));
  const Graph g = gen::connected_gnm(static_cast<std::size_t>(n), static_cast<std::size_t>(m), rng);
  const DegreeReduction red = reduce_degree(g, static_cast<std::size_t>(cap));
  EXPECT_LE(red.graph.max_degree(), static_cast<std::size_t>(cap) + 2);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto orig = sssp_distances(g, u);
    const auto redd = sssp_distances(red.graph, red.representative[u]);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(orig[v], redd[red.representative[v]])
          << "distance mismatch " << u << "-" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceDegreeDistance,
                         ::testing::Values(std::make_tuple(30, 45, 1),
                                           std::make_tuple(30, 45, 2),
                                           std::make_tuple(50, 100, 2),
                                           std::make_tuple(50, 100, 3),
                                           std::make_tuple(40, 120, 3),
                                           std::make_tuple(25, 24, 1)));

TEST(ReduceDegree, StarDistancesPreserved) {
  const Graph g = gen::star(30);
  const DegreeReduction red = reduce_degree(g, 3);
  const auto d = sssp_distances(red.graph, red.representative[0]);
  for (Vertex leaf = 1; leaf < 30; ++leaf) {
    EXPECT_EQ(d[red.representative[leaf]], 1u);
  }
}

}  // namespace
}  // namespace hublab
