#include "oracle/contraction_hierarchy.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "util/metrics.hpp"

namespace hublab {

namespace {

/// Mutable overlay graph during contraction: adjacency maps with min-weight
/// parallel-edge semantics, restricted to uncontracted vertices.
class Overlay {
 public:
  explicit Overlay(const Graph& g) : adj_(g.num_vertices()), contracted_(g.num_vertices(), false) {
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      for (const Arc& a : g.arcs(u)) {
        insert(u, a.to, a.weight);
      }
    }
  }

  void insert(Vertex u, Vertex v, Dist w) {
    auto [it, fresh] = adj_[u].try_emplace(v, w);
    if (!fresh && w < it->second) it->second = w;
  }

  void mark_contracted(Vertex v) {
    contracted_[v] = true;
    for (const auto& [u, w] : adj_[v]) {
      (void)w;
      adj_[u].erase(v);
    }
  }

  [[nodiscard]] bool contracted(Vertex v) const { return contracted_[v]; }
  [[nodiscard]] const std::map<Vertex, Dist>& neighbors(Vertex v) const { return adj_[v]; }
  [[nodiscard]] std::size_t degree(Vertex v) const { return adj_[v].size(); }

  /// Witness search: is there a u-w path avoiding `banned` of length
  /// <= limit_dist, using at most settle_limit settles?  Returns true if a
  /// witness is FOUND (shortcut unnecessary); false if none found or the
  /// search budget ran out (conservative).
  [[nodiscard]] bool has_witness(Vertex from, Vertex to, Vertex banned, Dist limit_dist,
                                 std::size_t settle_limit) const {
    std::unordered_map<Vertex, Dist> dist;
    using Item = std::pair<Dist, Vertex>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[from] = 0;
    pq.emplace(0, from);
    std::size_t settled = 0;
    while (!pq.empty() && settled < settle_limit) {
      const auto [d, u] = pq.top();
      pq.pop();
      const auto it = dist.find(u);
      if (it == dist.end() || it->second != d) continue;
      if (d > limit_dist) return false;  // everything further is too long
      if (u == to) return d <= limit_dist;
      ++settled;
      for (const auto& [v, w] : adj_[u]) {
        if (v == banned) continue;
        const Dist nd = d + w;
        if (nd > limit_dist) continue;
        auto [dit, fresh] = dist.try_emplace(v, nd);
        if (fresh || nd < dit->second) {
          dit->second = nd;
          pq.emplace(nd, v);
        }
      }
    }
    // Budget exhausted or frontier empty without reaching `to`.
    const auto it = dist.find(to);
    return it != dist.end() && it->second <= limit_dist;
  }

 private:
  std::vector<std::map<Vertex, Dist>> adj_;
  std::vector<bool> contracted_;
};

struct Shortcut {
  Vertex from;
  Vertex to;
  Dist weight;
};

/// Shortcuts needed to contract v right now.  Each candidate neighbor pair
/// costs one witness search; `witness_searches` accumulates that count.
std::vector<Shortcut> required_shortcuts(const Overlay& overlay, Vertex v,
                                         std::size_t settle_limit,
                                         std::uint64_t& witness_searches) {
  std::vector<Shortcut> shortcuts;
  const auto& nbrs = overlay.neighbors(v);
  for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != nbrs.end(); ++it2) {
      const Dist via = it1->second + it2->second;
      ++witness_searches;
      if (!overlay.has_witness(it1->first, it2->first, v, via, settle_limit)) {
        shortcuts.push_back(Shortcut{it1->first, it2->first, via});
      }
    }
  }
  return shortcuts;
}

}  // namespace

ContractionHierarchy::ContractionHierarchy(const Graph& g, std::size_t witness_settle_limit) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  up_.resize(n);
  rank_.assign(n, 0);

  Overlay overlay(g);
  std::vector<std::uint32_t> deleted_neighbors(n, 0);
  std::uint64_t witness_searches = 0;

  // Lazy priority queue: (priority, vertex); re-evaluate on pop.
  auto priority_of = [&overlay, &deleted_neighbors, &witness_searches,
                      witness_settle_limit](Vertex v) {
    const auto shortcuts = required_shortcuts(overlay, v, witness_settle_limit, witness_searches);
    return static_cast<std::int64_t>(shortcuts.size()) * 4 -
           static_cast<std::int64_t>(overlay.degree(v)) * 2 +
           static_cast<std::int64_t>(deleted_neighbors[v]);
  };

  using Item = std::pair<std::int64_t, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (Vertex v = 0; v < n; ++v) pq.emplace(priority_of(v), v);

  std::uint32_t next_rank = 0;
  while (!pq.empty()) {
    const auto [prio, v] = pq.top();
    pq.pop();
    if (overlay.contracted(v)) continue;
    // Lazy re-evaluation: if the priority rose, requeue.
    const std::int64_t fresh = priority_of(v);
    if (fresh > prio && !pq.empty() && fresh > pq.top().first) {
      pq.emplace(fresh, v);
      continue;
    }

    // Record upward arcs (current uncontracted neighbors), then contract.
    for (const auto& [u, w] : overlay.neighbors(v)) {
      up_[v].push_back(UpArc{u, w});
      ++deleted_neighbors[u];
    }
    const auto shortcuts = required_shortcuts(overlay, v, witness_settle_limit, witness_searches);
    overlay.mark_contracted(v);
    for (const Shortcut& s : shortcuts) {
      overlay.insert(s.from, s.to, s.weight);
      overlay.insert(s.to, s.from, s.weight);
      ++num_shortcuts_;
    }
    rank_[v] = next_rank++;
  }
  metrics::registry().counter("ch.contracted").add(next_rank);
  metrics::registry().counter("ch.shortcuts").add(num_shortcuts_);
  metrics::registry().counter("ch.witness_searches").add(witness_searches);

  // Sort upward arcs for cache friendliness.
  for (auto& arcs : up_) {
    std::sort(arcs.begin(), arcs.end(),
              [](const UpArc& a, const UpArc& b) { return a.to < b.to; });
  }
}

std::vector<std::pair<Vertex, Dist>> ContractionHierarchy::upward_search(Vertex source) const {
  // Exhaustive upward Dijkstra; the upward search spaces are small by
  // construction.
  std::unordered_map<Vertex, Dist> dist;
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (dist[u] != d) continue;
    for (const UpArc& a : up_[u]) {
      const Dist nd = d + a.weight;
      auto [it, fresh] = dist.try_emplace(a.to, nd);
      if (fresh || nd < it->second) {
        it->second = nd;
        pq.emplace(nd, a.to);
      }
    }
  }
  std::vector<std::pair<Vertex, Dist>> settled(dist.begin(), dist.end());
  std::sort(settled.begin(), settled.end());
  return settled;
}

Dist ContractionHierarchy::distance(Vertex s, Vertex t) const {
  HUBLAB_ASSERT(s < up_.size() && t < up_.size());
  if (s == t) return 0;

  // Two-pointer intersection of the vertex-sorted upward search spaces.
  const auto from_s = upward_search(s);
  const auto from_t = upward_search(t);
  Dist best = kInfDist;
  auto it_s = from_s.begin();
  auto it_t = from_t.begin();
  while (it_s != from_s.end() && it_t != from_t.end()) {
    if (it_s->first < it_t->first) {
      ++it_s;
    } else if (it_t->first < it_s->first) {
      ++it_t;
    } else {
      best = std::min(best, it_s->second + it_t->second);
      ++it_s;
      ++it_t;
    }
  }
  return best;
}

Dist ContractionHierarchy::distance_with_stats(Vertex s, Vertex t,
                                               metrics::QueryStats& stats) const {
  HUBLAB_ASSERT(s < up_.size() && t < up_.size());
  if (s == t) {
    stats.meeting(s);
    return 0;
  }

  // The plain two-pointer intersection plus probe bookkeeping.
  const auto from_s = upward_search(s);
  const auto from_t = upward_search(t);
  stats.labels(from_s.size(), from_t.size());
  Dist best = kInfDist;
  Vertex apex = kInvalidVertex;
  auto it_s = from_s.begin();
  auto it_t = from_t.begin();
  while (it_s != from_s.end() && it_t != from_t.end()) {
    stats.scanned();
    if (it_s->first < it_t->first) {
      ++it_s;
    } else if (it_t->first < it_s->first) {
      ++it_t;
    } else {
      stats.matched();
      if (it_s->second + it_t->second < best) {
        best = it_s->second + it_t->second;
        apex = it_s->first;
      }
      ++it_s;
      ++it_t;
    }
  }
  stats.meeting(apex);
  return best;
}

std::size_t ContractionHierarchy::space_bytes() const {
  std::size_t arcs = 0;
  for (const auto& a : up_) arcs += a.size();
  return arcs * sizeof(UpArc) + rank_.size() * sizeof(std::uint32_t);
}

HubLabeling ContractionHierarchy::extract_hub_labeling() const {
  const auto n = static_cast<Vertex>(up_.size());

  // Raw search spaces: may contain upward-distance overestimates, but the
  // CH correctness theorem guarantees the *query minimum* over them is the
  // exact distance.
  HubLabeling raw(n);
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& [w, d] : upward_search(v)) raw.add_hub(v, w, d);
  }
  raw.finalize();

  // Keep only the exact entries: raw.query is the true distance, and the
  // apex of any shortest path survives the filter on both sides.
  HubLabeling out(n);
  for (Vertex v = 0; v < n; ++v) {
    for (const HubEntry& e : raw.label(v)) {
      if (raw.query(v, e.hub) == e.dist) out.add_hub(v, e.hub, e.dist);
    }
  }
  out.finalize();
  return out;
}

double ContractionHierarchy::average_upward_degree() const {
  if (up_.empty()) return 0.0;
  std::size_t arcs = 0;
  for (const auto& a : up_) arcs += a.size();
  return static_cast<double>(arcs) / static_cast<double>(up_.size());
}

}  // namespace hublab
