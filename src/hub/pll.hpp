#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hub/labeling.hpp"

/// \file pll.hpp
/// Pruned Landmark Labeling (Akiba, Iwata, Yoshida; SIGMOD'13): the standard
/// practical hub-labeling construction.  Processes vertices in a fixed order
/// of decreasing importance; the k-th vertex runs a BFS/Dijkstra pruned at
/// every vertex already answered correctly by the first k-1 hubs.
///
/// PLL yields a *canonical* labeling for its order: it is exact (a
/// shortest-path cover) and minimal in the sense that no entry can be
/// dropped without breaking exactness for that order.  The paper's related
/// work positions hub labeling practice around exactly this family of
/// constructions, so PLL is the measurement yardstick in our benches.

namespace hublab {

enum class VertexOrder {
  kDegreeDescending,  ///< classic heuristic; good on scale-free graphs
  kNatural,           ///< vertex id order (deterministic baseline)
  kRandom,            ///< uniform random order (seeded)
};

/// Compute the processing order.
std::vector<Vertex> make_vertex_order(const Graph& g, VertexOrder order, std::uint64_t seed = 0);

/// Build a PLL labeling using the given precomputed order (a permutation of
/// the vertices; order[0] is the most important vertex).
HubLabeling pruned_landmark_labeling(const Graph& g, const std::vector<Vertex>& order);

/// Convenience overload choosing the order internally.
HubLabeling pruned_landmark_labeling(const Graph& g,
                                     VertexOrder order = VertexOrder::kDegreeDescending,
                                     std::uint64_t seed = 0);

}  // namespace hublab
