/// \file bench_hub_lower_curve.cpp
/// Experiment THM1.1 (DESIGN.md): the shape of the lower bound
///   avg hub size >= n / 2^{Theta(sqrt(log n))}  on max-degree-3 graphs.
///
/// Part 1 (measured): materializable gadget instances.  At buildable sizes
/// the counting bound on G itself is still < 1 (the subdivision vertices
/// dominate), so here we certify against H (positive bounds) and report
/// PLL-measured averages on both H and G.
///
/// Part 2 (analytic): the paper sets b = l = sqrt(log N).  All quantities
/// of Theorem 2.1 -- T = s^{2l}/2^l, n_G, the Eq.(1) diameter bound -- have
/// closed forms, so the certified bound for the diagonal family can be
/// evaluated far beyond what fits in memory.  The diagnostic column
/// log2(n/bound) / sqrt(log2 n) converging to a constant is exactly the
/// 2^{Theta(sqrt(log n))} loss shape of Theorem 1.1.

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "hub/pll.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

namespace {

/// Closed-form size estimates for the diagonal family (doubles: these are
/// evaluated far past 2^64).
struct DiagonalEstimate {
  double n_g;
  double triplets;
  double diam_bound;
  double certified;  ///< (T/n - 1)/diam, clamped at 0
};

DiagonalEstimate estimate_diagonal(double b, double ell) {
  const double s = std::pow(2.0, b);
  const double layer = std::pow(s, ell);
  const double n_h = (2 * ell + 1) * layer;
  const double edges = 2 * ell * layer * s;
  const double A = 3 * ell * s * s;
  // Sum of delta^2 over one transition: layer * s * (s^2 - 1) / 6.
  const double sum_w = edges * A + 2 * ell * layer * s * (s * s - 1) / 6.0;
  // Trees: every vertex has in+out trees except the boundary levels.
  const double tree_vertices = (2 * n_h - 2 * layer) * (2 * s - 1);
  const double n_g = n_h + tree_vertices + (sum_w - edges * (2 * b + 3));
  const double triplets = std::pow(s, 2 * ell) / std::pow(2.0, ell);
  const double diam_bound = (3 * ell + 1) * s * s * 4 * ell;
  const double per_vertex = triplets / n_g - 1.0;
  return {n_g, triplets, diam_bound, per_vertex > 0 ? per_vertex / diam_bound : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(
      argc, argv, "hub_lower_curve",
      "Experiment THM1.1: avg hub size >= n / 2^{Theta(sqrt(log n))} on Delta=3 graphs");

  // ---- Part 1: measured instances ----------------------------------------
  auto measured_span = harness.phase("measured-instances");
  TextTable measured({"b", "l", "n_H", "n_G", "certified lb (H)", "PLL avg (H)", "PLL avg (G)"});
  bool all_ok = true;
  const std::vector<lb::GadgetParams> full_params{{1, 1}, {2, 1}, {1, 2}, {2, 2}};
  const std::vector<lb::GadgetParams> smoke_params{{1, 1}, {2, 1}, {1, 2}};
  for (const auto& p : harness.smoke() ? smoke_params : full_params) {
    const lb::LayeredGadget h(p);
    const lb::Degree3Gadget g3(h);
    harness.add_graph("layered-gadget", h.graph().num_vertices(), h.graph().num_edges());
    harness.add_graph("degree3-gadget", g3.graph().num_vertices(), g3.graph().num_edges());
    const double bound_h = lb::certified_bound_h(p);
    const HubLabeling pll_h = pruned_landmark_labeling(h.graph());
    all_ok = all_ok && pll_h.average_label_size() >= bound_h;

    std::string pll_g = "-";
    if (g3.graph().num_vertices() <= 30000) {
      const HubLabeling pll = pruned_landmark_labeling(g3.graph());
      pll_g = fmt_double(pll.average_label_size(), 2);
      all_ok = all_ok && pll.average_label_size() >= lb::certified_bound_g(p, g3.graph().num_vertices());
    }
    measured.add_row({fmt_u64(p.b), fmt_u64(p.ell), fmt_u64(h.graph().num_vertices()),
                      fmt_u64(g3.graph().num_vertices()), fmt_double(bound_h, 3),
                      fmt_double(pll_h.average_label_size(), 2), pll_g});
  }
  measured_span.end();
  harness.print(measured, "Part 1 (measured): PLL can never beat the certified counting bound");

  // ---- Part 2: analytic diagonal ------------------------------------------
  auto analytic_span = harness.phase("analytic-diagonal");
  TextTable analytic({"b=l", "log2 n_G", "log2 T", "certified avg lb", "loss = n/bound",
                      "log2(loss)/sqrt(log2 n)"});
  double prev_shape = 0.0;
  double last_shape = 0.0;
  for (int k = 4; k <= 14; ++k) {
    const DiagonalEstimate e = estimate_diagonal(k, k);
    const double log2n = std::log2(e.n_g);
    std::string loss_str = "-";
    std::string shape_str = "-";
    if (e.certified > 0) {
      const double loss = e.n_g / e.certified;
      const double shape = std::log2(loss) / std::sqrt(log2n);
      loss_str = fmt_sci(loss, 2);
      shape_str = fmt_double(shape, 2);
      prev_shape = last_shape;
      last_shape = shape;
    }
    analytic.add_row({fmt_u64(static_cast<unsigned long long>(k)), fmt_double(log2n, 1),
                      fmt_double(std::log2(e.triplets), 1),
                      e.certified > 0 ? fmt_sci(e.certified, 2) : "0", loss_str, shape_str});
  }
  analytic_span.end();
  harness.print(analytic,
      "Part 2 (analytic diagonal b=l): the shape column converging to a constant is "
      "the n/2^{Theta(sqrt(log n))} law of Theorem 1.1");

  // The shape statistic must be converging (decreasing increments).
  const bool shape_converges = last_shape > 0 && std::abs(last_shape - prev_shape) < 1.0;
  all_ok = all_ok && shape_converges;

  return harness.finish("THM1.1 curve", all_ok);
}
