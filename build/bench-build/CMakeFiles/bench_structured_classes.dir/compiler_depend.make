# Empty compiler generated dependencies file for bench_structured_classes.
# This may be replaced when dependencies are built.
