#include "hub/flat_labeling.hpp"

namespace hublab {

FlatHubLabeling::FlatHubLabeling(const HubLabeling& labels)
    : num_vertices_(labels.num_vertices()) {
  const std::size_t slots = labels.total_hubs() + num_vertices_;  // one sentinel per label
  offsets_.reserve(num_vertices_ + 1);
  hubs_.reserve(slots);
  dists_.reserve(slots);
  for (Vertex v = 0; v < num_vertices_; ++v) {
    const std::size_t first = hubs_.size();
    offsets_.push_back(first);
    for (const HubEntry& e : labels.label(v)) {
      HUBLAB_ASSERT_MSG(e.hub != kInvalidVertex, "kInvalidVertex is reserved as the sentinel");
      HUBLAB_ASSERT_MSG(hubs_.size() == first || hubs_.back() < e.hub,
                        "FlatHubLabeling requires a finalized (sorted, deduplicated) labeling");
      hubs_.push_back(e.hub);
      dists_.push_back(e.dist);
    }
    hubs_.push_back(kInvalidVertex);
    dists_.push_back(kInfDist);
  }
  offsets_.push_back(hubs_.size());
}

FlatHubLabeling::FlatHubLabeling(std::size_t num_vertices, std::vector<std::size_t> offsets,
                                 std::vector<Vertex> hubs, std::vector<Dist> dists)
    : num_vertices_(num_vertices),
      offsets_(std::move(offsets)),
      hubs_(std::move(hubs)),
      dists_(std::move(dists)) {
  HUBLAB_ASSERT_MSG(offsets_.size() == num_vertices_ + 1, "offsets must have n + 1 entries");
  HUBLAB_ASSERT_MSG(hubs_.size() == dists_.size(), "hub/dist arrays must be parallel");
  HUBLAB_ASSERT_MSG(offsets_.empty() || offsets_.back() == hubs_.size(),
                    "final offset must close the hub array");
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    const std::size_t first = offsets_[v];
    const std::size_t last = offsets_[v + 1] - 1;  // sentinel slot
    HUBLAB_ASSERT_MSG(hubs_[last] == kInvalidVertex && dists_[last] == kInfDist,
                      "every label must be sentinel-terminated");
    for (std::size_t i = first + 1; i < last; ++i) {
      HUBLAB_ASSERT_MSG(hubs_[i - 1] < hubs_[i], "labels must be sorted and deduplicated");
    }
  }
}

}  // namespace hublab
