#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file counting.hpp
/// The classic *counting* lower-bound technique ([GPPR04], discussed in the
/// paper's "Lower bounds" related-work paragraph), implemented as an
/// executable family.
///
/// Family: k terminals; every pair (i, j) is joined by a fixed path of
/// length 3 and, iff the corresponding bit is 1, an extra parallel path of
/// length 2.  Thus dist(t_i, t_j) = 2 or 3 encodes the bit, and no route
/// through other terminals can be shorter (>= 4).  The family has
/// 2^{k(k-1)/2} members distinguishable from terminal labels alone, so any
/// distance labeling averages >= (k-1)/2 bits on terminals -- the classic
/// Omega(sqrt(n)) for sparse graphs since n = Theta(k^2).
///
/// The paper's point: this technique cannot distinguish distributed labels
/// from a centralized oracle and stalls at sqrt(n); the Sum-Index reduction
/// (Theorem 1.6) is the way past it.  bench_counting_lower prints the two
/// curves side by side.

namespace hublab::lb {

class CountingFamily {
 public:
  /// Family over k >= 2 terminals (k*(k-1)/2 bits).
  explicit CountingFamily(std::size_t k);

  [[nodiscard]] std::size_t num_terminals() const { return k_; }
  [[nodiscard]] std::size_t num_bits() const { return k_ * (k_ - 1) / 2; }

  /// Number of vertices of every instance (independent of the bits).
  [[nodiscard]] std::size_t num_vertices() const;

  /// Build the member graph for a bit vector of size num_bits().
  [[nodiscard]] Graph instance(const std::vector<std::uint8_t>& bits) const;

  /// Vertex id of terminal i (stable across instances).
  [[nodiscard]] Vertex terminal(std::size_t i) const;

  /// Bit index of the unordered terminal pair (i, j), i < j.
  [[nodiscard]] std::size_t bit_index(std::size_t i, std::size_t j) const;

  /// Decode a bit from the terminal-pair distance (2 -> 1, 3 -> 0).
  [[nodiscard]] static int decode_bit(Dist terminal_distance);

  /// Information-theoretic consequence: average label size over terminals,
  /// in bits, for ANY distance labeling correct on the whole family.
  [[nodiscard]] double implied_avg_terminal_bits() const {
    return static_cast<double>(num_bits()) / static_cast<double>(k_);
  }

 private:
  std::size_t k_;
};

}  // namespace hublab::lb
