#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/error.hpp"

namespace hublab {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return b.build();
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, IsolatedVertices) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(GraphBuilder, BasicTriangle) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.is_weighted());
}

TEST(GraphBuilder, SelfLoopRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), InvalidArgument);
}

TEST(GraphBuilder, OutOfRangeRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), InvalidArgument);
  EXPECT_THROW(b.add_edge(7, 0), InvalidArgument);
}

TEST(GraphBuilder, ParallelEdgesCollapseToMinWeight) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 7);
  b.add_edge(1, 0, 3);
  b.add_edge(0, 1, 9);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_weight(0, 1), 3u);
  EXPECT_EQ(g.edge_weight(1, 0), 3u);
}

TEST(GraphBuilder, AdjacencySorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  const Graph g = b.build();
  const auto arcs = g.arcs(2);
  ASSERT_EQ(arcs.size(), 4u);
  for (std::size_t i = 0; i + 1 < arcs.size(); ++i) EXPECT_LT(arcs[i].to, arcs[i + 1].to);
}

TEST(GraphBuilder, AddVertexExtends) {
  GraphBuilder b(1);
  const Vertex v = b.add_vertex();
  EXPECT_EQ(v, 1u);
  b.add_edge(0, v, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.max_weight(), 5u);
}

TEST(Graph, EdgeWeightAbsent) {
  const Graph g = triangle();
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph h = b.build();
  EXPECT_EQ(h.edge_weight(0, 2), kInfDist);
  EXPECT_EQ(g.edge_weight(0, 1), 1u);
}

TEST(Graph, WeightZeroCountsAsWeighted) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 0);
  const Graph g = b.build();
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.max_weight(), 1u);  // max over {0} clamps at the documented floor of 1
}

TEST(Graph, DegreeStatistics) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(GraphIo, EdgeListRoundTrip) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 9);
  const Graph g = b.build();
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.edge_weight(2, 3), 9u);
  EXPECT_EQ(h.edge_weight(1, 2), 1u);
}

TEST(GraphIo, EdgeListDefaultWeight) {
  std::stringstream ss("3 2\n0 1\n1 2\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, EdgeListCommentsSkipped) {
  std::stringstream ss("3 1\n# hello\n0 2 4\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.edge_weight(0, 2), 4u);
}

TEST(GraphIo, EdgeListMissingHeaderThrows) {
  std::stringstream ss("garbage");
  EXPECT_THROW(io::read_edge_list(ss), ParseError);
}

TEST(GraphIo, EdgeListTruncatedThrows) {
  std::stringstream ss("3 5\n0 1\n");
  EXPECT_THROW(io::read_edge_list(ss), ParseError);
}

TEST(GraphIo, EdgeListVertexOutOfRangeThrows) {
  std::stringstream ss("2 1\n0 5\n");
  EXPECT_THROW(io::read_edge_list(ss), ParseError);
}

TEST(GraphIo, DimacsRoundTrip) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 2);
  const Graph g = b.build();
  std::stringstream ss;
  io::write_dimacs(g, ss);
  const Graph h = io::read_dimacs(ss);
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.edge_weight(0, 1), 4u);
}

TEST(GraphIo, DimacsArcBeforeHeaderThrows) {
  std::stringstream ss("a 1 2 3\n");
  EXPECT_THROW(io::read_dimacs(ss), ParseError);
}

TEST(GraphIo, DimacsUnknownLineThrows) {
  std::stringstream ss("p sp 2 1\nx nope\n");
  EXPECT_THROW(io::read_dimacs(ss), ParseError);
}

TEST(GraphIo, DotContainsEdgesAndWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 12);
  const Graph g = b.build();
  std::stringstream ss;
  io::write_dot(g, ss, "fig1");
  const std::string s = ss.str();
  EXPECT_NE(s.find("graph fig1"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
}

TEST(GraphIo, FileHelpersFailGracefully) {
  EXPECT_THROW(io::load_edge_list("/nonexistent/path/file.txt"), Error);
}

}  // namespace
}  // namespace hublab
