file(REMOVE_RECURSE
  "../bench/bench_lowerbound_certify"
  "../bench/bench_lowerbound_certify.pdb"
  "CMakeFiles/bench_lowerbound_certify.dir/bench_lowerbound_certify.cpp.o"
  "CMakeFiles/bench_lowerbound_certify.dir/bench_lowerbound_certify.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowerbound_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
