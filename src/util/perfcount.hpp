#pragma once

#include <cstdint>

/// \file perfcount.hpp
/// Hardware performance counters (cycles, instructions, L1d/LLC misses,
/// branch misses) read through `perf_event_open` counter groups, one group
/// per thread.  The readings attach to `Tracer` spans (per-phase `hw`
/// objects in the run-report JSON) and to `parallel_for` chunk bodies via
/// `ScopedHw`, so "the flat kernel is 35% faster" comes with the IPC and
/// miss-rate evidence explaining *why*.
///
/// Availability is layered, mirroring the `HUBLAB_METRICS=OFF` pattern:
///
///  - **Compile-out**: building with `HUBLAB_PERF=OFF` (CMake) defines
///    `HUBLAB_PERF_ENABLED=0` and swaps everything below for inline no-op
///    stubs with the same API — call sites need no `#if`.
///  - **Runtime probe**: the first `available()` call tries to open a
///    cycles+instructions group on the calling thread.  Containers,
///    restrictive `perf_event_paranoid` settings and non-Linux hosts fail
///    the probe, and every read degrades to `valid == false` — the
///    timer-only fallback, with zero behavior change elsewhere.
///  - **Runtime opt-in**: even where counters exist, nothing is opened
///    until `set_enabled(true)` (the `--perf-counters` flag), so default
///    runs never pay the syscall or the fd footprint.
///
/// Counters measure user space only (`exclude_kernel`), per thread
/// (`inherit == 0`); deltas from different threads must be accumulated
/// explicitly (see `ScopedHw` and the serve-sim query loop).  Reads come
/// from one `read()` of the group leader (`PERF_FORMAT_GROUP`), so the
/// five values are a consistent snapshot.

namespace hublab::perf {

/// One snapshot (or delta) of the counter group.  `valid` is false when
/// counters are disabled, unavailable, or compiled out — consumers emit
/// nothing in that case rather than zeros.
struct HwCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;

  /// Instructions per cycle; 0 when no cycles were observed.
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
  }

  /// Last-level-cache misses per executed instruction (0 when idle).
  [[nodiscard]] double llc_miss_rate() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(llc_misses) / static_cast<double>(instructions);
  }

  /// Branch misses per executed instruction (0 when idle).
  [[nodiscard]] double branch_miss_rate() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(branch_misses) / static_cast<double>(instructions);
  }

  /// Element-wise accumulate (chunk deltas into a loop total).  The sum is
  /// valid as soon as any contribution was.
  HwCounters& operator+=(const HwCounters& other) {
    cycles += other.cycles;
    instructions += other.instructions;
    l1d_misses += other.l1d_misses;
    llc_misses += other.llc_misses;
    branch_misses += other.branch_misses;
    valid = valid || other.valid;
    return *this;
  }

  /// Element-wise delta against an earlier snapshot of the same thread's
  /// group.  Invalid unless both snapshots were live reads.
  [[nodiscard]] HwCounters minus(const HwCounters& begin) const {
    HwCounters d;
    d.cycles = cycles - begin.cycles;
    d.instructions = instructions - begin.instructions;
    d.l1d_misses = l1d_misses - begin.l1d_misses;
    d.llc_misses = llc_misses - begin.llc_misses;
    d.branch_misses = branch_misses - begin.branch_misses;
    d.valid = valid && begin.valid;
    return d;
  }
};

#if !defined(HUBLAB_PERF_ENABLED)
#define HUBLAB_PERF_ENABLED 1
#endif

#if HUBLAB_PERF_ENABLED

/// True when `perf_event_open` works on this host (probed once per
/// process; the probe opens and closes a throwaway group).
[[nodiscard]] bool available();

/// Turn counter collection on or off for the whole process (spans and
/// ScopedHw start returning live readings).  A no-op when `available()`
/// is false.  Call it from startup code, before worker threads exist.
void set_enabled(bool on);

/// True when collection was requested *and* the host supports it.
[[nodiscard]] bool enabled();

/// One-line availability description for banners:
/// "hardware (cycles,instructions,...)" / "unavailable (...)" / "off".
[[nodiscard]] const char* describe();

/// Read the calling thread's counter group (opened lazily on first read).
/// `valid == false` when disabled or unavailable.
[[nodiscard]] HwCounters read_thread();

/// RAII delta: reads the thread group at construction and destruction and
/// accumulates the difference into `out` (`out += end.minus(begin)`).
/// Cheap no-op when counters are disabled.
class ScopedHw {
 public:
  explicit ScopedHw(HwCounters& out) : out_(&out), begin_(read_thread()) {}
  ScopedHw(const ScopedHw&) = delete;
  ScopedHw& operator=(const ScopedHw&) = delete;
  ~ScopedHw() {
    if (begin_.valid) *out_ += read_thread().minus(begin_);
  }

 private:
  HwCounters* out_;
  HwCounters begin_;
};

#else  // HUBLAB_PERF_ENABLED == 0: same API, no syscalls, no state.

[[nodiscard]] inline bool available() { return false; }
inline void set_enabled(bool) {}
[[nodiscard]] inline bool enabled() { return false; }
[[nodiscard]] inline const char* describe() { return "compiled out (HUBLAB_PERF=OFF)"; }
[[nodiscard]] inline HwCounters read_thread() { return HwCounters{}; }

class ScopedHw {
 public:
  explicit ScopedHw(HwCounters&) {}
  ScopedHw(const ScopedHw&) = delete;
  ScopedHw& operator=(const ScopedHw&) = delete;
  ~ScopedHw() = default;
};

#endif  // HUBLAB_PERF_ENABLED

}  // namespace hublab::perf
