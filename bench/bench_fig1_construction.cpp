/// \file bench_fig1_construction.cpp
/// Experiment FIG1 (DESIGN.md): regenerate Figure 1 of the paper.
///
/// Figure 1 shows H_{b,l} with b = l = 2 (s = 4): the blue path from
/// v_{0,(1,0)} to v_{4,(3,2)} is the unique shortest path, passes through
/// v_{2,(2,1)} and has length 4A + 4; the red path has length 4A + 8.
/// This binary rebuilds the exact instance, checks all those numbers, and
/// emits the graph as DOT (fig1_h22.dot) for visual inspection.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "algo/shortest_paths.hpp"
#include "bench/harness.hpp"
#include "graph/io.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig1_construction",
                         "Experiment FIG1: the H_{2,2} instance of Figure 1");

  auto build_span = harness.phase("build-gadget");
  const lb::GadgetParams p{2, 2};
  const lb::LayeredGadget h(p);
  build_span.end();
  harness.add_graph("layered-gadget H_{2,2}", h.graph().num_vertices(), h.graph().num_edges());

  TextTable params({"quantity", "value", "paper"});
  params.add_row({"s (side length)", fmt_u64(p.s()), "4"});
  params.add_row({"levels", fmt_u64(p.num_levels()), "5 (V_0..V_{2l})"});
  params.add_row({"layer size s^l", fmt_u64(p.layer_size()), "16"});
  params.add_row({"A = 3*l*s^2", fmt_u64(p.base_weight()), "96"});
  params.add_row({"|V(H)|", fmt_u64(h.graph().num_vertices()), "80"});
  params.add_row({"|E(H)|", fmt_u64(h.graph().num_edges()), "256"});
  harness.print(params, "H_{2,2} parameters");

  // Blue path: unique shortest v_{0,(1,0)} -> v_{4,(3,2)}.
  auto paths_span = harness.phase("check-paths");
  const lb::Coords x{1, 0};
  const lb::Coords z{3, 2};
  const Vertex src = h.vertex_at(0, x);
  const Vertex dst = h.vertex_at(4, z);
  const SsspResult tree = dijkstra(h.graph(), src);
  const auto counts = count_shortest_paths(h.graph(), src, tree.dist);
  const auto path = extract_path(tree, src, dst);
  const Vertex mid = h.predicted_midpoint(x, z);
  const bool through_mid = std::find(path.begin(), path.end(), mid) != path.end();

  // Red path: change each coordinate fully on the way up.
  const std::vector<Vertex> red{h.vertex_at(0, {1, 0}), h.vertex_at(1, {3, 0}),
                                h.vertex_at(2, {3, 2}), h.vertex_at(3, {3, 2}),
                                h.vertex_at(4, {3, 2})};
  paths_span.end();

  TextTable fig({"path", "length", "paper", "note"});
  fig.add_row({"blue (shortest)", fmt_u64(tree.dist[dst]), fmt_u64(4 * p.base_weight() + 4),
               counts[dst] == 1 ? "unique" : "NOT UNIQUE (bug!)"});
  fig.add_row({"passes v_{2,(2,1)}", through_mid ? "yes" : "NO (bug!)", "yes", ""});
  fig.add_row({"red (detour)", fmt_u64(path_length(h.graph(), red)),
               fmt_u64(4 * p.base_weight() + 8), "4A+8"});
  harness.print(fig, "Figure 1 paths");

  // Degree-3 expansion stats for the same instance.
  auto expand_span = harness.phase("degree3-expansion");
  const lb::Degree3Gadget g3(h);
  expand_span.end();
  harness.add_graph("degree3-gadget G_{2,2}", g3.graph().num_vertices(),
                    g3.graph().num_edges());
  TextTable exp({"quantity", "value"});
  exp.add_row({"|V(G_{2,2})|", fmt_u64(g3.graph().num_vertices())});
  exp.add_row({"|E(G_{2,2})|", fmt_u64(g3.graph().num_edges())});
  exp.add_row({"max degree", fmt_u64(g3.graph().max_degree())});
  exp.add_row({"tree vertices", fmt_u64(g3.num_tree_vertices())});
  exp.add_row({"path vertices", fmt_u64(g3.num_path_vertices())});
  harness.print(exp, "Degree-3 expansion G_{2,2}");

  std::ofstream dot("fig1_h22.dot");
  io::write_dot(h.graph(), dot, "H_2_2");
  std::printf("\nDOT rendering written to fig1_h22.dot\n");

  const bool ok = tree.dist[dst] == 4 * p.base_weight() + 4 && counts[dst] == 1 && through_mid &&
                  path_length(h.graph(), red) == 4 * p.base_weight() + 8 &&
                  g3.graph().max_degree() == 3;
  return harness.finish("FIG1 reproduction", ok);
}
