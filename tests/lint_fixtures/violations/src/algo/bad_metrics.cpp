// Fixture: metric/span drift -- an undocumented metric, an undocumented
// dynamic family, an undocumented exemplar store, and an unlisted span,
// each next to a documented sibling that stays clean.

namespace fixture {

void record(Registry& reg, Tracer& tracer, std::size_t i) {
  reg.counter("fixture.documented").add(1);
  reg.counter("fixture.undocumented").add(1);
  reg.gauge("fixture.dyn." + std::to_string(i)).set(1);
  reg.gauge("fixture.rogue." + std::to_string(i)).set(1);
  reg.exemplar("fixture.undoc_exemplar");
  reg.heavy_hitter("fixture.hot");
  auto span_listed = tracer.span("fixture-listed");
  auto span_rogue = tracer.span("fixture-unlisted");
}

}  // namespace fixture
