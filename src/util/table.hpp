#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Minimal fixed-width text table used by the benchmark/report binaries to
/// print the rows each experiment regenerates (see DESIGN.md section 4).
/// The library never writes to stdout itself (hublab_lint enforces this);
/// callers pass the destination stream explicitly.

namespace hublab {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking cells right-aligned.
  [[nodiscard]] std::string to_string() const;

  /// Render and write to `out` with a title line.
  void print(std::ostream& out, const std::string& title) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_double(double value, int precision = 3);
std::string fmt_sci(double value, int precision = 2);
std::string fmt_u64(unsigned long long value);

}  // namespace hublab
