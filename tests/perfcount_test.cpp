/// \file perfcount_test.cpp
/// Hardware counters (util/perfcount.hpp): HwCounters arithmetic and the
/// derived rates, the disabled-by-default / opt-in contract, live reads
/// where the host supports them, and the schema-v3 `tid`/`hw` members of
/// the bench-report validator.

#include "util/perfcount.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bench_schema.hpp"
#include "util/json.hpp"

namespace hublab {
namespace {

TEST(HwCounters, DerivedRates) {
  perf::HwCounters c;
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);  // no cycles observed -> no division
  EXPECT_DOUBLE_EQ(c.llc_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.branch_miss_rate(), 0.0);
  c.cycles = 1000;
  c.instructions = 2500;
  c.llc_misses = 25;
  c.branch_misses = 5;
  EXPECT_DOUBLE_EQ(c.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(c.llc_miss_rate(), 0.01);
  EXPECT_DOUBLE_EQ(c.branch_miss_rate(), 0.002);
}

TEST(HwCounters, AccumulateAndDelta) {
  perf::HwCounters total;
  perf::HwCounters a;
  a.cycles = 10;
  a.instructions = 20;
  a.l1d_misses = 1;
  a.valid = true;
  perf::HwCounters b;
  b.cycles = 5;
  b.instructions = 7;
  b.llc_misses = 2;
  b.branch_misses = 3;
  b.valid = true;
  total += a;
  total += b;
  EXPECT_EQ(total.cycles, 15u);
  EXPECT_EQ(total.instructions, 27u);
  EXPECT_EQ(total.l1d_misses, 1u);
  EXPECT_EQ(total.llc_misses, 2u);
  EXPECT_EQ(total.branch_misses, 3u);
  EXPECT_TRUE(total.valid);

  // Accumulating an invalid contribution keeps the sum valid, and an
  // all-invalid sum stays invalid.
  perf::HwCounters invalid_sum;
  invalid_sum += perf::HwCounters{};
  EXPECT_FALSE(invalid_sum.valid);
  total += perf::HwCounters{};
  EXPECT_TRUE(total.valid);

  const perf::HwCounters d = total.minus(a);
  EXPECT_EQ(d.cycles, 5u);
  EXPECT_EQ(d.instructions, 7u);
  EXPECT_EQ(d.llc_misses, 2u);
  EXPECT_TRUE(d.valid);
  // A delta against an invalid begin snapshot is itself invalid.
  EXPECT_FALSE(total.minus(perf::HwCounters{}).valid);
}

// Ordering matters: this test asserts the process-wide default before any
// other test flips it, so it must run before EnableFollowsAvailability
// (gtest runs tests in declaration order within a file).
TEST(PerfCount, DisabledByDefault) {
  EXPECT_FALSE(perf::enabled());
  const perf::HwCounters c = perf::read_thread();
  EXPECT_FALSE(c.valid) << "reads must be invalid until set_enabled(true)";
  perf::HwCounters out;
  { perf::ScopedHw scope(out); }
  EXPECT_FALSE(out.valid);
  EXPECT_NE(std::string(perf::describe()), "");
}

TEST(PerfCount, EnableFollowsAvailability) {
  perf::set_enabled(true);
  EXPECT_EQ(perf::enabled(), perf::available())
      << "enabled() must track the host probe, not just the request";
  if (perf::available()) {
    const perf::HwCounters begin = perf::read_thread();
    EXPECT_TRUE(begin.valid);
    // Burn a little CPU so the delta is visibly non-zero.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 2000000; ++i) sink = sink + i;
    const perf::HwCounters end = perf::read_thread();
    ASSERT_TRUE(end.valid);
    const perf::HwCounters d = end.minus(begin);
    EXPECT_TRUE(d.valid);
    EXPECT_GT(d.instructions, 0u);
    perf::HwCounters scoped;
    {
      perf::ScopedHw scope(scoped);
      for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    }
    EXPECT_TRUE(scoped.valid);
  }
  perf::set_enabled(false);
  EXPECT_FALSE(perf::enabled());
  EXPECT_FALSE(perf::read_thread().valid);
}

/// Minimal schema-v3 document with one phase carrying the new `tid` and
/// `hw` members; tests below mutate copies of it.
const char* kV3Doc = R"({
  "schema_version": 3,
  "bench": "probe",
  "git_rev": "abc",
  "smoke": true,
  "ok": true,
  "repetitions": 1,
  "start_unix_ms": 5,
  "peak_rss_bytes": 10,
  "graphs": [],
  "phases": [
    {"name": "p", "wall_s": 0.1, "tid": 2,
     "hw": {"cycles": 100, "instructions": 150, "ipc": 1.5, "llc_misses": 3}}
  ],
  "counters": {},
  "gauges": {}
})";

std::vector<std::string> validate(const std::string& text) {
  return validate_bench_json(parse_json(text));
}

std::string with(const std::string& from, const std::string& to) {
  std::string doc = kV3Doc;
  doc.replace(doc.find(from), from.size(), to);
  return doc;
}

TEST(BenchSchemaV3, AcceptsPhaseTidAndHw) {
  const std::vector<std::string> errors = validate(kV3Doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(BenchSchemaV3, HwAndTidAreOptional) {
  const std::string bare = with(
      R"("tid": 2,
     "hw": {"cycles": 100, "instructions": 150, "ipc": 1.5, "llc_misses": 3})",
      R"("depth": 0)");
  EXPECT_TRUE(validate(bare).empty());
}

TEST(BenchSchemaV3, RejectsHwMissingRequiredMember) {
  const std::string no_ipc = with(R"("ipc": 1.5, )", "");
  const std::vector<std::string> errors = validate(no_ipc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("hw.ipc"), std::string::npos) << errors.front();
}

TEST(BenchSchemaV3, RejectsNegativeTid) {
  EXPECT_FALSE(validate(with(R"("tid": 2)", R"("tid": -1)")).empty());
}

TEST(BenchSchemaV3, RejectsNegativeHwCounter) {
  EXPECT_FALSE(validate(with(R"("llc_misses": 3)", R"("llc_misses": -3)")).empty());
}

TEST(BenchSchemaV3, RejectsNonObjectHw) {
  const std::string bad = with(
      R"({"cycles": 100, "instructions": 150, "ipc": 1.5, "llc_misses": 3})",
      R"("fast")");
  const std::vector<std::string> errors = validate(bad);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("hw"), std::string::npos);
}

TEST(BenchSchemaV3, RejectsVersionAboveCurrent) {
  EXPECT_FALSE(validate(with(R"("schema_version": 3)", R"("schema_version": 5)")).empty());
}

}  // namespace
}  // namespace hublab
