#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "hub/simd_kernel.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/oracle.hpp"
#include "oracle/serve.hpp"
#include "oracle/workload.hpp"
#include "rs/rs_graph.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

/// Block sizes straddling the stamp-table threshold (32): 1 and 7 take the
/// per-pair merge-kernel path, 64 and 4096 the stamp-table probe path.
constexpr std::size_t kBlockSizes[] = {1, 7, 64, 4096};

/// The batched-query contract: for every host-reachable ISA tier and every
/// block size, `query_batch_tier` answers byte-identically — distance AND
/// meeting hub — to the per-query reference `query_with_hub`.
void expect_batch_identity(const Graph& g) {
  const HubLabeling labels = pruned_landmark_labeling(g);
  const FlatHubLabeling flat(labels);
  for (const std::size_t block : kBlockSizes) {
    const std::vector<std::pair<Vertex, Vertex>> pairs =
        serve::WorkloadGenerator(g, serve::WorkloadKind::kUniform, 7 + block).block(block);
    std::vector<HubQueryResult> out(block);
    for (const simd::Tier tier : simd::supported_tiers()) {
      flat.query_batch_tier(pairs, out, tier);
      for (std::size_t i = 0; i < block; ++i) {
        const HubQueryResult ref = flat.query_with_hub(pairs[i].first, pairs[i].second);
        ASSERT_EQ(out[i].dist, ref.dist)
            << "tier=" << simd::tier_name(tier) << " block=" << block << " pair#" << i << " ("
            << pairs[i].first << "," << pairs[i].second << ")";
        ASSERT_EQ(out[i].meeting_hub, ref.meeting_hub)
            << "tier=" << simd::tier_name(tier) << " block=" << block << " pair#" << i << " ("
            << pairs[i].first << "," << pairs[i].second << ")";
      }
    }
    // The public entry point resolves the active tier (honouring
    // HUBLAB_FORCE_SCALAR) and must agree as well.
    flat.query_batch(pairs, out);
    for (std::size_t i = 0; i < block; ++i) {
      const HubQueryResult ref = flat.query_with_hub(pairs[i].first, pairs[i].second);
      ASSERT_EQ(out[i].dist, ref.dist) << "active tier, block=" << block << " pair#" << i;
      ASSERT_EQ(out[i].meeting_hub, ref.meeting_hub)
          << "active tier, block=" << block << " pair#" << i;
    }
  }
}

TEST(BatchQuery, ByteIdenticalOnDegree3Gadget) {
  // The Figure 1 hard instance: the unweighted max-degree-3 expansion of
  // the layered gadget.
  const lb::LayeredGadget h(lb::GadgetParams{2, 1});
  expect_batch_identity(lb::Degree3Gadget(h).graph());
}

TEST(BatchQuery, ByteIdenticalOnBehrendRsGraph) {
  expect_batch_identity(rs::behrend_rs_graph(40).graph);
}

TEST(BatchQuery, ByteIdenticalOnDisconnectedGraph) {
  // Cross-component pairs exercise the no-common-hub outcome: kInfDist
  // with the kInvalidVertex meeting hub through every tier and both the
  // merge and stamp paths.
  GraphBuilder b(24);
  for (Vertex v = 0; v + 1 < 12; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 12; v + 1 < 24; ++v) b.add_edge(v, v + 1);
  expect_batch_identity(b.build());
}

TEST(BatchQuery, ByteIdenticalOnWeightedRoadGraph) {
  // Weighted distances: the fold is over 64-bit sums, and ties between
  // different weighted paths exercise the lexicographic (dist, hub) rule.
  Rng rng(31);
  expect_batch_identity(gen::road_like(6, 6, 0.2, 9, rng));
}

TEST(BatchQuery, OracleBatchEntryPointsAgree) {
  // distance_batch through the oracle interface: the flat oracle's SIMD
  // batch kernel, the vector oracle's per-pair merges, and the base-class
  // default (distance() loop, no hubs) must all report the same distances.
  Rng rng(33);
  const Graph g = gen::connected_gnm(80, 160, rng);
  const HubLabeling labels = pruned_landmark_labeling(g);
  const HubLabelOracle vec(g, labels);
  const FlatHubLabelOracle flat(labels);
  const BidirectionalOracle bidij(g);

  const std::vector<std::pair<Vertex, Vertex>> pairs =
      serve::WorkloadGenerator(g, serve::WorkloadKind::kZipf, 9).block(128);
  std::vector<HubQueryResult> from_vec(pairs.size());
  std::vector<HubQueryResult> from_flat(pairs.size());
  std::vector<HubQueryResult> from_bidij(pairs.size());
  vec.distance_batch(pairs, from_vec);
  flat.distance_batch(pairs, from_flat);
  bidij.distance_batch(pairs, from_bidij);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(from_flat[i].dist, from_vec[i].dist) << "pair#" << i;
    ASSERT_EQ(from_flat[i].meeting_hub, from_vec[i].meeting_hub) << "pair#" << i;
    ASSERT_EQ(from_flat[i].dist, from_bidij[i].dist) << "pair#" << i;
  }
}

#if HUBLAB_METRICS_ENABLED

TEST(BatchQuery, MetricsCountBlocksPairsAndGroups) {
  Rng rng(35);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const FlatHubLabeling flat(pruned_landmark_labeling(g));
  const std::vector<std::pair<Vertex, Vertex>> pairs =
      serve::WorkloadGenerator(g, serve::WorkloadKind::kUniform, 3).block(64);
  std::vector<HubQueryResult> out(pairs.size());
  metrics::registry().reset();
  flat.query_batch(pairs, out);
  std::uint64_t calls = 0;
  std::uint64_t batched = 0;
  std::uint64_t groups = 0;
  for (const auto& c : metrics::registry().counters()) {
    if (c.name == "query.batch.calls") calls = c.value;
    if (c.name == "query.batch.pairs") batched = c.value;
    if (c.name == "query.batch.source_groups") groups = c.value;
  }
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(batched, 64u);
  EXPECT_GE(groups, 1u);
  EXPECT_LE(groups, 64u);
}

#endif  // HUBLAB_METRICS_ENABLED

TEST(BatchQuery, ServeSimBatchedLoopIsDeterministic) {
  // serve-sim with --batch 4: the batched chunk loop must reproduce the
  // unbatched loop's checksum/reachability, and stay thread-count
  // invariant (the tsan job runs this suite at 1 and 4 workers).
  const Graph g = lb::LayeredGadget(lb::GadgetParams{1, 1}).graph();
  serve::SimConfig base;
  base.oracle = serve::OracleKind::kPllFlat;
  base.workload = serve::WorkloadKind::kUniform;
  base.num_queries = 300;
  base.warmup = 20;
  base.seed = 5;

  metrics::registry().reset();
  const serve::SimResult unbatched = serve::run_sim(g, base);

  serve::SimConfig batched = base;
  batched.batch = 4;
  metrics::registry().reset();
  const serve::SimResult b1 = serve::run_sim(g, batched);

  serve::SimConfig batched4 = batched;
  batched4.threads = 4;
  metrics::registry().reset();
  const serve::SimResult b4 = serve::run_sim(g, batched4);

  EXPECT_EQ(b1.checksum, unbatched.checksum);
  EXPECT_EQ(b1.reachable, unbatched.reachable);
  EXPECT_EQ(b1.queries, unbatched.queries);
  EXPECT_EQ(b4.checksum, b1.checksum);
  EXPECT_EQ(b4.reachable, b1.reachable);
  EXPECT_EQ(b4.queries, b1.queries);
  EXPECT_EQ(b4.latency_ns.count(), b1.latency_ns.count());
}

TEST(BatchQuery, SupportedTiersAlwaysIncludeScalar) {
  const std::vector<simd::Tier> tiers = simd::supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  // The active tier must be one the host can actually run.
  bool active_supported = false;
  for (const simd::Tier tier : tiers) {
    if (tier == simd::active_tier()) active_supported = true;
  }
  EXPECT_TRUE(active_supported);
}

}  // namespace
}  // namespace hublab
