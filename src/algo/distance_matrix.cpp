#include "algo/distance_matrix.hpp"

#include <algorithm>

#include "algo/shortest_paths.hpp"
#include "util/parallel.hpp"

namespace hublab {

DistanceMatrix DistanceMatrix::compute(const Graph& g, std::size_t threads) {
  DistanceMatrix m;
  m.n_ = g.num_vertices();
  m.data_.resize(m.n_ * m.n_);
  par::parallel_for(0, m.n_, threads, [&](const par::ChunkRange& chunk) {
    for (std::size_t u = chunk.begin; u < chunk.end; ++u) {
      const auto d = sssp_distances(g, static_cast<Vertex>(u));
      std::copy(d.begin(), d.end(), m.data_.begin() + static_cast<std::ptrdiff_t>(u * m.n_));
    }
  });
  return m;
}

std::size_t DistanceMatrix::num_valid_hubs(Vertex u, Vertex v) const {
  const Dist duv = at(u, v);
  if (duv == kInfDist) return 0;
  const Dist* ru = row(u);
  const Dist* rv = row(v);
  std::size_t count = 0;
  for (std::size_t x = 0; x < n_; ++x) {
    if (ru[x] != kInfDist && rv[x] != kInfDist && ru[x] + rv[x] == duv) ++count;
  }
  return count;
}

std::vector<Vertex> DistanceMatrix::valid_hubs(Vertex u, Vertex v) const {
  std::vector<Vertex> hubs;
  const Dist duv = at(u, v);
  if (duv == kInfDist) return hubs;
  const Dist* ru = row(u);
  const Dist* rv = row(v);
  for (std::size_t x = 0; x < n_; ++x) {
    if (ru[x] != kInfDist && rv[x] != kInfDist && ru[x] + rv[x] == duv) {
      hubs.push_back(static_cast<Vertex>(x));
    }
  }
  return hubs;
}

}  // namespace hublab
