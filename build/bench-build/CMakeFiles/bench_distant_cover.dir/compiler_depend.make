# Empty compiler generated dependencies file for bench_distant_cover.
# This may be replaced when dependencies are built.
