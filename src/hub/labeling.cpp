#include "hub/labeling.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hublab {

void HubLabeling::finalize() {
  if (finalized_) return;
  for (auto& label : labels_) {
    // Rows with strictly increasing hub ids are already in finalized form;
    // one scan beats the sort for builders that emit hub-sorted rows.
    const bool strictly_sorted =
        std::adjacent_find(label.begin(), label.end(), [](const HubEntry& a, const HubEntry& b) {
          return a.hub >= b.hub;
        }) == label.end();
    if (!strictly_sorted) {
      std::sort(label.begin(), label.end(), [](const HubEntry& a, const HubEntry& b) {
        return a.hub != b.hub ? a.hub < b.hub : a.dist < b.dist;
      });
      label.erase(std::unique(label.begin(), label.end(),
                              [](const HubEntry& a, const HubEntry& b) { return a.hub == b.hub; }),
                  label.end());
    }
    label.shrink_to_fit();
  }
  finalized_ = true;
}

Dist HubLabeling::query(Vertex u, Vertex v) const { return query_with_hub(u, v).dist; }

HubQueryResult HubLabeling::query_with_hub(Vertex u, Vertex v) const {
  HUBLAB_ASSERT_RANGE(u, labels_.size());
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  HUBLAB_ASSERT_MSG(finalized_, "HubLabeling::finalize() must be called before querying");
  const auto& a = labels_[u];
  const auto& b = labels_[v];
  HubQueryResult best;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub < b[j].hub) {
      ++i;
    } else if (a[i].hub > b[j].hub) {
      ++j;
    } else {
      const Dist d = a[i].dist + b[j].dist;
      if (d < best.dist) {
        best.dist = d;
        best.meeting_hub = a[i].hub;
      }
      ++i;
      ++j;
    }
  }
  return best;
}

HubQueryResult HubLabeling::query_with_stats(Vertex u, Vertex v,
                                             metrics::QueryStats& stats) const {
  HUBLAB_ASSERT_RANGE(u, labels_.size());
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  HUBLAB_ASSERT_MSG(finalized_, "HubLabeling::finalize() must be called before querying");
  const auto& a = labels_[u];
  const auto& b = labels_[v];
  stats.labels(a.size(), b.size());
  HubQueryResult best;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    stats.scanned();
    if (a[i].hub < b[j].hub) {
      ++i;
    } else if (a[i].hub > b[j].hub) {
      ++j;
    } else {
      stats.matched();
      const Dist d = a[i].dist + b[j].dist;
      if (d < best.dist) {
        best.dist = d;
        best.meeting_hub = a[i].hub;
      }
      ++i;
      ++j;
    }
  }
  stats.meeting(best.meeting_hub);
  return best;
}

bool HubLabeling::has_hub(Vertex v, Vertex hub) const {
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  const auto& label = labels_[v];
  const auto it = std::lower_bound(label.begin(), label.end(), hub,
                                   [](const HubEntry& e, Vertex h) { return e.hub < h; });
  return it != label.end() && it->hub == hub;
}

std::size_t HubLabeling::memory_bytes() const {
  std::size_t bytes = labels_.capacity() * sizeof(std::vector<HubEntry>);
  for (const auto& label : labels_) bytes += label.capacity() * sizeof(HubEntry);
  return bytes;
}

std::size_t HubLabeling::total_hubs() const {
  std::size_t total = 0;
  for (const auto& label : labels_) total += label.size();
  return total;
}

double HubLabeling::average_label_size() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(total_hubs()) / static_cast<double>(labels_.size());
}

std::size_t HubLabeling::max_label_size() const {
  std::size_t best = 0;
  for (const auto& label : labels_) best = std::max(best, label.size());
  return best;
}

AuditReport HubLabeling::audit(const Graph& g, std::size_t num_samples, std::uint64_t seed,
                               std::size_t threads) const {
  AuditReport report;
  const std::string ctx = "hub-labeling";
  const std::size_t n = labels_.size();
  threads = par::resolve_threads(threads);

  if (!report.require(n == g.num_vertices(), ctx,
                      "labeling has " + std::to_string(n) + " vertices, graph has " +
                          std::to_string(g.num_vertices()))) {
    return report;
  }
  report.require(finalized_ || total_hubs() == 0, ctx,
                 "labeling has entries but finalize() was not called since the last add_hub()");

  // Structural pass over deterministic chunks; per-chunk reports merged in
  // chunk order reproduce the sequential issue list for every thread count.
  {
    const auto chunks = par::static_chunks(0, n, threads);
    std::vector<AuditReport> parts(chunks.size());
    par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
      AuditReport& part = parts[chunk.index];
      for (std::size_t v = chunk.begin; v < chunk.end; ++v) {
        const auto& label = labels_[v];
        for (std::size_t i = 0; i < label.size(); ++i) {
          const std::string entry =
              "label S(" + std::to_string(v) + ") entry #" + std::to_string(i);
          part.require(label[i].hub < n, ctx,
                       entry + " hub " + std::to_string(label[i].hub) + " out of range, n=" +
                           std::to_string(n));
          if (i > 0) {
            part.require(label[i - 1].hub < label[i].hub, ctx,
                         entry + " hub " + std::to_string(label[i].hub) +
                             " not strictly after previous hub " +
                             std::to_string(label[i - 1].hub) + " (unsorted or duplicate)");
          }
          if (label[i].hub == v) {
            part.require(label[i].dist == 0, ctx,
                         entry + " self-hub distance expected 0, observed " +
                             std::to_string(label[i].dist));
          }
        }
      }
    });
    for (const AuditReport& part : parts) report.merge(part);
  }
  if (!report.ok() || num_samples == 0 || n == 0) return report;

  // Sampled cover property: entries are exact and sampled pairs query
  // exact.  Pairs are drawn sequentially up front so the samples do not
  // depend on the thread count.
  Rng rng(seed);
  std::vector<std::pair<Vertex, Vertex>> samples;
  samples.reserve(num_samples);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    samples.emplace_back(u, v);
  }
  const auto chunks = par::static_chunks(0, num_samples, threads);
  std::vector<AuditReport> parts(chunks.size());
  par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
    AuditReport& part = parts[chunk.index];
    for (std::size_t s = chunk.begin; s < chunk.end; ++s) {
      const auto [u, v] = samples[s];
      const std::vector<Dist> dist_u = sssp_distances(g, u);
      for (const HubEntry& e : labels_[u]) {
        part.require(dist_u[e.hub] == e.dist, ctx,
                     "S(" + std::to_string(u) + ") stores dist " + std::to_string(e.dist) +
                         " to hub " + std::to_string(e.hub) + ", true distance is " +
                         std::to_string(dist_u[e.hub]));
      }
      if (dist_u[v] == kInfDist) continue;
      const Dist answered = query(u, v);
      part.require(answered == dist_u[v], ctx,
                   "query(" + std::to_string(u) + ", " + std::to_string(v) + ") = " +
                       (answered == kInfDist ? std::string("inf (uncovered pair)")
                                             : std::to_string(answered)) +
                       ", true distance is " + std::to_string(dist_u[v]));
    }
  });
  for (const AuditReport& part : parts) report.merge(part);
  return report;
}

namespace {

/// Shared state for a chunked first-defect scan: each chunk owns a result
/// slot keyed by its index, and `first_found` lets higher-indexed chunks
/// stop early once a lower-indexed chunk has a defect (their results would
/// be discarded anyway, so early exit never changes the answer).
struct DefectScan {
  explicit DefectScan(std::size_t num_chunks)
      : slots(num_chunks), first_found(num_chunks) {}

  /// True when a strictly lower-indexed chunk already found a defect.
  [[nodiscard]] bool superseded(std::size_t chunk_index) const {
    return first_found.load(std::memory_order_relaxed) < chunk_index;
  }

  void record(std::size_t chunk_index, const LabelingDefect& defect) {
    slots[chunk_index] = defect;
    std::size_t cur = first_found.load(std::memory_order_relaxed);
    while (chunk_index < cur &&
           !first_found.compare_exchange_weak(cur, chunk_index, std::memory_order_relaxed)) {
    }
  }

  /// The defect of the lowest-indexed chunk that found one == the first
  /// defect in sequential scan order.
  [[nodiscard]] std::optional<LabelingDefect> first() const {
    for (const auto& slot : slots) {
      if (slot) return slot;
    }
    return std::nullopt;
  }

  std::vector<std::optional<LabelingDefect>> slots;
  std::atomic<std::size_t> first_found;
};

}  // namespace

std::optional<LabelingDefect> verify_labeling(const Graph& g, const HubLabeling& labeling,
                                              const DistanceMatrix& truth, std::size_t threads) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n && truth.num_vertices() == n);
  threads = par::resolve_threads(threads);

  // Phase 1: every stored entry is exact.
  {
    const auto chunks = par::static_chunks(0, n, threads);
    DefectScan scan(chunks.size());
    par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
      for (std::size_t vi = chunk.begin; vi < chunk.end; ++vi) {
        if (scan.superseded(chunk.index)) return;
        const auto v = static_cast<Vertex>(vi);
        for (const HubEntry& e : labeling.label(v)) {
          if (e.hub >= n || truth.at(v, e.hub) != e.dist) {
            scan.record(chunk.index,
                        LabelingDefect{LabelingDefect::Kind::kWrongDistance, v, e.hub, e.dist,
                                       e.hub < n ? truth.at(v, e.hub) : kInfDist});
            return;
          }
        }
      }
    });
    if (auto defect = scan.first()) return defect;
  }

  // Phase 2: every connected pair queries to the true distance.
  const auto chunks = par::static_chunks(0, n, threads);
  DefectScan scan(chunks.size());
  par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
    for (std::size_t ui = chunk.begin; ui < chunk.end; ++ui) {
      if (scan.superseded(chunk.index)) return;
      const auto u = static_cast<Vertex>(ui);
      for (Vertex v = u; v < n; ++v) {
        const Dist actual = truth.at(u, v);
        if (actual == kInfDist) continue;
        const Dist answered = labeling.query(u, v);
        if (answered != actual) {
          scan.record(chunk.index,
                      LabelingDefect{LabelingDefect::Kind::kUncoveredPair, u, v, answered, actual});
          return;
        }
      }
    }
  });
  return scan.first();
}

std::optional<LabelingDefect> verify_labeling_sampled(const Graph& g, const HubLabeling& labeling,
                                                      std::size_t num_samples, std::uint64_t seed,
                                                      std::size_t threads) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n);
  if (n == 0) return std::nullopt;
  threads = par::resolve_threads(threads);

  // Draw all sample pairs sequentially first: the Rng stream — and hence
  // the samples and the first defect — do not depend on the thread count.
  Rng rng(seed);
  std::vector<std::pair<Vertex, Vertex>> samples;
  samples.reserve(num_samples);
  for (std::size_t s = 0; s < num_samples; ++s) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    samples.emplace_back(u, v);
  }

  const auto chunks = par::static_chunks(0, num_samples, threads);
  DefectScan scan(chunks.size());
  par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
    for (std::size_t s = chunk.begin; s < chunk.end; ++s) {
      if (scan.superseded(chunk.index)) return;
      const auto [u, v] = samples[s];
      const auto dist_u = sssp_distances(g, u);
      // Check u's own entries while we have its distances.
      bool found = false;
      for (const HubEntry& e : labeling.label(u)) {
        if (e.hub >= n || dist_u[e.hub] != e.dist) {
          scan.record(chunk.index,
                      LabelingDefect{LabelingDefect::Kind::kWrongDistance, u, e.hub, e.dist,
                                     e.hub < n ? dist_u[e.hub] : kInfDist});
          found = true;
          break;
        }
      }
      if (found) return;
      if (dist_u[v] == kInfDist) continue;
      const Dist answered = labeling.query(u, v);
      if (answered != dist_u[v]) {
        scan.record(chunk.index, LabelingDefect{LabelingDefect::Kind::kUncoveredPair, u, v,
                                                answered, dist_u[v]});
        return;
      }
    }
  });
  return scan.first();
}

HubLabeling monotone_closure(const Graph& g, const HubLabeling& labeling, std::size_t threads) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(labeling.num_vertices() == n);
  // Per-vertex closed labels land in per-vertex slots, so the assembled
  // labeling is identical for every thread count.
  std::vector<std::vector<HubEntry>> closed(n);
  par::parallel_for(0, n, threads, [&](const par::ChunkRange& chunk) {
    std::vector<bool> marked(n, false);
    for (std::size_t vi = chunk.begin; vi < chunk.end; ++vi) {
      const auto v = static_cast<Vertex>(vi);
      const SsspResult tree = sssp(g, v);
      // Mark every tree ancestor of every hub; collect marked vertices.
      std::fill(marked.begin(), marked.end(), false);
      for (const HubEntry& e : labeling.label(v)) {
        HUBLAB_ASSERT_MSG(e.hub < n && tree.dist[e.hub] == e.dist,
                          "monotone_closure requires exact-distance labels");
        for (Vertex x = e.hub; x != kInvalidVertex && !marked[x]; x = tree.parent[x]) {
          marked[x] = true;
          if (x == v) break;
        }
      }
      marked[v] = true;  // v always belongs to its own closed label
      for (Vertex x = 0; x < n; ++x) {
        if (marked[x]) closed[v].push_back(HubEntry{x, tree.dist[x]});
      }
    }
  });
  HubLabeling result(std::move(closed));
  result.finalize();
  return result;
}

}  // namespace hublab
