// Fixture: bench-harness -- a bench binary that skips bench/harness.hpp.

int main() { return 0; }
