file(REMOVE_RECURSE
  "CMakeFiles/structured_test.dir/structured_test.cpp.o"
  "CMakeFiles/structured_test.dir/structured_test.cpp.o.d"
  "structured_test"
  "structured_test.pdb"
  "structured_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
