file(REMOVE_RECURSE
  "CMakeFiles/hublab_sumindex.dir/sumindex.cpp.o"
  "CMakeFiles/hublab_sumindex.dir/sumindex.cpp.o.d"
  "libhublab_sumindex.a"
  "libhublab_sumindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_sumindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
