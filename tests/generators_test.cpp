#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "util/error.hpp"

namespace hublab {
namespace {

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(num_connected_components(g), 1u);
}

TEST(Generators, PathSingleVertex) {
  const Graph g = gen::path(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, Cycle) {
  const Graph g = gen::cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(gen::cycle(2), InvalidArgument);
}

TEST(Generators, Complete) {
  const Graph g = gen::complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Generators, Star) {
  const Graph g = gen::star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(num_connected_components(g), 1u);
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(num_connected_components(g), 1u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  const Graph g = gen::random_tree(100, rng);
  EXPECT_EQ(g.num_edges(), 99u);
  EXPECT_EQ(num_connected_components(g), 1u);
}

TEST(Generators, GnmExactEdgeCount) {
  Rng rng(2);
  const Graph g = gen::gnm(50, 120, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
}

TEST(Generators, GnmTooManyEdgesThrows) {
  Rng rng(2);
  EXPECT_THROW(gen::gnm(4, 10, rng), InvalidArgument);
}

TEST(Generators, GnmDeterministicPerSeed) {
  Rng r1(77);
  Rng r2(77);
  const Graph a = gen::gnm(30, 60, r1);
  const Graph b = gen::gnm(30, 60, r2);
  for (Vertex v = 0; v < 30; ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
}

TEST(Generators, ConnectedGnm) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(80, 160, rng);
  EXPECT_EQ(g.num_vertices(), 80u);
  EXPECT_EQ(g.num_edges(), 160u);
  EXPECT_EQ(num_connected_components(g), 1u);
  EXPECT_THROW(gen::connected_gnm(10, 5, rng), InvalidArgument);
}

TEST(Generators, RandomRegular) {
  Rng rng(4);
  const Graph g = gen::random_regular(60, 3, rng);
  EXPECT_EQ(g.num_vertices(), 60u);
  for (Vertex v = 0; v < 60; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Generators, RandomRegularParityThrows) {
  Rng rng(4);
  EXPECT_THROW(gen::random_regular(7, 3, rng), InvalidArgument);
  EXPECT_THROW(gen::random_regular(4, 5, rng), InvalidArgument);
}

TEST(Generators, BarabasiAlbert) {
  Rng rng(5);
  const Graph g = gen::barabasi_albert(200, 2, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Seed clique-chain has 3 edges for k=2; each of the 197 newcomers adds 2.
  EXPECT_EQ(g.num_edges(), 3u + 197u * 2u);
  EXPECT_EQ(num_connected_components(g), 1u);
  EXPECT_THROW(gen::barabasi_albert(3, 3, rng), InvalidArgument);
}

TEST(Generators, BarabasiAlbertHeavyTail) {
  Rng rng(6);
  const Graph g = gen::barabasi_albert(500, 2, rng);
  // The max degree should far exceed the average (scale-free-ish).
  EXPECT_GT(static_cast<double>(g.max_degree()), 3.0 * g.average_degree());
}

TEST(Generators, RoadLike) {
  Rng rng(7);
  const Graph g = gen::road_like(10, 10, 0.3, 10, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_GE(g.num_edges(), 180u);  // grid edges at least
  EXPECT_EQ(num_connected_components(g), 1u);
  EXPECT_LE(g.max_weight(), 10u);
  EXPECT_THROW(gen::road_like(2, 2, 0.0, 0, rng), InvalidArgument);
}

TEST(Generators, RandomizeWeights) {
  Rng rng(8);
  const Graph g = gen::grid(5, 5);
  const Graph w = gen::randomize_weights(g, 7, rng);
  EXPECT_EQ(w.num_edges(), g.num_edges());
  EXPECT_TRUE(w.is_weighted() || w.max_weight() == 1);
  EXPECT_LE(w.max_weight(), 7u);
  EXPECT_THROW(gen::randomize_weights(g, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace hublab
