file(REMOVE_RECURSE
  "CMakeFiles/hublab_util.dir/bitstream.cpp.o"
  "CMakeFiles/hublab_util.dir/bitstream.cpp.o.d"
  "CMakeFiles/hublab_util.dir/table.cpp.o"
  "CMakeFiles/hublab_util.dir/table.cpp.o.d"
  "libhublab_util.a"
  "libhublab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
