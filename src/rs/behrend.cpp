#include "rs/behrend.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace hublab::rs {

bool is_progression_free(const std::vector<std::uint64_t>& set) {
  // O(|A|^2) with a hash-free membership test over the sorted set.
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      // midpoint candidate: x + z == 2y with x = set[i], z = set[j]
      const std::uint64_t sum = set[i] + set[j];
      if (sum % 2 != 0) continue;
      const std::uint64_t mid = sum / 2;
      if (mid == set[i] || mid == set[j]) continue;
      if (std::binary_search(set.begin(), set.end(), mid)) return false;
    }
  }
  return true;
}

namespace {

/// Enumerate digit vectors in [0, k]^d grouped by squared norm; for the best
/// norm class, emit the values sum digit_i * base^i.
std::vector<std::uint64_t> sphere_set(std::uint64_t d, std::uint64_t k, std::uint64_t base,
                                      std::uint64_t N, std::uint64_t& radius_out) {
  // First pass: count vectors per squared radius.
  std::vector<std::uint64_t> digits(d, 0);
  std::map<std::uint64_t, std::uint64_t> counts;
  for (;;) {
    std::uint64_t r = 0;
    for (std::uint64_t i = 0; i < d; ++i) r += digits[i] * digits[i];
    ++counts[r];
    // Odometer increment.
    std::uint64_t pos = 0;
    while (pos < d && digits[pos] == k) digits[pos++] = 0;
    if (pos == d) break;
    ++digits[pos];
  }
  std::uint64_t best_r = 0;
  std::uint64_t best_count = 0;
  for (const auto& [r, c] : counts) {
    if (r == 0) continue;  // radius 0 gives the single zero vector
    if (c > best_count) {
      best_count = c;
      best_r = r;
    }
  }
  radius_out = best_r;

  // Second pass: emit values on the chosen sphere.
  std::vector<std::uint64_t> out;
  out.reserve(best_count);
  std::fill(digits.begin(), digits.end(), 0);
  for (;;) {
    std::uint64_t r = 0;
    std::uint64_t value = 0;
    std::uint64_t scale = 1;
    for (std::uint64_t i = 0; i < d; ++i) {
      r += digits[i] * digits[i];
      value += digits[i] * scale;
      scale *= base;
    }
    if (r == best_r && value < N) out.push_back(value);
    std::uint64_t pos = 0;
    while (pos < d && digits[pos] == k) digits[pos++] = 0;
    if (pos == d) break;
    ++digits[pos];
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// b^e, saturating at UINT64_MAX.
std::uint64_t ipow(std::uint64_t b, std::uint64_t e) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < e; ++i) {
    if (b != 0 && r > UINT64_MAX / b) return UINT64_MAX;
    r *= b;
  }
  return r;
}

}  // namespace

std::vector<std::uint64_t> behrend_set_with_params(std::uint64_t N, BehrendParams& params_out) {
  if (N == 0) return {};
  if (N <= 3) {
    // [0, N) is itself 3-AP-free for N <= 2; {0,1} for N == 3 avoids 0,1,2.
    std::vector<std::uint64_t> small;
    for (std::uint64_t v = 0; v < std::min<std::uint64_t>(N, 2); ++v) small.push_back(v);
    params_out = BehrendParams{1, small.empty() ? 0 : small.back(), 0, small.size()};
    return small;
  }

  std::vector<std::uint64_t> best;
  BehrendParams best_params;
  // Try every dimension d; base = 2k+1 with k the largest digit bound such
  // that (2k+1)^d <= N, which guarantees no carries in x + z.
  for (std::uint64_t d = 1; ipow(3, d) <= N && d <= 24; ++d) {
    // Largest base with base^d <= N.
    std::uint64_t base = 2;
    while (ipow(base + 1, d) <= N) ++base;
    if (base < 3) continue;
    const std::uint64_t k = (base - 1) / 2;  // digits in [0, k]; x+z digits <= 2k < base
    if (k == 0) continue;
    // Cap enumeration work: (k+1)^d vectors.
    if (ipow(k + 1, d) > 20'000'000ULL) continue;
    std::uint64_t radius = 0;
    auto candidate = sphere_set(d, k, base, N, radius);
    if (candidate.size() > best.size()) {
      best = std::move(candidate);
      best_params = BehrendParams{d, k, radius, best.size()};
    }
  }
  if (best.empty()) {
    // Fallback for awkward small N.
    best = {0, 1};
    while (best.back() >= N) best.pop_back();
    best_params = BehrendParams{1, 1, 0, best.size()};
  }
  params_out = best_params;
  return best;
}

std::vector<std::uint64_t> behrend_set(std::uint64_t N) {
  BehrendParams unused;
  return behrend_set_with_params(N, unused);
}

std::vector<std::uint64_t> dense_set(std::uint64_t N) {
  auto behrend = behrend_set(N);
  auto base3 = base3_set(N);
  return behrend.size() >= base3.size() ? behrend : base3;
}

std::vector<std::uint64_t> base3_set(std::uint64_t N) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t v = 0; v < N; ++v) {
    std::uint64_t x = v;
    bool ok = true;
    while (x > 0) {
      if (x % 3 == 2) {
        ok = false;
        break;
      }
      x /= 3;
    }
    if (ok) out.push_back(v);
  }
  return out;
}

namespace {

void optimal_rec(std::uint64_t next, std::uint64_t N, std::vector<std::uint64_t>& current,
                 std::vector<std::uint64_t>& best) {
  if (current.size() + (N - next) <= best.size()) return;  // bound
  if (next == N) {
    if (current.size() > best.size()) best = current;
    return;
  }
  // Try including `next` if it creates no 3-AP with current elements.
  bool ok = true;
  for (std::size_t i = 0; i < current.size() && ok; ++i) {
    // current[i], mid, next
    const std::uint64_t sum = current[i] + next;
    if (sum % 2 == 0) {
      const std::uint64_t mid = sum / 2;
      if (mid != current[i] && mid != next &&
          std::binary_search(current.begin(), current.end(), mid)) {
        ok = false;
      }
    }
    // next as the largest term: x + next == 2y for x, y in current.
    for (std::size_t j = i + 1; j < current.size() && ok; ++j) {
      if (current[i] + next == 2 * current[j]) ok = false;
    }
    // next as the midpoint: x + z == 2*next with x in current; z = 2*next - x.
    if (ok && 2 * next >= current[i]) {
      const std::uint64_t z = 2 * next - current[i];
      if (z != next && z != current[i] &&
          std::binary_search(current.begin(), current.end(), z)) {
        ok = false;
      }
    }
  }
  if (ok) {
    current.push_back(next);
    optimal_rec(next + 1, N, current, best);
    current.pop_back();
  }
  optimal_rec(next + 1, N, current, best);
}

}  // namespace

std::vector<std::uint64_t> optimal_set(std::uint64_t N) {
  if (N > 40) throw InvalidArgument("optimal_set limited to N <= 40");
  std::vector<std::uint64_t> current;
  std::vector<std::uint64_t> best;
  optimal_rec(0, N, current, best);
  return best;
}

}  // namespace hublab::rs
