#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

/// \file bench_schema.hpp
/// Schema checks for the machine-readable BENCH_<name>.json files every
/// bench binary emits through bench/harness.hpp (see
/// docs/observability.md for the schema).  Used by `hublab validate-bench`
/// and the bench-smoke stage of tools/check.sh, so a bench that silently
/// stops reporting a field fails CI instead of producing holes in the
/// perf trajectory.

namespace hublab {

/// Current schema_version emitted by bench/harness.hpp.
inline constexpr std::uint64_t kBenchSchemaVersion = 1;

/// All schema violations in `doc` (empty result == valid).  Messages are
/// human-readable, e.g. "phases[2].wall_s: expected a number".
std::vector<std::string> validate_bench_json(const JsonValue& doc);

}  // namespace hublab
