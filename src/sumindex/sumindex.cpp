#include "sumindex/sumindex.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hublab::si {

Message TrivialProtocol::alice(const std::vector<std::uint8_t>& S, std::uint64_t a) const {
  if (S.size() != m_ || a >= m_) throw InvalidArgument("trivial protocol: bad instance");
  BitWriter w;
  for (std::uint8_t bit : S) w.put_bit(bit != 0);
  return Message{w.take(), a};
}

Message TrivialProtocol::bob(const std::vector<std::uint8_t>& S, std::uint64_t b) const {
  if (S.size() != m_ || b >= m_) throw InvalidArgument("trivial protocol: bad instance");
  return Message{BitString{}, b};
}

int TrivialProtocol::referee(const Message& alice_msg, const Message& bob_msg) const {
  const std::uint64_t m = alice_msg.payload.size_bits();
  if (m == 0) throw ParseError("trivial protocol: empty payload");
  BitReader r(alice_msg.payload);
  const std::uint64_t target = (alice_msg.index + bob_msg.index) % m;
  for (std::uint64_t i = 0; i < target; ++i) (void)r.get_bit();
  return r.get_bit() ? 1 : 0;
}

GadgetProtocol::GadgetProtocol(lb::GadgetParams params,
                               std::shared_ptr<const DistanceLabelingScheme> scheme,
                               bool use_degree3)
    : params_(params), scheme_(std::move(scheme)), use_degree3_(use_degree3) {
  params_.validate();
  if (scheme_ == nullptr) throw InvalidArgument("gadget protocol: null labeling scheme");
  if (params_.s() < 4) {
    // s/2 must be >= 2 so that repr() has a non-degenerate digit base.
    throw InvalidArgument("gadget protocol needs b >= 2 (digit base s/2 >= 2)");
  }
  m_ = 1;
  for (std::uint32_t k = 0; k < params_.ell; ++k) m_ *= params_.s() / 2;
}

std::string GadgetProtocol::name() const {
  return std::string("gadget-") + (use_degree3_ ? "G" : "H") + "-" + scheme_->name();
}

std::uint64_t GadgetProtocol::repr(const lb::Coords& y) const {
  std::uint64_t value = 0;
  std::uint64_t scale = 1;
  const std::uint64_t half = params_.s() / 2;
  for (std::uint32_t k = 0; k < params_.ell; ++k) {
    value = (value + (y[k] % m_) * (scale % m_)) % m_;
    scale = (scale * half) % m_;
  }
  return value;
}

lb::Coords GadgetProtocol::digits(std::uint64_t a) const {
  HUBLAB_ASSERT(a < m_);
  lb::Coords coords(params_.ell);
  const std::uint64_t half = params_.s() / 2;
  for (std::uint32_t k = 0; k < params_.ell; ++k) {
    coords[k] = static_cast<std::uint32_t>(a % half);
    a /= half;
  }
  return coords;
}

std::vector<bool> GadgetProtocol::removal_mask(const std::vector<std::uint8_t>& S) const {
  if (S.size() != m_) throw InvalidArgument("gadget protocol: |S| != m");
  const std::uint64_t layer = params_.layer_size();
  std::vector<bool> removed(layer, false);
  // Temporary gadget only for coordinate arithmetic would be wasteful; do
  // the base-s decomposition inline.
  for (std::uint64_t idx = 0; idx < layer; ++idx) {
    std::uint64_t rest = idx;
    lb::Coords y(params_.ell);
    for (std::uint32_t k = 0; k < params_.ell; ++k) {
      y[k] = static_cast<std::uint32_t>(rest % params_.s());
      rest /= params_.s();
    }
    removed[idx] = (S[repr(y)] == 0);
  }
  return removed;
}

const EncodedLabels& GadgetProtocol::labels_for(const std::vector<std::uint8_t>& S) const {
  if (cache_valid_ && cached_s_ == S) return cached_labels_;
  const std::vector<bool> removed = removal_mask(S);
  const lb::LayeredGadget h(params_, &removed);

  alice_vertex_.resize(m_);
  bob_vertex_.resize(m_);
  if (use_degree3_) {
    const lb::Degree3Gadget g3(h);
    cached_labels_ = scheme_->encode(g3.graph());
    for (std::uint64_t a = 0; a < m_; ++a) {
      lb::Coords x = digits(a);
      for (auto& c : x) c *= 2;
      alice_vertex_[a] = g3.image(h.vertex_at(0, x));
      bob_vertex_[a] = g3.image(h.vertex_at(2ULL * params_.ell, x));
    }
  } else {
    cached_labels_ = scheme_->encode(h.graph());
    for (std::uint64_t a = 0; a < m_; ++a) {
      lb::Coords x = digits(a);
      for (auto& c : x) c *= 2;
      alice_vertex_[a] = h.vertex_at(0, x);
      bob_vertex_[a] = h.vertex_at(2ULL * params_.ell, x);
    }
  }
  cached_s_ = S;
  cache_valid_ = true;
  return cached_labels_;
}

Message GadgetProtocol::alice(const std::vector<std::uint8_t>& S, std::uint64_t a) const {
  if (a >= m_) throw InvalidArgument("gadget protocol: a out of range");
  const EncodedLabels& labels = labels_for(S);
  return Message{labels.labels[alice_vertex_[a]], a};
}

Message GadgetProtocol::bob(const std::vector<std::uint8_t>& S, std::uint64_t b) const {
  if (b >= m_) throw InvalidArgument("gadget protocol: b out of range");
  const EncodedLabels& labels = labels_for(S);
  return Message{labels.labels[bob_vertex_[b]], b};
}

int GadgetProtocol::referee(const Message& alice_msg, const Message& bob_msg) const {
  // The referee knows the public protocol parameters (params_, scheme_) and
  // the two messages -- never S itself.
  const Dist answered = scheme_->decode(alice_msg.payload, bob_msg.payload);
  const lb::Coords x = digits(alice_msg.index);
  const lb::Coords z = digits(bob_msg.index);
  lb::Coords x2 = x;
  lb::Coords z2 = z;
  for (auto& c : x2) c *= 2;
  for (auto& c : z2) c *= 2;
  // Closed-form Lemma 2.2 distance when the midpoint is present.
  Dist expected = 2ULL * params_.ell * params_.base_weight();
  for (std::uint32_t k = 0; k < params_.ell; ++k) {
    const std::uint64_t half = x2[k] > z2[k] ? (x2[k] - z2[k]) / 2 : (z2[k] - x2[k]) / 2;
    expected += 2 * half * half;
  }
  return answered == expected ? 1 : 0;
}

ProtocolRun run_protocol(const SumIndexProtocol& protocol, const std::vector<std::uint8_t>& S,
                         std::uint64_t a, std::uint64_t b) {
  const std::uint64_t m = protocol.universe_size();
  ProtocolRun run;
  const Message ma = protocol.alice(S, a);
  const Message mb = protocol.bob(S, b);
  run.output = protocol.referee(ma, mb);
  run.expected = S[(a + b) % m] != 0 ? 1 : 0;
  run.alice_bits = ma.total_bits(m);
  run.bob_bits = mb.total_bits(m);
  return run;
}

ProtocolStats evaluate_protocol(const SumIndexProtocol& protocol, std::uint64_t num_trials,
                                std::uint64_t seed, std::uint64_t queries_per_s) {
  const std::uint64_t m = protocol.universe_size();
  Rng rng(seed);
  ProtocolStats stats;
  std::vector<std::uint8_t> S(m);
  std::uint64_t queries_left = 0;
  metrics::Histogram& h_alice = metrics::registry().histogram("si.alice_bits");
  metrics::Histogram& h_bob = metrics::registry().histogram("si.bob_bits");
  for (std::uint64_t t = 0; t < num_trials; ++t) {
    if (queries_left == 0) {
      for (auto& bit : S) bit = static_cast<std::uint8_t>(rng.next_below(2));
      queries_left = queries_per_s;
    }
    --queries_left;
    const std::uint64_t a = rng.next_below(m);
    const std::uint64_t b = rng.next_below(m);
    const ProtocolRun run = run_protocol(protocol, S, a, b);
    ++stats.trials;
    if (run.correct()) ++stats.correct;
    stats.max_alice_bits = std::max(stats.max_alice_bits, run.alice_bits);
    stats.max_bob_bits = std::max(stats.max_bob_bits, run.bob_bits);
    h_alice.record(run.alice_bits);
    h_bob.record(run.bob_bits);
  }
  metrics::registry().counter("si.trials").add(stats.trials);
  metrics::registry().counter("si.correct").add(stats.correct);
  return stats;
}

}  // namespace hublab::si
