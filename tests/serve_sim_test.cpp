#include "oracle/serve.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/oracle.hpp"
#include "rs/rs_graph.hpp"
#include "util/bench_schema.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/prometheus.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hublab::serve {
namespace {

Graph small_gadget() {
  return lb::LayeredGadget(lb::GadgetParams{1, 1}).graph();
}

SimConfig smoke_config(OracleKind oracle, WorkloadKind workload) {
  SimConfig config;
  config.oracle = oracle;
  config.workload = workload;
  config.num_queries = 300;
  config.warmup = 20;
  config.seed = 5;
  return config;
}

TEST(ServeEnums, NamesRoundTripThroughParse) {
  for (const OracleKind kind :
       {OracleKind::kPll, OracleKind::kPllFlat, OracleKind::kCh, OracleKind::kBidij}) {
    EXPECT_EQ(parse_oracle_kind(oracle_kind_name(kind)), kind);
  }
  for (const WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                  WorkloadKind::kNear, WorkloadKind::kFar}) {
    EXPECT_EQ(parse_workload_kind(workload_kind_name(kind)), kind);
  }
  EXPECT_FALSE(parse_oracle_kind("apsp").has_value());
  EXPECT_FALSE(parse_workload_kind("bursty").has_value());
}

TEST(WorkloadGenerator, DeterministicAndInRange) {
  // Large enough that the far-workload distance quartiles hold many
  // vertices; on tiny graphs the pools collapse to one vertex and every
  // seed generates the same (only possible) pair.
  Rng graph_rng(1);
  const Graph g = gen::connected_gnm(200, 400, graph_rng);
  for (const WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                  WorkloadKind::kNear, WorkloadKind::kFar}) {
    WorkloadGenerator a(g, kind, 11);
    WorkloadGenerator b(g, kind, 11);
    WorkloadGenerator c(g, kind, 12);
    std::vector<std::pair<Vertex, Vertex>> from_a;
    bool differs_from_c = false;
    for (int i = 0; i < 200; ++i) {
      const auto pa = a.next();
      const auto pb = b.next();
      const auto pc = c.next();
      EXPECT_EQ(pa, pb) << "workload " << workload_kind_name(kind) << " not deterministic";
      EXPECT_LT(pa.first, g.num_vertices());
      EXPECT_LT(pa.second, g.num_vertices());
      differs_from_c = differs_from_c || pa != pc;
      from_a.push_back(pa);
    }
    EXPECT_TRUE(differs_from_c) << "seed is ignored for " << workload_kind_name(kind);
  }
}

TEST(WorkloadGenerator, ZipfSkewsTowardLowVertexIds) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(500, 1000, rng);
  WorkloadGenerator w(g, WorkloadKind::kZipf, 7);
  std::size_t low = 0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    const auto [u, v] = w.next();
    low += u < g.num_vertices() / 10 ? 1 : 0;
    low += v < g.num_vertices() / 10 ? 1 : 0;
  }
  // Uniform endpoints would put ~10% in the first decile; Zipf(1) puts the
  // bulk there.  Use a conservative threshold to stay seed-robust.
  EXPECT_GT(low, static_cast<std::size_t>(2 * samples * 2 / 10));
}

TEST(WorkloadGenerator, BlockMatchesStreamedNext) {
  // The server pre-generates pairs via block(); serve-sim streams them via
  // next().  Same seed, same stream — or the open- and closed-loop paths
  // would silently answer different workloads.
  Rng graph_rng(2);
  const Graph g = gen::connected_gnm(100, 200, graph_rng);
  for (const WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                  WorkloadKind::kNear, WorkloadKind::kFar}) {
    WorkloadGenerator blocked(g, kind, 9);
    WorkloadGenerator streamed(g, kind, 9);
    const auto pairs = blocked.block(150);
    ASSERT_EQ(pairs.size(), 150u);
    for (const auto& pair : pairs) {
      EXPECT_EQ(pair, streamed.next()) << workload_kind_name(kind);
    }
  }
}

TEST(WorkloadGenerator, AllKindsSurviveSingleVertexGraph) {
  // Degenerate bounds: one vertex, no arcs.  The near walk has nowhere to
  // go, the far pools collapse to the root, zipf's CDF has one entry.
  const Graph g = GraphBuilder(1).build();
  for (const WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                  WorkloadKind::kNear, WorkloadKind::kFar}) {
    WorkloadGenerator w(g, kind, 3);
    for (int i = 0; i < 50; ++i) {
      const auto [u, v] = w.next();
      EXPECT_EQ(u, 0u) << workload_kind_name(kind);
      EXPECT_EQ(v, 0u) << workload_kind_name(kind);
    }
  }
}

TEST(WorkloadGenerator, NearAndFarStayReachableOnDisconnectedGraphs) {
  // Two components (a path and a cycle) plus an isolated vertex.  Near
  // pairs follow real arcs out of u, so they cannot cross components; far
  // pairs come from the BFS quartiles of the highest-degree root, so both
  // endpoints live in that root's component.  Either way every generated
  // pair has a finite distance — uniform on this graph would not.
  GraphBuilder builder(11);
  for (Vertex v = 0; v + 1 < 5; ++v) builder.add_edge(v, v + 1);  // path 0..4
  for (Vertex v = 5; v < 10; ++v) builder.add_edge(v, 5 + (v - 4) % 5);  // cycle 5..9
  const Graph g = builder.build();  // vertex 10 stays isolated
  for (const WorkloadKind kind : {WorkloadKind::kNear, WorkloadKind::kFar}) {
    WorkloadGenerator w(g, kind, 17);
    for (int i = 0; i < 300; ++i) {
      const auto [u, v] = w.next();
      ASSERT_LT(u, g.num_vertices());
      ASSERT_LT(v, g.num_vertices());
      EXPECT_NE(sssp_distances(g, u)[v], kInfDist)
          << workload_kind_name(kind) << " produced unreachable pair " << u << "->" << v;
    }
  }
}

TEST(RunSim, BatchedLatencyChargesFullBlockTime) {
  // The batched path answers a whole block per kernel call, and every
  // query in the block completes when the call returns — so each query is
  // charged the block's wall time, and the sketch's total is roughly
  // block-size times the scalar path's total (within kernel speedup).
  // The answers themselves must not move.
  Rng rng(4);
  const Graph g = gen::connected_gnm(200, 400, rng);
  SimConfig scalar = smoke_config(OracleKind::kPllFlat, WorkloadKind::kUniform);
  scalar.num_queries = 2048;  // kQueryChunks=64 chunks of 32: full blocks
  scalar.warmup = 0;
  scalar.batch = 1;
  SimConfig batched = scalar;
  batched.batch = 32;
  metrics::registry().reset();
  const SimResult rs = run_sim(g, scalar);
  metrics::registry().reset();
  const SimResult rb = run_sim(g, batched);
  EXPECT_EQ(rs.checksum, rb.checksum);
  EXPECT_EQ(rs.reachable, rb.reachable);
  EXPECT_EQ(rs.latency_ns.count(), rb.latency_ns.count());
  // 32 queries each charged the full 32-query block: the batched total is
  // many times the scalar total even after SIMD speedup.  A conservative
  // 2x bound keeps the test robust to scheduling noise.
  EXPECT_GT(rb.latency_ns.sum(), 2 * rs.latency_ns.sum());
}

TEST(RunSim, GadgetLatencyQuantilesAreMonotoneAcrossOracles) {
  const Graph g = small_gadget();
  for (const OracleKind oracle : {OracleKind::kPll, OracleKind::kCh, OracleKind::kBidij}) {
    metrics::registry().reset();
    const SimResult result = run_sim(g, smoke_config(oracle, WorkloadKind::kUniform));
    EXPECT_EQ(result.queries, 300u);
    EXPECT_GT(result.start_unix_ms, 0u);
    const QuantileSketch& lat = result.latency_ns;
    EXPECT_EQ(lat.count(), result.queries);
    const std::uint64_t p50 = lat.quantile(0.5);
    const std::uint64_t p90 = lat.quantile(0.9);
    const std::uint64_t p99 = lat.quantile(0.99);
    const std::uint64_t p999 = lat.quantile(0.999);
    EXPECT_GT(p50, 0u);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(p999, lat.max());
    // The gadget is connected: every query must find a finite distance.
    EXPECT_EQ(result.reachable, result.queries);
    EXPECT_GT(result.checksum, 0u);
  }
}

TEST(RunSim, RsGraphFamilyAndAllWorkloads) {
  const rs::RsGraph rs_graph = rs::behrend_rs_graph(30);
  for (const WorkloadKind workload : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                                      WorkloadKind::kNear, WorkloadKind::kFar}) {
    metrics::registry().reset();
    const SimResult result =
        run_sim(rs_graph.graph, smoke_config(OracleKind::kPll, workload));
    EXPECT_EQ(result.queries, 300u) << workload_kind_name(workload);
    EXPECT_LE(result.latency_ns.quantile(0.5), result.latency_ns.quantile(0.99));
    // near endpoints come from a random walk out of u, far endpoints from
    // the reachable distance quartiles: both always produce reachable pairs.
    if (workload == WorkloadKind::kNear || workload == WorkloadKind::kFar) {
      EXPECT_EQ(result.reachable, result.queries) << workload_kind_name(workload);
    }
  }
}

#if HUBLAB_METRICS_ENABLED

TEST(RunSim, PopulatesRegistryMetrics) {
  metrics::registry().reset();
  const Graph g = small_gadget();
  (void)run_sim(g, smoke_config(OracleKind::kBidij, WorkloadKind::kUniform));
  bool saw_queries = false;
  for (const auto& c : metrics::registry().counters()) {
    if (c.name == "serve.queries") {
      saw_queries = true;
      EXPECT_EQ(c.value, 300u);
    }
  }
  EXPECT_TRUE(saw_queries);
  bool saw_sketch = false;
  for (const auto& s : metrics::registry().sketches()) {
    if (s.name == "serve.query_ns") {
      saw_sketch = true;
      EXPECT_EQ(s.count, 300u);
    }
  }
  EXPECT_TRUE(saw_sketch);
}

#endif  // HUBLAB_METRICS_ENABLED

TEST(RunSim, FlatOracleMatchesVectorOracleAnswers) {
  // pll and pll-flat serve the same labeling through different layouts;
  // the served answers (checksum over distances) must agree exactly.
  const Graph g = small_gadget();
  metrics::registry().reset();
  const SimResult vec = run_sim(g, smoke_config(OracleKind::kPll, WorkloadKind::kUniform));
  metrics::registry().reset();
  const SimResult flat = run_sim(g, smoke_config(OracleKind::kPllFlat, WorkloadKind::kUniform));
  EXPECT_EQ(vec.checksum, flat.checksum);
  EXPECT_EQ(vec.reachable, flat.reachable);
  EXPECT_GT(flat.space_bytes_flat, 0u);
  EXPECT_GT(vec.space_bytes_flat, 0u);  // hub-label serve also reports the flat cost
}

TEST(RunSim, ThreadCountDoesNotChangeResults) {
  // The determinism contract for the serve loop: everything except wall
  // times — checksum, reachability, and the latency sketch's *structure*
  // (count; quantiles depend on timing values, so only count is stable) —
  // is identical at --threads 1 and --threads 4.  The chunking is fixed at
  // kQueryChunks, so the merge tree does not change with the worker count.
  const Graph g = small_gadget();
  metrics::registry().reset();
  SimConfig one = smoke_config(OracleKind::kPllFlat, WorkloadKind::kZipf);
  one.threads = 1;
  const SimResult r1 = run_sim(g, one);
  metrics::registry().reset();
  SimConfig four = smoke_config(OracleKind::kPllFlat, WorkloadKind::kZipf);
  four.threads = 4;
  const SimResult r4 = run_sim(g, four);

  EXPECT_EQ(r1.threads, 1u);
  EXPECT_EQ(r4.threads, 4u);
  EXPECT_EQ(r1.queries, r4.queries);
  EXPECT_EQ(r1.checksum, r4.checksum);
  EXPECT_EQ(r1.reachable, r4.reachable);
  EXPECT_EQ(r1.latency_ns.count(), r4.latency_ns.count());
  EXPECT_EQ(r1.space_bytes, r4.space_bytes);
  EXPECT_EQ(r1.space_bytes_flat, r4.space_bytes_flat);
}

TEST(ServeReport, CarriesThreadsAndFlatSpace) {
  metrics::registry().reset();
  Tracer tracer;
  const Graph g = small_gadget();
  SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  config.threads = 4;
  const SimResult result = run_sim(g, config, &tracer);
  EXPECT_EQ(result.threads, 4u);

  std::ostringstream os;
  write_serve_report_json(os, result, config, g, "gadget-h", "deadbeef", true, tracer);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  ASSERT_NE(doc.find("threads"), nullptr);
  EXPECT_EQ(doc.find("threads")->number_value, 4.0);
  ASSERT_NE(doc.find("space_bytes_flat"), nullptr);
  EXPECT_GT(doc.find("space_bytes_flat")->number_value, 0.0);
}

TEST(RunSim, RejectsEmptyGraph) {
  const Graph g;
  EXPECT_THROW((void)run_sim(g, SimConfig{}), InvalidArgument);
}

TEST(ServeReport, CarriesWorkerUtilization) {
  metrics::registry().reset();
  Tracer tracer;
  const Graph g = small_gadget();
  SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  config.threads = 2;
  const SimResult result = run_sim(g, config, &tracer);
  ASSERT_FALSE(result.worker_busy_ns.empty());
  std::uint64_t busy_total = 0;
  for (const std::uint64_t ns : result.worker_busy_ns) busy_total += ns;
  EXPECT_GT(busy_total, 0u) << "no worker recorded busy time";
  EXPECT_GT(result.worker_utilization_pct, 0.0);
  // Busy sums can exceed the loop wall window by clock granularity only.
  EXPECT_LE(result.worker_utilization_pct, 120.0);

  std::ostringstream os;
  write_serve_report_json(os, result, config, g, "gadget-h", "deadbeef", true, tracer);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  ASSERT_NE(doc.find("worker_utilization_pct"), nullptr);
  const JsonValue* workers = doc.find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_FALSE(workers->array_items.size() == 0u);
  for (const JsonValue& w : workers->array_items) {
    ASSERT_NE(w.find("worker"), nullptr);
    ASSERT_NE(w.find("busy_ns"), nullptr);
    EXPECT_GE(w.find("busy_ns")->number_value, 0.0);
  }
}

TEST(ServeReport, ValidatesAgainstBenchSchemaWithServeMembers) {
  metrics::registry().reset();
  Tracer tracer;
  const Graph g = small_gadget();
  const SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kFar);
  const SimResult result = run_sim(g, config, &tracer);

  std::ostringstream os;
  write_serve_report_json(os, result, config, g, "gadget-h", "deadbeef", true, tracer);
  const JsonValue doc = parse_json(os.str());
  const std::vector<std::string> errors = validate_bench_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());

  EXPECT_EQ(doc.find("bench")->string_value, "serve-pll");
  EXPECT_EQ(doc.find("oracle")->string_value, "pll");
  EXPECT_EQ(doc.find("workload")->string_value, "far");
  EXPECT_EQ(doc.find("git_rev")->string_value, "deadbeef");
  EXPECT_TRUE(doc.find("smoke")->bool_value);
  EXPECT_EQ(doc.find("queries")->number_value, 300.0);
  ASSERT_NE(doc.find("latency_ns"), nullptr);
  EXPECT_GT(doc.find("latency_ns")->find("p999")->number_value, 0.0);
  ASSERT_EQ(doc.find("graphs")->array_items.size(), 1u);
  EXPECT_EQ(doc.find("graphs")->array_items[0].find("family")->string_value, "gadget-h");
  // The tracer spans surface as phases.
  bool saw_build = false;
  for (const JsonValue& p : doc.find("phases")->array_items) {
    saw_build = saw_build || p.find("name")->string_value == "build-oracle";
  }
  EXPECT_TRUE(saw_build);
}

#if HUBLAB_METRICS_ENABLED

TEST(ServeReport, PrometheusDumpCoversServeMetrics) {
  metrics::registry().reset();
  const Graph g = small_gadget();
  (void)run_sim(g, smoke_config(OracleKind::kPll, WorkloadKind::kUniform));
  std::ostringstream os;
  write_prometheus_text(metrics::registry(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE hublab_serve_queries counter"), std::string::npos);
  EXPECT_NE(text.find("hublab_serve_queries 300"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hublab_serve_query_ns summary"), std::string::npos);
  EXPECT_NE(text.find("hublab_serve_query_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("hublab_serve_query_ns{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("hublab_serve_query_ns_count 300"), std::string::npos);
}

#endif  // HUBLAB_METRICS_ENABLED

TEST(RunSim, WindowsPartitionTheRecordedQueries) {
  metrics::registry().reset();
  const Graph g = small_gadget();
  SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  config.window_ns = 50'000;  // tiny windows so the smoke loop spans several
  const SimResult result = run_sim(g, config);
  ASSERT_FALSE(result.windows.empty());
  std::uint64_t queries = 0;
  std::uint64_t reachable = 0;
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    const WindowStats& w = result.windows[i];
    if (i > 0) {
      EXPECT_GT(w.index, prev_index) << "window indices must ascend";
    }
    prev_index = w.index;
    EXPECT_GT(w.queries, 0u) << "empty windows are not emitted";
    EXPECT_LE(w.reachable, w.queries);
    EXPECT_GT(w.qps, 0.0);
    EXPECT_LE(w.p50_ns, w.p99_ns);
    queries += w.queries;
    reachable += w.reachable;
  }
  EXPECT_EQ(queries, result.queries);
  EXPECT_EQ(reachable, result.reachable);
}

TEST(RunSim, ExemplarReservoirCoversEveryRecordedQuery) {
  metrics::registry().reset();
  const Graph g = small_gadget();
  const SimConfig config = smoke_config(OracleKind::kPllFlat, WorkloadKind::kZipf);
  const SimResult result = run_sim(g, config);
  EXPECT_EQ(result.exemplars.count(), result.queries);
  std::uint64_t offered = 0;
  for (const metrics::ExemplarBucket& b : result.exemplars.snapshot()) {
    offered += b.count;
    EXPECT_LE(b.exemplars.size(), config.exemplars_per_bucket);
    for (const metrics::Exemplar& e : b.exemplars) {
      EXPECT_LT(e.s, g.num_vertices());
      EXPECT_LT(e.t, g.num_vertices());
      EXPECT_LT(e.seq, result.queries);
      EXPECT_LE(e.latency_ns, b.le);
    }
  }
  EXPECT_EQ(offered, result.queries);
}

TEST(RunSim, SlowQueryThresholdCapturesWorstFirst) {
  metrics::registry().reset();
  const Graph g = small_gadget();
  SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  config.slow_query_ns = 1;  // every measured query matches
  config.slow_query_capacity = 8;
  const SimResult result = run_sim(g, config);
  EXPECT_EQ(result.slow_queries.total_slow(), result.queries);
  ASSERT_LE(result.slow_queries.entries().size(), 8u);
  ASSERT_FALSE(result.slow_queries.entries().empty());
  const auto& entries = result.slow_queries.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].latency_ns, entries[i].latency_ns);
  }
  // The worst retained witness is the sketch's max sample.
  EXPECT_EQ(entries.front().latency_ns, result.latency_ns.max());

  metrics::registry().reset();
  SimConfig off = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  off.slow_query_ns = 0;
  const SimResult quiet = run_sim(g, off);
  EXPECT_EQ(quiet.slow_queries.total_slow(), 0u);
  EXPECT_TRUE(quiet.slow_queries.entries().empty());
}

TEST(RunSim, AttributionIsThreadCountInvariant) {
  // Scan cost and meeting hubs are functions of (oracle, pairs), both
  // thread-count invariant, so the heavy-hitter totals and the exemplar
  // offer counts must match across worker counts (retained exemplar
  // *contents* hinge on measured latencies and may differ run to run).
  const Graph g = small_gadget();
  metrics::registry().reset();
  SimConfig one = smoke_config(OracleKind::kPll, WorkloadKind::kNear);
  one.threads = 1;
  const SimResult r1 = run_sim(g, one);
  metrics::registry().reset();
  SimConfig four = smoke_config(OracleKind::kPll, WorkloadKind::kNear);
  four.threads = 4;
  const SimResult r4 = run_sim(g, four);

  EXPECT_EQ(r1.exemplars.count(), r4.exemplars.count());
  EXPECT_EQ(r1.hub_scan_cost.total_weight(), r4.hub_scan_cost.total_weight());
  const auto t1 = r1.hub_scan_cost.top();
  const auto t4 = r4.hub_scan_cost.top();
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].key, t4[i].key);
    EXPECT_EQ(t1[i].weight, t4[i].weight);
  }
}

TEST(ServeReport, CarriesWindowsSlowQueriesAndValidatesAsV4) {
  metrics::registry().reset();
  Tracer tracer;
  const Graph g = small_gadget();
  SimConfig config = smoke_config(OracleKind::kPll, WorkloadKind::kUniform);
  config.slow_query_ns = 1;
  config.window_ns = 100'000;
  const SimResult result = run_sim(g, config, &tracer);

  std::ostringstream os;
  write_serve_report_json(os, result, config, g, "gadget-h", "deadbeef", true, tracer);
  const JsonValue doc = parse_json(os.str());
  const std::vector<std::string> errors = validate_bench_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());

  ASSERT_NE(doc.find("window_ns"), nullptr);
  EXPECT_EQ(doc.find("window_ns")->number_value, 100'000.0);
  ASSERT_NE(doc.find("slow_query_ns"), nullptr);
  const JsonValue* windows = doc.find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_FALSE(windows->array_items.empty());
  double window_queries = 0;
  for (const JsonValue& w : windows->array_items) {
    ASSERT_NE(w.find("index"), nullptr);
    ASSERT_NE(w.find("qps"), nullptr);
    ASSERT_NE(w.find("p50_ns"), nullptr);
    ASSERT_NE(w.find("p99_ns"), nullptr);
    window_queries += w.find("queries")->number_value;
  }
  EXPECT_EQ(window_queries, static_cast<double>(result.queries));

  const JsonValue* slow = doc.find("slow_queries");
  ASSERT_NE(slow, nullptr);
  ASSERT_FALSE(slow->array_items.empty());
  for (const JsonValue& e : slow->array_items) {
    ASSERT_NE(e.find("seq"), nullptr);
    ASSERT_NE(e.find("s"), nullptr);
    ASSERT_NE(e.find("t"), nullptr);
    ASSERT_NE(e.find("latency_ns"), nullptr);
    ASSERT_NE(e.find("scan_cost"), nullptr);
    ASSERT_NE(e.find("meeting_hub"), nullptr);
  }
  ASSERT_NE(doc.find("slow_queries_total"), nullptr);
  EXPECT_EQ(doc.find("slow_queries_total")->number_value,
            static_cast<double>(result.queries));
}

TEST(MakeOracle, BuildsEveryKindAndRejectsEmptyGraph) {
  const Graph g = small_gadget();
  for (const OracleKind kind :
       {OracleKind::kPll, OracleKind::kPllFlat, OracleKind::kCh, OracleKind::kBidij}) {
    SimConfig config;
    config.oracle = kind;
    const auto oracle = make_oracle(g, config);
    ASSERT_NE(oracle, nullptr);
    // Answers must agree with the vector hub labeling on a sample pair.
    EXPECT_EQ(oracle->distance(0, 1), make_oracle(g, SimConfig{})->distance(0, 1));
  }
  const Graph empty;
  EXPECT_THROW((void)make_oracle(empty, SimConfig{}), InvalidArgument);
}

}  // namespace
}  // namespace hublab::serve
