# Empty compiler generated dependencies file for highway_test.
# This may be replaced when dependencies are built.
