#include "oracle/serve.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <ostream>
#include <span>

#include "hub/pll.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "oracle/oracle.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/querystats.hpp"
#include "util/report.hpp"
#include "util/resource.hpp"
#include "util/timer.hpp"

namespace hublab::serve {

namespace {

std::unique_ptr<DistanceOracle> build_oracle(const Graph& g, const SimConfig& config) {
  const OracleKind kind = config.oracle;
  const PllConfig pll{config.bp_roots, config.threads};
  switch (kind) {
    case OracleKind::kPll: {
      const auto order = make_vertex_order(g, VertexOrder::kDegreeDescending);
      return std::make_unique<HubLabelOracle>(g, pruned_landmark_labeling(g, order, pll));
    }
    case OracleKind::kPllFlat: {
      const auto order = make_vertex_order(g, VertexOrder::kDegreeDescending);
      // Single-pass finalize straight into the flat layout.
      return std::make_unique<FlatHubLabelOracle>(pruned_landmark_labeling_flat(g, order, pll));
    }
    case OracleKind::kCh:
      return std::make_unique<ContractionHierarchy>(g);
    case OracleKind::kBidij:
      return std::make_unique<BidirectionalOracle>(g);
  }
  HUBLAB_UNREACHABLE();
}

/// The query loop is chunked for the per-thread latency sketches.  The
/// chunk count is a *constant*, not the thread count: per-chunk sketches
/// merge associatively-sensitively (see util/qsketch.hpp), so the chunking
/// must not change when --threads does, or the merged sketch structure
/// would differ between thread counts.
constexpr std::size_t kQueryChunks = 64;

/// Per-window accumulator used inside the chunked query loop; folded into
/// serve::WindowStats once all chunks merged.
struct WindowAccum {
  std::uint64_t queries = 0;
  std::uint64_t reachable = 0;
  QuantileSketch latency_ns;
};

}  // namespace

std::unique_ptr<DistanceOracle> make_oracle(const Graph& g, const SimConfig& config) {
  if (g.num_vertices() == 0) throw InvalidArgument("serve-sim: empty graph");
  return build_oracle(g, config);
}

std::string_view oracle_kind_name(OracleKind kind) noexcept {
  switch (kind) {
    case OracleKind::kPll: return "pll";
    case OracleKind::kPllFlat: return "pll-flat";
    case OracleKind::kCh: return "ch";
    case OracleKind::kBidij: return "bidij";
  }
  return "pll";
}

std::optional<OracleKind> parse_oracle_kind(std::string_view name) noexcept {
  if (name == "pll") return OracleKind::kPll;
  if (name == "pll-flat") return OracleKind::kPllFlat;
  if (name == "ch") return OracleKind::kCh;
  if (name == "bidij") return OracleKind::kBidij;
  return std::nullopt;
}

SimResult run_sim(const Graph& g, const SimConfig& config, Tracer* tracer) {
  if (g.num_vertices() == 0) throw InvalidArgument("serve-sim: empty graph");
  metrics::Registry& reg = metrics::registry();
  SimResult result;
  result.start_unix_ms = unix_time_ms();
  result.workload_name = workload_kind_name(config.workload);
  result.threads = par::resolve_threads(config.threads);

  Tracer local_tracer;
  Tracer& t = tracer != nullptr ? *tracer : local_tracer;

  std::unique_ptr<DistanceOracle> oracle;
  {
    auto span = t.span("build-oracle");
    Timer build_timer;
    oracle = build_oracle(g, config);
    result.build_s = build_timer.elapsed_s();
  }
  result.oracle_name = oracle->name();
  result.space_bytes = oracle->space_bytes();
  // For hub-label oracles also report the flat SoA footprint, so reports
  // show the vector-vs-flat space saving side by side.
  if (const auto* hub = dynamic_cast<const HubLabelOracle*>(oracle.get())) {
    result.space_bytes_flat = FlatHubLabeling(hub->labeling()).memory_bytes();
  } else if (const auto* flat = dynamic_cast<const FlatHubLabelOracle*>(oracle.get())) {
    result.space_bytes_flat = flat->labeling().memory_bytes();
  }
  reg.gauge("serve.space_bytes").set(static_cast<std::int64_t>(result.space_bytes));
  HUBLAB_LOG_INFO("serve", "oracle built", log::Field("oracle", result.oracle_name),
                  log::Field("build_s", result.build_s),
                  log::Field("space_bytes", static_cast<std::uint64_t>(result.space_bytes)));

  // Pairs are pre-generated so workload sampling never pollutes the
  // measured query latencies.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  {
    auto span = t.span("gen-workload");
    WorkloadGenerator workload(g, config.workload, config.seed);
    pairs.reserve(config.warmup + config.num_queries);
    for (std::uint64_t i = 0; i < config.warmup + config.num_queries; ++i) {
      pairs.push_back(workload.next());
    }
  }

  {
    auto span = t.span("run-queries");
    for (std::uint64_t i = 0; i < config.warmup && i < pairs.size(); ++i) {
      (void)oracle->distance(pairs[i].first, pairs[i].second);
    }

    // Closed-loop recorded queries on result.threads workers.  The chunk
    // list is fixed (kQueryChunks), each chunk records into its own slot,
    // and slots merge in chunk order below — so everything except the
    // wall-clock latency values is bit-identical across thread counts.
    struct ChunkStats {
      QuantileSketch latency_ns;
      std::uint64_t queries = 0;
      std::uint64_t reachable = 0;
      std::uint64_t checksum = 0;
      std::uint64_t busy_ns = 0;     ///< wall time this chunk spent executing
      std::size_t worker = 0;        ///< par::worker_index() that ran it
      perf::HwCounters hw;           ///< chunk-local hardware-counter delta
      metrics::ExemplarReservoir exemplars;     ///< chunk-local witness capture
      metrics::SlowQueryLog slow;               ///< chunk-local threshold capture
      metrics::SpaceSavingSketch hub_scan_cost; ///< chunk-local hub attribution
      std::map<std::uint64_t, WindowAccum> windows;  ///< window index -> accum
    };
    const std::size_t first = std::min<std::size_t>(config.warmup, pairs.size());
    const auto chunks = par::static_chunks(first, pairs.size(), kQueryChunks);
    std::vector<ChunkStats> stats(chunks.size());
    for (std::size_t c = 0; c < stats.size(); ++c) {
      // Per-chunk seeds derive from the run seed and the fixed chunk list,
      // so the retained exemplars depend only on (seed, latencies) — never
      // on the thread count.
      stats[c].exemplars = metrics::ExemplarReservoir(
          config.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)), config.exemplars_per_bucket);
      stats[c].slow = metrics::SlowQueryLog(config.slow_query_ns, config.slow_query_capacity);
    }
    const std::uint64_t window_ns = std::max<std::uint64_t>(1, config.window_ns);
    const std::size_t batch = std::max<std::size_t>(1, config.batch);
    Timer loop_timer;
    const std::uint64_t loop_begin_ns = monotonic_ns();
    par::run_chunks(chunks, result.threads, [&](const par::ChunkRange& chunk) {
      ChunkStats& s = stats[chunk.index];
      s.worker = par::worker_index();
      const std::uint64_t chunk_begin_ns = monotonic_ns();
      perf::ScopedHw hw_scope(s.hw);
      if (batch >= 2) {
        // Batched serving: each chunk is answered in sub-blocks through
        // the oracle's batch kernel.  Answers (and hence queries /
        // reachable / checksum) are byte-identical to the per-query path;
        // every query in a block completes when the block's kernel call
        // returns, so each is charged the full block wall time — the
        // per-query completion latency a caller would observe, directly
        // comparable with the per-query path's sketch (a block of B cheap
        // queries reads ~B times slower per query, which is the real
        // latency cost of batching).  The exemplars carry the batch
        // answers' meeting hubs with zero scan cost — batch mode trades
        // per-query scan attribution for throughput.
        std::vector<HubQueryResult> answers;
        for (std::size_t i = chunk.begin; i < chunk.end; i += batch) {
          const std::size_t block_size = std::min(batch, chunk.end - i);
          answers.assign(block_size, HubQueryResult{});
          const std::uint64_t begin_ns = monotonic_ns();
          oracle->distance_batch(
              std::span<const std::pair<Vertex, Vertex>>(pairs.data() + i, block_size), answers);
          const std::uint64_t block_ns = monotonic_ns() - begin_ns;
          const std::uint64_t latency_ns = block_ns;
          WindowAccum& win = s.windows[(begin_ns - loop_begin_ns) / window_ns];
          for (std::size_t j = 0; j < block_size; ++j) {
            const Dist d = answers[j].dist;
            s.latency_ns.record(latency_ns);
            ++s.queries;
            if (d != kInfDist) {
              ++s.reachable;
              s.checksum += d;
            }
            const metrics::Exemplar witness{static_cast<std::uint64_t>(i + j - first),
                                            pairs[i + j].first,
                                            pairs[i + j].second,
                                            latency_ns,
                                            0,
                                            answers[j].meeting_hub};
            s.exemplars.offer(witness);
            s.slow.offer(witness);
            ++win.queries;
            if (d != kInfDist) ++win.reachable;
            win.latency_ns.record(latency_ns);
          }
        }
      } else {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          metrics::QueryStats probe;
          const std::uint64_t begin_ns = monotonic_ns();
          const Dist d = oracle->distance_with_stats(pairs[i].first, pairs[i].second, probe);
          const std::uint64_t latency_ns = monotonic_ns() - begin_ns;
          s.latency_ns.record(latency_ns);
          ++s.queries;
          if (d != kInfDist) {
            ++s.reachable;
            s.checksum += d;
          }
          // Attribution bookkeeping stays outside the measured interval.
          const metrics::Exemplar witness{static_cast<std::uint64_t>(i - first),
                                          pairs[i].first,
                                          pairs[i].second,
                                          latency_ns,
                                          probe.scan_cost(),
                                          probe.meeting_hub()};
          s.exemplars.offer(witness);
          s.slow.offer(witness);
          if (probe.meeting_hub() != metrics::kNoMeetingHub) {
            s.hub_scan_cost.add(probe.meeting_hub(), probe.scan_cost());
          }
          WindowAccum& win = s.windows[(begin_ns - loop_begin_ns) / window_ns];
          ++win.queries;
          if (d != kInfDist) ++win.reachable;
          win.latency_ns.record(latency_ns);
        }
      }
      s.busy_ns = monotonic_ns() - chunk_begin_ns;
    });
    result.query_loop_s = loop_timer.elapsed_s();
    result.exemplars =
        metrics::ExemplarReservoir(config.seed, config.exemplars_per_bucket);
    result.slow_queries =
        metrics::SlowQueryLog(config.slow_query_ns, config.slow_query_capacity);
    std::map<std::uint64_t, WindowAccum> merged_windows;
    for (const ChunkStats& s : stats) {
      result.latency_ns.merge(s.latency_ns);
      result.queries += s.queries;
      result.reachable += s.reachable;
      result.checksum += s.checksum;
      result.hw += s.hw;
      result.exemplars.merge(s.exemplars);
      result.slow_queries.merge(s.slow);
      result.hub_scan_cost.merge(s.hub_scan_cost);
      for (const auto& [index, win] : s.windows) {
        WindowAccum& acc = merged_windows[index];
        acc.queries += win.queries;
        acc.reachable += win.reachable;
        acc.latency_ns.merge(win.latency_ns);
      }
      // Any pool worker may execute a chunk regardless of the requested
      // thread count, so size the busy array by the indices actually seen.
      if (s.worker >= result.worker_busy_ns.size()) {
        result.worker_busy_ns.resize(s.worker + 1, 0);
      }
      result.worker_busy_ns[s.worker] += s.busy_ns;
    }
    result.windows.reserve(merged_windows.size());
    for (const auto& [index, win] : merged_windows) {
      result.windows.push_back({index, win.queries, win.reachable,
                                static_cast<double>(win.queries) /
                                    (static_cast<double>(window_ns) / 1e9),
                                win.latency_ns.quantile(0.5),
                                win.latency_ns.quantile(0.99)});
    }
    std::uint64_t total_busy_ns = 0;
    for (const std::uint64_t busy : result.worker_busy_ns) total_busy_ns += busy;
    const double capacity_ns =
        result.query_loop_s * 1e9 * static_cast<double>(result.threads);
    result.worker_utilization_pct =
        capacity_ns > 0.0 ? 100.0 * static_cast<double>(total_busy_ns) / capacity_ns : 0.0;
  }

  reg.counter("serve.queries").add(result.queries);
  reg.counter("serve.reachable").add(result.reachable);
  reg.sketch("serve.query_ns").merge(result.latency_ns);
  reg.gauge("serve.worker_utilization_pct")
      .set(static_cast<std::int64_t>(result.worker_utilization_pct));
  for (std::size_t w = 0; w < result.worker_busy_ns.size(); ++w) {
    reg.gauge("serve.worker_busy_ns." + std::to_string(w))
        .set(static_cast<std::int64_t>(result.worker_busy_ns[w]));
  }
  reg.counter("serve.slow_queries").add(result.slow_queries.total_slow());
  reg.gauge("serve.window.count").set(static_cast<std::int64_t>(result.windows.size()));
  for (const WindowStats& win : result.windows) {
    const std::string idx = std::to_string(win.index);
    reg.gauge("serve.window.queries." + idx).set(static_cast<std::int64_t>(win.queries));
    reg.gauge("serve.window.qps." + idx).set(static_cast<std::int64_t>(win.qps));
    reg.gauge("serve.window.p50_ns." + idx).set(static_cast<std::int64_t>(win.p50_ns));
    reg.gauge("serve.window.p99_ns." + idx).set(static_cast<std::int64_t>(win.p99_ns));
  }
  metrics::ExemplarStore& store = reg.exemplar("serve.query_exemplars");
  store.configure(config.seed, config.exemplars_per_bucket);
  store.merge(result.exemplars);
  reg.heavy_hitter("hub.scan_cost").merge(result.hub_scan_cost);
  // The structured slow-query log goes out *after* the loop (capped at the
  // log's capacity) so serving latency never pays for log formatting.
  for (const metrics::Exemplar& e : result.slow_queries.entries()) {
    HUBLAB_LOG_WARN("serve", "slow query", log::Field("seq", e.seq),
                    log::Field("s", static_cast<std::uint64_t>(e.s)),
                    log::Field("t", static_cast<std::uint64_t>(e.t)),
                    log::Field("latency_ns", e.latency_ns),
                    log::Field("scan_cost", e.scan_cost),
                    log::Field("meeting_hub", static_cast<std::uint64_t>(e.meeting_hub)),
                    log::Field("threshold_ns", result.slow_queries.threshold_ns()));
  }
  if (result.hw.valid) {
    reg.counter("perf.cycles").add(result.hw.cycles);
    reg.counter("perf.instructions").add(result.hw.instructions);
    reg.counter("perf.l1d_misses").add(result.hw.l1d_misses);
    reg.counter("perf.llc_misses").add(result.hw.llc_misses);
    reg.counter("perf.branch_misses").add(result.hw.branch_misses);
  }
  HUBLAB_LOG_INFO("serve", "query loop done",
                  log::Field("workload", result.workload_name),
                  log::Field("queries", result.queries),
                  log::Field("reachable", result.reachable),
                  log::Field("p50_ns", result.latency_ns.quantile(0.5)),
                  log::Field("p99_ns", result.latency_ns.quantile(0.99)));
  return result;
}

void write_serve_report_json(std::ostream& os, const SimResult& result, const SimConfig& config,
                             const Graph& g, std::string_view graph_family,
                             std::string_view git_rev, bool smoke, const Tracer& tracer) {
  ReportHeader header;
  header.name = "serve-" + std::string(oracle_kind_name(config.oracle));
  header.git_rev = std::string(git_rev);
  header.smoke = smoke;
  header.ok = true;
  header.repetitions = 1;
  header.start_unix_ms = result.start_unix_ms;
  header.threads = result.threads;
  header.bp_roots = static_cast<std::int64_t>(config.bp_roots);
  header.graphs.push_back(
      {std::string(graph_family), g.num_vertices(), g.num_edges()});
  const QuantileSketch& lat = result.latency_ns;
  write_run_report_json(os, header, tracer, metrics::registry(), [&](JsonWriter& w) {
    w.kv("oracle", oracle_kind_name(config.oracle));
    w.kv("oracle_impl", result.oracle_name);
    w.kv("workload", result.workload_name);
    w.kv("seed", config.seed);
    w.kv("warmup", config.warmup);
    w.kv("batch", static_cast<std::uint64_t>(config.batch));
    w.kv("queries", result.queries);
    w.kv("reachable", result.reachable);
    w.kv("checksum", result.checksum);
    w.kv("space_bytes", static_cast<std::uint64_t>(result.space_bytes));
    w.kv("space_bytes_flat", static_cast<std::uint64_t>(result.space_bytes_flat));
    w.kv("build_s", result.build_s);
    w.kv("query_loop_s", result.query_loop_s);
    w.kv("worker_utilization_pct", result.worker_utilization_pct);
    w.key("workers").begin_array();
    for (std::size_t i = 0; i < result.worker_busy_ns.size(); ++i) {
      w.begin_object();
      w.kv("worker", static_cast<std::uint64_t>(i));
      w.kv("busy_ns", result.worker_busy_ns[i]);
      const double loop_ns = result.query_loop_s * 1e9;
      w.kv("utilization_pct",
           loop_ns > 0.0 ? 100.0 * static_cast<double>(result.worker_busy_ns[i]) / loop_ns : 0.0);
      w.end_object();
    }
    w.end_array();
    if (result.hw.valid) {
      w.key("hw_query_loop").begin_object();
      w.kv("cycles", result.hw.cycles);
      w.kv("instructions", result.hw.instructions);
      w.kv("ipc", result.hw.ipc());
      w.kv("l1d_misses", result.hw.l1d_misses);
      w.kv("llc_misses", result.hw.llc_misses);
      w.kv("branch_misses", result.hw.branch_misses);
      w.kv("llc_miss_rate", result.hw.llc_miss_rate());
      w.kv("branch_miss_rate", result.hw.branch_miss_rate());
      w.end_object();
    }
    w.key("latency_ns").begin_object();
    w.kv("count", lat.count());
    w.kv("min", lat.min());
    w.kv("max", lat.max());
    w.kv("p50", lat.quantile(0.5));
    w.kv("p90", lat.quantile(0.9));
    w.kv("p99", lat.quantile(0.99));
    w.kv("p999", lat.quantile(0.999));
    w.kv("rank_error", lat.rank_error_bound());
    w.end_object();
    // Schema v4 attribution members.
    w.kv("window_ns", config.window_ns);
    w.kv("slow_query_ns", config.slow_query_ns);
    w.key("windows").begin_array();
    for (const WindowStats& win : result.windows) {
      w.begin_object();
      w.kv("index", win.index);
      w.kv("queries", win.queries);
      w.kv("reachable", win.reachable);
      w.kv("qps", win.qps);
      w.kv("p50_ns", win.p50_ns);
      w.kv("p99_ns", win.p99_ns);
      w.end_object();
    }
    w.end_array();
    w.key("slow_queries").begin_array();
    for (const metrics::Exemplar& e : result.slow_queries.entries()) {
      w.begin_object();
      w.kv("seq", e.seq);
      w.kv("s", static_cast<std::uint64_t>(e.s));
      w.kv("t", static_cast<std::uint64_t>(e.t));
      w.kv("latency_ns", e.latency_ns);
      w.kv("scan_cost", e.scan_cost);
      w.kv("meeting_hub", static_cast<std::uint64_t>(e.meeting_hub));
      w.end_object();
    }
    w.end_array();
    w.kv("slow_queries_total", result.slow_queries.total_slow());
  });
}

}  // namespace hublab::serve
