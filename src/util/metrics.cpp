#include "util/metrics.hpp"

#if HUBLAB_METRICS_ENABLED

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>
#include <ostream>

namespace hublab::metrics {

namespace {

std::size_t bucket_of(std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));  // 0 -> 0, else floor_log2+1
}

}  // namespace

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ULL ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::bucket_count(std::size_t bucket) const noexcept {
  return bucket < kNumBuckets ? buckets_[bucket].load(std::memory_order_relaxed) : 0;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~0ULL;
  return (1ULL << bucket) - 1;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: at least ceil(p * total) values must be <= the bound.
  const double exact = p * static_cast<double>(total);
  auto need = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(need) < exact) ++need;
  if (need == 0) need = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= need) return bucket_upper_bound(b);
  }
  return bucket_upper_bound(kNumBuckets - 1);
}

/// Node-based maps: references handed out stay valid across later inserts.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
  std::map<std::string, Sketch, std::less<>> sketches;
  std::map<std::string, ExemplarStore, std::less<>> exemplars;
  std::map<std::string, HeavyHitter, std::less<>> heavy_hitters;
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second;
  return impl_->counters[std::string(name)];
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return it->second;
  return impl_->gauges[std::string(name)];
}

Histogram& Registry::histogram(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second;
  return impl_->histograms[std::string(name)];
}

Sketch& Registry::sketch(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->sketches.find(name);
  if (it != impl_->sketches.end()) return it->second;
  return impl_->sketches[std::string(name)];
}

ExemplarStore& Registry::exemplar(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->exemplars.find(name);
  if (it != impl_->exemplars.end()) return it->second;
  return impl_->exemplars[std::string(name)];
}

HeavyHitter& Registry::heavy_hitter(std::string_view name) {
  const std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->heavy_hitters.find(name);
  if (it != impl_->heavy_hitters.end()) return it->second;
  return impl_->heavy_hitters[std::string(name)];
}

std::vector<CounterSnapshot> Registry::counters() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) out.push_back({name, c.value()});
  return out;  // std::map iteration order == sorted by name
}

std::vector<GaugeSnapshot> Registry::gauges() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<GaugeSnapshot> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) out.push_back({name, g.value()});
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<HistogramSnapshot> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot snap{name,
                           h.count(),
                           h.sum(),
                           h.min(),
                           h.max(),
                           h.percentile(0.50),
                           h.percentile(0.90),
                           h.percentile(0.99),
                           {}};
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t in_bucket = h.bucket_count(b);
      if (in_bucket > 0) snap.buckets.emplace_back(Histogram::bucket_upper_bound(b), in_bucket);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<SketchSnapshot> Registry::sketches() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<SketchSnapshot> out;
  out.reserve(impl_->sketches.size());
  for (const auto& [name, s] : impl_->sketches) {
    const QuantileSketch q = s.snapshot();
    out.push_back({name, q.count(), q.sum(), q.min(), q.max(), q.quantile(0.50),
                   q.quantile(0.90), q.quantile(0.99), q.quantile(0.999),
                   q.rank_error_bound()});
  }
  return out;
}

std::vector<ExemplarStoreSnapshot> Registry::exemplars() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<ExemplarStoreSnapshot> out;
  out.reserve(impl_->exemplars.size());
  for (const auto& [name, store] : impl_->exemplars) {
    const ExemplarReservoir r = store.snapshot();
    out.push_back({name, r.count(), r.snapshot()});
  }
  return out;
}

std::vector<HeavyHitterSnapshot> Registry::heavy_hitters() const {
  const std::scoped_lock lock(impl_->mutex);
  std::vector<HeavyHitterSnapshot> out;
  out.reserve(impl_->heavy_hitters.size());
  for (const auto& [name, hh] : impl_->heavy_hitters) {
    const SpaceSavingSketch s = hh.snapshot();
    out.push_back({name, s.total_weight(), s.top()});
  }
  return out;
}

void Registry::reset() {
  const std::scoped_lock lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
  for (auto& [name, s] : impl_->sketches) s.reset();
  for (auto& [name, e] : impl_->exemplars) e.reset();
  for (auto& [name, hh] : impl_->heavy_hitters) hh.reset();
}

void Registry::dump(std::ostream& out) const {
  for (const auto& c : counters()) out << "counter " << c.name << " = " << c.value << "\n";
  for (const auto& g : gauges()) out << "gauge " << g.name << " = " << g.value << "\n";
  for (const auto& h : histograms()) {
    out << "histogram " << h.name << " count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max << " p50<=" << h.p50 << " p90<=" << h.p90
        << " p99<=" << h.p99 << "\n";
  }
  for (const auto& s : sketches()) {
    out << "sketch " << s.name << " count=" << s.count << " sum=" << s.sum << " min=" << s.min
        << " max=" << s.max << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99
        << " p999=" << s.p999 << " rank_err<=" << s.rank_error << "\n";
  }
  for (const auto& e : exemplars()) {
    out << "exemplars " << e.name << " count=" << e.count
        << " buckets=" << e.buckets.size() << "\n";
  }
  for (const auto& hh : heavy_hitters()) {
    out << "heavy_hitter " << hh.name << " total_weight=" << hh.total_weight
        << " entries=" << hh.entries.size() << "\n";
  }
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace hublab::metrics

#endif  // HUBLAB_METRICS_ENABLED
