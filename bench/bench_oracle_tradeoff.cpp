/// \file bench_oracle_tradeoff.cpp
/// Experiment TRADEOFF (DESIGN.md): the space/time landscape of exact
/// distance oracles the paper's introduction discusses (S*T ~ n^2 endpoints
/// are trivial; the open middle is what hub labelings would give -- and
/// Theorem 1.1 limits how good hub-label-based points can be on sparse
/// graphs).
///
/// For each oracle: preprocessed space, measured average query time over a
/// fixed query set, and the S*T product.  The landmark oracle is inexact;
/// its observed stretch is reported instead of assumed.

#include <cstdio>
#include <memory>
#include <vector>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "oracle/alt.hpp"
#include "oracle/arc_flags.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "oracle/oracle.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

namespace {

void run_workload(bench::Harness& harness, const Graph& g, const char* family,
                  const char* name) {
  const std::size_t n = g.num_vertices();
  harness.add_graph(family, g.num_vertices(), g.num_edges());
  Rng pick(42);
  std::vector<std::pair<Vertex, Vertex>> queries;
  const int num_queries = harness.smoke() ? 400 : 2000;
  for (int i = 0; i < num_queries; ++i) {
    queries.emplace_back(static_cast<Vertex>(pick.next_below(n)),
                         static_cast<Vertex>(pick.next_below(n)));
  }
  const DistanceMatrix truth = DistanceMatrix::compute(g);

  std::vector<std::unique_ptr<DistanceOracle>> oracles;
  {
    auto build_span = harness.phase(std::string("build-oracles-") + family);
    oracles.push_back(std::make_unique<ApspOracle>(g));
    oracles.push_back(std::make_unique<HubLabelOracle>(g, pruned_landmark_labeling(g)));
    oracles.push_back(std::make_unique<ContractionHierarchy>(g));
    oracles.push_back(std::make_unique<ArcFlagsOracle>(g, 16));
    oracles.push_back(std::make_unique<AltOracle>(g, farthest_landmarks(g, 8)));
    oracles.push_back(std::make_unique<BidirectionalOracle>(g));
    oracles.push_back(std::make_unique<SsspOracle>(g));
    std::vector<Vertex> landmarks;
    for (Vertex v = 0; v < 16 && v < n; ++v) {
      landmarks.push_back(static_cast<Vertex>(v * (n / 16)));
    }
    oracles.push_back(std::make_unique<LandmarkOracle>(g, landmarks));
  }

  auto query_span = harness.phase(std::string("query-oracles-") + family);
  TextTable table({"oracle", "space (KiB)", "avg query (us)", "S*T (KiB*us)", "exact %",
                   "avg stretch"});
  for (const auto& oracle : oracles) {
    // The on-demand oracles are slow; subsample their query load.
    const bool fast = oracle->name() == "apsp-table" || oracle->name() == "hub-labels" ||
                      oracle->name() == "landmarks-upper-bound";
    const std::size_t step = fast ? 1 : 40;

    std::size_t used = 0;
    std::size_t exact = 0;
    double stretch_sum = 0.0;
    std::size_t stretch_count = 0;
    Timer timer;
    for (std::size_t i = 0; i < queries.size(); i += step) {
      const auto [u, v] = queries[i];
      const Dist d = oracle->distance(u, v);
      ++used;
      const Dist t = truth.at(u, v);
      if (d == t) ++exact;
      if (t != kInfDist && t > 0 && d != kInfDist) {
        stretch_sum += static_cast<double>(d) / static_cast<double>(t);
        ++stretch_count;
      }
    }
    const double per_query_us = timer.elapsed_s() * 1e6 / static_cast<double>(used);
    const double space_kib = static_cast<double>(oracle->space_bytes()) / 1024.0;
    table.add_row({oracle->name(), fmt_double(space_kib, 1), fmt_double(per_query_us, 2),
                   fmt_double(space_kib * per_query_us, 1),
                   fmt_double(100.0 * static_cast<double>(exact) / static_cast<double>(used), 1),
                   stretch_count > 0 ? fmt_double(stretch_sum / static_cast<double>(stretch_count), 3)
                                     : "-"});
  }
  query_span.end();
  harness.print(table, std::string("Oracle space/time tradeoff on ") + name);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "oracle_tradeoff",
                         "Experiment TRADEOFF: exact-distance oracle landscape");
  {
    const Graph g = harness.smoke() ? gen::grid(16, 16) : gen::grid(32, 32);
    run_workload(harness, g, "grid", harness.smoke() ? "grid 16x16 (n=256)" : "grid 32x32 (n=1024)");
  }
  {
    Rng rng(7);
    const Graph g = harness.smoke() ? gen::connected_gnm(500, 1000, rng)
                                    : gen::connected_gnm(1500, 3000, rng);
    run_workload(harness, g, "connected-gnm",
                 harness.smoke() ? "connected G(n,m) n=500 m=1000"
                                 : "connected G(n,m) n=1500 m=3000");
  }
  return harness.finish("TRADEOFF experiment", true);
}
