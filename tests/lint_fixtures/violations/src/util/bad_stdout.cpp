// Fixture: stdout-in-library -- library code narrating to stdout.

namespace fixture {

void narrate() { std::cout << "hello"; }

}  // namespace fixture
