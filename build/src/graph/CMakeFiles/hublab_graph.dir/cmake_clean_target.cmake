file(REMOVE_RECURSE
  "libhublab_graph.a"
)
