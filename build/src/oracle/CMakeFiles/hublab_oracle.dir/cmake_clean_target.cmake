file(REMOVE_RECURSE
  "libhublab_oracle.a"
)
