#include "oracle/server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "oracle/oracle.hpp"
#include "oracle/serve.hpp"
#include "util/bench_schema.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hublab::serve {
namespace {

const Graph& test_graph() {
  static const Graph g = [] {
    Rng rng(1);
    return gen::connected_gnm(200, 400, rng);
  }();
  return g;
}

/// One PLL-flat oracle shared across the suite (the build dominates the
/// per-test cost, and run_server_on never mutates it).
const DistanceOracle& test_oracle() {
  static const std::unique_ptr<DistanceOracle> oracle = [] {
    SimConfig build;
    build.oracle = OracleKind::kPllFlat;
    return make_oracle(test_graph(), build);
  }();
  return *oracle;
}

ServerConfig base_config() {
  ServerConfig config;
  config.oracle = OracleKind::kPllFlat;
  config.workload = WorkloadKind::kUniform;
  config.num_queries = 500;
  config.seed = 7;
  config.qps = 500e3;
  config.register_metrics = false;
  return config;
}

/// The deterministic overload shape: virtual time, 4 workers at a simulated
/// 1M queries/s each, offered 4x that against a small ring.
ServerConfig overload_config() {
  ServerConfig config = base_config();
  config.workers = 4;
  config.batch = 8;
  config.timing = TimingMode::kVirtual;
  config.virtual_service_ns = 1000;
  config.qps = 16e6;
  config.ring_capacity = 32;
  config.admission = AdmissionPolicy::kShed;
  return config;
}

TEST(ServeOpen, EnumNamesRoundTripThroughParse) {
  for (const ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBurst}) {
    EXPECT_EQ(parse_arrival_kind(arrival_kind_name(kind)), kind);
  }
  for (const AdmissionPolicy policy : {AdmissionPolicy::kShed, AdmissionPolicy::kBlock}) {
    EXPECT_EQ(parse_admission_policy(admission_policy_name(policy)), policy);
  }
  for (const TimingMode mode : {TimingMode::kWall, TimingMode::kVirtual}) {
    EXPECT_EQ(parse_timing_mode(timing_mode_name(mode)), mode);
  }
  EXPECT_FALSE(parse_arrival_kind("uniform").has_value());
  EXPECT_FALSE(parse_admission_policy("drop").has_value());
  EXPECT_FALSE(parse_timing_mode("simulated").has_value());
}

TEST(ServeOpen, RejectsInvalidConfigs) {
  ServerConfig config = base_config();
  config.qps = 0.0;
  EXPECT_THROW((void)run_server_on(test_graph(), test_oracle(), config), InvalidArgument);
  config = base_config();
  config.num_queries = 0;
  EXPECT_THROW((void)run_server_on(test_graph(), test_oracle(), config), InvalidArgument);
  const Graph empty;
  EXPECT_THROW((void)run_server(empty, base_config()), InvalidArgument);
}

TEST(ServeOpen, BlockAdmissionAnswersEveryQuery) {
  ServerConfig config = base_config();
  config.admission = AdmissionPolicy::kBlock;
  config.workers = 2;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);
  EXPECT_EQ(r.offered, config.num_queries);
  EXPECT_EQ(r.completed, config.num_queries);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.workers, 2u);
  EXPECT_GT(r.checksum, 0u);
  EXPECT_GT(r.achieved_qps, 0.0);
  EXPECT_GT(r.space_bytes, 0u);
  EXPECT_GT(r.space_bytes_flat, 0u);
  // Untrimmed completions all land in the latency sketch.
  EXPECT_EQ(r.latency_ns.count() + r.trimmed_warmup + r.trimmed_cooldown, r.completed);
}

TEST(ServeOpen, ChecksumMatchesDirectOracleLoop) {
  // kBlock answers the whole pre-generated stream, so the served checksum
  // must equal a plain sequential loop over the same WorkloadGenerator
  // pairs against the same oracle.
  ServerConfig config = base_config();
  config.admission = AdmissionPolicy::kBlock;
  config.workers = 3;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);

  WorkloadGenerator workload(test_graph(), config.workload, config.seed);
  const auto pairs = workload.block(config.num_queries);
  std::uint64_t checksum = 0;
  std::uint64_t reachable = 0;
  for (const auto& [s, t] : pairs) {
    const Dist d = test_oracle().distance(s, t);
    if (d != kInfDist) {
      checksum += d;
      ++reachable;
    }
  }
  EXPECT_EQ(r.checksum, checksum);
  EXPECT_EQ(r.reachable, reachable);
}

TEST(ServeOpen, WorkerCountDoesNotChangeAnswersUnderBlock) {
  // The determinism contract: with kBlock admission the answered set is
  // schedule-independent, so 1 and 4 workers agree on every counted thing.
  ServerConfig one = base_config();
  one.admission = AdmissionPolicy::kBlock;
  one.workers = 1;
  ServerConfig four = one;
  four.workers = 4;
  const ServerResult r1 = run_server_on(test_graph(), test_oracle(), one);
  const ServerResult r4 = run_server_on(test_graph(), test_oracle(), four);
  EXPECT_EQ(r1.offered, r4.offered);
  EXPECT_EQ(r1.completed, r4.completed);
  EXPECT_EQ(r1.checksum, r4.checksum);
  EXPECT_EQ(r1.reachable, r4.reachable);
  EXPECT_EQ(r1.latency_ns.count(), r4.latency_ns.count());
}

TEST(ServeOpen, BatchedDrainMatchesScalarChecksum) {
  // batch >= 2 routes through distance_batch (the SIMD kernel on the flat
  // oracle); batch == 1 is the per-query scalar path.  Same answers.
  ServerConfig scalar = base_config();
  scalar.admission = AdmissionPolicy::kBlock;
  scalar.batch = 1;
  ServerConfig batched = scalar;
  batched.batch = 32;
  const ServerResult rs = run_server_on(test_graph(), test_oracle(), scalar);
  const ServerResult rb = run_server_on(test_graph(), test_oracle(), batched);
  EXPECT_EQ(rs.checksum, rb.checksum);
  EXPECT_EQ(rs.reachable, rb.reachable);
  EXPECT_EQ(rs.completed, rb.completed);
}

TEST(ServeOpen, VirtualOverloadShedsDeterministically) {
  const ServerConfig config = overload_config();
  const ServerResult first = run_server_on(test_graph(), test_oracle(), config);
  const ServerResult second = run_server_on(test_graph(), test_oracle(), config);
  // Offered 4x the simulated capacity against a small ring: shedding is
  // mandatory, and completed + rejected partitions the offered stream.
  EXPECT_GT(first.rejected, 0u);
  EXPECT_EQ(first.completed + first.rejected, first.offered);
  // Byte-identical rerun: counts, answers, and the simulated telemetry.
  EXPECT_EQ(first.rejected, second.rejected);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.checksum, second.checksum);
  EXPECT_EQ(first.reachable, second.reachable);
  EXPECT_EQ(first.trimmed_warmup, second.trimmed_warmup);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(first.latency_ns.quantile(q), second.latency_ns.quantile(q));
    EXPECT_EQ(first.queue_depth.quantile(q), second.queue_depth.quantile(q));
  }
  EXPECT_EQ(first.latency_ns.count(), second.latency_ns.count());
  EXPECT_EQ(first.latency_ns.max(), second.latency_ns.max());
  ASSERT_EQ(first.windows.size(), second.windows.size());
  for (std::size_t i = 0; i < first.windows.size(); ++i) {
    EXPECT_EQ(first.windows[i].index, second.windows[i].index);
    EXPECT_EQ(first.windows[i].queries, second.windows[i].queries);
    EXPECT_EQ(first.windows[i].offered, second.windows[i].offered);
    EXPECT_EQ(first.windows[i].rejected, second.windows[i].rejected);
    EXPECT_EQ(first.windows[i].p99_ns, second.windows[i].p99_ns);
  }
  EXPECT_EQ(first.exemplars.count(), second.exemplars.count());
}

TEST(ServeOpen, VirtualSubCapacityShedsNothing) {
  ServerConfig config = overload_config();
  config.qps = 200e3;  // well under 4 workers x 1M/s simulated
  config.ring_capacity = 1024;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.completed, r.offered);
  // Simulated arrival-to-completion is at least the constant service time.
  EXPECT_GE(r.latency_ns.quantile(0.5), config.virtual_service_ns);
}

TEST(ServeOpen, BurstArrivalsServeIdenticalAnswers) {
  ServerConfig poisson = base_config();
  poisson.admission = AdmissionPolicy::kBlock;
  ServerConfig burst = poisson;
  burst.arrival = ArrivalKind::kBurst;
  burst.burst = 16;
  const ServerResult rp = run_server_on(test_graph(), test_oracle(), poisson);
  const ServerResult rb = run_server_on(test_graph(), test_oracle(), burst);
  // The arrival process shapes latency, never the answered set.
  EXPECT_EQ(rp.checksum, rb.checksum);
  EXPECT_EQ(rp.completed, rb.completed);
}

TEST(ServeOpen, WarmupTrimExcludesHeadOfSchedule) {
  // Virtual time makes the trim deterministic: arrivals span
  // num_queries/qps seconds, and every completion is still checksummed.
  ServerConfig config = overload_config();
  config.qps = 1e6;      // schedule spans ~500us
  config.warmup_ms = 10; // clamps to span/4: a deterministic head trim
  config.ring_capacity = 4096;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);
  EXPECT_GT(r.trimmed_warmup, 0u);
  EXPECT_EQ(r.latency_ns.count() + r.trimmed_warmup + r.trimmed_cooldown, r.completed);

  ServerConfig no_trim = config;
  no_trim.warmup_ms = 0;
  const ServerResult all = run_server_on(test_graph(), test_oracle(), no_trim);
  EXPECT_EQ(all.trimmed_warmup, 0u);
  // Trimming is telemetry-only: the answered set does not change.
  EXPECT_EQ(all.checksum, r.checksum);
  EXPECT_EQ(all.completed, r.completed);
}

TEST(ServeOpen, CooldownTrimExcludesTailOfSchedule) {
  ServerConfig config = overload_config();
  config.qps = 1e6;
  config.warmup_ms = 0;
  config.cooldown_ms = 10;  // clamps to span/4: a deterministic tail trim
  config.ring_capacity = 4096;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);
  EXPECT_GT(r.trimmed_cooldown, 0u);
  EXPECT_EQ(r.trimmed_warmup, 0u);
  EXPECT_EQ(r.latency_ns.count() + r.trimmed_cooldown, r.completed);
}

TEST(ServeOpen, WindowsPartitionUntrimmedCompletionsAndOffered) {
  ServerConfig config = overload_config();
  config.qps = 2e6;
  config.window_ns = 100'000;  // the schedule spans several windows
  config.warmup_ms = 0;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config);
  ASSERT_FALSE(r.windows.empty());
  std::uint64_t queries = 0;
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    const WindowStats& w = r.windows[i];
    if (i > 0) {
      EXPECT_GT(w.index, prev_index);
    }
    prev_index = w.index;
    EXPECT_LE(w.rejected, w.offered);
    queries += w.queries;
    offered += w.offered;
    rejected += w.rejected;
  }
  EXPECT_EQ(queries, r.latency_ns.count());
  EXPECT_EQ(offered, r.offered);
  EXPECT_EQ(rejected, r.rejected);
}

TEST(ServeOpen, RunServerBuildsOracleAndReportsBuildTime) {
  ServerConfig config = base_config();
  config.num_queries = 200;
  const ServerResult r = run_server(test_graph(), config);
  // oracle_name is the implementation's self-reported name (the report's
  // `oracle_impl` member), distinct from the configured kind string.
  EXPECT_EQ(r.oracle_name, test_oracle().name());
  EXPECT_GT(r.build_s, 0.0);
  EXPECT_EQ(r.completed + r.rejected, r.offered);
  EXPECT_GT(r.start_unix_ms, 0u);
}

#if HUBLAB_METRICS_ENABLED

TEST(ServeOpen, PopulatesRegistryMetrics) {
  metrics::registry().reset();
  ServerConfig config = overload_config();
  config.register_metrics = true;
  (void)run_server_on(test_graph(), test_oracle(), config);
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t queries = 0;
  for (const auto& c : metrics::registry().counters()) {
    if (c.name == "serve.offered") offered = c.value;
    if (c.name == "serve.rejected") rejected = c.value;
    if (c.name == "serve.queries") queries = c.value;
  }
  EXPECT_EQ(offered, config.num_queries);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(queries + rejected, offered);
  bool saw_depth = false;
  for (const auto& s : metrics::registry().sketches()) {
    saw_depth = saw_depth || s.name == "serve.queue_depth";
  }
  EXPECT_TRUE(saw_depth);
  metrics::registry().reset();
}

#endif  // HUBLAB_METRICS_ENABLED

TEST(ServeOpen, ReportValidatesAgainstBenchSchema) {
  metrics::registry().reset();
  Tracer tracer;
  ServerConfig config = overload_config();
  config.window_ns = 100'000;
  const ServerResult r = run_server_on(test_graph(), test_oracle(), config, &tracer);
  std::vector<SweepPoint> sweep;
  sweep.push_back({config.qps, r.achieved_qps, r.completed, r.rejected,
                   r.latency_ns.quantile(0.5), r.latency_ns.quantile(0.99)});

  std::ostringstream os;
  write_server_report_json(os, r, config, sweep, test_graph(), "connected-gnm", "deadbeef",
                           true, tracer);
  const JsonValue doc = parse_json(os.str());
  const std::vector<std::string> errors = validate_bench_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());

  EXPECT_EQ(doc.find("bench")->string_value, "serve-open-pll-flat");
  EXPECT_EQ(doc.find("admission")->string_value, "shed");
  EXPECT_EQ(doc.find("arrival")->string_value, "poisson");
  EXPECT_EQ(doc.find("timing")->string_value, "virtual");
  EXPECT_EQ(doc.find("offered")->number_value, static_cast<double>(r.offered));
  EXPECT_EQ(doc.find("rejected")->number_value, static_cast<double>(r.rejected));
  EXPECT_EQ(doc.find("queries")->number_value, static_cast<double>(r.completed));
  ASSERT_NE(doc.find("queue_depth"), nullptr);
  ASSERT_NE(doc.find("latency_ns"), nullptr);
  ASSERT_NE(doc.find("trimmed_warmup"), nullptr);
  const JsonValue* windows = doc.find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_FALSE(windows->array_items.empty());
  for (const JsonValue& w : windows->array_items) {
    ASSERT_NE(w.find("offered"), nullptr);
    ASSERT_NE(w.find("rejected"), nullptr);
  }
  const JsonValue* sweep_json = doc.find("sweep");
  ASSERT_NE(sweep_json, nullptr);
  ASSERT_EQ(sweep_json->array_items.size(), 1u);
  ASSERT_NE(sweep_json->array_items[0].find("qps"), nullptr);
  ASSERT_NE(sweep_json->array_items[0].find("achieved_qps"), nullptr);
  ASSERT_NE(sweep_json->array_items[0].find("p99_ns"), nullptr);
}

}  // namespace
}  // namespace hublab::serve
