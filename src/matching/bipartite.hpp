#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

/// \file bipartite.hpp
/// Lightweight bipartite graph with maximum matching (Hopcroft-Karp) and
/// minimum vertex cover (Koenig's theorem).
///
/// Theorem 4.1 of the paper builds, for every hub candidate h and distance
/// split (a, b), a bipartite graph E^h_{a,b} over V x V and takes a minimum
/// vertex cover of it; Lemma 4.2 relates the cover to a maximum matching.
/// This module provides exactly those primitives, independent of the main
/// Graph type.

namespace hublab {

/// Bipartite graph with `num_left` left and `num_right` right vertices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_left, std::size_t num_right)
      : adj_(num_left), num_right_(num_right) {}

  void add_edge(std::uint32_t left, std::uint32_t right) {
    HUBLAB_ASSERT(left < adj_.size() && right < num_right_);
    adj_[left].push_back(right);
    ++num_edges_;
  }

  [[nodiscard]] std::size_t num_left() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_right() const { return num_right_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::uint32_t left) const {
    HUBLAB_ASSERT(left < adj_.size());
    return adj_[left];
  }

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
  std::size_t num_right_;
  std::size_t num_edges_ = 0;
};

inline constexpr std::uint32_t kUnmatched = 0xffffffffu;

/// A matching: for each left vertex its right partner (kUnmatched if free),
/// and vice versa.
struct Matching {
  std::vector<std::uint32_t> left_match;   ///< size num_left
  std::vector<std::uint32_t> right_match;  ///< size num_right

  [[nodiscard]] std::size_t size() const {
    std::size_t s = 0;
    for (auto r : left_match) {
      if (r != kUnmatched) ++s;
    }
    return s;
  }
};

/// Maximum-cardinality matching via Hopcroft-Karp, O(E sqrt(V)).
Matching hopcroft_karp(const BipartiteGraph& g);

/// A vertex cover as (left vertices, right vertices).
struct VertexCover {
  std::vector<std::uint32_t> left;
  std::vector<std::uint32_t> right;

  [[nodiscard]] std::size_t size() const { return left.size() + right.size(); }
};

/// Minimum vertex cover from a maximum matching (Koenig's theorem):
/// |cover| == |matching|.  The matching must be maximum for g.
VertexCover koenig_cover(const BipartiteGraph& g, const Matching& matching);

/// True if every edge of g has an endpoint in the cover.
bool is_vertex_cover(const BipartiteGraph& g, const VertexCover& cover);

/// True if `m` is a valid (not necessarily maximum) matching of g.
bool is_matching(const BipartiteGraph& g, const Matching& m);

/// Exhaustive maximum matching size for tiny graphs (testing oracle).
/// Left side must have <= 20 vertices.
std::size_t brute_force_max_matching(const BipartiteGraph& g);

}  // namespace hublab
