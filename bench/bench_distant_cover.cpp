/// \file bench_distant_cover.cpp
/// Ablation: the random distant-pair scheme (Section 1.2 of the paper /
/// [ADKP16]) as a function of the distance threshold D.
///
/// The construction stores (n/D) ln D shared random hubs, the radius-(D-1)
/// ball around each vertex, and explicit patches for missed far pairs.
/// Sweeping D exposes the tradeoff the paper describes: larger D shrinks
/// the shared part but inflates the balls (Delta^D on bounded-degree
/// graphs); D = Theta(log n) is the sweet spot that yields the sublinear
/// O(n/log n * polyloglog) schemes cited in the paper.

#include <cmath>
#include <cstdio>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/constructions.hpp"
#include "hub/pll.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "distant_cover",
                         "Ablation: random distant-pair cover, sweeping D (paper Sec. 1.2)");

  bool all_ok = true;
  const std::vector<std::size_t> full_sizes{400, 900};
  const std::vector<std::size_t> smoke_sizes{400};
  for (const std::size_t n : harness.smoke() ? smoke_sizes : full_sizes) {
    auto size_span = harness.phase("sweep-n" + std::to_string(n));
    Rng gen_rng(n);
    const Graph g = gen::random_regular(n, 3, gen_rng);
    harness.add_graph("random-3-regular", g.num_vertices(), g.num_edges());
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    const HubLabeling pll = pruned_landmark_labeling(g);
    const auto log_n = static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(n))));

    TextTable table({"D", "|S| shared", "ball hubs", "patched", "avg label", "exact",
                     "note"});
    std::vector<std::size_t> ds{2, 3, 4, 6, 8, 12, log_n};
    for (const std::size_t D : ds) {
      Rng rng(100 + D);
      DistantCoverStats stats;
      const HubLabeling l = random_distant_cover(g, truth, D, rng, &stats);
      const bool exact = !verify_labeling(g, l, truth).has_value();
      all_ok = all_ok && exact;
      table.add_row({fmt_u64(D), fmt_u64(stats.sample_size), fmt_u64(stats.ball_hubs),
                     fmt_u64(stats.patched_pairs), fmt_double(l.average_label_size(), 2),
                     exact ? "ok" : "FAIL", D == log_n ? "D = ceil(log2 n)" : ""});
    }
    table.add_row({"-", "-", "-", "-", fmt_double(pll.average_label_size(), 2), "ok",
                   "PLL reference"});
    size_span.end();
    harness.print(table, "random 3-regular, n = " + std::to_string(n));
    if (!all_ok) break;
  }

  return harness.finish("distant-cover ablation", all_ok);
}
