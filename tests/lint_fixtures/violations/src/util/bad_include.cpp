// Fixture: include-hygiene -- a ../ escape and an unresolvable include.

#include "../escape.hpp"
#include "nonexistent/missing.hpp"
