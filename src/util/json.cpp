#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace hublab {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& out, int indent) : out_(out), indent_(indent) {
  HUBLAB_ASSERT(indent >= 0);
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unescaped
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) out_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    HUBLAB_ASSERT_MSG(!root_written_, "JsonWriter: multiple top-level values");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    HUBLAB_ASSERT_MSG(top.key_pending, "JsonWriter: value inside object requires key()");
    top.key_pending = false;
    return;  // key() already handled the comma and indent
  }
  if (top.has_members) out_ << ',';
  newline_indent();
  top.has_members = true;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HUBLAB_ASSERT_MSG(!stack_.empty() && stack_.back().is_object,
                    "JsonWriter: key() outside an object");
  Frame& top = stack_.back();
  HUBLAB_ASSERT_MSG(!top.key_pending, "JsonWriter: two keys in a row");
  if (top.has_members) out_ << ',';
  newline_indent();
  top.has_members = true;
  top.key_pending = true;
  out_ << escape(k) << (indent_ == 0 ? ":" : ": ");
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame{true, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HUBLAB_ASSERT_MSG(!stack_.empty() && stack_.back().is_object && !stack_.back().key_pending,
                    "JsonWriter: unbalanced end_object()");
  const bool had = stack_.back().has_members;
  stack_.pop_back();
  if (had) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame{false, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HUBLAB_ASSERT_MSG(!stack_.empty() && !stack_.back().is_object,
                    "JsonWriter: unbalanced end_array()");
  const bool had = stack_.back().has_members;
  stack_.pop_back();
  if (had) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ << escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string_view(v)); }

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ << "null";
  return *this;
}

bool JsonWriter::done() const { return root_written_ && stack_.empty(); }

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_members) {
    if (k == name) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string_value = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.object_members.emplace_back(std::move(k), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // not needed by any hublab emitter and are rejected).
          if (code >= 0xd800 && code <= 0xdfff) fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6U));
            out += static_cast<char>(0x80 | (code & 0x3fU));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12U));
            out += static_cast<char>(0x80 | ((code >> 6U) & 0x3fU));
            out += static_cast<char>(0x80 | (code & 0x3fU));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number: missing exponent digits");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_value = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace hublab
