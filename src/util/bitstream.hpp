#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/error.hpp"

/// \file bitstream.hpp
/// Bit-granular readers/writers plus Elias gamma/delta codes.
///
/// Distance labels are measured in *bits* throughout the paper, so the
/// labeling module serializes labels through this interface and reports
/// exact bit counts.  Encodings are little-endian within a byte (bit 0 of
/// byte 0 is the first bit written).

namespace hublab {

/// A packed sequence of bits with an exact bit length.
struct BitString {
  std::vector<std::uint8_t> bytes;
  std::size_t bit_count = 0;

  [[nodiscard]] std::size_t size_bits() const { return bit_count; }
  [[nodiscard]] bool empty() const { return bit_count == 0; }

  bool operator==(const BitString&) const = default;
};

/// Append-only bit writer producing a BitString.
class BitWriter {
 public:
  /// Append a single bit.
  void put_bit(bool bit);

  /// Append the low `width` bits of `value`, LSB first.  width in [0, 64].
  void put_bits(std::uint64_t value, unsigned width);

  /// Elias gamma code for value >= 1: floor(log2 v) zeros, then v's bits.
  void put_gamma(std::uint64_t value);

  /// Gamma code shifted to accept zero (encodes value + 1).
  void put_gamma0(std::uint64_t value) { put_gamma(value + 1); }

  /// Elias delta code for value >= 1 (gamma-coded length, then mantissa).
  void put_delta(std::uint64_t value);

  /// Delta code shifted to accept zero.
  void put_delta0(std::uint64_t value) { put_delta(value + 1); }

  [[nodiscard]] std::size_t size_bits() const { return out_.bit_count; }

  /// Finish writing and take the accumulated bits; the writer is reset to
  /// empty and can be reused.  (Moving BitString alone would leave a stale
  /// bit_count behind an emptied byte vector.)
  [[nodiscard]] BitString take() {
    BitString result = std::move(out_);
    out_ = BitString{};
    return result;
  }

 private:
  BitString out_;
};

/// Sequential reader over a BitString.  Out-of-bounds reads throw ParseError:
/// labels can come from an untrusted channel in the Sum-Index protocol.
class BitReader {
 public:
  explicit BitReader(const BitString& bits) : bits_(&bits) {}

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(unsigned width);
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t get_gamma0() { return get_gamma() - 1; }
  [[nodiscard]] std::uint64_t get_delta();
  [[nodiscard]] std::uint64_t get_delta0() { return get_delta() - 1; }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bits_->bit_count - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= bits_->bit_count; }

 private:
  const BitString* bits_;
  std::size_t pos_ = 0;
};

/// Number of bits in the gamma code of value (>= 1).
std::size_t gamma_code_length(std::uint64_t value);

/// Number of bits in the delta code of value (>= 1).
std::size_t delta_code_length(std::uint64_t value);

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
unsigned ceil_log2(std::uint64_t x);

/// floor(log2(x)) for x >= 1.
unsigned floor_log2(std::uint64_t x);

}  // namespace hublab
