file(REMOVE_RECURSE
  "../bench/bench_structured_classes"
  "../bench/bench_structured_classes.pdb"
  "CMakeFiles/bench_structured_classes.dir/bench_structured_classes.cpp.o"
  "CMakeFiles/bench_structured_classes.dir/bench_structured_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structured_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
