#include <gtest/gtest.h>

#include <cmath>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "hub/structured.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

void expect_exact(const Graph& g, const HubLabeling& l) {
  const auto truth = DistanceMatrix::compute(g);
  const auto defect = verify_labeling(g, l, truth);
  EXPECT_FALSE(defect.has_value());
}

TEST(TreeLabeling, PathGraph) {
  const Graph g = gen::path(15);
  const HubLabeling l = tree_centroid_labeling(g);
  expect_exact(g, l);
  // Centroid decomposition of a path gives ceil(log2) + 1 levels.
  EXPECT_LE(l.max_label_size(), 5u);
}

TEST(TreeLabeling, StarGraph) {
  const Graph g = gen::star(40);
  const HubLabeling l = tree_centroid_labeling(g);
  expect_exact(g, l);
  // Center is the first centroid: every label is {center, self}-ish.
  EXPECT_LE(l.average_label_size(), 2.01);
}

TEST(TreeLabeling, BalancedBinaryTree) {
  const Graph g = gen::binary_tree(63);
  const HubLabeling l = tree_centroid_labeling(g);
  expect_exact(g, l);
  EXPECT_LE(l.max_label_size(), 7u);  // log2(63) + 1
}

class TreeLabelingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeLabelingSweep, ExactAndLogarithmic) {
  Rng rng(GetParam());
  const std::size_t n = 50 + GetParam() * 37;
  const Graph g = gen::random_tree(n, rng);
  const HubLabeling l = tree_centroid_labeling(g);
  expect_exact(g, l);
  EXPECT_LE(static_cast<double>(l.max_label_size()),
            std::log2(static_cast<double>(n)) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeLabelingSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TreeLabeling, WeightedTree) {
  Rng rng(7);
  Graph g = gen::random_tree(60, rng);
  g = gen::randomize_weights(g, 20, rng);
  expect_exact(g, tree_centroid_labeling(g));
}

TEST(TreeLabeling, ForestWorks) {
  GraphBuilder b(9);
  // Two paths and an isolated vertex.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  const Graph g = b.build();
  const HubLabeling l = tree_centroid_labeling(g);
  expect_exact(g, l);
  EXPECT_EQ(l.query(0, 3), kInfDist);
}

TEST(TreeLabeling, RejectsCycles) {
  EXPECT_THROW(tree_centroid_labeling(gen::cycle(5)), InvalidArgument);
  Rng rng(8);
  EXPECT_THROW(tree_centroid_labeling(gen::connected_gnm(20, 25, rng)), InvalidArgument);
}

TEST(TreeLabeling, MuchSmallerThanPllOnBigTrees) {
  Rng rng(9);
  const Graph g = gen::random_tree(500, rng);
  const HubLabeling centroid = tree_centroid_labeling(g);
  expect_exact(g, centroid);
  EXPECT_LE(centroid.average_label_size(), std::log2(500.0) + 2.0);
}

TEST(GridLabeling, SmallGridExact) {
  const Graph g = gen::grid(5, 7);
  const HubLabeling l = grid_separator_labeling(g, 5, 7);
  expect_exact(g, l);
}

TEST(GridLabeling, SquareGridExact) {
  const Graph g = gen::grid(8, 8);
  const HubLabeling l = grid_separator_labeling(g, 8, 8);
  expect_exact(g, l);
}

TEST(GridLabeling, DegenerateShapes) {
  expect_exact(gen::grid(1, 12), grid_separator_labeling(gen::grid(1, 12), 1, 12));
  expect_exact(gen::grid(12, 1), grid_separator_labeling(gen::grid(12, 1), 12, 1));
  expect_exact(gen::grid(1, 1), grid_separator_labeling(gen::grid(1, 1), 1, 1));
}

TEST(GridLabeling, WeightedGridExact) {
  // Weighted 4-neighbor grid (no diagonals): build by reweighting gen::grid.
  Rng rng(10);
  const Graph g = gen::randomize_weights(gen::grid(6, 6), 9, rng);
  expect_exact(g, grid_separator_labeling(g, 6, 6));
}

TEST(GridLabeling, SqrtScaling) {
  // O(sqrt n) hubs: the constant is ~3 sqrt(n) for square grids.
  for (const std::size_t side : {8u, 12u, 16u}) {
    const Graph g = gen::grid(side, side);
    const HubLabeling l = grid_separator_labeling(g, side, side);
    EXPECT_LE(l.average_label_size(), 4.0 * static_cast<double>(side) + 4.0) << side;
  }
}

TEST(GridLabeling, BeatsPllNaturalOrderOnGrids) {
  const Graph g = gen::grid(12, 12);
  const HubLabeling sep = grid_separator_labeling(g, 12, 12);
  const HubLabeling pll = pruned_landmark_labeling(g, VertexOrder::kNatural);
  EXPECT_LT(sep.total_hubs(), pll.total_hubs());
}

class BfsSeparatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsSeparatorSweep, ExactOnRandomSparse) {
  Rng rng(GetParam());
  const Graph g = gen::gnm(70, 140, rng);  // possibly disconnected
  const HubLabeling l = bfs_separator_labeling(g);
  expect_exact(g, l);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsSeparatorSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(BfsSeparator, ExactOnClassicShapes) {
  expect_exact(gen::path(20), bfs_separator_labeling(gen::path(20)));
  expect_exact(gen::cycle(21), bfs_separator_labeling(gen::cycle(21)));
  expect_exact(gen::grid(7, 9), bfs_separator_labeling(gen::grid(7, 9)));
  expect_exact(gen::star(25), bfs_separator_labeling(gen::star(25)));
  expect_exact(gen::complete(8), bfs_separator_labeling(gen::complete(8)));
}

TEST(BfsSeparator, ExactOnWeighted) {
  Rng rng(12);
  const Graph g = gen::road_like(8, 8, 0.3, 9, rng);
  expect_exact(g, bfs_separator_labeling(g));
}

TEST(BfsSeparator, SingleVertexAndEmpty) {
  const Graph g1 = gen::path(1);
  const HubLabeling l1 = bfs_separator_labeling(g1);
  EXPECT_EQ(l1.query(0, 0), 0u);
  const Graph g0 = GraphBuilder(0).build();
  const HubLabeling l0 = bfs_separator_labeling(g0);
  EXPECT_EQ(l0.num_vertices(), 0u);
}

TEST(BfsSeparator, SmallLabelsOnPaths) {
  const Graph g = gen::path(256);
  const HubLabeling l = bfs_separator_labeling(g);
  expect_exact(g, l);
  // Halving recursion: O(log n) separator levels, 1 vertex each.
  EXPECT_LE(l.max_label_size(), 12u);
}

TEST(BfsSeparator, TracksGridSqrtScaling) {
  const Graph g = gen::grid(12, 12);
  const HubLabeling l = bfs_separator_labeling(g);
  expect_exact(g, l);
  EXPECT_LE(l.average_label_size(), 60.0);  // ~ c*sqrt(144)
}

TEST(GridLabeling, RejectsBadShape) {
  const Graph g = gen::grid(4, 4);
  EXPECT_THROW(grid_separator_labeling(g, 2, 8), InvalidArgument);
  EXPECT_THROW(grid_separator_labeling(g, 4, 5), InvalidArgument);
  Rng rng(11);
  const Graph shortcuts = gen::road_like(4, 4, 1.0, 3, rng);  // has diagonals
  EXPECT_THROW(grid_separator_labeling(shortcuts, 4, 4), InvalidArgument);
}

}  // namespace
}  // namespace hublab
