
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hublab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hublab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hublab_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hublab_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/hublab_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/hub/CMakeFiles/hublab_hub.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/hublab_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/hublab_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/sumindex/CMakeFiles/hublab_sumindex.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/hublab_oracle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
