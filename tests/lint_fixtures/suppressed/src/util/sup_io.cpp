// Fixture: inline suppression marker on the offending line.

namespace fixture {

void crash_note() {
  std::cerr << "boom";  // hublab-lint-allow(raw-io)
}

}  // namespace fixture
