#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "hub/pll.hpp"
#include "oracle/serve.hpp"
#include "util/exemplar.hpp"
#include "util/heavyhitter.hpp"
#include "util/perfcount.hpp"
#include "util/qsketch.hpp"
#include "util/trace.hpp"

/// \file server.hpp
/// Concurrent open-loop query server: the millions-of-users scenario the
/// ROADMAP names first.  Where serve-sim (oracle/serve.hpp) is a
/// *closed-loop* driver — the next query starts when the previous one
/// finishes, so the measured rate is whatever the oracle sustains and
/// queueing never appears — this engine is *open-loop*: queries arrive on
/// their own schedule (`--qps`, Poisson or burst) whether or not the
/// workers keep up, which is how production traffic behaves and the only
/// way to observe a throughput-vs-latency curve and an overload cliff
/// (docs/performance.md, "Open-loop vs closed-loop serving").
///
/// Architecture: one load-generator thread stamps each pre-generated
/// query pair with its scheduled arrival, applies admission control, and
/// round-robins admitted items over per-worker bounded SPSC rings
/// (util/spsc.hpp).  Each shard worker drains its ring in blocks of up to
/// `batch` items and answers them through DistanceOracle::distance_batch —
/// for the flat oracle that is the SIMD batched kernel
/// (FlatHubLabeling::query_batch), now serving its intended role as the
/// hot path.  Latency is **arrival-to-completion**: queue wait included,
/// so overload shows up in the sketch instead of being coordinated away
/// (the "coordinated omission" failure mode of closed-loop drivers).
///
/// Admission control: when a ring is full, `kShed` drops the query and
/// counts it in `serve.rejected` (overload degrades into an error rate
/// with bounded latency) while `kBlock` stalls the generator (latency
/// grows without bound, but every query is answered — and the answered
/// set, hence checksum/reachable, is schedule-independent).
///
/// Determinism contract (docs/performance.md): pairs, arrival schedule,
/// worker assignment (`seq % workers`) and per-worker telemetry merge
/// order are all fixed by (seed, workers), so with `kBlock` admission the
/// checksum, answer counts, and exemplar/window *population* are
/// byte-identical across runs and worker counts; wall-clock latency
/// values still vary.  `TimingMode::kVirtual` goes further: latencies,
/// queue depths, and shed decisions come from a discrete-event M/D/c
/// simulation of the configured topology (constant `virtual_service_ns`
/// per query, computed on the generator before dispatch), while answers
/// still flow through the real rings and kernels — two virtual runs are
/// byte-identical end to end, which is what the determinism suites and
/// the overload gates in bench_serve_scaling pin down.
///
/// Registry metrics (docs/observability.md "The serve path"):
/// `serve.offered` / `serve.rejected` / `serve.trimmed_warmup` /
/// `serve.trimmed_cooldown` counters, the `serve.queue_depth` sketch,
/// `serve.offered_qps` / `serve.achieved_qps` gauges, and per-window
/// `serve.window.offered.<i>` / `serve.window.rejected.<i>` gauges on top
/// of everything the closed-loop simulator already emits.

namespace hublab {
class DistanceOracle;  // oracle/oracle.hpp
}  // namespace hublab

namespace hublab::serve {

/// Open-loop arrival process shapes.
enum class ArrivalKind {
  kPoisson,  ///< exponential gaps: memoryless traffic at the offered rate
  kBurst,    ///< back-to-back groups of `burst` arrivals, groups at the rate
};

/// What happens when a shard worker's ring is full at dispatch time.
enum class AdmissionPolicy {
  kShed,   ///< reject the query (serve.rejected); bounded queueing delay
  kBlock,  ///< stall the generator until space frees; nothing is dropped
};

/// Where latency/queue-depth numbers come from.
enum class TimingMode {
  kWall,     ///< real clocks: measured arrival-to-completion latency
  kVirtual,  ///< deterministic M/D/c event simulation (run-to-run identical)
};

[[nodiscard]] std::string_view arrival_kind_name(ArrivalKind kind) noexcept;
[[nodiscard]] std::optional<ArrivalKind> parse_arrival_kind(std::string_view name) noexcept;
[[nodiscard]] std::string_view admission_policy_name(AdmissionPolicy policy) noexcept;
[[nodiscard]] std::optional<AdmissionPolicy> parse_admission_policy(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view timing_mode_name(TimingMode mode) noexcept;
[[nodiscard]] std::optional<TimingMode> parse_timing_mode(std::string_view name) noexcept;

/// Upper bound on shard workers (each one is a dedicated executor for the
/// whole serve loop, so this is deliberately far below par::kMaxThreads).
inline constexpr std::size_t kMaxServeWorkers = 64;

struct ServerConfig {
  OracleKind oracle = OracleKind::kPllFlat;
  WorkloadKind workload = WorkloadKind::kUniform;
  std::uint64_t num_queries = 20000;
  std::uint64_t seed = 1;
  std::size_t workers = 4;  ///< shard workers, clamped to [1, kMaxServeWorkers]
  /// Bit-parallel root count for the PLL construction (build-speed knob
  /// only; answers are identical for any value).
  std::size_t bp_roots = kPllDefaultBpRoots;
  double qps = 50000.0;  ///< offered load (arrivals per second); > 0
  ArrivalKind arrival = ArrivalKind::kPoisson;
  std::uint64_t burst = 32;  ///< arrivals per burst group (kBurst only)
  AdmissionPolicy admission = AdmissionPolicy::kShed;
  std::size_t ring_capacity = 1024;  ///< per-worker ring bound (rounded to pow2)
  std::size_t batch = 32;  ///< max items per drain block; 1 = per-query loop
  TimingMode timing = TimingMode::kWall;
  std::uint64_t virtual_service_ns = 1000;  ///< per-query cost under kVirtual
  /// Telemetry trimming: queries whose *arrival* falls in the first
  /// `warmup_ms` (or the last `cooldown_ms`) of the schedule are answered
  /// and checksummed but excluded from sketches/windows/exemplars, so
  /// ramp-up allocation noise and the drain tail do not distort the
  /// distributions.  Trimmed counts land in the report.
  std::uint64_t warmup_ms = 50;
  std::uint64_t cooldown_ms = 0;
  std::uint64_t slow_query_ns = 0;  ///< slow-query log threshold; 0 disables
  std::uint64_t window_ns = 1'000'000'000;  ///< per-interval series resolution
  std::size_t exemplars_per_bucket = 2;
  std::size_t slow_query_capacity = 32;
  /// Emit into the global metrics registry (the CLI path).  The scaling
  /// bench turns this off so committed baselines only carry deterministic
  /// members.
  bool register_metrics = true;
};

struct ServerResult {
  std::string oracle_name;
  std::string workload_name;
  std::uint64_t start_unix_ms = 0;
  std::size_t workers = 1;    ///< resolved shard-worker count
  double offered_qps = 0.0;   ///< ServerConfig::qps
  double achieved_qps = 0.0;  ///< completed / serve_loop_s
  std::uint64_t offered = 0;    ///< every scheduled arrival
  std::uint64_t completed = 0;  ///< admitted and answered
  std::uint64_t rejected = 0;   ///< shed at admission (kShed only)
  std::uint64_t reachable = 0;  ///< completed queries with a finite distance
  std::uint64_t checksum = 0;   ///< sum of finite distances over completed
  std::uint64_t trimmed_warmup = 0;   ///< completed but outside telemetry (head)
  std::uint64_t trimmed_cooldown = 0; ///< completed but outside telemetry (tail)
  std::size_t space_bytes = 0;
  std::size_t space_bytes_flat = 0;  ///< flat SoA footprint (hub oracles)
  double build_s = 0.0;       ///< oracle preprocessing (0 for run_server_on)
  double serve_loop_s = 0.0;  ///< open-loop serve phase wall time
  /// Arrival-to-completion latency of untrimmed completed queries; under
  /// kVirtual these are simulated, deterministic values.
  QuantileSketch latency_ns;
  /// Destination-ring depth sampled at each untrimmed admission decision.
  QuantileSketch queue_depth;
  std::vector<std::uint64_t> worker_busy_ns;  ///< indexed by shard worker id
  double worker_utilization_pct = 0.0;
  perf::HwCounters hw;  ///< summed over all shard workers; valid when live
  /// Per-interval series keyed by arrival offset / window_ns, ascending;
  /// offered/rejected come from the generator, the rest from the workers.
  std::vector<WindowStats> windows;
  metrics::ExemplarReservoir exemplars;
  metrics::SlowQueryLog slow_queries;
  metrics::SpaceSavingSketch hub_scan_cost;
};

/// One point of a `--qps-sweep` offered-load ladder (the CLI embeds these
/// in the report's `sweep` array).
struct SweepPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Build the configured oracle, then serve the open-loop workload against
/// it (run_server_on).  Throws InvalidArgument on an empty graph or a
/// non-positive qps.
ServerResult run_server(const Graph& g, const ServerConfig& config, Tracer* tracer = nullptr);

/// Serve against an already-built oracle (the sweep path: build once,
/// serve each offered-load point).  Spans land in `tracer` when provided;
/// registry emission obeys `config.register_metrics`.  Must not be called
/// from inside a parallel region — the serve loop owns the pool.
ServerResult run_server_on(const Graph& g, const DistanceOracle& oracle,
                           const ServerConfig& config, Tracer* tracer = nullptr);

/// Write the schema-versioned open-loop SERVE report: the shared document
/// (util/report.hpp) plus server members (admission/arrival/timing shape,
/// offered/completed/rejected, trimmed counts, queue-depth quantiles,
/// windows with offered+rejected, and the `sweep` ladder).
void write_server_report_json(std::ostream& os, const ServerResult& result,
                              const ServerConfig& config, const std::vector<SweepPoint>& sweep,
                              const Graph& g, std::string_view graph_family,
                              std::string_view git_rev, bool smoke, const Tracer& tracer);

}  // namespace hublab::serve
