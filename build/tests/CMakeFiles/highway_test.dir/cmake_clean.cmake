file(REMOVE_RECURSE
  "CMakeFiles/highway_test.dir/highway_test.cpp.o"
  "CMakeFiles/highway_test.dir/highway_test.cpp.o.d"
  "highway_test"
  "highway_test.pdb"
  "highway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
