#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

/// \file bench_compare.hpp
/// Regression diffing of two run reports (BENCH_*.json / SERVE_*.json,
/// both schema-validated first).  This is the consumer the perf
/// trajectory was missing: `hublab bench-compare BASE.json NEW.json
/// --threshold PCT` (and the `bench-compare` stage of tools/check.sh,
/// which diffs every smoke bench against its committed baseline under
/// bench/baselines/) prints a regression table and fails past threshold.
///
/// What is compared, and how it gates:
///
///  - **phase wall times** (summed per phase name, plus a `total` row over
///    top-level phases) — noisy, so they gate through `threshold_pct` and
///    only when the base value is at least `min_wall_s`;
///  - **sketch quantiles** (p50/p90/p99/p999 latencies) — wall-clock
///    noise too, gated through `threshold_pct`;
///  - **counters and gauges** (search-space sizes, label sizes, hub
///    counts) — deterministic given the same seeds, gated through the
///    tighter `structural_threshold_pct`;
///  - **histogram quantiles + sum** (label-size distributions) — also
///    structural.
///
/// Gauges are *direction-aware*, classed by the last dotted segment of
/// their name: a segment ending in `qps` is a throughput (higher is
/// better — only *decreases* past `threshold_pct` gate, so a committed
/// `pract.serve_peak_qps.*` baseline catches capacity loss); a segment
/// ending in `ns` is a wall-clock latency (increases gate, at the looser
/// `threshold_pct` since nanosecond gauges are as noisy as phase times);
/// everything else is structural.  For every other section only
/// *increases* gate: getting faster or smaller is never a regression.
/// Metrics present on one side only are reported as informational rows
/// (renames should not hard-fail old baselines); the schema itself is
/// enforced by `validate_bench_json`, which runs first.

namespace hublab {

struct CompareOptions {
  double threshold_pct = 20.0;             ///< wall times and latency quantiles
  double structural_threshold_pct = 5.0;   ///< counters, gauges, histogram stats
  double min_wall_s = 1e-3;                ///< base phases faster than this never gate
};

struct CompareRow {
  std::string metric;  ///< e.g. "phase.build-pll.wall_s", "counter.pll.visited"
  double base = 0.0;
  double next = 0.0;
  double delta_pct = 0.0;  ///< 100 * (next - base) / base; 0 when base == 0
  bool gated = false;      ///< participates in regression gating
  bool regressed = false;
};

struct CompareReport {
  std::vector<CompareRow> rows;       ///< deterministic order: section, then name
  std::vector<std::string> errors;    ///< schema violations; rows are empty if set
  [[nodiscard]] std::size_t num_regressions() const;
  [[nodiscard]] bool ok() const { return errors.empty() && num_regressions() == 0; }
};

/// Diff two parsed report documents.  Schema violations in either document
/// land in `errors` and suppress the row diff.
CompareReport compare_bench_json(const JsonValue& base, const JsonValue& next,
                                 const CompareOptions& options);

/// Human-readable regression table.  `all_rows` includes unchanged and
/// ungated rows; the default prints changed rows plus every regression.
void write_compare_table(std::ostream& out, const CompareReport& report, bool all_rows = false);

}  // namespace hublab
