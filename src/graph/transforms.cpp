#include "graph/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace hublab {

DegreeReduction reduce_degree(const Graph& g, std::size_t degree_cap) {
  if (degree_cap == 0) throw InvalidArgument("reduce_degree needs degree_cap >= 1");
  const std::size_t n = g.num_vertices();

  DegreeReduction out;
  out.representative.assign(n, kInvalidVertex);

  // First pass: allocate copies.  Vertex v gets ceil(deg(v)/cap) copies
  // (at least one), laid out contiguously.
  std::vector<Vertex> first_copy(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t copies = std::max<std::size_t>(1, (g.degree(v) + degree_cap - 1) / degree_cap);
    first_copy[v + 1] = static_cast<Vertex>(first_copy[v] + copies);
  }
  const std::size_t total = first_copy[n];
  out.origin.assign(total, kInvalidVertex);

  GraphBuilder b(total);
  for (Vertex v = 0; v < n; ++v) {
    out.representative[v] = first_copy[v];
    for (Vertex c = first_copy[v]; c < first_copy[v + 1]; ++c) {
      out.origin[c] = v;
      if (c + 1 < first_copy[v + 1]) b.add_edge(c, c + 1, 0);  // weight-0 chain
    }
  }

  // Second pass: distribute each original edge between the k-th free slot of
  // its endpoints.  Slot i goes to copy i / degree_cap.
  std::vector<std::size_t> used(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to < u) continue;  // each undirected edge once
      const Vertex cu = static_cast<Vertex>(first_copy[u] + used[u] / degree_cap);
      const Vertex cv = static_cast<Vertex>(first_copy[a.to] + used[a.to] / degree_cap);
      ++used[u];
      ++used[a.to];
      b.add_edge(cu, cv, a.weight);
    }
  }

  out.graph = b.build();
  return out;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> comp(n, std::numeric_limits<std::uint32_t>::max());
  std::uint32_t next = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != std::numeric_limits<std::uint32_t>::max()) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Arc& a : g.arcs(u)) {
        if (comp[a.to] == std::numeric_limits<std::uint32_t>::max()) {
          comp[a.to] = next;
          stack.push_back(a.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::size_t num_connected_components(const Graph& g) {
  const auto comp = connected_components(g);
  std::uint32_t best = 0;
  for (auto c : comp) best = std::max(best, c + 1);
  return g.num_vertices() == 0 ? 0 : best;
}

Graph largest_component(const Graph& g, std::vector<Vertex>* mapping_out) {
  const auto comp = connected_components(g);
  const std::size_t n = g.num_vertices();
  std::vector<std::size_t> sizes;
  for (Vertex v = 0; v < n; ++v) {
    if (comp[v] >= sizes.size()) sizes.resize(comp[v] + 1, 0);
    ++sizes[comp[v]];
  }
  if (sizes.empty()) {
    if (mapping_out != nullptr) mapping_out->clear();
    return {};
  }
  const auto best =
      static_cast<std::uint32_t>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<Vertex> mapping(n, kInvalidVertex);
  Vertex next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (comp[v] == best) mapping[v] = next++;
  }
  GraphBuilder b(next);
  for (Vertex u = 0; u < n; ++u) {
    if (comp[u] != best) continue;
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) b.add_edge(mapping[u], mapping[a.to], a.weight);
    }
  }
  if (mapping_out != nullptr) *mapping_out = std::move(mapping);
  return b.build();
}

Graph unweighted_copy(const Graph& g) {
  GraphBuilder b(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) b.add_edge(u, a.to, 1);
    }
  }
  return b.build();
}

Graph relabel(const Graph& g, const std::vector<Vertex>& perm) {
  const std::size_t n = g.num_vertices();
  if (perm.size() != n) throw InvalidArgument("relabel: permutation size mismatch");
  std::vector<bool> seen(n, false);
  for (Vertex p : perm) {
    if (p >= n || seen[p]) throw InvalidArgument("relabel: not a permutation");
    seen[p] = true;
  }
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) b.add_edge(perm[u], perm[a.to], a.weight);
    }
  }
  return b.build();
}

}  // namespace hublab
