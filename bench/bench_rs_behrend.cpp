/// \file bench_rs_behrend.cpp
/// Experiment RS (DESIGN.md): the Ruzsa-Szemeredi machinery of Section 1.2.
///
/// Part 1 -- progression-free set densities: Behrend spheres vs the base-3
/// set vs the exhaustive optimum (tiny N).  RS(n)'s upper bound
/// 2^{O(sqrt(log n))} comes from exactly these witnesses.
/// Part 2 -- RS graphs built from the sets: n = 3M vertices, M * |A| edges,
/// certified edge partition into <= n induced matchings (Definition 1.3).

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "rs/behrend.hpp"
#include "rs/rs_graph.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;
using namespace hublab::rs;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "rs_behrend",
                         "Experiment RS: progression-free sets and Ruzsa-Szemeredi graphs");

  auto sets_span = harness.phase("progression-free-sets");
  TextTable sets({"N", "behrend |A|", "(d,k,r)", "base3 |A|", "optimal |A|", "dense/N",
                  "N/2^sqrt(lgN)"});
  const std::vector<std::uint64_t> full_ns{20, 100, 1000, 10000, 100000, 1000000};
  const std::vector<std::uint64_t> smoke_ns{20, 100, 1000};
  for (const std::uint64_t N : harness.smoke() ? smoke_ns : full_ns) {
    BehrendParams params;
    const auto behrend = behrend_set_with_params(N, params);
    const auto base3 = base3_set(N);
    const auto dense = dense_set(N);
    const std::string opt =
        N <= 30 ? fmt_u64(optimal_set(N).size()) : std::string("-");
    const double ref = static_cast<double>(N) /
                       std::pow(2.0, std::sqrt(std::log2(static_cast<double>(N))));
    sets.add_row({fmt_u64(N), fmt_u64(behrend.size()),
                  "(" + fmt_u64(params.dimension) + "," + fmt_u64(params.digit_bound) + "," +
                      fmt_u64(params.radius) + ")",
                  fmt_u64(base3.size()), opt,
                  fmt_double(static_cast<double>(dense.size()) / static_cast<double>(N), 4),
                  fmt_double(ref, 1)});
  }
  sets_span.end();
  harness.print(sets, "3-AP-free set sizes (Behrend bound reference: N / 2^{sqrt(log2 N)})");

  auto graphs_span = harness.phase("rs-graphs");
  TextTable graphs({"M", "|A|", "n=3M", "edges", "classes", "min r", "avg r", "n^2/edges",
                    "valid", "time(s)"});
  bool all_ok = true;
  const std::vector<std::uint64_t> full_ms{20, 100, 500, 2000};
  const std::vector<std::uint64_t> smoke_ms{20, 100};
  for (const std::uint64_t M : harness.smoke() ? smoke_ms : full_ms) {
    Timer timer;
    const RsGraph rsg = build_rs_graph(M, dense_set(M));
    harness.add_graph("ruzsa-szemeredi", rsg.graph.num_vertices(), rsg.graph.num_edges());
    const bool valid = is_valid_induced_partition(rsg.graph, rsg.partition) &&
                       rsg.partition.num_matchings() <= rsg.graph.num_vertices();
    all_ok = all_ok && valid;
    const double ratio = static_cast<double>(rsg.graph.num_vertices()) *
                         static_cast<double>(rsg.graph.num_vertices()) /
                         static_cast<double>(rsg.graph.num_edges());
    graphs.add_row({fmt_u64(M), fmt_u64(rsg.set_size), fmt_u64(rsg.graph.num_vertices()),
                    fmt_u64(rsg.graph.num_edges()), fmt_u64(rsg.partition.num_matchings()),
                    fmt_u64(rsg.partition.min_matching_size()),
                    fmt_double(rsg.partition.avg_matching_size(), 2), fmt_double(ratio, 1),
                    valid ? "ok" : "FAIL", fmt_double(timer.elapsed_s(), 2)});
  }
  graphs_span.end();
  harness.print(graphs,
                "RS graphs: n^2/edges is the RS(n)-style density loss (Definition 1.3)");

  return harness.finish("RS experiment", all_ok);
}
