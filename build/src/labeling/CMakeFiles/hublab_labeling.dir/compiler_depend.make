# Empty compiler generated dependencies file for hublab_labeling.
# This may be replaced when dependencies are built.
