#include <gtest/gtest.h>

#include "algo/shortest_paths.hpp"
#include "lowerbound/counting.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab::lb {
namespace {

TEST(CountingFamily, Arithmetic) {
  const CountingFamily fam(5);
  EXPECT_EQ(fam.num_terminals(), 5u);
  EXPECT_EQ(fam.num_bits(), 10u);
  EXPECT_EQ(fam.num_vertices(), 5u + 30u);
  EXPECT_DOUBLE_EQ(fam.implied_avg_terminal_bits(), 2.0);
}

TEST(CountingFamily, BitIndexBijection) {
  const CountingFamily fam(7);
  std::vector<bool> seen(fam.num_bits(), false);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = i + 1; j < 7; ++j) {
      const std::size_t b = fam.bit_index(i, j);
      ASSERT_LT(b, fam.num_bits());
      EXPECT_FALSE(seen[b]);
      seen[b] = true;
    }
  }
}

TEST(CountingFamily, RejectsBadParams) {
  EXPECT_THROW(CountingFamily(1), hublab::InvalidArgument);
  const CountingFamily fam(3);
  EXPECT_THROW(fam.instance({1, 0}), hublab::InvalidArgument);  // needs 3 bits
}

TEST(CountingFamily, DistancesEncodeBits) {
  const CountingFamily fam(6);
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint8_t> bits(fam.num_bits());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
    const Graph g = fam.instance(bits);
    for (std::size_t i = 0; i < 6; ++i) {
      const auto dist = sssp_distances(g, fam.terminal(i));
      for (std::size_t j = i + 1; j < 6; ++j) {
        const int decoded = CountingFamily::decode_bit(dist[fam.terminal(j)]);
        EXPECT_EQ(decoded, bits[fam.bit_index(i, j)]) << i << "," << j;
      }
    }
  }
}

TEST(CountingFamily, NoCrossGadgetShortcuts) {
  // All-ones instance: every terminal pair at distance exactly 2.
  const CountingFamily fam(8);
  const std::vector<std::uint8_t> ones(fam.num_bits(), 1);
  const Graph g = fam.instance(ones);
  const auto dist = sssp_distances(g, fam.terminal(0));
  for (std::size_t j = 1; j < 8; ++j) EXPECT_EQ(dist[fam.terminal(j)], 2u);
  // All-zeros: exactly 3 (a route via another terminal would cost >= 4).
  const std::vector<std::uint8_t> zeros(fam.num_bits(), 0);
  const Graph g0 = fam.instance(zeros);
  const auto dist0 = sssp_distances(g0, fam.terminal(0));
  for (std::size_t j = 1; j < 8; ++j) EXPECT_EQ(dist0[fam.terminal(j)], 3u);
}

TEST(CountingFamily, InstancesAreSparse) {
  const CountingFamily fam(12);
  const std::vector<std::uint8_t> ones(fam.num_bits(), 1);
  const Graph g = fam.instance(ones);
  // m <= 5 per gadget, n >= 3 per gadget: m = O(n).
  EXPECT_LE(g.num_edges(), 2 * g.num_vertices());
}

TEST(CountingFamily, DecodeRejectsOtherDistances) {
  EXPECT_EQ(CountingFamily::decode_bit(4), -1);
  EXPECT_EQ(CountingFamily::decode_bit(kInfDist), -1);
}

}  // namespace
}  // namespace hublab::lb
