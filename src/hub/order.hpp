#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

/// \file order.hpp
/// Vertex-importance orders beyond the basic ones in pll.hpp.
///
/// The quality of hierarchical hub labelings is driven almost entirely by
/// the vertex order; betweenness centrality is the classic strong signal
/// (vertices on many shortest paths make good early hubs).  Exact
/// betweenness is O(nm); we implement Brandes' accumulation from a sample
/// of source vertices, which is the standard practical compromise.

namespace hublab {

/// Approximate betweenness centrality from `num_samples` BFS/Dijkstra
/// sources (Brandes' dependency accumulation).  Deterministic given `rng`.
std::vector<double> approximate_betweenness(const Graph& g, std::size_t num_samples, Rng& rng);

/// Vertices sorted by decreasing sampled betweenness (ties: higher degree,
/// then lower id).
std::vector<Vertex> betweenness_order(const Graph& g, std::size_t num_samples, Rng& rng);

}  // namespace hublab
