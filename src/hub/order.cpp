#include "hub/order.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace hublab {

namespace {

/// One Brandes accumulation from `source` (weighted variant; exact for
/// unit weights too).  Adds each vertex's dependency to `score`.
void accumulate_from(const Graph& g, Vertex source, std::vector<double>& score) {
  const std::size_t n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<double> sigma(n, 0.0);       // number of shortest paths
  std::vector<double> delta(n, 0.0);       // dependency
  std::vector<Vertex> settled;             // settle order
  settled.reserve(n);

  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  sigma[source] = 1.0;
  pq.emplace(0, source);
  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    settled.push_back(u);
    for (const Arc& a : g.arcs(u)) {
      const Dist nd = d + std::max<Weight>(a.weight, 1);  // 0-weights counted as hops
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        sigma[a.to] = sigma[u];
        pq.emplace(nd, a.to);
      } else if (nd == dist[a.to]) {
        sigma[a.to] += sigma[u];
      }
    }
  }

  // Accumulate dependencies in reverse settle order.
  for (auto it = settled.rbegin(); it != settled.rend(); ++it) {
    const Vertex w = *it;
    for (const Arc& a : g.arcs(w)) {
      // a.to is a predecessor of w iff dist[a.to] + w(a) == dist[w].
      const Dist step = std::max<Weight>(a.weight, 1);
      if (dist[a.to] != kInfDist && dist[a.to] + step == dist[w] && sigma[w] > 0) {
        delta[a.to] += sigma[a.to] / sigma[w] * (1.0 + delta[w]);
      }
    }
    if (w != source) score[w] += delta[w];
  }
}

}  // namespace

std::vector<double> approximate_betweenness(const Graph& g, std::size_t num_samples, Rng& rng) {
  const std::size_t n = g.num_vertices();
  std::vector<double> score(n, 0.0);
  if (n == 0) return score;
  std::vector<Vertex> sources(n);
  for (Vertex v = 0; v < n; ++v) sources[v] = v;
  if (num_samples < n) {
    shuffle(sources, rng);
    sources.resize(num_samples);
  }
  for (Vertex s : sources) accumulate_from(g, s, score);
  return score;
}

std::vector<Vertex> betweenness_order(const Graph& g, std::size_t num_samples, Rng& rng) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  const std::vector<double> score = approximate_betweenness(g, num_samples, rng);
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  return order;
}

}  // namespace hublab
