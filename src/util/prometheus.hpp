#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "util/metrics.hpp"

/// \file prometheus.hpp
/// Prometheus text-exposition rendering of the metrics registry
/// (https://prometheus.io/docs/instrumenting/exposition_formats/, version
/// 0.0.4).  `hublab serve-sim --prom-out FILE` dumps the registry through
/// this so a scrape target or pushgateway can ingest a run without any
/// bespoke tooling:
///
///  - counters  -> `# TYPE hublab_<name> counter` + one sample;
///  - gauges    -> `# TYPE hublab_<name> gauge` + one sample;
///  - histograms-> native Prometheus histograms: cumulative
///    `hublab_<name>_bucket{le="<pow2 bound>"}` series ending in
///    `le="+Inf"`, plus `_sum` and `_count`;
///  - sketches  -> summaries: `hublab_<name>{quantile="0.5|0.9|0.99|0.999"}`
///    plus `_sum` and `_count`;
///  - exemplar stores (util/exemplar.hpp) -> histograms over the capture
///    buckets with an OpenMetrics exemplar (`... # {seq=...,s=...,t=...}
///    latency`) attached to each bucket that retained a witness;
///  - heavy hitters (util/heavyhitter.hpp) -> one labeled sample per
///    retained key (`hublab_<name>{key="<id>"} weight`) plus
///    `{key="total"}`, e.g. the `hublab_hub_scan_cost` series.
///
/// Every family is preceded by a `# HELP` line echoing the registry-side
/// name, then its `# TYPE` line.  Metric names are sanitized (dots and
/// other non-[a-zA-Z0-9_:] characters become `_`) and prefixed with
/// `hublab_`.  Output is sorted by name like every other registry dump, so
/// files diff cleanly across runs.

namespace hublab::metrics {

/// `name` sanitized into a legal Prometheus metric name, `hublab_` prefix
/// included (exposed for tests).
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// Render every metric in `reg` in text exposition format.
void write_prometheus_text(const Registry& reg, std::ostream& out);

}  // namespace hublab::metrics
