file(REMOVE_RECURSE
  "CMakeFiles/hublab_oracle.dir/alt.cpp.o"
  "CMakeFiles/hublab_oracle.dir/alt.cpp.o.d"
  "CMakeFiles/hublab_oracle.dir/arc_flags.cpp.o"
  "CMakeFiles/hublab_oracle.dir/arc_flags.cpp.o.d"
  "CMakeFiles/hublab_oracle.dir/contraction_hierarchy.cpp.o"
  "CMakeFiles/hublab_oracle.dir/contraction_hierarchy.cpp.o.d"
  "CMakeFiles/hublab_oracle.dir/oracle.cpp.o"
  "CMakeFiles/hublab_oracle.dir/oracle.cpp.o.d"
  "libhublab_oracle.a"
  "libhublab_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
