// Fixture: a simd finding silenced by the inline allow marker.

namespace fixture {

int lane0(const int* p) {
  return _mm_cvtsi128_si32(_mm_loadu_si128(p));  // hublab-lint-allow(simd)
}

}  // namespace fixture
