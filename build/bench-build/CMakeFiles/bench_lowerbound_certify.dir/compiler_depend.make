# Empty compiler generated dependencies file for bench_lowerbound_certify.
# This may be replaced when dependencies are built.
