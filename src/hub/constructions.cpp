#include "hub/constructions.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hublab {

HubLabeling full_labeling(const Graph& g, const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HubLabeling labeling(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex h = 0; h < n; ++h) {
      if (truth.at(v, h) != kInfDist) labeling.add_hub(v, h, truth.at(v, h));
    }
  }
  labeling.finalize();
  return labeling;
}

HubLabeling greedy_cover(const Graph& g, const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (n > 400) throw InvalidArgument("greedy_cover limited to small graphs (n <= 400)");
  HubLabeling labeling(n);

  // Uncovered connected pairs (u <= v).
  std::vector<std::pair<Vertex, Vertex>> uncovered;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u; v < n; ++v) {
      if (truth.at(u, v) != kInfDist) uncovered.emplace_back(u, v);
    }
  }

  while (!uncovered.empty()) {
    // Pick the hub candidate covering the most uncovered pairs.
    std::vector<std::size_t> gain(n, 0);
    for (const auto& [u, v] : uncovered) {
      const Dist duv = truth.at(u, v);
      for (Vertex h = 0; h < n; ++h) {
        if (truth.at(u, h) != kInfDist && truth.at(h, v) != kInfDist &&
            truth.at(u, h) + truth.at(h, v) == duv) {
          ++gain[h];
        }
      }
    }
    const Vertex best =
        static_cast<Vertex>(std::max_element(gain.begin(), gain.end()) - gain.begin());
    HUBLAB_ASSERT(gain[best] > 0);

    std::vector<std::pair<Vertex, Vertex>> still;
    still.reserve(uncovered.size() - gain[best]);
    for (const auto& [u, v] : uncovered) {
      const Dist duv = truth.at(u, v);
      if (truth.at(u, best) != kInfDist && truth.at(best, v) != kInfDist &&
          truth.at(u, best) + truth.at(best, v) == duv) {
        labeling.add_hub(u, best, truth.at(u, best));
        labeling.add_hub(v, best, truth.at(v, best));
      } else {
        still.emplace_back(u, v);
      }
    }
    uncovered.swap(still);
  }
  labeling.finalize();
  return labeling;
}

HubLabeling random_distant_cover(const Graph& g, const DistanceMatrix& truth, std::size_t D,
                                 Rng& rng, DistantCoverStats* stats_out) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (D < 2) throw InvalidArgument("random_distant_cover needs D >= 2");
  HubLabeling labeling(n);
  DistantCoverStats stats;

  // Shared random sample S of size ~ (n/D) ln D (at least 1, at most n).
  const double target = static_cast<double>(n) / static_cast<double>(D) *
                        std::log(static_cast<double>(D));
  const std::size_t sample_size = std::min<std::size_t>(n, std::max<std::size_t>(1,
                                      static_cast<std::size_t>(target) + 1));
  std::vector<Vertex> pool(n);
  for (Vertex v = 0; v < n; ++v) pool[v] = v;
  shuffle(pool, rng);
  std::vector<Vertex> sample(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(sample_size));
  std::sort(sample.begin(), sample.end());
  stats.sample_size = sample_size;

  for (Vertex v = 0; v < n; ++v) {
    // S goes into every label (entries for unreachable hubs are dropped).
    for (Vertex s : sample) {
      if (truth.at(v, s) != kInfDist) labeling.add_hub(v, s, truth.at(v, s));
    }
    // Ball of radius D-1: near pairs are covered by the far endpoint itself.
    for (Vertex x = 0; x < n; ++x) {
      const Dist d = truth.at(v, x);
      if (d != kInfDist && d < D) {
        labeling.add_hub(v, x, d);
        ++stats.ball_hubs;
      }
    }
  }
  labeling.finalize();

  // Patch far pairs that S happened to miss (collect first, apply once;
  // extra hubs never break coverage, so redundant patches are harmless).
  std::vector<std::pair<Vertex, Vertex>> misses;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Dist duv = truth.at(u, v);
      if (duv == kInfDist || duv < D) continue;
      if (labeling.query(u, v) != duv) misses.emplace_back(u, v);
    }
  }
  for (const auto& [u, v] : misses) {
    labeling.add_hub(u, v, truth.at(u, v));  // far endpoint as explicit hub
    ++stats.patched_pairs;
  }
  labeling.finalize();
  if (stats_out != nullptr) *stats_out = stats;
  return labeling;
}

}  // namespace hublab
