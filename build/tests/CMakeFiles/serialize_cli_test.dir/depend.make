# Empty dependencies file for serialize_cli_test.
# This may be replaced when dependencies are built.
