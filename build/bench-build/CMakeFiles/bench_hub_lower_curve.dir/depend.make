# Empty dependencies file for bench_hub_lower_curve.
# This may be replaced when dependencies are built.
