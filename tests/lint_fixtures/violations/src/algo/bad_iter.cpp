// Fixture: unordered-iter -- range-for over a hash map.

#include <unordered_map>

namespace fixture {

int sum_values(const std::unordered_map<int, int>& table) {
  int total = 0;
  for (const auto& [key, value] : table) total += value;
  return total;
}

}  // namespace fixture
