file(REMOVE_RECURSE
  "../bench/bench_rs_behrend"
  "../bench/bench_rs_behrend.pdb"
  "CMakeFiles/bench_rs_behrend.dir/bench_rs_behrend.cpp.o"
  "CMakeFiles/bench_rs_behrend.dir/bench_rs_behrend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rs_behrend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
