#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json.hpp"

namespace hublab::log {
namespace {

/// Swap the global logger's sink to a local stringstream for one test and
/// restore stderr afterwards.
class SinkCapture {
 public:
  SinkCapture() {
    logger().set_sink(&buffer_);
    logger().set_level(Level::kInfo);
    logger().set_format(Format::kText);
    logger().set_rate_limit(0);
  }
  ~SinkCapture() {
    logger().set_sink(nullptr);
    logger().set_level(Level::kInfo);
    logger().set_format(Format::kText);
    logger().set_rate_limit(0);
  }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
};

TEST(Level, NamesAndOrdering) {
  EXPECT_EQ(level_name(Level::kTrace), "trace");
  EXPECT_EQ(level_name(Level::kDebug), "debug");
  EXPECT_EQ(level_name(Level::kInfo), "info");
  EXPECT_EQ(level_name(Level::kWarn), "warn");
  EXPECT_EQ(level_name(Level::kError), "error");
  EXPECT_EQ(level_name(Level::kOff), "off");
  EXPECT_LT(static_cast<int>(Level::kTrace), static_cast<int>(Level::kError));
}

TEST(Logger, LevelFiltering) {
  SinkCapture capture;
  logger().set_level(Level::kWarn);
  EXPECT_FALSE(logger().enabled(Level::kInfo));
  EXPECT_TRUE(logger().enabled(Level::kWarn));
  EXPECT_TRUE(logger().enabled(Level::kError));

  logger().write(Level::kInfo, "test", "dropped");
  logger().write(Level::kWarn, "test", "kept warn");
  logger().write(Level::kError, "test", "kept error");
  const std::string out = capture.text();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept warn"), std::string::npos);
  EXPECT_NE(out.find("kept error"), std::string::npos);
}

TEST(Logger, OffLevelSilencesEverything) {
  SinkCapture capture;
  logger().set_level(Level::kOff);
  logger().write(Level::kError, "test", "still dropped");
  EXPECT_EQ(capture.text(), "");
}

TEST(Logger, TextFormatIsLogfmt) {
  SinkCapture capture;
  logger().write(Level::kInfo, "serve", "oracle built",
                 {Field("oracle", "pll"), Field("queries", std::uint64_t{42}),
                  Field("ok", true), Field("ratio", 0.5)});
  const std::string out = capture.text();
  EXPECT_NE(out.find("level=info"), std::string::npos);
  EXPECT_NE(out.find("component=serve"), std::string::npos);
  EXPECT_NE(out.find("msg=\"oracle built\""), std::string::npos);
  EXPECT_NE(out.find("oracle=\"pll\""), std::string::npos);
  EXPECT_NE(out.find("queries=42"), std::string::npos);
  EXPECT_NE(out.find("ok=true"), std::string::npos);
  EXPECT_NE(out.find("ratio=0.5"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Logger, JsonFormatParsesBackAsOneObjectPerLine) {
  SinkCapture capture;
  logger().set_format(Format::kJson);
  logger().write(Level::kWarn, "serve", "queue \"deep\"",
                 {Field("depth", std::uint64_t{9}), Field("tag", "a\nb")});
  std::string line = capture.text();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // exactly one line

  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.find("level")->string_value, "warn");
  EXPECT_EQ(doc.find("component")->string_value, "serve");
  EXPECT_EQ(doc.find("msg")->string_value, "queue \"deep\"");
  EXPECT_EQ(doc.find("depth")->number_value, 9.0);
  EXPECT_EQ(doc.find("tag")->string_value, "a\nb");
  EXPECT_NE(doc.find("ts"), nullptr);
}

TEST(Logger, NegativeAndSignedFields) {
  SinkCapture capture;
  logger().write(Level::kInfo, "t", "m",
                 {Field("i", -3), Field("j", std::int64_t{-9000000000LL})});
  const std::string out = capture.text();
  EXPECT_NE(out.find("i=-3"), std::string::npos);
  EXPECT_NE(out.find("j=-9000000000"), std::string::npos);
}

TEST(Logger, RecordsWrittenCountsPostFilter) {
  SinkCapture capture;
  const std::uint64_t before = logger().records_written();
  logger().write(Level::kDebug, "t", "filtered");  // below kInfo
  logger().write(Level::kInfo, "t", "written");
  EXPECT_EQ(logger().records_written(), before + 1);
}

TEST(Logger, NullSinkDropsOutputSafely) {
  logger().set_sink(nullptr);
  logger().write(Level::kError, "t", "nowhere");  // must not crash
  logger().set_sink(nullptr);
  SinkCapture capture;  // restore a sane sink for the remaining tests
}

TEST(RateLimiter, AllowsUpToMaxPerWindow) {
  RateLimiter limiter(2, 1.0);
  EXPECT_TRUE(limiter.allow("k", 0.0));
  EXPECT_TRUE(limiter.allow("k", 0.1));
  EXPECT_FALSE(limiter.allow("k", 0.2));
  EXPECT_FALSE(limiter.allow("k", 0.9));
  EXPECT_EQ(limiter.suppressed("k"), 2u);
  // New window: quota refills, suppressed persists until the next allow.
  EXPECT_TRUE(limiter.allow("k", 1.0));
  EXPECT_TRUE(limiter.allow("k", 1.5));
  EXPECT_FALSE(limiter.allow("k", 1.6));
}

TEST(RateLimiter, KeysAreIndependent) {
  RateLimiter limiter(1, 1.0);
  EXPECT_TRUE(limiter.allow("a", 0.0));
  EXPECT_TRUE(limiter.allow("b", 0.0));
  EXPECT_FALSE(limiter.allow("a", 0.5));
  EXPECT_FALSE(limiter.allow("b", 0.5));
  EXPECT_EQ(limiter.suppressed("a"), 1u);
  EXPECT_EQ(limiter.suppressed("b"), 1u);
  EXPECT_EQ(limiter.suppressed("never-seen"), 0u);
}

TEST(RateLimiter, WindowsAlignToMultiplesOfWindowSize) {
  RateLimiter limiter(1, 10.0);
  EXPECT_TRUE(limiter.allow("k", 3.0));    // window [0, 10)
  EXPECT_FALSE(limiter.allow("k", 9.9));   // same window
  EXPECT_TRUE(limiter.allow("k", 10.0));   // window [10, 20)
  EXPECT_FALSE(limiter.allow("k", 19.9));
  EXPECT_TRUE(limiter.allow("k", 40.0));   // windows may be skipped entirely
}

TEST(Logger, RateLimitSuppressesHotLoopAndReportsSuppressedCount) {
  SinkCapture capture;
  logger().set_rate_limit(3, 1000.0);  // one huge window for the whole test
  for (int i = 0; i < 50; ++i) {
    logger().write(Level::kInfo, "loop", "hot message", {Field("i", i)});
  }
  const std::string out = capture.text();
  // Exactly 3 records; the other 47 are suppressed silently (their count
  // would be reported on the next allowed record in a later window).
  std::size_t records = 0;
  for (const char c : out) records += c == '\n' ? 1 : 0;
  EXPECT_EQ(records, 3u);

  // A different key is not affected by the hot key's suppression.
  logger().write(Level::kInfo, "loop", "other message");
  EXPECT_NE(capture.text().find("other message"), std::string::npos);
}

TEST(Macros, CompileTimeFloorAndRuntimeFilterCompose) {
  SinkCapture capture;
  logger().set_level(Level::kTrace);
  // HUBLAB_MIN_LOG_LEVEL is 0 in the test build, so everything below is a
  // runtime decision; all five macros must compile and emit.
  HUBLAB_LOG_TRACE("macro", "trace msg");
  HUBLAB_LOG_DEBUG("macro", "debug msg", log::Field("k", 1));
  HUBLAB_LOG_INFO("macro", "info msg");
  HUBLAB_LOG_WARN("macro", "warn msg");
  HUBLAB_LOG_ERROR("macro", "error msg", log::Field("code", 7));
  const std::string out = capture.text();
  for (const char* needle :
       {"trace msg", "debug msg", "info msg", "warn msg", "error msg", "code=7"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace hublab::log
