# Empty compiler generated dependencies file for theory_bounds_test.
# This may be replaced when dependencies are built.
