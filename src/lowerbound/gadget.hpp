#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

/// \file gadget.hpp
/// The lower-bound constructions of Section 2 of the paper.
///
/// H_{b,l} ("LayeredGadget"): a weighted layered graph.  With s = 2^b,
/// levels V_0..V_{2l} each hold s^l vertices identified with vectors in
/// [0, s-1]^l.  Level i connects to level i+1 by edges that change only
/// coordinate c(i) (coordinates are changed in order 0..l-1 going up,
/// l-1..0 going down); the edge weight is A + (j_c - j'_c)^2 with
/// A = 3*l*s^2.  Lemma 2.2: for x, z with all coordinate differences even,
/// the shortest v_{0,x} -> v_{2l,z} path is unique and passes through
/// v_{l,(x+z)/2}.
///
/// G_{b,l} ("Degree3Gadget"): the unweighted max-degree-3 expansion.  Every
/// H-vertex gets an in-tree and an out-tree (balanced binary, s leaves,
/// depth b) and every H-edge of weight w becomes a path of length
/// w - 2b - 2 between the matching leaves, so that distances between
/// original vertices at *different* levels are preserved exactly (the
/// intermediate levels are vertex cuts; same-level pairs may shortcut
/// through a shared tree by up to 2b, which none of the paper's arguments
/// rely on).
///
/// An optional *midlevel mask* removes chosen vertices of level l (with all
/// incident edges); this is the graph G'_{b,l} of the Sum-Index reduction
/// (Theorem 1.6).  Vertex ids are stable under masking.

namespace hublab::lb {

/// Construction parameters: b >= 1 (side 2^b), ell >= 1 (levels 2*ell+1).
struct GadgetParams {
  std::uint32_t b = 1;
  std::uint32_t ell = 1;

  [[nodiscard]] std::uint64_t s() const { return 1ULL << b; }
  [[nodiscard]] std::uint64_t num_levels() const { return 2ULL * ell + 1; }
  /// Vertices per level: s^ell.
  [[nodiscard]] std::uint64_t layer_size() const;
  /// Base edge weight A = 3*ell*s^2.
  [[nodiscard]] std::uint64_t base_weight() const { return 3ULL * ell * s() * s(); }
  /// |V(H_{b,ell})| = (2*ell+1) * s^ell.
  [[nodiscard]] std::uint64_t num_h_vertices() const { return num_levels() * layer_size(); }
  /// Upper bound on any edge weight: A + (s-1)^2 <= (3*ell+1)*s^2.
  [[nodiscard]] std::uint64_t max_edge_weight() const {
    return base_weight() + (s() - 1) * (s() - 1);
  }
  /// Hop diameter bound of H: every pair is joined by a path of <= 4*ell hops.
  [[nodiscard]] std::uint64_t hop_diameter_bound() const { return 4ULL * ell; }
  /// Weighted diameter bound used in Eq. (1) of the paper.
  [[nodiscard]] std::uint64_t weighted_diameter_bound() const {
    return (3ULL * ell + 1) * s() * s() * 4ULL * ell;
  }
  /// Number of counting triplets (x, y, z): s^ell * (s/2)^ell.
  [[nodiscard]] std::uint64_t num_triplets() const;

  /// Throws InvalidArgument when the instance would not fit in memory.
  void validate() const;
};

/// Vector of ell coordinates, each in [0, s-1].
using Coords = std::vector<std::uint32_t>;

/// The weighted layered graph H_{b,l}, optionally with a midlevel mask.
class LayeredGadget {
 public:
  explicit LayeredGadget(GadgetParams params,
                         const std::vector<bool>* midlevel_removed = nullptr);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const GadgetParams& params() const { return params_; }

  /// Vertex id of v_{level, index}; index encodes coordinates base-s.
  [[nodiscard]] Vertex vertex(std::uint64_t level, std::uint64_t index) const;
  [[nodiscard]] Vertex vertex_at(std::uint64_t level, const Coords& coords) const;

  [[nodiscard]] std::uint64_t level_of(Vertex v) const;
  [[nodiscard]] std::uint64_t index_of(Vertex v) const;

  [[nodiscard]] std::uint64_t coords_to_index(const Coords& coords) const;
  [[nodiscard]] Coords index_to_coords(std::uint64_t index) const;

  /// True when the midlevel vertex with this index was removed by the mask.
  [[nodiscard]] bool midlevel_removed(std::uint64_t index) const;

  /// Lemma 2.2 precondition: all coordinate differences even.
  [[nodiscard]] static bool all_diffs_even(const Coords& x, const Coords& z);

  /// Lemma 2.2 predicted distance between v_{0,x} and v_{2l,z}:
  /// 2*l*A + 2 * sum ((z_k - x_k)/2)^2.
  [[nodiscard]] Dist predicted_distance(const Coords& x, const Coords& z) const;

  /// Lemma 2.2 predicted unique midpoint v_{l,(x+z)/2}.
  [[nodiscard]] Vertex predicted_midpoint(const Coords& x, const Coords& z) const;

  /// Deep invariant audit (see util/audit.hpp): every edge joins adjacent
  /// levels, changes exactly the level's designated coordinate c(i), and has
  /// weight A + (j_c - j'_c)^2; masked midlevel vertices are isolated.  With
  /// num_samples > 0, additionally spot-checks Lemma 2.2 on sampled
  /// even-difference endpoint pairs (predicted distance and midpoint hub)
  /// via Dijkstra ground truth.
  [[nodiscard]] AuditReport audit(std::size_t num_samples = 4,
                                  std::uint64_t seed = 1) const;

 private:
  GadgetParams params_;
  std::vector<bool> removed_;  ///< midlevel mask (empty = nothing removed)
  Graph graph_;
};

/// The unweighted max-degree-3 expansion G_{b,l} of a LayeredGadget.
class Degree3Gadget {
 public:
  explicit Degree3Gadget(const LayeredGadget& h);

  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// Image in G of an H-vertex (the "original" vertex the trees attach to).
  [[nodiscard]] Vertex image(Vertex h_vertex) const {
    HUBLAB_ASSERT(h_vertex < image_.size());
    return image_[h_vertex];
  }

  /// Inverse map: G-vertex -> H-vertex, or nullopt for auxiliary vertices.
  [[nodiscard]] std::optional<Vertex> preimage(Vertex g_vertex) const;

  [[nodiscard]] std::size_t num_tree_vertices() const { return num_tree_vertices_; }
  [[nodiscard]] std::size_t num_path_vertices() const { return num_path_vertices_; }

 private:
  Graph graph_;
  std::vector<Vertex> image_;               ///< H id -> G id
  std::vector<Vertex> preimage_;            ///< G id -> H id or kInvalidVertex
  std::size_t num_tree_vertices_ = 0;
  std::size_t num_path_vertices_ = 0;
};

}  // namespace hublab::lb
