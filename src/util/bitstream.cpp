#include "util/bitstream.hpp"

#include <bit>

namespace hublab {

void BitWriter::put_bit(bool bit) {
  const std::size_t byte = out_.bit_count >> 3;
  const unsigned offset = out_.bit_count & 7;
  if (offset == 0) out_.bytes.push_back(0);
  if (bit) out_.bytes[byte] = static_cast<std::uint8_t>(out_.bytes[byte] | (1u << offset));
  ++out_.bit_count;
}

void BitWriter::put_bits(std::uint64_t value, unsigned width) {
  HUBLAB_ASSERT(width <= 64);
  for (unsigned i = 0; i < width; ++i) put_bit(((value >> i) & 1u) != 0);
}

void BitWriter::put_gamma(std::uint64_t value) {
  HUBLAB_ASSERT(value >= 1);
  const unsigned len = floor_log2(value);
  for (unsigned i = 0; i < len; ++i) put_bit(false);
  put_bit(true);  // the leading 1-bit of value
  put_bits(value & ((len == 0) ? 0 : ((1ULL << len) - 1)), len);
}

void BitWriter::put_delta(std::uint64_t value) {
  HUBLAB_ASSERT(value >= 1);
  const unsigned len = floor_log2(value);
  put_gamma(static_cast<std::uint64_t>(len) + 1);
  put_bits(value & ((len == 0) ? 0 : ((1ULL << len) - 1)), len);
}

bool BitReader::get_bit() {
  if (pos_ >= bits_->bit_count) throw ParseError("bit stream exhausted");
  const bool bit = ((bits_->bytes[pos_ >> 3] >> (pos_ & 7)) & 1u) != 0;
  ++pos_;
  return bit;
}

std::uint64_t BitReader::get_bits(unsigned width) {
  HUBLAB_ASSERT(width <= 64);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    if (get_bit()) value |= (1ULL << i);
  }
  return value;
}

std::uint64_t BitReader::get_gamma() {
  unsigned len = 0;
  while (!get_bit()) {
    ++len;
    if (len > 63) throw ParseError("gamma code too long");
  }
  std::uint64_t value = 1ULL << len;
  value |= get_bits(len);
  return value;
}

std::uint64_t BitReader::get_delta() {
  const std::uint64_t len64 = get_gamma() - 1;
  if (len64 > 63) throw ParseError("delta code too long");
  const auto len = static_cast<unsigned>(len64);
  std::uint64_t value = 1ULL << len;
  value |= get_bits(len);
  return value;
}

std::size_t gamma_code_length(std::uint64_t value) {
  HUBLAB_ASSERT(value >= 1);
  return 2 * static_cast<std::size_t>(floor_log2(value)) + 1;
}

std::size_t delta_code_length(std::uint64_t value) {
  HUBLAB_ASSERT(value >= 1);
  const unsigned len = floor_log2(value);
  return gamma_code_length(static_cast<std::uint64_t>(len) + 1) + len;
}

unsigned floor_log2(std::uint64_t x) {
  HUBLAB_ASSERT(x >= 1);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned ceil_log2(std::uint64_t x) {
  HUBLAB_ASSERT(x >= 1);
  const unsigned f = floor_log2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

}  // namespace hublab
