#include "util/resource.hpp"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hublab {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t unix_time_ms() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

}  // namespace hublab
