#include "graph/generators.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace hublab::gen {

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(i + 1));
  }
  return b.build();
}

Graph cycle(std::size_t n) {
  if (n < 3) throw InvalidArgument("cycle needs n >= 3");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>((i + 1) % n));
  }
  return b.build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j));
    }
  }
  return b.build();
}

Graph star(std::size_t n) {
  if (n == 0) throw InvalidArgument("star needs n >= 1");
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) b.add_edge(0, static_cast<Vertex>(i));
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return static_cast<Vertex>(r * cols + c); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph binary_tree(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) {
    b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>((i - 1) / 2));
  }
  return b.build();
}

Graph random_tree(std::size_t n, Rng& rng) {
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<Vertex>(rng.next_below(i));
    b.add_edge(static_cast<Vertex>(i), parent);
  }
  return b.build();
}

namespace {

/// Sample m distinct non-loop edges uniformly among all pairs.
std::set<std::pair<Vertex, Vertex>> sample_edges(std::size_t n, std::size_t m, Rng& rng,
                                                 std::set<std::pair<Vertex, Vertex>> taken = {}) {
  const std::size_t max_edges = n * (n - 1) / 2;
  if (m + taken.size() > max_edges) throw InvalidArgument("too many edges requested");
  std::set<std::pair<Vertex, Vertex>> edges = std::move(taken);
  const std::size_t target = edges.size() + m;
  while (edges.size() < target) {
    auto u = static_cast<Vertex>(rng.next_below(n));
    auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  }
  return edges;
}

}  // namespace

Graph gnm(std::size_t n, std::size_t m, Rng& rng) {
  if (n < 2 && m > 0) throw InvalidArgument("gnm needs n >= 2 for m > 0");
  GraphBuilder b(n);
  for (const auto& [u, v] : sample_edges(n, m, rng)) b.add_edge(u, v);
  return b.build();
}

Graph connected_gnm(std::size_t n, std::size_t m, Rng& rng) {
  if (m + 1 < n) throw InvalidArgument("connected_gnm needs m >= n - 1");
  std::set<std::pair<Vertex, Vertex>> edges;
  // Random spanning tree first.
  std::vector<Vertex> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<Vertex>(i);
  shuffle(order, rng);
  for (std::size_t i = 1; i < n; ++i) {
    Vertex u = order[i];
    Vertex v = order[rng.next_below(i)];
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  }
  const std::size_t extra = m - edges.size();
  edges = sample_edges(n, extra, rng, std::move(edges));
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  if (n * d % 2 != 0) throw InvalidArgument("random_regular needs n*d even");
  if (d >= n) throw InvalidArgument("random_regular needs d < n");
  constexpr int kMaxAttempts = 500;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<Vertex> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t k = 0; k < d; ++k) stubs.push_back(static_cast<Vertex>(v));
    }
    shuffle(stubs, rng);
    std::set<std::pair<Vertex, Vertex>> edges;
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      Vertex u = stubs[i];
      Vertex v = stubs[i + 1];
      if (u == v) { ok = false; break; }
      if (u > v) std::swap(u, v);
      if (!edges.emplace(u, v).second) { ok = false; break; }
    }
    if (!ok) continue;
    GraphBuilder b(n);
    for (const auto& [u, v] : edges) b.add_edge(u, v);
    return b.build();
  }
  throw Error("random_regular: pairing model failed to converge");
}

Graph barabasi_albert(std::size_t n, std::size_t k, Rng& rng) {
  if (k == 0 || n < k + 1) throw InvalidArgument("barabasi_albert needs n > k >= 1");
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling an index uniformly = degree-proportional.
  std::vector<Vertex> endpoints;
  // Seed: clique-ish chain on the first k+1 vertices.
  for (std::size_t i = 1; i <= k; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(j));
      endpoints.push_back(static_cast<Vertex>(i));
      endpoints.push_back(static_cast<Vertex>(j));
    }
  }
  for (std::size_t v = k + 1; v < n; ++v) {
    std::set<Vertex> chosen;
    while (chosen.size() < k) {
      chosen.insert(endpoints[rng.next_below(endpoints.size())]);
    }
    for (Vertex t : chosen) {
      b.add_edge(static_cast<Vertex>(v), t);
      endpoints.push_back(static_cast<Vertex>(v));
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph road_like(std::size_t rows, std::size_t cols, double shortcut_prob, Weight max_weight,
                Rng& rng) {
  if (max_weight == 0) throw InvalidArgument("road_like needs max_weight >= 1");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return static_cast<Vertex>(r * cols + c); };
  auto w = [&rng, max_weight]() { return static_cast<Weight>(1 + rng.next_below(max_weight)); };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), w());
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), w());
      if (r + 1 < rows && c + 1 < cols && rng.next_bool(shortcut_prob)) {
        b.add_edge(id(r, c), id(r + 1, c + 1), w());
      }
    }
  }
  return b.build();
}

Graph randomize_weights(const Graph& g, Weight max_weight, Rng& rng) {
  if (max_weight == 0) throw InvalidArgument("randomize_weights needs max_weight >= 1");
  GraphBuilder b(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) {
        b.add_edge(u, a.to, static_cast<Weight>(1 + rng.next_below(max_weight)));
      }
    }
  }
  return b.build();
}

}  // namespace hublab::gen
