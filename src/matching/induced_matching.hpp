#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

/// \file induced_matching.hpp
/// Induced matchings (Definition 1.2 of the paper) and edge partitions into
/// induced matchings -- the combinatorial structure behind the
/// Ruzsa-Szemeredi function RS(n).

namespace hublab {

using EdgeList = std::vector<std::pair<Vertex, Vertex>>;

/// True if `edges` is a matching in g (pairwise disjoint endpoints, all
/// edges present in g).
bool is_matching_in_graph(const Graph& g, const EdgeList& edges);

/// True if `edges` is an *induced* matching of g: a matching such that the
/// subgraph of g induced by its endpoints contains no other edge.
bool is_induced_matching(const Graph& g, const EdgeList& edges);

/// Result of partitioning E(g) into induced matchings.
struct InducedMatchingPartition {
  std::vector<EdgeList> matchings;

  [[nodiscard]] std::size_t num_matchings() const { return matchings.size(); }
  [[nodiscard]] std::size_t num_edges() const;
  [[nodiscard]] std::size_t min_matching_size() const;
  [[nodiscard]] double avg_matching_size() const;
};

/// Greedy partition of all edges of g into induced matchings: repeatedly
/// grow a matching with edges that keep it induced.  Always succeeds
/// (worst case: one edge per matching).  This is the practical upper-bound
/// witness for "how few induced matchings can cover this graph".
InducedMatchingPartition greedy_induced_partition(const Graph& g);

/// Verify a partition: every class is an induced matching, classes are
/// edge-disjoint, and they cover all edges of g exactly once.
bool is_valid_induced_partition(const Graph& g, const InducedMatchingPartition& p);

/// Repair a candidate matching into an induced one by greedily dropping
/// offending edges; returns the retained sub-matching.
EdgeList repair_to_induced(const Graph& g, const EdgeList& candidate);

}  // namespace hublab
