#pragma once

// Fixture: file-doc -- src/ header without a file-doc comment.

namespace fixture {}
