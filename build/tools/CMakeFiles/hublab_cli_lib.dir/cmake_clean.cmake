file(REMOVE_RECURSE
  "CMakeFiles/hublab_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/hublab_cli_lib.dir/cli.cpp.o.d"
  "libhublab_cli_lib.a"
  "libhublab_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
