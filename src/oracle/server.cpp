#include "oracle/server.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <span>
#include <utility>

#include "oracle/oracle.hpp"
#include "oracle/workload.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/querystats.hpp"
#include "util/report.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/spsc.hpp"
#include "util/timer.hpp"

namespace hublab::serve {

namespace {

/// One scheduled query in flight between the generator and a shard worker.
struct QueryItem {
  Vertex s = 0;
  Vertex t = 0;
  std::uint64_t seq = 0;         ///< position in the pre-generated stream
  std::uint64_t arrival_ns = 0;  ///< scheduled arrival offset from loop start
  /// Simulated arrival-to-completion latency (kVirtual only; computed on
  /// the generator so the value is independent of real scheduling).
  std::uint64_t virtual_latency_ns = 0;
};

/// Per-window accumulator; the generator owns offered/rejected (it sees
/// every arrival), the workers own the completion-side members.
struct WindowAccum {
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t queries = 0;
  std::uint64_t reachable = 0;
  QuantileSketch latency_ns;
};

/// Everything one shard worker accumulates; merged in worker order.
struct WorkerStats {
  QuantileSketch latency_ns;
  std::uint64_t completed = 0;
  std::uint64_t reachable = 0;
  std::uint64_t checksum = 0;
  std::uint64_t trimmed_warmup = 0;
  std::uint64_t trimmed_cooldown = 0;
  std::uint64_t busy_ns = 0;  ///< kernel time only; ring-wait excluded
  perf::HwCounters hw;
  metrics::ExemplarReservoir exemplars;
  metrics::SlowQueryLog slow;
  metrics::SpaceSavingSketch hub_scan_cost;
  std::map<std::uint64_t, WindowAccum> windows;
};

/// The generator-side accumulators (admission control happens there).
struct GeneratorStats {
  std::uint64_t rejected = 0;
  QuantileSketch queue_depth;
  std::map<std::uint64_t, WindowAccum> windows;  ///< offered/rejected only
};

/// Scheduled arrival offsets (ns from loop start), ascending.  The RNG
/// stream is salted away from the workload's so pairs and arrivals are
/// independent draws from the one config seed.
std::vector<std::uint64_t> arrival_schedule(const ServerConfig& config) {
  std::vector<std::uint64_t> arrivals;
  arrivals.reserve(config.num_queries);
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const double gap_ns = 1e9 / config.qps;
  if (config.arrival == ArrivalKind::kPoisson) {
    double t = 0.0;
    for (std::uint64_t i = 0; i < config.num_queries; ++i) {
      // Exponential inter-arrival gap with mean gap_ns (inverse CDF;
      // next_double() < 1 keeps the log argument positive).
      t += -std::log(1.0 - rng.next_double()) * gap_ns;
      arrivals.push_back(static_cast<std::uint64_t>(t));
    }
  } else {
    // Back-to-back groups of `burst` arrivals; group starts are spaced so
    // the long-run rate still matches the offered qps.
    const std::uint64_t burst = std::max<std::uint64_t>(1, config.burst);
    for (std::uint64_t i = 0; i < config.num_queries; ++i) {
      const std::uint64_t group = i / burst;
      arrivals.push_back(static_cast<std::uint64_t>(
          static_cast<double>(group) * gap_ns * static_cast<double>(burst)));
    }
  }
  return arrivals;
}

/// Deterministic M/D/c pre-simulation for TimingMode::kVirtual: replay the
/// arrival schedule against `workers` queues of bound `ring_capacity` and
/// constant per-query service time, producing each query's simulated
/// latency, the queue depth its admission decision saw, and (under kShed)
/// whether it was shed.  Runs on the generator before dispatch, so every
/// number is independent of real thread scheduling.
struct VirtualPlan {
  std::vector<std::uint64_t> latency_ns;
  std::vector<std::uint64_t> depth;
  std::vector<std::uint8_t> shed;
  std::uint64_t makespan_ns = 0;  ///< last simulated completion
};

VirtualPlan virtual_presim(const std::vector<std::uint64_t>& arrivals, std::size_t workers,
                           std::size_t ring_capacity, const ServerConfig& config) {
  VirtualPlan plan;
  const std::size_t n = arrivals.size();
  plan.latency_ns.assign(n, 0);
  plan.depth.assign(n, 0);
  plan.shed.assign(n, 0);
  const std::uint64_t service = std::max<std::uint64_t>(1, config.virtual_service_ns);
  std::vector<std::deque<std::uint64_t>> queued(workers);  ///< pending completions
  std::vector<std::uint64_t> free_at(workers, 0);          ///< server idle time
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t w = i % workers;
    const std::uint64_t a = arrivals[i];
    auto& dq = queued[w];
    while (!dq.empty() && dq.front() <= a) dq.pop_front();
    plan.depth[i] = dq.size();
    if (config.admission == AdmissionPolicy::kShed && dq.size() >= ring_capacity) {
      plan.shed[i] = 1;
      continue;
    }
    const std::uint64_t start = std::max(a, free_at[w]);
    const std::uint64_t completion = start + service;
    free_at[w] = completion;
    dq.push_back(completion);
    plan.latency_ns[i] = completion - a;
    plan.makespan_ns = std::max(plan.makespan_ns, completion);
  }
  return plan;
}

void emit_registry_metrics(const ServerResult& result, const ServerConfig& config) {
  metrics::Registry& reg = metrics::registry();
  reg.counter("serve.queries").add(result.completed);
  reg.counter("serve.reachable").add(result.reachable);
  reg.counter("serve.offered").add(result.offered);
  reg.counter("serve.rejected").add(result.rejected);
  reg.counter("serve.trimmed_warmup").add(result.trimmed_warmup);
  reg.counter("serve.trimmed_cooldown").add(result.trimmed_cooldown);
  reg.sketch("serve.query_ns").merge(result.latency_ns);
  reg.sketch("serve.queue_depth").merge(result.queue_depth);
  reg.gauge("serve.space_bytes").set(static_cast<std::int64_t>(result.space_bytes));
  reg.gauge("serve.offered_qps").set(static_cast<std::int64_t>(result.offered_qps));
  reg.gauge("serve.achieved_qps").set(static_cast<std::int64_t>(result.achieved_qps));
  reg.gauge("serve.worker_utilization_pct")
      .set(static_cast<std::int64_t>(result.worker_utilization_pct));
  for (std::size_t w = 0; w < result.worker_busy_ns.size(); ++w) {
    reg.gauge("serve.worker_busy_ns." + std::to_string(w))
        .set(static_cast<std::int64_t>(result.worker_busy_ns[w]));
  }
  reg.counter("serve.slow_queries").add(result.slow_queries.total_slow());
  reg.gauge("serve.window.count").set(static_cast<std::int64_t>(result.windows.size()));
  for (const WindowStats& win : result.windows) {
    const std::string idx = std::to_string(win.index);
    reg.gauge("serve.window.queries." + idx).set(static_cast<std::int64_t>(win.queries));
    reg.gauge("serve.window.qps." + idx).set(static_cast<std::int64_t>(win.qps));
    reg.gauge("serve.window.p50_ns." + idx).set(static_cast<std::int64_t>(win.p50_ns));
    reg.gauge("serve.window.p99_ns." + idx).set(static_cast<std::int64_t>(win.p99_ns));
    reg.gauge("serve.window.offered." + idx).set(static_cast<std::int64_t>(win.offered));
    reg.gauge("serve.window.rejected." + idx).set(static_cast<std::int64_t>(win.rejected));
  }
  metrics::ExemplarStore& store = reg.exemplar("serve.query_exemplars");
  store.configure(config.seed, config.exemplars_per_bucket);
  store.merge(result.exemplars);
  reg.heavy_hitter("hub.scan_cost").merge(result.hub_scan_cost);
  // Structured slow-query lines go out after the loop, never from it.
  for (const metrics::Exemplar& e : result.slow_queries.entries()) {
    HUBLAB_LOG_WARN("serve", "slow query", log::Field("seq", e.seq),
                    log::Field("s", static_cast<std::uint64_t>(e.s)),
                    log::Field("t", static_cast<std::uint64_t>(e.t)),
                    log::Field("latency_ns", e.latency_ns),
                    log::Field("scan_cost", e.scan_cost),
                    log::Field("meeting_hub", static_cast<std::uint64_t>(e.meeting_hub)),
                    log::Field("threshold_ns", result.slow_queries.threshold_ns()));
  }
  if (result.hw.valid) {
    reg.counter("perf.cycles").add(result.hw.cycles);
    reg.counter("perf.instructions").add(result.hw.instructions);
    reg.counter("perf.l1d_misses").add(result.hw.l1d_misses);
    reg.counter("perf.llc_misses").add(result.hw.llc_misses);
    reg.counter("perf.branch_misses").add(result.hw.branch_misses);
  }
}

}  // namespace

std::string_view arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBurst: return "burst";
  }
  return "poisson";
}

std::optional<ArrivalKind> parse_arrival_kind(std::string_view name) noexcept {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "burst") return ArrivalKind::kBurst;
  return std::nullopt;
}

std::string_view admission_policy_name(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kBlock: return "block";
  }
  return "shed";
}

std::optional<AdmissionPolicy> parse_admission_policy(std::string_view name) noexcept {
  if (name == "shed") return AdmissionPolicy::kShed;
  if (name == "block") return AdmissionPolicy::kBlock;
  return std::nullopt;
}

std::string_view timing_mode_name(TimingMode mode) noexcept {
  switch (mode) {
    case TimingMode::kWall: return "wall";
    case TimingMode::kVirtual: return "virtual";
  }
  return "wall";
}

std::optional<TimingMode> parse_timing_mode(std::string_view name) noexcept {
  if (name == "wall") return TimingMode::kWall;
  if (name == "virtual") return TimingMode::kVirtual;
  return std::nullopt;
}

ServerResult run_server(const Graph& g, const ServerConfig& config, Tracer* tracer) {
  if (g.num_vertices() == 0) throw InvalidArgument("serve: empty graph");
  Tracer local_tracer;
  Tracer& t = tracer != nullptr ? *tracer : local_tracer;
  std::unique_ptr<DistanceOracle> oracle;
  double build_s = 0.0;
  {
    auto span = t.span("build-oracle");
    Timer build_timer;
    SimConfig build_config;
    build_config.oracle = config.oracle;
    build_config.bp_roots = config.bp_roots;
    build_config.threads = config.workers;
    oracle = make_oracle(g, build_config);
    build_s = build_timer.elapsed_s();
  }
  ServerResult result = run_server_on(g, *oracle, config, &t);
  result.build_s = build_s;
  return result;
}

ServerResult run_server_on(const Graph& g, const DistanceOracle& oracle,
                           const ServerConfig& config, Tracer* tracer) {
  if (g.num_vertices() == 0) throw InvalidArgument("serve: empty graph");
  if (config.num_queries == 0) throw InvalidArgument("serve: --queries must be >= 1");
  if (!(config.qps > 0.0)) throw InvalidArgument("serve: --qps must be > 0");
  if (config.batch == 0) throw InvalidArgument("serve: --batch must be >= 1");
  if (config.ring_capacity == 0) throw InvalidArgument("serve: --ring must be >= 1");
  if (par::in_parallel_region()) {
    throw InvalidArgument("serve: cannot run inside a parallel region");
  }
  Tracer local_tracer;
  Tracer& t = tracer != nullptr ? *tracer : local_tracer;

  ServerResult result;
  result.start_unix_ms = unix_time_ms();
  result.oracle_name = oracle.name();
  result.workload_name = workload_kind_name(config.workload);
  result.workers = std::clamp<std::size_t>(config.workers, 1, kMaxServeWorkers);
  result.offered_qps = config.qps;
  result.space_bytes = oracle.space_bytes();
  if (const auto* hub = dynamic_cast<const HubLabelOracle*>(&oracle)) {
    result.space_bytes_flat = FlatHubLabeling(hub->labeling()).memory_bytes();
  } else if (const auto* flat = dynamic_cast<const FlatHubLabelOracle*>(&oracle)) {
    result.space_bytes_flat = flat->labeling().memory_bytes();
  }
  const std::size_t workers = result.workers;
  const std::size_t batch = config.batch;

  // Pairs and arrivals are fully materialized before the loop: generation
  // must never steal cycles from (or synchronize with) the serving path,
  // and the schedule must be a pure function of the config.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  {
    auto span = t.span("gen-workload");
    WorkloadGenerator workload(g, config.workload, config.seed);
    pairs = workload.block(config.num_queries);
  }
  std::vector<std::uint64_t> arrivals;
  {
    auto span = t.span("gen-arrivals");
    arrivals = arrival_schedule(config);
  }
  result.offered = pairs.size();

  // Telemetry trim bounds, by scheduled arrival offset.  Each bound is
  // clamped to a quarter of the schedule span so short smoke runs always
  // keep recorded samples; trimmed queries are still answered and
  // checksummed.
  const std::uint64_t span_ns = arrivals.back();
  const std::uint64_t warm_end_ns = std::min(config.warmup_ms * 1'000'000, span_ns / 4);
  const std::uint64_t cool_begin_ns =
      config.cooldown_ms > 0
          ? span_ns - std::min(config.cooldown_ms * 1'000'000, span_ns / 4)
          : ~std::uint64_t{0};

  std::vector<std::unique_ptr<SpscRing<QueryItem>>> rings;
  rings.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    rings.push_back(std::make_unique<SpscRing<QueryItem>>(config.ring_capacity));
  }
  const std::size_t ring_capacity = rings.front()->capacity();

  // kVirtual: decide latencies/depths/shedding up front, deterministically,
  // against the same rounded ring bound the real rings enforce.
  VirtualPlan plan;
  const bool virtual_timing = config.timing == TimingMode::kVirtual;
  if (virtual_timing) {
    plan = virtual_presim(arrivals, workers, ring_capacity, config);
  }

  GeneratorStats gen;
  std::vector<WorkerStats> stats(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Per-worker seeds derive from the run seed and the fixed worker id,
    // so retained exemplars depend only on (seed, latencies) — the same
    // discipline as serve-sim's per-chunk reservoirs.
    stats[w].exemplars = metrics::ExemplarReservoir(
        config.seed ^ (0x9e3779b97f4a7c15ULL * (w + 1)), config.exemplars_per_bucket);
    stats[w].slow = metrics::SlowQueryLog(config.slow_query_ns, config.slow_query_capacity);
  }
  const std::uint64_t window_ns = std::max<std::uint64_t>(1, config.window_ns);

  // done: producer finished (or died) — release-published after its last
  // push.  failed: some executor threw; the others unwind instead of
  // spinning on a peer that will never make progress.
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  {
    auto span = t.span("serve-open-loop");
    Timer loop_timer;
    const std::uint64_t t0 = monotonic_ns();

    auto produce = [&] {
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        const std::size_t w = i % workers;
        const std::uint64_t due = arrivals[i];
        if (!virtual_timing) {
          // Open-loop pacing: dispatch at the scheduled offset regardless
          // of how the workers are doing.
          while (monotonic_ns() - t0 < due) {
            if (failed.load(std::memory_order_acquire)) return;
            par::yield();
          }
        }
        const bool trimmed = due < warm_end_ns || due >= cool_begin_ns;
        QueryItem item;
        item.s = pairs[i].first;
        item.t = pairs[i].second;
        item.seq = i;
        item.arrival_ns = due;
        bool admitted = true;
        std::uint64_t depth = 0;
        if (virtual_timing) {
          depth = plan.depth[i];
          admitted = plan.shed[i] == 0;
          item.virtual_latency_ns = plan.latency_ns[i];
          if (admitted) {
            // The simulated bound already admitted it; the real ring only
            // needs to take it eventually.
            while (!rings[w]->try_push(item)) {
              if (failed.load(std::memory_order_acquire)) return;
              par::yield();
            }
          }
        } else {
          depth = rings[w]->size_approx();
          if (config.admission == AdmissionPolicy::kShed) {
            admitted = rings[w]->try_push(item);
          } else {
            while (!rings[w]->try_push(item)) {
              if (failed.load(std::memory_order_acquire)) return;
              par::yield();
            }
          }
        }
        if (!admitted) ++gen.rejected;
        if (!trimmed) {
          gen.queue_depth.record(depth);
          WindowAccum& win = gen.windows[due / window_ns];
          ++win.offered;
          if (!admitted) ++win.rejected;
        }
      }
    };

    auto drain = [&](std::size_t w) {
      WorkerStats& s = stats[w];
      SpscRing<QueryItem>& ring = *rings[w];
      std::vector<QueryItem> items(batch);
      std::vector<std::pair<Vertex, Vertex>> block_pairs(batch);
      std::vector<HubQueryResult> answers(batch);
      auto record = [&](const QueryItem& item, Dist d, Vertex meeting_hub,
                        std::uint64_t scan_cost, std::uint64_t completion_offset_ns) {
        ++s.completed;
        if (d != kInfDist) {
          ++s.reachable;
          s.checksum += d;
        }
        if (item.arrival_ns < warm_end_ns) {
          ++s.trimmed_warmup;
          return;
        }
        if (item.arrival_ns >= cool_begin_ns) {
          ++s.trimmed_cooldown;
          return;
        }
        const std::uint64_t latency_ns = virtual_timing
                                             ? item.virtual_latency_ns
                                             : completion_offset_ns - item.arrival_ns;
        s.latency_ns.record(latency_ns);
        const metrics::Exemplar witness{item.seq, item.s, item.t, latency_ns, scan_cost,
                                        meeting_hub};
        s.exemplars.offer(witness);
        s.slow.offer(witness);
        if (scan_cost > 0 && meeting_hub != metrics::kNoMeetingHub) {
          s.hub_scan_cost.add(meeting_hub, scan_cost);
        }
        WindowAccum& win = s.windows[item.arrival_ns / window_ns];
        ++win.queries;
        if (d != kInfDist) ++win.reachable;
        win.latency_ns.record(latency_ns);
      };
      for (;;) {
        std::size_t got = ring.pop_bulk(items.data(), batch);
        if (got == 0) {
          if (failed.load(std::memory_order_acquire)) return;
          if (done.load(std::memory_order_acquire)) {
            // done was published after the producer's last push; one more
            // drain pass observes anything that raced the flag.
            got = ring.pop_bulk(items.data(), batch);
            if (got == 0) break;
          } else {
            par::yield();
            continue;
          }
        }
        const std::uint64_t block_begin_ns = monotonic_ns();
        if (batch >= 2) {
          for (std::size_t j = 0; j < got; ++j) {
            block_pairs[j] = {items[j].s, items[j].t};
          }
          {
            perf::ScopedHw hw_scope(s.hw);
            oracle.distance_batch(
                std::span<const std::pair<Vertex, Vertex>>(block_pairs.data(), got),
                std::span<HubQueryResult>(answers.data(), got));
          }
          const std::uint64_t completion = monotonic_ns();
          for (std::size_t j = 0; j < got; ++j) {
            record(items[j], answers[j].dist, answers[j].meeting_hub, 0, completion - t0);
          }
          s.busy_ns += completion - block_begin_ns;
        } else {
          for (std::size_t j = 0; j < got; ++j) {
            metrics::QueryStats probe;
            Dist d = kInfDist;
            {
              perf::ScopedHw hw_scope(s.hw);
              d = oracle.distance_with_stats(items[j].s, items[j].t, probe);
            }
            record(items[j], d, probe.meeting_hub(), probe.scan_cost(), monotonic_ns() - t0);
          }
          s.busy_ns += monotonic_ns() - block_begin_ns;
        }
      }
    };

    // The generator and the shard workers are hosted as workers+1
    // single-index chunks on the deterministic pool: every executor claims
    // exactly one long-running role, and run_chunks's ticket loop plus
    // exception parking give us joining and deterministic rethrow for
    // free.  Role 0 is the generator; role r >= 1 is shard worker r-1.
    const auto roles = par::static_chunks(0, workers + 1, workers + 1);
    par::run_chunks(roles, workers + 1, [&](const par::ChunkRange& role) {
      try {
        if (role.index == 0) {
          produce();
          done.store(true, std::memory_order_release);
        } else {
          drain(role.index - 1);
        }
      } catch (...) {
        failed.store(true, std::memory_order_release);
        done.store(true, std::memory_order_release);
        throw;
      }
    });
    result.serve_loop_s = loop_timer.elapsed_s();
  }

  // Merge in fixed worker order (generator first), the same discipline as
  // serve-sim's chunk-order merge: the merged sketch structure and every
  // count are independent of runtime interleaving.
  result.rejected = gen.rejected;
  result.queue_depth = gen.queue_depth;
  result.exemplars = metrics::ExemplarReservoir(config.seed, config.exemplars_per_bucket);
  result.slow_queries = metrics::SlowQueryLog(config.slow_query_ns, config.slow_query_capacity);
  result.worker_busy_ns.assign(workers, 0);
  std::map<std::uint64_t, WindowAccum> merged_windows;
  for (const auto& [index, win] : gen.windows) {
    WindowAccum& acc = merged_windows[index];
    acc.offered += win.offered;
    acc.rejected += win.rejected;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    const WorkerStats& s = stats[w];
    result.latency_ns.merge(s.latency_ns);
    result.completed += s.completed;
    result.reachable += s.reachable;
    result.checksum += s.checksum;
    result.trimmed_warmup += s.trimmed_warmup;
    result.trimmed_cooldown += s.trimmed_cooldown;
    result.hw += s.hw;
    result.exemplars.merge(s.exemplars);
    result.slow_queries.merge(s.slow);
    result.hub_scan_cost.merge(s.hub_scan_cost);
    result.worker_busy_ns[w] = s.busy_ns;
    for (const auto& [index, win] : s.windows) {
      WindowAccum& acc = merged_windows[index];
      acc.queries += win.queries;
      acc.reachable += win.reachable;
      acc.latency_ns.merge(win.latency_ns);
    }
  }
  result.windows.reserve(merged_windows.size());
  for (const auto& [index, win] : merged_windows) {
    result.windows.push_back({index, win.queries, win.reachable,
                              static_cast<double>(win.queries) /
                                  (static_cast<double>(window_ns) / 1e9),
                              win.latency_ns.quantile(0.5), win.latency_ns.quantile(0.99),
                              win.offered, win.rejected});
  }
  // Under kVirtual the rate is measured on the simulated clock (the wall
  // loop time includes no pacing), so it is run-to-run identical too.
  if (virtual_timing) {
    result.achieved_qps = plan.makespan_ns > 0
                              ? static_cast<double>(result.completed) /
                                    (static_cast<double>(plan.makespan_ns) / 1e9)
                              : 0.0;
  } else {
    result.achieved_qps = result.serve_loop_s > 0.0
                              ? static_cast<double>(result.completed) / result.serve_loop_s
                              : 0.0;
  }
  std::uint64_t total_busy_ns = 0;
  for (const std::uint64_t busy : result.worker_busy_ns) total_busy_ns += busy;
  const double capacity_ns = result.serve_loop_s * 1e9 * static_cast<double>(workers);
  result.worker_utilization_pct =
      capacity_ns > 0.0 ? 100.0 * static_cast<double>(total_busy_ns) / capacity_ns : 0.0;

  if (config.register_metrics) emit_registry_metrics(result, config);
  HUBLAB_LOG_INFO("serve", "open loop done", log::Field("oracle", result.oracle_name),
                  log::Field("workload", result.workload_name),
                  log::Field("offered", result.offered),
                  log::Field("completed", result.completed),
                  log::Field("rejected", result.rejected),
                  log::Field("p99_ns", result.latency_ns.quantile(0.99)));
  return result;
}

void write_server_report_json(std::ostream& os, const ServerResult& result,
                              const ServerConfig& config, const std::vector<SweepPoint>& sweep,
                              const Graph& g, std::string_view graph_family,
                              std::string_view git_rev, bool smoke, const Tracer& tracer) {
  ReportHeader header;
  header.name = "serve-open-" + std::string(oracle_kind_name(config.oracle));
  header.git_rev = std::string(git_rev);
  header.smoke = smoke;
  header.ok = true;
  header.repetitions = 1;
  header.start_unix_ms = result.start_unix_ms;
  header.threads = result.workers;
  header.bp_roots = static_cast<std::int64_t>(config.bp_roots);
  header.graphs.push_back({std::string(graph_family), g.num_vertices(), g.num_edges()});
  const auto quantiles = [](JsonWriter& w, const QuantileSketch& sk) {
    w.kv("count", sk.count());
    w.kv("min", sk.min());
    w.kv("max", sk.max());
    w.kv("p50", sk.quantile(0.5));
    w.kv("p90", sk.quantile(0.9));
    w.kv("p99", sk.quantile(0.99));
    w.kv("p999", sk.quantile(0.999));
    w.kv("rank_error", sk.rank_error_bound());
  };
  write_run_report_json(os, header, tracer, metrics::registry(), [&](JsonWriter& w) {
    w.kv("oracle", oracle_kind_name(config.oracle));
    w.kv("oracle_impl", result.oracle_name);
    w.kv("workload", result.workload_name);
    w.kv("seed", config.seed);
    w.kv("arrival", arrival_kind_name(config.arrival));
    w.kv("admission", admission_policy_name(config.admission));
    w.kv("timing", timing_mode_name(config.timing));
    w.kv("qps", result.offered_qps);
    w.kv("achieved_qps", result.achieved_qps);
    w.kv("burst", config.burst);
    w.kv("ring_capacity", static_cast<std::uint64_t>(config.ring_capacity));
    w.kv("batch", static_cast<std::uint64_t>(config.batch));
    w.kv("virtual_service_ns", config.virtual_service_ns);
    w.kv("warmup_ms", config.warmup_ms);
    w.kv("cooldown_ms", config.cooldown_ms);
    w.kv("offered", result.offered);
    w.kv("queries", result.completed);
    w.kv("rejected", result.rejected);
    w.kv("reachable", result.reachable);
    w.kv("checksum", result.checksum);
    w.kv("trimmed_warmup", result.trimmed_warmup);
    w.kv("trimmed_cooldown", result.trimmed_cooldown);
    w.kv("space_bytes", static_cast<std::uint64_t>(result.space_bytes));
    w.kv("space_bytes_flat", static_cast<std::uint64_t>(result.space_bytes_flat));
    w.kv("build_s", result.build_s);
    w.kv("serve_loop_s", result.serve_loop_s);
    w.kv("worker_utilization_pct", result.worker_utilization_pct);
    w.key("workers").begin_array();
    for (std::size_t i = 0; i < result.worker_busy_ns.size(); ++i) {
      w.begin_object();
      w.kv("worker", static_cast<std::uint64_t>(i));
      w.kv("busy_ns", result.worker_busy_ns[i]);
      const double loop_ns = result.serve_loop_s * 1e9;
      w.kv("utilization_pct",
           loop_ns > 0.0 ? 100.0 * static_cast<double>(result.worker_busy_ns[i]) / loop_ns : 0.0);
      w.end_object();
    }
    w.end_array();
    if (result.hw.valid) {
      w.key("hw_query_loop").begin_object();
      w.kv("cycles", result.hw.cycles);
      w.kv("instructions", result.hw.instructions);
      w.kv("ipc", result.hw.ipc());
      w.kv("l1d_misses", result.hw.l1d_misses);
      w.kv("llc_misses", result.hw.llc_misses);
      w.kv("branch_misses", result.hw.branch_misses);
      w.kv("llc_miss_rate", result.hw.llc_miss_rate());
      w.kv("branch_miss_rate", result.hw.branch_miss_rate());
      w.end_object();
    }
    w.key("latency_ns").begin_object();
    quantiles(w, result.latency_ns);
    w.end_object();
    w.key("queue_depth").begin_object();
    quantiles(w, result.queue_depth);
    w.end_object();
    w.kv("window_ns", config.window_ns);
    w.kv("slow_query_ns", config.slow_query_ns);
    w.key("windows").begin_array();
    for (const WindowStats& win : result.windows) {
      w.begin_object();
      w.kv("index", win.index);
      w.kv("queries", win.queries);
      w.kv("reachable", win.reachable);
      w.kv("qps", win.qps);
      w.kv("p50_ns", win.p50_ns);
      w.kv("p99_ns", win.p99_ns);
      w.kv("offered", win.offered);
      w.kv("rejected", win.rejected);
      w.end_object();
    }
    w.end_array();
    w.key("slow_queries").begin_array();
    for (const metrics::Exemplar& e : result.slow_queries.entries()) {
      w.begin_object();
      w.kv("seq", e.seq);
      w.kv("s", static_cast<std::uint64_t>(e.s));
      w.kv("t", static_cast<std::uint64_t>(e.t));
      w.kv("latency_ns", e.latency_ns);
      w.kv("scan_cost", e.scan_cost);
      w.kv("meeting_hub", static_cast<std::uint64_t>(e.meeting_hub));
      w.end_object();
    }
    w.end_array();
    w.kv("slow_queries_total", result.slow_queries.total_slow());
    w.key("sweep").begin_array();
    for (const SweepPoint& point : sweep) {
      w.begin_object();
      w.kv("qps", point.offered_qps);
      w.kv("achieved_qps", point.achieved_qps);
      w.kv("queries", point.completed);
      w.kv("rejected", point.rejected);
      w.kv("p50_ns", point.p50_ns);
      w.kv("p99_ns", point.p99_ns);
      w.end_object();
    }
    w.end_array();
  });
}

}  // namespace hublab::serve
