#include <gtest/gtest.h>

#include <memory>

#include "hub/pll.hpp"
#include "sumindex/sumindex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab::si {
namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

std::shared_ptr<const DistanceLabelingScheme> hub_scheme() {
  return std::make_shared<HubDistanceLabeling>(&pll_natural, "pll");
}

std::vector<std::uint8_t> bits_of(std::uint64_t mask, std::uint64_t m) {
  std::vector<std::uint8_t> S(m);
  for (std::uint64_t i = 0; i < m; ++i) S[i] = (mask >> i) & 1;
  return S;
}

TEST(Trivial, ExhaustiveSmall) {
  const std::uint64_t m = 6;
  const TrivialProtocol protocol(m);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> S(m);
    for (auto& b : S) b = static_cast<std::uint8_t>(rng.next_below(2));
    for (std::uint64_t a = 0; a < m; ++a) {
      for (std::uint64_t b = 0; b < m; ++b) {
        EXPECT_TRUE(run_protocol(protocol, S, a, b).correct());
      }
    }
  }
}

TEST(Trivial, MessageSizes) {
  const std::uint64_t m = 16;
  const TrivialProtocol protocol(m);
  const auto S = bits_of(0xabcd, m);
  const ProtocolRun run = run_protocol(protocol, S, 3, 9);
  EXPECT_EQ(run.alice_bits, m + ceil_log2(m));
  EXPECT_EQ(run.bob_bits, ceil_log2(m));
}

TEST(Trivial, RejectsBadInstance) {
  const TrivialProtocol protocol(4);
  EXPECT_THROW((void)protocol.alice({1, 0}, 0), hublab::InvalidArgument);
  EXPECT_THROW((void)protocol.alice({1, 0, 1, 1}, 9), hublab::InvalidArgument);
}

TEST(Gadget, RejectsDegenerateParams) {
  // b = 1 gives digit base s/2 = 1: repr() would be degenerate.
  EXPECT_THROW(GadgetProtocol(lb::GadgetParams{1, 2}, hub_scheme()), hublab::InvalidArgument);
  EXPECT_THROW(GadgetProtocol(lb::GadgetParams{2, 1}, nullptr), hublab::InvalidArgument);
}

TEST(Gadget, ReprAndDigitsRoundTrip) {
  const GadgetProtocol protocol(lb::GadgetParams{3, 2}, hub_scheme());
  EXPECT_EQ(protocol.universe_size(), 16u);
  for (std::uint64_t a = 0; a < 16; ++a) {
    const lb::Coords x = protocol.digits(a);
    EXPECT_EQ(protocol.repr(x), a);
  }
}

TEST(Gadget, ReprIsAdditiveModM) {
  const GadgetProtocol protocol(lb::GadgetParams{3, 2}, hub_scheme());
  const std::uint64_t m = protocol.universe_size();
  for (std::uint64_t a = 0; a < m; a += 3) {
    for (std::uint64_t b = 0; b < m; b += 5) {
      lb::Coords sum = protocol.digits(a);
      const lb::Coords zb = protocol.digits(b);
      for (std::size_t k = 0; k < sum.size(); ++k) sum[k] += zb[k];
      EXPECT_EQ(protocol.repr(sum), (a + b) % m);
    }
  }
}

TEST(Gadget, RemovalMaskMatchesRepr) {
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, hub_scheme());
  // m = 2; midlevel layer has s = 4 vertices with repr values (y0 mod 2).
  const auto mask = protocol.removal_mask({1, 0});
  ASSERT_EQ(mask.size(), 4u);
  EXPECT_FALSE(mask[0]);  // repr 0 -> S[0] = 1 -> kept
  EXPECT_TRUE(mask[1]);   // repr 1 -> S[1] = 0 -> removed
  EXPECT_FALSE(mask[2]);
  EXPECT_TRUE(mask[3]);
}

TEST(Gadget, ExhaustiveTinyInstanceOnH) {
  // b=2, l=1: m = 2.  All 4 bitstrings x all (a,b) pairs.
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, hub_scheme());
  const std::uint64_t m = protocol.universe_size();
  ASSERT_EQ(m, 2u);
  for (std::uint64_t mask = 0; mask < (1u << m); ++mask) {
    const auto S = bits_of(mask, m);
    for (std::uint64_t a = 0; a < m; ++a) {
      for (std::uint64_t b = 0; b < m; ++b) {
        const ProtocolRun run = run_protocol(protocol, S, a, b);
        EXPECT_TRUE(run.correct()) << "mask=" << mask << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Gadget, ExhaustiveM4OnH) {
  // b=3, l=1: m = 4.  16 bitstrings x 16 (a,b) pairs.
  const GadgetProtocol protocol(lb::GadgetParams{3, 1}, hub_scheme());
  const std::uint64_t m = protocol.universe_size();
  ASSERT_EQ(m, 4u);
  for (std::uint64_t mask = 0; mask < (1u << m); ++mask) {
    const auto S = bits_of(mask, m);
    for (std::uint64_t a = 0; a < m; ++a) {
      for (std::uint64_t b = 0; b < m; ++b) {
        EXPECT_TRUE(run_protocol(protocol, S, a, b).correct());
      }
    }
  }
}

TEST(Gadget, RandomizedM16OnH) {
  // b=3, l=2: m = 16; layered graph with 5*64 vertices.
  const GadgetProtocol protocol(lb::GadgetParams{3, 2}, hub_scheme());
  const ProtocolStats stats = evaluate_protocol(protocol, 60, 7, 20);
  EXPECT_TRUE(stats.all_correct());
  EXPECT_GT(stats.max_alice_bits, 0u);
}

TEST(Gadget, ExhaustiveTinyInstanceOnDegree3) {
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, hub_scheme(), /*use_degree3=*/true);
  const std::uint64_t m = protocol.universe_size();
  for (std::uint64_t mask = 0; mask < (1u << m); ++mask) {
    const auto S = bits_of(mask, m);
    for (std::uint64_t a = 0; a < m; ++a) {
      for (std::uint64_t b = 0; b < m; ++b) {
        EXPECT_TRUE(run_protocol(protocol, S, a, b).correct());
      }
    }
  }
}

TEST(Gadget, DegreeThreeNameDiffers) {
  const GadgetProtocol on_h(lb::GadgetParams{2, 1}, hub_scheme(), false);
  const GadgetProtocol on_g(lb::GadgetParams{2, 1}, hub_scheme(), true);
  EXPECT_NE(on_h.name(), on_g.name());
}

TEST(Gadget, FlatSchemeAlsoWorks) {
  const auto flat = std::make_shared<FlatDistanceLabeling>();
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, flat);
  const ProtocolStats stats = evaluate_protocol(protocol, 30, 3, 10);
  EXPECT_TRUE(stats.all_correct());
}

TEST(Gadget, OutOfRangeIndexThrows) {
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, hub_scheme());
  EXPECT_THROW((void)protocol.alice({1, 1}, 5), hublab::InvalidArgument);
  EXPECT_THROW((void)protocol.bob({1, 1}, 2), hublab::InvalidArgument);
}

TEST(Gadget, WrongSLengthThrows) {
  const GadgetProtocol protocol(lb::GadgetParams{2, 1}, hub_scheme());
  EXPECT_THROW((void)protocol.alice({1, 1, 1}, 0), hublab::InvalidArgument);
}

TEST(EvaluateProtocol, CountsTrials) {
  const TrivialProtocol protocol(8);
  const ProtocolStats stats = evaluate_protocol(protocol, 25, 11);
  EXPECT_EQ(stats.trials, 25u);
  EXPECT_TRUE(stats.all_correct());
}

}  // namespace
}  // namespace hublab::si
