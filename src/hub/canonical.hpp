#pragma once

#include <cstddef>
#include <optional>

#include "algo/distance_matrix.hpp"
#include "hub/labeling.hpp"

/// \file canonical.hpp
/// Minimality analysis for hub labelings.
///
/// A labeling is *minimal* if deleting any single entry breaks the
/// shortest-path-cover property.  Canonical hierarchical labelings --
/// which is what PLL produces for its vertex order -- are minimal: the
/// entry (v, h) exists precisely because no earlier hub answers the pair
/// (v, h) at distance dist(v, h), so removing it breaks that very pair.
/// The pruning utilities here turn an arbitrary exact labeling into a
/// minimal one, which is how we measure how much slack non-canonical
/// constructions (Theorem 4.1 pipeline, distant-pair covers) carry.

namespace hublab {

/// True if removing entry `(v, hub)` keeps the labeling an exact cover.
/// The labeling must be exact for `truth` to begin with.
bool entry_is_redundant(const Graph& g, const HubLabeling& labeling, const DistanceMatrix& truth,
                        Vertex v, Vertex hub);

/// First redundant entry found, or nullopt if the labeling is minimal.
std::optional<std::pair<Vertex, Vertex>> find_redundant_entry(const Graph& g,
                                                              const HubLabeling& labeling,
                                                              const DistanceMatrix& truth);

/// True if no single entry can be removed (see file comment).
bool is_minimal(const Graph& g, const HubLabeling& labeling, const DistanceMatrix& truth);

/// Greedily remove redundant entries until minimal.  The result depends on
/// the removal order (highest-vertex entries are tried first); any result
/// is an exact minimal sub-labeling of the input.  O(n^2 * L) per pass
/// where L is the max label size -- intended for analysis at small n.
HubLabeling prune_to_minimal(const Graph& g, const HubLabeling& labeling,
                             const DistanceMatrix& truth);

}  // namespace hublab
