#include "util/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <string_view>

#include "util/bench_schema.hpp"
#include "util/table.hpp"

namespace hublab {

namespace {

/// Ordered name -> value view of one comparable section of a report.
using Series = std::map<std::string, double>;

/// Phase wall times summed by name ("phase.<name>.wall_s"), plus the
/// top-level total.  Summing makes repeated phase names (loops) well
/// defined on both sides.
Series phase_series(const JsonValue& doc) {
  Series out;
  const JsonValue* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_array()) return out;
  double total = 0.0;
  for (const JsonValue& p : phases->array_items) {
    if (!p.is_object()) continue;
    const JsonValue* name = p.find("name");
    const JsonValue* wall = p.find("wall_s");
    if (name == nullptr || wall == nullptr || !wall->is_number()) continue;
    out["phase." + name->string_value + ".wall_s"] += wall->number_value;
    const JsonValue* depth = p.find("depth");
    if (depth == nullptr || !depth->is_number() || depth->number_value == 0) {
      total += wall->number_value;
    }
  }
  if (!out.empty()) out["total.wall_s"] = total;
  return out;
}

Series metric_object_series(const JsonValue& doc, const char* member, const char* prefix) {
  Series out;
  const JsonValue* obj = doc.find(member);
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& [name, v] : obj->object_members) {
    if (v.is_number()) out[std::string(prefix) + "." + name] = v.number_value;
  }
  return out;
}

/// Flatten {"name": {"p50": ..}} distribution objects into
/// "<prefix>.<name>.<stat>" rows for the chosen stats.
Series distribution_series(const JsonValue& doc, const char* member, const char* prefix,
                           const std::vector<std::string>& stats) {
  Series out;
  const JsonValue* obj = doc.find(member);
  if (obj == nullptr || !obj->is_object()) return out;
  for (const auto& [name, dist] : obj->object_members) {
    if (!dist.is_object()) continue;
    for (const std::string& stat : stats) {
      const JsonValue* v = dist.find(stat);
      if (v != nullptr && v->is_number()) {
        out[std::string(prefix) + "." + name + "." + stat] = v->number_value;
      }
    }
  }
  return out;
}

/// Which direction of change is a regression for a section.
enum class Direction {
  kIncreaseBad,  ///< times, sizes, counts: growing past threshold gates
  kDecreaseBad,  ///< throughputs: shrinking past threshold gates
};

class Comparer {
 public:
  explicit Comparer(CompareReport& report) : report_(report) {}

  /// Append rows for one section.  `threshold_pct` < 0 disables gating for
  /// the whole section; `min_base` sets the floor below which a base value
  /// never gates.
  void section(const Series& base, const Series& next, double threshold_pct,
               double min_base = 0.0, Direction direction = Direction::kIncreaseBad) {
    for (const auto& [name, base_value] : base) {
      const auto it = next.find(name);
      if (it == next.end()) {
        // Renamed or dropped: informational (the schema validator already
        // guarantees the required members are present).
        report_.rows.push_back({name + " [dropped]", base_value, 0.0, 0.0, false, false});
        continue;
      }
      const double next_value = it->second;
      CompareRow row{name, base_value, next_value, 0.0, false, false};
      if (base_value != 0.0) row.delta_pct = 100.0 * (next_value - base_value) / base_value;
      row.gated = threshold_pct >= 0.0 && base_value >= min_base;
      if (row.gated && base_value >= 0.0) {
        if (direction == Direction::kIncreaseBad) {
          row.regressed = next_value > base_value * (1.0 + threshold_pct / 100.0);
        } else {
          // Symmetric bound: a throughput regresses when it drops by the
          // same factor an increase-bad metric is allowed to grow by.
          row.regressed = next_value < base_value / (1.0 + threshold_pct / 100.0);
        }
      }
      report_.rows.push_back(row);
    }
    for (const auto& [name, next_value] : next) {
      if (base.find(name) == base.end()) {
        report_.rows.push_back({name + " [new]", 0.0, next_value, 0.0, false, false});
      }
    }
  }

 private:
  CompareReport& report_;
};

/// True when some dotted segment of `name` carries the unit `suffix` as a
/// whole word: the segment equals it or ends with `_<suffix>`.  Names are
/// scanned right to left so per-instance suffixes ("serve.window.qps.3",
/// "pract.serve_peak_qps.batch4w") still classify; the underscore boundary
/// keeps e.g. "instructions" from reading as an `ns` unit.
bool any_segment_has_unit(const std::string& name, std::string_view suffix) {
  std::size_t end = name.size();
  while (end > 0) {
    const std::size_t dot = name.rfind('.', end - 1);
    const std::size_t begin = dot == std::string::npos ? 0 : dot + 1;
    const std::string_view segment(name.data() + begin, end - begin);
    if (segment == suffix ||
        (segment.size() > suffix.size() && segment.ends_with(suffix) &&
         segment[segment.size() - suffix.size() - 1] == '_')) {
      return true;
    }
    if (dot == std::string::npos) break;
    end = dot;
  }
  return false;
}

/// Split a gauge series into direction classes: segments ending `qps` are
/// throughputs (higher is better), segments ending `ns` are wall-clock
/// latencies (noisy, increase-bad at the wall threshold), the rest are
/// structural.
struct GaugeClasses {
  Series qps;
  Series ns;
  Series structural;
};

GaugeClasses classify_gauges(const Series& gauges) {
  GaugeClasses out;
  for (const auto& [name, value] : gauges) {
    if (any_segment_has_unit(name, "qps")) {
      out.qps[name] = value;
    } else if (any_segment_has_unit(name, "ns")) {
      out.ns[name] = value;
    } else {
      out.structural[name] = value;
    }
  }
  return out;
}

}  // namespace

std::size_t CompareReport::num_regressions() const {
  return static_cast<std::size_t>(
      std::count_if(rows.begin(), rows.end(), [](const CompareRow& r) { return r.regressed; }));
}

CompareReport compare_bench_json(const JsonValue& base, const JsonValue& next,
                                 const CompareOptions& options) {
  CompareReport report;
  for (const std::string& e : validate_bench_json(base)) report.errors.push_back("base: " + e);
  for (const std::string& e : validate_bench_json(next)) report.errors.push_back("new: " + e);
  if (!report.errors.empty()) return report;

  Comparer comparer(report);
  comparer.section(phase_series(base), phase_series(next), options.threshold_pct,
                   options.min_wall_s);
  comparer.section(metric_object_series(base, "counters", "counter"),
                   metric_object_series(next, "counters", "counter"),
                   options.structural_threshold_pct);
  // Gauges gate by direction class (see classify_gauges): throughput
  // gauges catch decreases, latency gauges catch increases — both at the
  // wall threshold — and everything else stays structural.
  const GaugeClasses base_gauges = classify_gauges(metric_object_series(base, "gauges", "gauge"));
  const GaugeClasses next_gauges = classify_gauges(metric_object_series(next, "gauges", "gauge"));
  comparer.section(base_gauges.qps, next_gauges.qps, options.threshold_pct, 0.0,
                   Direction::kDecreaseBad);
  comparer.section(base_gauges.ns, next_gauges.ns, options.threshold_pct);
  comparer.section(base_gauges.structural, next_gauges.structural,
                   options.structural_threshold_pct);
  comparer.section(
      distribution_series(base, "histograms", "histogram", {"p50", "p90", "p99", "sum"}),
      distribution_series(next, "histograms", "histogram", {"p50", "p90", "p99", "sum"}),
      options.structural_threshold_pct);
  comparer.section(
      distribution_series(base, "sketches", "sketch", {"p50", "p90", "p99", "p999"}),
      distribution_series(next, "sketches", "sketch", {"p50", "p90", "p99", "p999"}),
      options.threshold_pct);
  return report;
}

void write_compare_table(std::ostream& out, const CompareReport& report, bool all_rows) {
  for (const std::string& e : report.errors) out << "error: " << e << "\n";
  if (!report.errors.empty()) return;

  TextTable table({"metric", "base", "new", "delta%", "verdict"});
  for (const CompareRow& r : report.rows) {
    const bool changed = r.base != r.next;
    if (!all_rows && !changed && !r.regressed) continue;
    table.add_row({r.metric, fmt_double(r.base, 6), fmt_double(r.next, 6),
                   fmt_double(r.delta_pct, 2),
                   r.regressed ? "REGRESSED"
                   : !r.gated  ? "info"
                   : changed   ? "ok"
                               : "="});
  }
  table.print(out, "bench-compare");
  const std::size_t regressions = report.num_regressions();
  out << "bench-compare: " << report.rows.size() << " metrics, " << regressions
      << " regression(s)\n";
}

}  // namespace hublab
