/// \file bench_pll_orderings.cpp
/// Ablation: how the PLL vertex order drives label size (DESIGN.md calls
/// out the order as the key design choice; the paper's related work notes
/// that practical schemes hinge on choosing good hubs).
///
/// Families where the answer differs: scale-free (degree order shines),
/// grids/roads (betweenness shines, natural order is poor), random regular
/// (no signal -- everything is similar), the adversarial gadget (nothing
/// helps, by Theorem 2.1).

#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/order.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

namespace {

double avg_for_order(const Graph& g, const std::vector<Vertex>& order, const PllConfig& config) {
  return pruned_landmark_labeling(g, order, config).average_label_size();
}

bool same_labels(const HubLabeling& a, const HubLabeling& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto la = a.label(v);
    const auto lb = b.label(v);
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (la[i].hub != lb[i].hub || la[i].dist != lb[i].dist) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "pll_orderings",
                         "Ablation: PLL vertex orderings across graph families");

  TextTable table({"family", "n", "m", "degree", "betweenness~", "random", "natural",
                   "CH-derived"});

  struct Family {
    std::string name;
    Graph graph;
  };
  const std::size_t n = harness.smoke() ? 200 : 600;
  std::vector<Family> families;
  {
    Rng rng(1);
    families.push_back({"barabasi-albert k=3", gen::barabasi_albert(n, 3, rng)});
  }
  {
    Rng rng(2);
    families.push_back({"road-like 24x24", gen::road_like(24, 24, 0.2, 9, rng)});
  }
  {
    Rng rng(3);
    families.push_back({"random 3-regular", gen::random_regular(n, 3, rng)});
  }
  {
    Rng rng(4);
    families.push_back({"gnm m=2n", gen::connected_gnm(n, 2 * n, rng)});
  }
  families.push_back({"gadget H_{3,2}", lb::LayeredGadget(lb::GadgetParams{3, 2}).graph()});
  if (!harness.smoke()) families.push_back({"grid 25x25", gen::grid(25, 25)});

  for (const auto& f : families) {
    const Graph& g = f.graph;
    harness.add_graph(f.name, g.num_vertices(), g.num_edges());
    auto family_span = harness.phase("orderings-" + f.name);
    Rng bt_rng(7);
    const auto bt_order = betweenness_order(g, std::min<std::size_t>(64, g.num_vertices()), bt_rng);
    // Hub labels read off a contraction hierarchy (the CH ordering is its
    // own heuristic; Section 1.1's point that CH reduces to hub labeling).
    const double ch_avg = ContractionHierarchy(g).extract_hub_labeling().average_label_size();
    const PllConfig pll = harness.pll_config();
    table.add_row({f.name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kDegreeDescending), pll), 2),
                   fmt_double(avg_for_order(g, bt_order, pll), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kRandom, 11), pll), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kNatural), pll), 2),
                   fmt_double(ch_avg, 2)});
  }
  harness.print(table, "average |S(v)| by PLL order (all labelings exact by construction)");

  // Construction-kernel head-to-head: the scalar builder (bp_roots = 0)
  // against the bit-parallel kernel.  Two parts:
  //
  //  1. Byte-identity spot-check on every unweighted ablation family at
  //     the harness config (the kernel's contract; tests/pll_bp_test.cpp
  //     carries the full matrix).
  //  2. A timed head-to-head on a random 3-regular graph at construction
  //     scale — the regime the kernel exists for: the Theorem 4.1 / RS
  //     pipelines rebuild labelings on exactly this family, and at
  //     ablation-table sizes both builders finish in microseconds of
  //     fixed overhead.  bp_roots follows the n/8 guidance for
  //     weak-hierarchy graphs (docs/performance.md, "Choosing bp_roots").
  //
  // The summed BP construction time lands in the lower-is-better
  // pract.bp_construct_pct_of_scalar gauge, gated at <= 70% by
  // tools/check.sh.
  bool bp_ok = true;
  double scalar_s = 0.0;
  double bp_s = 0.0;
  std::size_t kernel_n = 0;
  std::size_t kernel_roots = 0;
  {
    auto span = harness.phase("scalar-vs-bp");
    for (const auto& f : families) {
      if (f.graph.is_weighted()) continue;
      const auto order = make_vertex_order(f.graph, VertexOrder::kDegreeDescending);
      const HubLabeling scalar_labels =
          pruned_landmark_labeling(f.graph, order, PllConfig{0, 1});
      const HubLabeling bp_labels =
          pruned_landmark_labeling(f.graph, order, harness.pll_config());
      bp_ok = bp_ok && same_labels(scalar_labels, bp_labels);
    }

    kernel_n = harness.smoke() ? 2000 : 3000;
    kernel_roots = kernel_n / 8;
    Rng rng(5);
    const Graph big = gen::random_regular(kernel_n, 3, rng);
    harness.add_graph("random 3-regular (kernel)", big.num_vertices(), big.num_edges());
    const auto order = make_vertex_order(big, VertexOrder::kDegreeDescending);
    const PllConfig scalar_config{0, 1};
    const PllConfig bp_config{kernel_roots, harness.threads()};
    const std::size_t reps = harness.smoke() ? 2 : 3;
    HubLabeling scalar_labels;
    HubLabeling bp_labels;
    for (std::size_t r = 0; r < reps; ++r) {
      Timer t;
      scalar_labels = pruned_landmark_labeling(big, order, scalar_config);
      scalar_s += t.elapsed_s();
      t.reset();
      bp_labels = pruned_landmark_labeling(big, order, bp_config);
      bp_s += t.elapsed_s();
    }
    bp_ok = bp_ok && same_labels(scalar_labels, bp_labels);
  }
  const auto pct = static_cast<std::int64_t>(
      std::llround(scalar_s > 0.0 ? 100.0 * bp_s / scalar_s : 100.0));
  metrics::registry().gauge("pract.bp_construct_pct_of_scalar").set(pct);
  std::printf("\nscalar-vs-bp: labels %s, bp construction at %lld%% of scalar "
              "(3-regular n=%zu, bp_roots=%zu, lower is better)\n",
              bp_ok ? "identical" : "DIFFER", static_cast<long long>(pct), kernel_n,
              kernel_roots);

  std::printf("\nNote the gadget row: per Theorem 2.1 no ordering can make its labels small.\n");
  return harness.finish("PLL ordering ablation", bp_ok);
}
