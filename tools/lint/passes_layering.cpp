// Layering pass: builds the full #include DAG and enforces the architecture
//
//   util -> graph -> {algo, hub, labeling, rs, matching, sumindex,
//   lowerbound} -> oracle -> bench / tools / tests
//
// Rules:
//   layer-upward  a quoted include from a lower-ranked module into a
//                 higher-ranked one (e.g. graph/ including oracle/);
//   layer-cycle   any cycle, at two granularities: the file-level include
//                 graph, and the directory-level graph restricted to the
//                 middle layer (whose peer edges are otherwise legal but
//                 must stay acyclic).
//
// The offending include chain is spelled out in the message.

#include <map>
#include <set>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

/// Architecture rank per module.  Unknown src/ subdirectories default to
/// the middle layer; add new directories here when the architecture grows.
int module_rank(const std::string& module) {
  if (module == "util") return 0;
  if (module == "graph") return 1;
  if (module == "algo" || module == "hub" || module == "labeling" || module == "rs" ||
      module == "matching" || module == "sumindex" || module == "lowerbound") {
    return 2;
  }
  if (module == "oracle") return 3;
  if (module == "bench" || module == "tools" || module == "tests") return 4;
  return 2;
}

/// Resolve a quoted include target to the repo-relative path of a scanned
/// file, or "" when it points outside the scanned tree.
std::string resolve_target(const std::string& target, const Options& opt,
                           const std::set<std::string>& known_rel) {
  const std::string from_src = "src/" + target;
  if (known_rel.count(from_src) != 0) return from_src;
  if (known_rel.count(target) != 0) return target;
  // Headers that exist on disk but are not scanned (e.g. generated files)
  // still participate in the rank check via their path shape.
  if (fs::exists(opt.root / "src" / target)) return from_src;
  if (fs::exists(opt.root / target)) return target;
  return {};
}

std::string module_of_rel(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  const std::string top = slash == std::string::npos ? rel : rel.substr(0, slash);
  if (top != "src") return top;
  const std::size_t second = rel.find('/', slash + 1);
  if (second == std::string::npos) return top;
  return rel.substr(slash + 1, second - slash - 1);
}

struct FileEdge {
  std::size_t to;
  std::size_t line;
};

/// Iterative 3-color DFS over the file-level include graph; reports each
/// cycle once, anchored at the include that closes it.
void report_file_cycles(const std::vector<SourceFile>& files,
                        const std::vector<std::vector<FileEdge>>& graph, Sink& sink) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);

  struct Frame {
    std::size_t node;
    std::size_t next_edge = 0;
  };
  for (std::size_t start = 0; start < files.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge >= graph[frame.node].size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const FileEdge edge = graph[frame.node][frame.next_edge++];
      if (color[edge.to] == Color::kWhite) {
        color[edge.to] = Color::kGray;
        stack.push_back(Frame{edge.to});
      } else if (color[edge.to] == Color::kGray) {
        // Reconstruct the chain from the on-stack portion.
        std::string chain;
        bool in_cycle = false;
        for (const Frame& fr : stack) {
          if (fr.node == edge.to) in_cycle = true;
          if (!in_cycle) continue;
          chain += files[fr.node].rel;
          chain += " -> ";
        }
        chain += files[edge.to].rel;
        sink.add(files[frame.node], edge.line, "layer-cycle",
                 "include cycle: " + chain + "; break the cycle by moving the shared "
                 "declarations down a layer");
      }
    }
  }
}

}  // namespace

void pass_layering(const std::vector<SourceFile>& files, const Options& opt, Sink& sink) {
  std::set<std::string> known_rel;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < files.size(); ++i) {
    known_rel.insert(files[i].rel);
    index_of[files[i].rel] = i;
  }

  std::vector<std::vector<FileEdge>> file_graph(files.size());
  // Directory edges inside the middle layer, with one representative
  // include per edge for the report.
  struct DirEdgeInfo {
    std::size_t file_index;
    std::size_t line;
  };
  std::map<std::pair<std::string, std::string>, DirEdgeInfo> mid_edges;

  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& f = files[i];
    const int from_rank = module_rank(f.module);
    for (const IncludeEdge& inc : f.includes) {
      if (!inc.quoted) continue;
      if (inc.target.find("..") != std::string::npos) continue;  // include-hygiene's problem
      const std::string target_rel = resolve_target(inc.target, opt, known_rel);
      if (target_rel.empty()) continue;  // unresolvable: include-hygiene flags it
      const std::string to_module = module_of_rel(target_rel);
      const int to_rank = module_rank(to_module);

      if (to_module != f.module && to_rank > from_rank) {
        sink.add(f, inc.line, "layer-upward",
                 "upward include chain " + f.rel + " -> " + target_rel + ": layer " +
                     f.module + " (rank " + std::to_string(from_rank) +
                     ") must not depend on layer " + to_module + " (rank " +
                     std::to_string(to_rank) + "); invert the dependency or move the " +
                     "shared code down");
      }
      if (to_module != f.module && to_rank == 2 && from_rank == 2) {
        mid_edges.emplace(std::make_pair(f.module, to_module), DirEdgeInfo{i, inc.line});
      }
      const auto it = index_of.find(target_rel);
      if (it != index_of.end()) file_graph[i].push_back(FileEdge{it->second, inc.line});
    }
  }

  report_file_cycles(files, file_graph, sink);

  // Directory-level cycle check over the middle layer's peer edges.
  std::map<std::string, std::vector<std::string>> dir_graph;
  for (const auto& [edge, info] : mid_edges) dir_graph[edge.first].push_back(edge.second);
  std::set<std::string> done;
  for (const auto& [start, _] : dir_graph) {
    if (done.count(start) != 0) continue;
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    // DFS with explicit path; the middle layer has 7 nodes, so simple
    // recursion-free enumeration is plenty.
    struct DirFrame {
      std::string node;
      std::size_t next = 0;
    };
    std::vector<DirFrame> stack{{start}};
    while (!stack.empty()) {
      DirFrame& frame = stack.back();
      const auto git = dir_graph.find(frame.node);
      const std::size_t fanout = git == dir_graph.end() ? 0 : git->second.size();
      if (frame.next >= fanout) {
        done.insert(frame.node);
        on_path.erase(frame.node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = git->second[frame.next++];
      if (on_path.count(next) != 0) {
        std::string chain;
        bool in_cycle = false;
        for (const std::string& node : path) {
          if (node == next) in_cycle = true;
          if (in_cycle) chain += node + " -> ";
        }
        chain += next;
        const DirEdgeInfo info = mid_edges.at({frame.node, next});
        sink.add(files[info.file_index], info.line, "layer-cycle",
                 "directory cycle in the middle layer: " + chain +
                     "; peer edges between algo/hub/labeling/rs/matching/sumindex/"
                     "lowerbound must stay acyclic");
        continue;
      }
      if (done.count(next) != 0) continue;
      on_path.insert(next);
      path.push_back(next);
      stack.push_back(DirFrame{next});
    }
  }
}

}  // namespace hublab::lint
