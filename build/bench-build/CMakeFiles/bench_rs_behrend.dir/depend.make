# Empty dependencies file for bench_rs_behrend.
# This may be replaced when dependencies are built.
