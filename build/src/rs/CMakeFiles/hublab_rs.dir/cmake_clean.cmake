file(REMOVE_RECURSE
  "CMakeFiles/hublab_rs.dir/behrend.cpp.o"
  "CMakeFiles/hublab_rs.dir/behrend.cpp.o.d"
  "CMakeFiles/hublab_rs.dir/rs_graph.cpp.o"
  "CMakeFiles/hublab_rs.dir/rs_graph.cpp.o.d"
  "libhublab_rs.a"
  "libhublab_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
