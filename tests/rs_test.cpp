#include <gtest/gtest.h>

#include "rs/behrend.hpp"
#include "rs/rs_graph.hpp"
#include "util/error.hpp"

namespace hublab::rs {
namespace {

TEST(ProgressionFree, AcceptsKnownFreeSets) {
  EXPECT_TRUE(is_progression_free({}));
  EXPECT_TRUE(is_progression_free({5}));
  EXPECT_TRUE(is_progression_free({0, 1}));
  EXPECT_TRUE(is_progression_free({0, 1, 3, 4}));
  EXPECT_TRUE(is_progression_free({1, 2, 4, 5, 10, 11, 13, 14}));  // base-3 pattern shifted
}

TEST(ProgressionFree, RejectsKnownAps) {
  EXPECT_FALSE(is_progression_free({0, 1, 2}));
  EXPECT_FALSE(is_progression_free({3, 7, 11}));
  EXPECT_FALSE(is_progression_free({0, 1, 3, 5}));  // 1,3,5
}

TEST(Base3Set, MatchesDigitCharacterization) {
  const auto set = base3_set(28);
  // Numbers < 28 with only digits 0,1 base 3: 0,1,3,4,9,10,12,13,27.
  const std::vector<std::uint64_t> expected{0, 1, 3, 4, 9, 10, 12, 13, 27};
  EXPECT_EQ(set, expected);
  EXPECT_TRUE(is_progression_free(set));
}

TEST(Base3Set, AlwaysProgressionFree) {
  for (std::uint64_t n : {10ULL, 50ULL, 200ULL, 1000ULL}) {
    EXPECT_TRUE(is_progression_free(base3_set(n))) << n;
  }
}

TEST(OptimalSet, KnownExtremalSizes) {
  // Largest 3-AP-free subsets of [0, N): classic r_3 values.
  EXPECT_EQ(optimal_set(1).size(), 1u);
  EXPECT_EQ(optimal_set(2).size(), 2u);
  EXPECT_EQ(optimal_set(3).size(), 2u);
  EXPECT_EQ(optimal_set(4).size(), 3u);   // {0,1,3}
  EXPECT_EQ(optimal_set(5).size(), 4u);   // {0,1,3,4}
  EXPECT_EQ(optimal_set(8).size(), 4u);
  EXPECT_EQ(optimal_set(9).size(), 5u);
  EXPECT_EQ(optimal_set(11).size(), 6u);
  EXPECT_EQ(optimal_set(13).size(), 7u);
  EXPECT_EQ(optimal_set(14).size(), 8u);
}

TEST(OptimalSet, OutputIsProgressionFree) {
  for (std::uint64_t n = 1; n <= 20; ++n) {
    EXPECT_TRUE(is_progression_free(optimal_set(n))) << n;
  }
}

TEST(OptimalSet, LargeNThrows) { EXPECT_THROW(optimal_set(100), InvalidArgument); }

TEST(Behrend, AlwaysProgressionFree) {
  for (std::uint64_t n : {5ULL, 20ULL, 100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    const auto set = behrend_set(n);
    EXPECT_TRUE(is_progression_free(set)) << n;
    for (auto v : set) EXPECT_LT(v, n);
  }
}

TEST(Behrend, ElementsSortedAndDistinct) {
  const auto set = behrend_set(5000);
  for (std::size_t i = 0; i + 1 < set.size(); ++i) EXPECT_LT(set[i], set[i + 1]);
}

TEST(Behrend, SubstantialDensityAtPracticalSizes) {
  // At N = 1e5, Behrend spheres give a couple hundred elements.  (The
  // asymptotic advantage over the N^{log3(2)} base-3 set only kicks in at
  // astronomically large N; dense_set picks the winner.)
  EXPECT_GT(behrend_set(100000).size(), 150u);
}

TEST(DenseSet, AtLeastAsGoodAsBothConstructions) {
  for (std::uint64_t n : {100ULL, 5000ULL, 100000ULL}) {
    const auto d = dense_set(n);
    EXPECT_TRUE(is_progression_free(d));
    EXPECT_GE(d.size(), behrend_set(n).size());
    EXPECT_GE(d.size(), base3_set(n).size());
  }
}

TEST(DenseSet, BeatsSqrtAtPracticalSizes) {
  EXPECT_GT(dense_set(100000).size(), 632u);  // 2 * sqrt(1e5)
}

TEST(Behrend, ReportsParameters) {
  BehrendParams params;
  const auto set = behrend_set_with_params(10000, params);
  EXPECT_EQ(params.set_size, set.size());
  EXPECT_GE(params.dimension, 1u);
  EXPECT_GE(params.digit_bound, 1u);
}

TEST(Behrend, TinyUniverses) {
  EXPECT_TRUE(behrend_set(0).empty());
  EXPECT_EQ(behrend_set(1).size(), 1u);
  EXPECT_EQ(behrend_set(2).size(), 2u);
}

TEST(RsGraph, StructureFromSmallSet) {
  // M = 5, A = {0, 1}: edges (x, M + x + a).
  const RsGraph rs = build_rs_graph(5, {0, 1});
  EXPECT_EQ(rs.graph.num_vertices(), 15u);
  EXPECT_EQ(rs.graph.num_edges(), 10u);  // M * |A|
  EXPECT_EQ(rs.set_size, 2u);
  EXPECT_TRUE(is_valid_induced_partition(rs.graph, rs.partition));
}

TEST(RsGraph, PartitionClassesBoundedByVertices) {
  const RsGraph rs = build_rs_graph(20, base3_set(20));
  EXPECT_LE(rs.partition.num_matchings(), rs.graph.num_vertices());
  EXPECT_TRUE(is_valid_induced_partition(rs.graph, rs.partition));
}

TEST(RsGraph, BehrendGraphValid) {
  const RsGraph rs = behrend_rs_graph(60);
  EXPECT_EQ(rs.graph.num_vertices(), 180u);
  EXPECT_EQ(rs.graph.num_edges(), 60u * rs.set_size);
  EXPECT_TRUE(is_valid_induced_partition(rs.graph, rs.partition));
}

TEST(RsGraph, RejectsNonApFreeSet) {
  EXPECT_THROW(build_rs_graph(10, {0, 1, 2}), hublab::InvalidArgument);
}

TEST(RsGraph, RejectsOutOfRangeElements) {
  EXPECT_THROW(build_rs_graph(5, {0, 7}), hublab::InvalidArgument);
}

TEST(RsGraph, RejectsZeroM) { EXPECT_THROW(build_rs_graph(0, {}), hublab::InvalidArgument); }

TEST(RsWitness, Measured) {
  const RsGraph rs = behrend_rs_graph(40);
  const RsWitness w = measure_rs_witness(rs.graph);
  EXPECT_EQ(w.num_vertices, rs.graph.num_vertices());
  EXPECT_EQ(w.num_edges, rs.graph.num_edges());
  EXPECT_GE(w.num_matchings, 1u);
  EXPECT_GT(w.density_ratio, 0.0);
}

}  // namespace
}  // namespace hublab::rs
