# Empty compiler generated dependencies file for hublab_sumindex.
# This may be replaced when dependencies are built.
