# Empty compiler generated dependencies file for lowerbound_gadget.
# This may be replaced when dependencies are built.
