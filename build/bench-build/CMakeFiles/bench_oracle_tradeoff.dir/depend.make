# Empty dependencies file for bench_oracle_tradeoff.
# This may be replaced when dependencies are built.
