#pragma once

/// \file thing.hpp
/// Fixture support header: exists so the layer-upward include resolves.

namespace fixture {}
