file(REMOVE_RECURSE
  "libhublab_util.a"
)
