#include "util/bench_schema.hpp"

namespace hublab {

namespace {

class Checker {
 public:
  explicit Checker(const JsonValue& doc) : doc_(doc) {}

  std::vector<std::string> run() {
    if (!doc_.is_object()) {
      fail("document: expected a JSON object");
      return errors_;
    }
    const JsonValue* version = require(doc_, "schema_version", "", JsonValue::Kind::kNumber);
    std::uint64_t version_value = kBenchSchemaVersion;
    if (version != nullptr) {
      version_value = static_cast<std::uint64_t>(version->number_value);
      if (version->number_value < static_cast<double>(kBenchSchemaMinVersion) ||
          version->number_value > static_cast<double>(kBenchSchemaVersion) ||
          version->number_value != static_cast<double>(version_value)) {
        fail("schema_version: expected an integer in [" +
             std::to_string(kBenchSchemaMinVersion) + ", " +
             std::to_string(kBenchSchemaVersion) + "]");
      }
    }
    const JsonValue* bench = require(doc_, "bench", "", JsonValue::Kind::kString);
    if (bench != nullptr && bench->string_value.empty()) fail("bench: must be non-empty");
    require(doc_, "git_rev", "", JsonValue::Kind::kString);
    require(doc_, "smoke", "", JsonValue::Kind::kBool);
    require(doc_, "ok", "", JsonValue::Kind::kBool);
    const JsonValue* reps = require(doc_, "repetitions", "", JsonValue::Kind::kNumber);
    if (reps != nullptr && reps->number_value < 1) fail("repetitions: must be >= 1");
    if (version_value >= 2) {
      const JsonValue* start = require(doc_, "start_unix_ms", "", JsonValue::Kind::kNumber);
      if (start != nullptr && start->number_value < 0) fail("start_unix_ms: negative");
      const JsonValue* rss = require(doc_, "peak_rss_bytes", "", JsonValue::Kind::kNumber);
      if (rss != nullptr && rss->number_value < 0) fail("peak_rss_bytes: negative");
    }
    // `threads` is an optional v2 addition (reports written before the
    // parallel layer lack it); when present it must be a number >= 1.
    const JsonValue* threads = doc_.find("threads");
    if (threads != nullptr) {
      if (!threads->is_number()) fail("threads: wrong type");
      else if (threads->number_value < 1) fail("threads: must be >= 1");
    }
    // `bp_roots` is likewise optional (the PLL construction kernel's
    // bit-parallel root count); when present it must be a number >= 0.
    const JsonValue* bp_roots = doc_.find("bp_roots");
    if (bp_roots != nullptr) {
      if (!bp_roots->is_number()) fail("bp_roots: wrong type");
      else if (bp_roots->number_value < 0) fail("bp_roots: must be >= 0");
    }
    check_graphs();
    check_phases();
    check_metric_object(doc_.find("counters"), "counters");
    check_metric_object(doc_.find("gauges"), "gauges");
    // v4 attribution members.  All optional — benches never emit them —
    // but whenever present (any version; unknown members were never
    // rejected) their shape must hold.
    check_windows(doc_.find("windows"));
    check_exemplar_array(doc_.find("slow_queries"), "slow_queries");
    check_exemplar_stores(doc_.find("exemplars"));
    check_heavy_hitters(doc_.find("heavy_hitters"));
    return errors_;
  }

 private:
  void fail(std::string message) { errors_.push_back(std::move(message)); }

  /// Member presence + kind check; returns the member when well-kinded.
  const JsonValue* require(const JsonValue& obj, const std::string& name,
                           const std::string& prefix, JsonValue::Kind kind) {
    const JsonValue* member = obj.find(name);
    const std::string path = prefix.empty() ? name : prefix + "." + name;
    if (member == nullptr) {
      fail(path + ": missing");
      return nullptr;
    }
    if (member->kind != kind) {
      fail(path + ": wrong type");
      return nullptr;
    }
    return member;
  }

  void check_graphs() {
    const JsonValue* graphs = require(doc_, "graphs", "", JsonValue::Kind::kArray);
    if (graphs == nullptr) return;
    for (std::size_t i = 0; i < graphs->array_items.size(); ++i) {
      const JsonValue& g = graphs->array_items[i];
      const std::string prefix = "graphs[" + std::to_string(i) + "]";
      if (!g.is_object()) {
        fail(prefix + ": expected an object");
        continue;
      }
      require(g, "family", prefix, JsonValue::Kind::kString);
      require(g, "n", prefix, JsonValue::Kind::kNumber);
      require(g, "m", prefix, JsonValue::Kind::kNumber);
    }
  }

  void check_phases() {
    const JsonValue* phases = require(doc_, "phases", "", JsonValue::Kind::kArray);
    if (phases == nullptr) return;
    for (std::size_t i = 0; i < phases->array_items.size(); ++i) {
      const JsonValue& p = phases->array_items[i];
      const std::string prefix = "phases[" + std::to_string(i) + "]";
      if (!p.is_object()) {
        fail(prefix + ": expected an object");
        continue;
      }
      require(p, "name", prefix, JsonValue::Kind::kString);
      const JsonValue* wall = require(p, "wall_s", prefix, JsonValue::Kind::kNumber);
      if (wall != nullptr && wall->number_value < 0) fail(prefix + ".wall_s: negative");
      const JsonValue* counters = p.find("counters");
      if (counters != nullptr) check_metric_object(counters, prefix + ".counters");
      // v3 additions, both optional per phase (and harmless in older
      // documents — unknown members were never rejected).
      const JsonValue* tid = p.find("tid");
      if (tid != nullptr) {
        if (!tid->is_number()) fail(prefix + ".tid: wrong type");
        else if (tid->number_value < 0) fail(prefix + ".tid: must be >= 0");
      }
      const JsonValue* hw = p.find("hw");
      if (hw != nullptr) check_hw(*hw, prefix + ".hw");
    }
  }

  /// Per-phase hardware-counter object (schema v3): cycles, instructions
  /// and ipc are required; the miss counters and rates are best-effort
  /// (the perf group opens them individually and a host may refuse some).
  void check_hw(const JsonValue& hw, const std::string& prefix) {
    if (!hw.is_object()) {
      fail(prefix + ": expected an object");
      return;
    }
    for (const char* name : {"cycles", "instructions", "ipc"}) {
      const JsonValue* member = require(hw, name, prefix, JsonValue::Kind::kNumber);
      if (member != nullptr && member->number_value < 0) {
        fail(prefix + "." + name + ": must be >= 0");
      }
    }
    for (const char* name :
         {"l1d_misses", "llc_misses", "branch_misses", "llc_miss_rate", "branch_miss_rate"}) {
      const JsonValue* member = hw.find(name);
      if (member == nullptr) continue;
      if (!member->is_number()) fail(prefix + "." + name + ": wrong type");
      else if (member->number_value < 0) fail(prefix + "." + name + ": must be >= 0");
    }
  }

  /// Numeric member >= 0, required within `obj`.
  void require_nonneg(const JsonValue& obj, const std::string& name, const std::string& prefix) {
    const JsonValue* member = require(obj, name, prefix, JsonValue::Kind::kNumber);
    if (member != nullptr && member->number_value < 0) fail(prefix + "." + name + ": negative");
  }

  /// Schema v4 `windows`: per-window throughput/latency series.
  void check_windows(const JsonValue* windows) {
    if (windows == nullptr) return;
    if (!windows->is_array()) {
      fail("windows: expected an array");
      return;
    }
    for (std::size_t i = 0; i < windows->array_items.size(); ++i) {
      const JsonValue& win = windows->array_items[i];
      const std::string prefix = "windows[" + std::to_string(i) + "]";
      if (!win.is_object()) {
        fail(prefix + ": expected an object");
        continue;
      }
      for (const char* name : {"index", "queries", "qps", "p50_ns", "p99_ns"}) {
        require_nonneg(win, name, prefix);
      }
    }
  }

  /// One captured exemplar (util/exemplar.hpp rendered to JSON).
  void check_exemplar(const JsonValue& e, const std::string& prefix) {
    if (!e.is_object()) {
      fail(prefix + ": expected an object");
      return;
    }
    for (const char* name : {"seq", "s", "t", "latency_ns", "scan_cost", "meeting_hub"}) {
      require_nonneg(e, name, prefix);
    }
  }

  /// Schema v4 `slow_queries`: worst-first array of exemplars.
  void check_exemplar_array(const JsonValue* arr, const std::string& prefix) {
    if (arr == nullptr) return;
    if (!arr->is_array()) {
      fail(prefix + ": expected an array");
      return;
    }
    for (std::size_t i = 0; i < arr->array_items.size(); ++i) {
      check_exemplar(arr->array_items[i], prefix + "[" + std::to_string(i) + "]");
    }
  }

  /// Schema v4 `exemplars`: stores keyed by name, each with bucketed
  /// witnesses.
  void check_exemplar_stores(const JsonValue* stores) {
    if (stores == nullptr) return;
    if (!stores->is_object()) {
      fail("exemplars: expected an object");
      return;
    }
    for (const auto& [store_name, store] : stores->object_members) {
      const std::string prefix = "exemplars." + store_name;
      if (!store.is_object()) {
        fail(prefix + ": expected an object");
        continue;
      }
      require_nonneg(store, "count", prefix);
      const JsonValue* buckets = require(store, "buckets", prefix, JsonValue::Kind::kArray);
      if (buckets == nullptr) continue;
      for (std::size_t i = 0; i < buckets->array_items.size(); ++i) {
        const JsonValue& bucket = buckets->array_items[i];
        const std::string bucket_prefix = prefix + ".buckets[" + std::to_string(i) + "]";
        if (!bucket.is_object()) {
          fail(bucket_prefix + ": expected an object");
          continue;
        }
        require_nonneg(bucket, "le", bucket_prefix);
        require_nonneg(bucket, "count", bucket_prefix);
        const JsonValue* witnesses =
            require(bucket, "exemplars", bucket_prefix, JsonValue::Kind::kArray);
        if (witnesses == nullptr) continue;
        for (std::size_t j = 0; j < witnesses->array_items.size(); ++j) {
          check_exemplar(witnesses->array_items[j],
                         bucket_prefix + ".exemplars[" + std::to_string(j) + "]");
        }
      }
    }
  }

  /// Schema v4 `heavy_hitters`: sketches keyed by name.
  void check_heavy_hitters(const JsonValue* sketches) {
    if (sketches == nullptr) return;
    if (!sketches->is_object()) {
      fail("heavy_hitters: expected an object");
      return;
    }
    for (const auto& [sketch_name, sketch] : sketches->object_members) {
      const std::string prefix = "heavy_hitters." + sketch_name;
      if (!sketch.is_object()) {
        fail(prefix + ": expected an object");
        continue;
      }
      require_nonneg(sketch, "total_weight", prefix);
      const JsonValue* entries = require(sketch, "entries", prefix, JsonValue::Kind::kArray);
      if (entries == nullptr) continue;
      for (std::size_t i = 0; i < entries->array_items.size(); ++i) {
        const JsonValue& entry = entries->array_items[i];
        const std::string entry_prefix = prefix + ".entries[" + std::to_string(i) + "]";
        if (!entry.is_object()) {
          fail(entry_prefix + ": expected an object");
          continue;
        }
        for (const char* name : {"key", "weight", "error"}) {
          require_nonneg(entry, name, entry_prefix);
        }
      }
    }
  }

  /// counters/gauges: object mapping metric names to numbers.
  void check_metric_object(const JsonValue* obj, const std::string& prefix) {
    if (obj == nullptr) {
      fail(prefix + ": missing");
      return;
    }
    if (!obj->is_object()) {
      fail(prefix + ": expected an object");
      return;
    }
    for (const auto& [name, v] : obj->object_members) {
      if (!v.is_number()) fail(prefix + "." + name + ": expected a number");
    }
  }

  const JsonValue& doc_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> validate_bench_json(const JsonValue& doc) {
  return Checker(doc).run();
}

}  // namespace hublab
