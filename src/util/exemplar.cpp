#include "util/exemplar.hpp"

#include <algorithm>
#include <bit>

#include "util/rng.hpp"

namespace hublab::metrics {

namespace {

std::size_t bucket_of(std::uint64_t latency_ns) noexcept {
  return static_cast<std::size_t>(std::bit_width(latency_ns));
}

/// Stateless replacement draw: hashing (seed, bucket, rank) keeps the
/// decision independent of activity in other buckets, so merges and
/// chunked capture replay identically.
std::uint64_t draw(std::uint64_t seed, std::size_t bucket, std::uint64_t rank) noexcept {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (bucket + 1)) ^ rank;
  return splitmix64(state);
}

bool seq_less(const Exemplar& a, const Exemplar& b) noexcept { return a.seq < b.seq; }

/// Worst-first: latency descending, ties broken by arrival order.
bool slower(const Exemplar& a, const Exemplar& b) noexcept {
  if (a.latency_ns != b.latency_ns) return a.latency_ns > b.latency_ns;
  return a.seq < b.seq;
}

}  // namespace

ExemplarReservoir::ExemplarReservoir(std::uint64_t seed, std::size_t per_bucket)
    : seed_(seed), per_bucket_(per_bucket == 0 ? 1 : per_bucket), buckets_(kNumBuckets) {}

void ExemplarReservoir::offer(const Exemplar& e) {
  Bucket& bucket = buckets_[bucket_of(e.latency_ns)];
  ++bucket.offered;
  ++total_offered_;
  if (bucket.kept.size() < per_bucket_) {
    bucket.kept.push_back(e);
    return;
  }
  // Algorithm R with the stateless draw: keep each offer with probability
  // per_bucket / offered, replacing a uniformly chosen slot.
  const std::uint64_t slot =
      draw(seed_, bucket_of(e.latency_ns), bucket.offered) % bucket.offered;
  if (slot < per_bucket_) bucket.kept[static_cast<std::size_t>(slot)] = e;
}

void ExemplarReservoir::merge(const ExemplarReservoir& other) {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const Bucket& theirs = other.buckets_[b];
    if (theirs.offered == 0) continue;
    std::vector<Exemplar> ordered = theirs.kept;
    std::sort(ordered.begin(), ordered.end(), seq_less);
    for (const Exemplar& e : ordered) offer(e);
    // Offers their reservoir already dropped still count toward totals.
    const std::uint64_t dropped = theirs.offered - theirs.kept.size();
    buckets_[b].offered += dropped;
    total_offered_ += dropped;
  }
}

std::vector<ExemplarBucket> ExemplarReservoir::snapshot() const {
  std::vector<ExemplarBucket> out;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const Bucket& bucket = buckets_[b];
    if (bucket.offered == 0) continue;
    ExemplarBucket snap;
    snap.le = b == 0 ? 0 : (b >= 64 ? ~0ULL : (1ULL << b) - 1);
    snap.count = bucket.offered;
    snap.exemplars = bucket.kept;
    std::sort(snap.exemplars.begin(), snap.exemplars.end(), seq_less);
    out.push_back(std::move(snap));
  }
  return out;
}

void ExemplarReservoir::reset() {
  total_offered_ = 0;
  buckets_.assign(kNumBuckets, Bucket{});
}

SlowQueryLog::SlowQueryLog(std::uint64_t threshold_ns, std::size_t capacity)
    : threshold_ns_(threshold_ns), capacity_(capacity == 0 ? 1 : capacity) {}

void SlowQueryLog::offer(const Exemplar& e) {
  if (threshold_ns_ == 0 || e.latency_ns < threshold_ns_) return;
  ++total_slow_;
  const auto pos = std::upper_bound(entries_.begin(), entries_.end(), e, slower);
  entries_.insert(pos, e);
  if (entries_.size() > capacity_) entries_.pop_back();
}

void SlowQueryLog::merge(const SlowQueryLog& other) {
  for (const Exemplar& e : other.entries_) {
    if (threshold_ns_ == 0 || e.latency_ns < threshold_ns_) continue;
    const auto pos = std::upper_bound(entries_.begin(), entries_.end(), e, slower);
    entries_.insert(pos, e);
    if (entries_.size() > capacity_) entries_.pop_back();
  }
  // Totals add directly: the loop above bypasses offer(), so nothing is
  // double-counted (assumes matching thresholds, as in the serve loop).
  total_slow_ += other.total_slow_;
}

void SlowQueryLog::reset() {
  total_slow_ = 0;
  entries_.clear();
}

}  // namespace hublab::metrics
