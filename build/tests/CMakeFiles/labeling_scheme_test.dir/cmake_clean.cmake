file(REMOVE_RECURSE
  "CMakeFiles/labeling_scheme_test.dir/labeling_scheme_test.cpp.o"
  "CMakeFiles/labeling_scheme_test.dir/labeling_scheme_test.cpp.o.d"
  "labeling_scheme_test"
  "labeling_scheme_test.pdb"
  "labeling_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeling_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
