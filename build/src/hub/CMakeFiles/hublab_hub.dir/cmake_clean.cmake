file(REMOVE_RECURSE
  "CMakeFiles/hublab_hub.dir/approx.cpp.o"
  "CMakeFiles/hublab_hub.dir/approx.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/canonical.cpp.o"
  "CMakeFiles/hublab_hub.dir/canonical.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/constructions.cpp.o"
  "CMakeFiles/hublab_hub.dir/constructions.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/highway.cpp.o"
  "CMakeFiles/hublab_hub.dir/highway.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/incremental.cpp.o"
  "CMakeFiles/hublab_hub.dir/incremental.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/labeling.cpp.o"
  "CMakeFiles/hublab_hub.dir/labeling.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/order.cpp.o"
  "CMakeFiles/hublab_hub.dir/order.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/pll.cpp.o"
  "CMakeFiles/hublab_hub.dir/pll.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/serialize.cpp.o"
  "CMakeFiles/hublab_hub.dir/serialize.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/structured.cpp.o"
  "CMakeFiles/hublab_hub.dir/structured.cpp.o.d"
  "CMakeFiles/hublab_hub.dir/upperbound.cpp.o"
  "CMakeFiles/hublab_hub.dir/upperbound.cpp.o.d"
  "libhublab_hub.a"
  "libhublab_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
