#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace hublab {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  HUBLAB_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  HUBLAB_ASSERT_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != 'x' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_numeric && looks_numeric(row[c]);
      out << ' ';
      if (right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  emit_row(header_, false);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void TextTable::print(std::ostream& out, const std::string& title) const {
  out << "\n== " << title << " ==\n" << to_string() << std::flush;
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

std::string fmt_u64(unsigned long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", value);
  return buf;
}

}  // namespace hublab
