#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/querystats.hpp"

/// \file shortest_paths.hpp
/// Single-source and point-to-point exact shortest paths.
///
/// All routines return 64-bit distances with kInfDist for unreachable
/// vertices.  `sssp` dispatches to the cheapest applicable algorithm:
/// BFS for unit weights, 0/1-BFS for {0,1} weights (the degree-reduction
/// gadget), Dijkstra otherwise.

namespace hublab {

/// Distances plus a shortest-path tree (parent pointers; source and
/// unreachable vertices have kInvalidVertex).
struct SsspResult {
  std::vector<Dist> dist;
  std::vector<Vertex> parent;
};

/// Breadth-first search; requires an unweighted graph.
SsspResult bfs(const Graph& g, Vertex source);

/// Deque BFS for graphs whose weights are all 0 or 1.
SsspResult zero_one_bfs(const Graph& g, Vertex source);

/// Dijkstra with a binary heap; any non-negative integer weights.
SsspResult dijkstra(const Graph& g, Vertex source);

/// Dispatch to bfs / zero_one_bfs / dijkstra based on edge weights.
SsspResult sssp(const Graph& g, Vertex source);

/// Distances only (saves the parent array; used by bulk APSP loops).
std::vector<Dist> sssp_distances(const Graph& g, Vertex source);

/// Point-to-point distance by bidirectional Dijkstra (also correct for
/// unit weights).  Returns kInfDist if disconnected.
Dist bidirectional_distance(const Graph& g, Vertex s, Vertex t);

/// Attribution variant of bidirectional_distance (`hublab explain`,
/// slow-query capture): same answer, plus the probe records per-direction
/// settled counts as the "label" sizes, total settled vertices as the scan
/// cost, bridge evaluations as matches, and the vertex the best path meets
/// at.  A separate entry point so the plain search stays untouched.
Dist bidirectional_distance_with_stats(const Graph& g, Vertex s, Vertex t,
                                       metrics::QueryStats& stats);

/// Recover the s->t path from a shortest-path tree returned for source s.
/// Empty vector if t is unreachable; otherwise starts with s, ends with t.
std::vector<Vertex> extract_path(const SsspResult& tree, Vertex source, Vertex target);

/// Weighted length of a path (consecutive vertices must be adjacent).
Dist path_length(const Graph& g, const std::vector<Vertex>& path);

/// Number of distinct shortest paths from `source` to every vertex,
/// saturating at 2^63 to avoid overflow.  `dist` must be the distance
/// array of `source` (from sssp).  Used to certify the *uniqueness*
/// claims of Lemma 2.2.
std::vector<std::uint64_t> count_shortest_paths(const Graph& g, Vertex source,
                                                const std::vector<Dist>& dist);

/// Eccentricity of v (max finite distance; kInfDist if g is disconnected).
Dist eccentricity(const Graph& g, Vertex v);

/// Exact diameter by n SSSP runs; kInfDist if disconnected.
Dist diameter_exact(const Graph& g);

/// Diameter lower bound by the 2-sweep heuristic (fast, exact on trees).
Dist diameter_two_sweep(const Graph& g, Vertex seed = 0);

}  // namespace hublab
