# Empty compiler generated dependencies file for hublab_lowerbound.
# This may be replaced when dependencies are built.
