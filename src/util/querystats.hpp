#pragma once

#include <cstdint>

#include "util/metrics.hpp"  // for HUBLAB_METRICS_ENABLED

/// \file querystats.hpp
/// Per-query attribution probe for the distance-query hot paths.
///
/// A `QueryStats` is stack-allocated by a caller that wants to know *why*
/// one query was slow — how many hub entries the merge scanned, how many
/// common hubs it actually compared, which hub the winning path met at —
/// and passed by reference into the `*_with_stats` variants of the query
/// kernels (hub/flat_labeling.hpp, hub/labeling.hpp, the CH two-pointer
/// intersection, bidirectional Dijkstra).  The plain `query()` entry points
/// are untouched, so the steady-state serving path pays nothing when
/// attribution is off.
///
/// Like the rest of util/metrics.hpp, building with `HUBLAB_METRICS=OFF`
/// swaps the recorder for an empty stub with the same API: probe calls
/// compile to nothing and the getters return zeros, so call sites need no
/// `#if`.
///
/// Layering: util sits below graph/, so fields are plain fixed-width
/// integers.  `kNoMeetingHub` equals graph's `kInvalidVertex`
/// (0xFFFFFFFF); callers convert at the boundary.

namespace hublab::metrics {

/// Sentinel meeting hub: no common hub / unreachable (== kInvalidVertex).
inline constexpr std::uint32_t kNoMeetingHub = 0xFFFFFFFFU;

#if HUBLAB_METRICS_ENABLED

class QueryStats {
 public:
  static constexpr bool kEnabled = true;

  /// Count hub entries (or settled vertices) the kernel looked at.
  void scanned(std::uint64_t n = 1) noexcept { hubs_scanned_ += n; }
  /// Count common hubs whose distance sum was evaluated.
  void matched(std::uint64_t n = 1) noexcept { hubs_matched_ += n; }
  /// Record the per-endpoint label (or search-space) sizes.
  void labels(std::uint64_t at_s, std::uint64_t at_t) noexcept {
    label_size_s_ = at_s;
    label_size_t_ = at_t;
  }
  /// Record the hub the best path meets at (kNoMeetingHub when none).
  void meeting(std::uint32_t hub) noexcept { meeting_hub_ = hub; }

  [[nodiscard]] std::uint64_t hubs_scanned() const noexcept { return hubs_scanned_; }
  [[nodiscard]] std::uint64_t hubs_matched() const noexcept { return hubs_matched_; }
  [[nodiscard]] std::uint64_t label_size_s() const noexcept { return label_size_s_; }
  [[nodiscard]] std::uint64_t label_size_t() const noexcept { return label_size_t_; }
  [[nodiscard]] std::uint32_t meeting_hub() const noexcept { return meeting_hub_; }

  /// Entries the merge stepped past without a sum evaluation.
  [[nodiscard]] std::uint64_t hubs_pruned() const noexcept {
    return hubs_scanned_ > hubs_matched_ ? hubs_scanned_ - hubs_matched_ : 0;
  }
  /// Scan-cost weight fed to the heavy-hitter sketch.
  [[nodiscard]] std::uint64_t scan_cost() const noexcept { return hubs_scanned_; }

  void reset() noexcept { *this = QueryStats{}; }

 private:
  std::uint64_t hubs_scanned_ = 0;
  std::uint64_t hubs_matched_ = 0;
  std::uint64_t label_size_s_ = 0;
  std::uint64_t label_size_t_ = 0;
  std::uint32_t meeting_hub_ = kNoMeetingHub;
};

#else  // HUBLAB_METRICS_ENABLED == 0: zero-cost stub, identical API.

class QueryStats {
 public:
  static constexpr bool kEnabled = false;

  void scanned(std::uint64_t = 1) noexcept {}
  void matched(std::uint64_t = 1) noexcept {}
  void labels(std::uint64_t, std::uint64_t) noexcept {}
  void meeting(std::uint32_t) noexcept {}

  [[nodiscard]] std::uint64_t hubs_scanned() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t hubs_matched() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t label_size_s() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t label_size_t() const noexcept { return 0; }
  [[nodiscard]] std::uint32_t meeting_hub() const noexcept { return kNoMeetingHub; }
  [[nodiscard]] std::uint64_t hubs_pruned() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t scan_cost() const noexcept { return 0; }

  void reset() noexcept {}
};

#endif  // HUBLAB_METRICS_ENABLED

}  // namespace hublab::metrics
