file(REMOVE_RECURSE
  "CMakeFiles/hublab_lowerbound.dir/certify.cpp.o"
  "CMakeFiles/hublab_lowerbound.dir/certify.cpp.o.d"
  "CMakeFiles/hublab_lowerbound.dir/counting.cpp.o"
  "CMakeFiles/hublab_lowerbound.dir/counting.cpp.o.d"
  "CMakeFiles/hublab_lowerbound.dir/gadget.cpp.o"
  "CMakeFiles/hublab_lowerbound.dir/gadget.cpp.o.d"
  "libhublab_lowerbound.a"
  "libhublab_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
