#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/graph.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/labeling.hpp"

/// \file oracle.hpp
/// Centralized exact distance oracles, exercising the space/time tradeoff
/// the paper's introduction discusses (S*T = ~n^2; hub labelings are one
/// point on the curve, and Theorem 1.1 precludes hub-labeling-based oracles
/// from beating n / 2^{O(sqrt(log n))} space at constant time on sparse
/// graphs).

namespace hublab {

/// Common interface: exact distance queries plus space accounting.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Dist distance(Vertex u, Vertex v) const = 0;
  /// Space consumed by the preprocessed structure, in bytes (the graph
  /// itself is not counted; all oracles share it).
  [[nodiscard]] virtual std::size_t space_bytes() const = 0;

  /// Attribution variant of distance() (`hublab explain`, serve-sim's
  /// slow-query capture): same answer, plus the probe records whatever the
  /// oracle's kernel can attribute — label sizes, entries scanned, common
  /// hubs compared, meeting hub (util/querystats.hpp).  Oracles without an
  /// instrumented kernel answer through plain distance() and leave the
  /// probe untouched.
  [[nodiscard]] virtual Dist distance_with_stats(Vertex u, Vertex v,
                                                 metrics::QueryStats& stats) const {
    (void)stats;
    return distance(u, v);
  }

  /// Batched queries: answer `pairs[i]` into `out[i]` (same size spans).
  /// The default loops over distance() (no meeting hubs); hub-label
  /// oracles override with their batch kernels, which also report the
  /// meeting hub and — for the flat oracle — dispatch to the SIMD
  /// intersection tiers (hub/simd_kernel.hpp).  Every override answers
  /// byte-identically to the per-query path.
  virtual void distance_batch(std::span<const std::pair<Vertex, Vertex>> pairs,
                              std::span<HubQueryResult> out) const {
    for (std::size_t i = 0; i < pairs.size() && i < out.size(); ++i) {
      out[i] = HubQueryResult{distance(pairs[i].first, pairs[i].second), kInvalidVertex};
    }
  }
};

/// Full APSP table: O(n^2) space, O(1) query.
class ApspOracle final : public DistanceOracle {
 public:
  explicit ApspOracle(const Graph& g) : matrix_(DistanceMatrix::compute(g)) {}
  [[nodiscard]] std::string name() const override { return "apsp-table"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override { return matrix_.at(u, v); }
  [[nodiscard]] std::size_t space_bytes() const override { return matrix_.memory_bytes(); }

 private:
  DistanceMatrix matrix_;
};

/// No preprocessing: every query runs a fresh unidirectional SSSP.
class SsspOracle final : public DistanceOracle {
 public:
  explicit SsspOracle(const Graph& g) : g_(&g) {}
  [[nodiscard]] std::string name() const override { return "on-demand-sssp"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  [[nodiscard]] std::size_t space_bytes() const override { return 0; }

 private:
  const Graph* g_;
};

/// No preprocessing; queries run bidirectional Dijkstra.
class BidirectionalOracle final : public DistanceOracle {
 public:
  explicit BidirectionalOracle(const Graph& g) : g_(&g) {}
  [[nodiscard]] std::string name() const override { return "bidirectional-dijkstra"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  [[nodiscard]] Dist distance_with_stats(Vertex u, Vertex v,
                                         metrics::QueryStats& stats) const override;
  [[nodiscard]] std::size_t space_bytes() const override { return 0; }

 private:
  const Graph* g_;
};

/// Hub-labeling oracle (the paper's subject): space = sum of label sizes,
/// query = sorted-merge of two labels.
class HubLabelOracle final : public DistanceOracle {
 public:
  HubLabelOracle(const Graph& g, HubLabeling labeling);
  [[nodiscard]] std::string name() const override { return "hub-labels"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override { return labels_.query(u, v); }
  [[nodiscard]] Dist distance_with_stats(Vertex u, Vertex v,
                                         metrics::QueryStats& stats) const override {
    return labels_.query_with_stats(u, v, stats).dist;
  }
  /// Per-pair sorted merges (the vector-label kernel has no SIMD tier),
  /// but with meeting hubs — answers match the flat oracle's batch path.
  void distance_batch(std::span<const std::pair<Vertex, Vertex>> pairs,
                      std::span<HubQueryResult> out) const override {
    for (std::size_t i = 0; i < pairs.size() && i < out.size(); ++i) {
      out[i] = labels_.query_with_hub(pairs[i].first, pairs[i].second);
    }
  }
  [[nodiscard]] std::size_t space_bytes() const override { return labels_.memory_bytes(); }
  [[nodiscard]] const HubLabeling& labeling() const { return labels_; }

 private:
  HubLabeling labels_;
};

/// Hub-labeling oracle over the flat SoA representation
/// (hub/flat_labeling.hpp): same answers as HubLabelOracle on the same
/// labeling, but the query merge runs over sentinel-terminated flat arrays
/// and space drops to the CSR cost.
class FlatHubLabelOracle final : public DistanceOracle {
 public:
  explicit FlatHubLabelOracle(const HubLabeling& labeling) : labels_(labeling) {}
  /// Adopt an already-flat labeling (the builder's single-pass finalize).
  explicit FlatHubLabelOracle(FlatHubLabeling labeling) : labels_(std::move(labeling)) {}
  [[nodiscard]] std::string name() const override { return "hub-labels-flat"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override { return labels_.query(u, v); }
  [[nodiscard]] Dist distance_with_stats(Vertex u, Vertex v,
                                         metrics::QueryStats& stats) const override {
    return labels_.query_with_stats(u, v, stats).dist;
  }
  /// The SIMD batched kernel: source-grouped, tier-dispatched
  /// (FlatHubLabeling::query_batch).
  void distance_batch(std::span<const std::pair<Vertex, Vertex>> pairs,
                      std::span<HubQueryResult> out) const override {
    labels_.query_batch(pairs, out);
  }
  [[nodiscard]] std::size_t space_bytes() const override { return labels_.memory_bytes(); }
  [[nodiscard]] const FlatHubLabeling& labeling() const { return labels_; }

 private:
  FlatHubLabeling labels_;
};

/// Landmark oracle: k landmark SSSP trees; queries return the best
/// triangle-inequality *upper bound* min_l d(u,l)+d(l,v).  Exact iff some
/// landmark hits a shortest path; included as the classic inexact
/// counterpoint (its error is measured by the benches, not assumed).
class LandmarkOracle final : public DistanceOracle {
 public:
  LandmarkOracle(const Graph& g, const std::vector<Vertex>& landmarks);
  [[nodiscard]] std::string name() const override { return "landmarks-upper-bound"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  [[nodiscard]] std::size_t space_bytes() const override {
    return rows_.size() * (rows_.empty() ? 0 : rows_.front().size()) * sizeof(Dist);
  }

 private:
  std::vector<std::vector<Dist>> rows_;  ///< one distance row per landmark
};

}  // namespace hublab
