#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

/// \file heavyhitter.hpp
/// Space-saving top-K sketch (Metwally–Agrawal–El Abbadi) over weighted
/// keys.
///
/// The serving layer feeds it meeting-hub IDs weighted by each query's
/// scan cost, answering "which hubs dominate query time" — the empirical
/// side of the label-size/query-cost tradeoff the hub-labeling lower
/// bounds are about, and the signal the ordering-quality work needs.
///
/// Guarantees of the classic algorithm, kept here: with capacity m and
/// total weight W, every key with true weight > W/m is retained, and each
/// retained entry reports `weight` as an overestimate with `error` bounding
/// the overcount (true weight in [weight - error, weight]).  Eviction ties
/// break toward the smallest key, and iteration is over a std::map, so
/// identical add sequences produce identical sketches.
///
/// Not internally synchronized; the registry wraps it in a lock and the
/// serve loop merges per-chunk instances in chunk order.

namespace hublab::metrics {

class SpaceSavingSketch {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t weight = 0;  ///< overestimate of the key's true weight
    std::uint64_t error = 0;   ///< max overcount inherited at eviction time
  };

  explicit SpaceSavingSketch(std::size_t capacity = 32);

  void add(std::uint64_t key, std::uint64_t weight = 1);

  /// Fold another sketch in: adds every retained entry's weight and carries
  /// its error bound.  Bounds stay conservative; totals stay exact.
  void merge(const SpaceSavingSketch& other);

  /// Heaviest entries first (ties: key ascending), at most `k` of them.
  [[nodiscard]] std::vector<Entry> top(std::size_t k = static_cast<std::size_t>(-1)) const;

  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all entries; capacity persists.
  void reset();

 private:
  std::size_t capacity_;
  std::uint64_t total_weight_ = 0;
  std::map<std::uint64_t, Entry> entries_;  // keyed for deterministic scans
};

}  // namespace hublab::metrics
