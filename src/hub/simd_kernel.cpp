// Three-tier dispatch for the batched query kernel (see simd_kernel.hpp):
// compile-time TU availability (HUBLAB_SIMD_HAVE_* definitions from
// src/hub/CMakeLists.txt) ∧ runtime cpuid probe, with the scalar sentinel
// merge as the always-available fallback and the HUBLAB_FORCE_SCALAR
// environment knob pinning dispatch to it.

#include "hub/simd_kernel.hpp"

#include <cstdlib>

namespace hublab::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool cpu_supports_avx2() noexcept { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_supports_avx512() noexcept {
  // The 16-lane kernel needs the AVX-512 foundation plus BW (the 32-bit
  // compare masks are foundation, but require VL-free 512-bit ops only).
  return __builtin_cpu_supports("avx512f") != 0;
}
#else
bool cpu_supports_avx2() noexcept { return false; }
bool cpu_supports_avx512() noexcept { return false; }
#endif

bool compiled_avx2() noexcept {
#if defined(HUBLAB_SIMD_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool compiled_avx512() noexcept {
#if defined(HUBLAB_SIMD_HAVE_AVX512)
  return true;
#else
  return false;
#endif
}

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "scalar";
}

Tier best_supported_tier() noexcept {
  if (compiled_avx512() && cpu_supports_avx512()) return Tier::kAvx512;
  if (compiled_avx2() && cpu_supports_avx2()) return Tier::kAvx2;
  return Tier::kScalar;
}

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  if (compiled_avx2() && cpu_supports_avx2()) tiers.push_back(Tier::kAvx2);
  if (compiled_avx512() && cpu_supports_avx512()) tiers.push_back(Tier::kAvx512);
  return tiers;
}

bool force_scalar() noexcept {
  // Read once, before any worker threads exist; nothing in the process
  // mutates the environment (same contract as HUBLAB_THREADS).
  static const bool forced = [] {
    const char* env = std::getenv("HUBLAB_FORCE_SCALAR");  // NOLINT(concurrency-mt-unsafe)
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return forced;
}

Tier active_tier() noexcept { return force_scalar() ? Tier::kScalar : best_supported_tier(); }

namespace detail {

HubQueryResult intersect_scalar(const Vertex* hubs_a, const Dist* dists_a, const Vertex* hubs_b,
                                const Dist* dists_b) {
  HubQueryResult best;
  for (;;) {
    const Vertex a = *hubs_a;
    const Vertex b = *hubs_b;
    if (a == b) {
      if (a == kInvalidVertex) break;  // both cursors hit their sentinels
      const Dist d = *dists_a + *dists_b;
      if (d < best.dist) {
        best.dist = d;
        best.meeting_hub = a;
      }
      ++hubs_a, ++dists_a;
      ++hubs_b, ++dists_b;
    } else if (a < b) {
      ++hubs_a, ++dists_a;
    } else {
      ++hubs_b, ++dists_b;
    }
  }
  return best;
}

HubQueryResult probe_scalar(const Vertex* hubs_t, const Dist* dists_t, std::size_t size_t_,
                            const std::uint32_t* stamp, const Dist* sdist,
                            std::uint32_t current) {
  HubQueryResult best;
  for (std::size_t i = 0; i < size_t_; ++i) {
    const Vertex h = hubs_t[i];
    if (stamp[h] == current) {
      const Dist d = sdist[h] + dists_t[i];
      // Lexicographic (dist, hub) fold: with the ascending target scan and
      // strict <, identical to the sentinel merge's update rule.
      if (d < best.dist || (d == best.dist && h < best.meeting_hub)) {
        best.dist = d;
        best.meeting_hub = h;
      }
    }
  }
  return best;
}

}  // namespace detail

namespace {

/// intersect_scalar behind the sized KernelFn signature (the sizes are
/// implied by the sentinels).
HubQueryResult intersect_scalar_sized(const Vertex* hubs_a, const Dist* dists_a,
                                      std::size_t /*size_a*/, const Vertex* hubs_b,
                                      const Dist* dists_b, std::size_t /*size_b*/) {
  return detail::intersect_scalar(hubs_a, dists_a, hubs_b, dists_b);
}

}  // namespace

KernelFn kernel_for(Tier tier) noexcept {
#if defined(HUBLAB_SIMD_HAVE_AVX512)
  if (tier == Tier::kAvx512 && cpu_supports_avx512()) return &detail::intersect_avx512;
#endif
#if defined(HUBLAB_SIMD_HAVE_AVX2)
  if ((tier == Tier::kAvx2 || tier == Tier::kAvx512) && cpu_supports_avx2()) {
    return &detail::intersect_avx2;
  }
#endif
  (void)tier;
  return &intersect_scalar_sized;
}

HubQueryResult intersect(Tier tier, const Vertex* hubs_a, const Dist* dists_a, std::size_t size_a,
                         const Vertex* hubs_b, const Dist* dists_b, std::size_t size_b) {
  return kernel_for(tier)(hubs_a, dists_a, size_a, hubs_b, dists_b, size_b);
}

ProbeFn probe_for(Tier tier) noexcept {
#if defined(HUBLAB_SIMD_HAVE_AVX512)
  if (tier == Tier::kAvx512 && cpu_supports_avx512()) return &detail::probe_avx512;
#endif
#if defined(HUBLAB_SIMD_HAVE_AVX2)
  if ((tier == Tier::kAvx2 || tier == Tier::kAvx512) && cpu_supports_avx2()) {
    return &detail::probe_avx2;
  }
#endif
  (void)tier;
  return &detail::probe_scalar;
}

}  // namespace hublab::simd
