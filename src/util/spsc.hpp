#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/assert.hpp"

/// \file spsc.hpp
/// Bounded single-producer/single-consumer ring queue — the handoff
/// between the open-loop load generator and one shard worker of the
/// concurrent query server (oracle/server.hpp).
///
/// Design (the classic Lamport ring with the two standard refinements):
///
///  - **Monotonic indices.**  `head_` (consumer) and `tail_` (producer)
///    count elements ever popped/pushed and are reduced modulo the
///    power-of-two capacity only when indexing `slots_`.  Full/empty are
///    then just `tail - head == capacity` / `tail == head` — no wasted
///    slot, no wraparound ambiguity.
///  - **Acquire/release pairing.**  The producer publishes a slot write
///    with a release store of `tail_`; the consumer observes it with an
///    acquire load (and symmetrically for `head_` when freeing a slot).
///    All atomic accesses spell their memory_order explicitly
///    (hublab_lint's atomic-order rule).
///  - **Cached counterpart indices.**  Each side keeps a plain-field
///    cache of the other side's index and refreshes it only when the
///    cached value says full/empty, so the steady-state push/pop touches
///    a single shared cache line instead of two.  The caches are
///    single-thread-private by the SPSC contract and need no atomics.
///  - **Cache-line padding.**  `head_` and `tail_` sit on their own
///    64-byte lines (alignas) so producer and consumer do not false-share.
///
/// The queue rejects instead of blocking: `try_push` / `try_pop` return
/// false on full/empty, and the serving layer turns a failed push into
/// shed-or-block admission control (`serve.rejected`).  Capacity is
/// rounded up to a power of two; `capacity()` reports the rounded value
/// the admission bound actually enforces.
///
/// Exactly one thread may push and one may pop at a time; `size_approx`
/// is safe from anywhere but only approximate while both sides move.

namespace hublab {

template <typename T>
class SpscRing {
 public:
  /// `min_capacity` >= 1 is rounded up to the next power of two.
  explicit SpscRing(std::size_t min_capacity) {
    HUBLAB_ASSERT(min_capacity > 0);
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  False when the ring is full (the admission-control
  /// signal); the element is untouched in that case.
  [[nodiscard]] bool try_push(const T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity()) return false;
    }
    slots_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) { return pop_bulk(&out, 1) == 1; }

  /// Consumer side: pop up to `max_items` elements into `out` in FIFO
  /// order and return how many were popped (0 when empty).  This is how
  /// a shard worker drains its ring in blocks for the batched kernel.
  [[nodiscard]] std::size_t pop_bulk(T* out, std::size_t max_items) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    const std::size_t available = cached_tail_ - head;
    const std::size_t count = available < max_items ? available : max_items;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Elements currently queued; exact only when producer and consumer are
  /// quiescent (observability: the `serve.queue_depth` sketch).
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  /// The enforced bound (requested capacity rounded up to a power of two).
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Producer-owned: its tail index plus a cache of the consumer's head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  /// Consumer-owned: its head index plus a cache of the producer's tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace hublab
