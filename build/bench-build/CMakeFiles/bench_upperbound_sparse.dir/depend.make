# Empty dependencies file for bench_upperbound_sparse.
# This may be replaced when dependencies are built.
