#pragma once

#include <cstddef>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

/// \file lint.hpp
/// The hublab multi-pass static analyzer (see docs/correctness.md, "The
/// hublab_lint analyzer").
///
/// The analyzer loads every .cpp/.hpp under src/, tools/, tests/ and bench/
/// of a repo root into a `SourceFile` model (raw text, comment/string-
/// stripped lines, extracted include edges), then runs six passes over the
/// shared model:
///
///   style        the line-level conventions inherited from the original
///                single-pass linter (rng-source, stdout-in-library, raw-io,
///                raw-thread, pragma-once, include-hygiene, file-doc,
///                assert-guard, self-contained, bench-harness);
///   layering     the architecture DAG: util -> graph -> {algo, hub,
///                labeling, rs, matching, sumindex, lowerbound} -> oracle ->
///                bench/tools/tests; no upward edges, no include cycles
///                (layer-upward, layer-cycle);
///   determinism  order-unstable idioms that would break the byte-identical
///                contract of docs/performance.md: range-for over
///                std::unordered_* containers, clock reads outside
///                util/timer.hpp + util/rng.hpp, floating-point accumulation
///                inside parallel_for/run_chunks bodies (unordered-iter,
///                wall-clock, float-reduce);
///   concurrency  every atomic operation names an explicit std::memory_order,
///                volatile is never used as a synchronization primitive, and
///                mutexes are locked through RAII guards in the declaring TU
///                (atomic-order, volatile-sync, mutex-guard);
///   drift        every metrics::counter/gauge/histogram/sketch name and
///                tracer span name used in src/ appears in the taxonomy
///                tables of docs/observability.md and vice versa
///                (metric-doc-drift, span-doc-drift);
///   simd         raw SIMD intrinsics (identifiers starting `_mm`, vector
///                types `__m128`/`__m256`/`__m512`) are confined to the
///                src/hub/simd_kernel* TUs of the batched query kernel
///                (simd).
///
/// Findings can be silenced inline with a `hublab-lint-allow(<rule>)`
/// comment on the offending line or the line above (the legacy
/// `hublab-lint: allow <rule>` spelling is still honoured), or grandfathered
/// through a committed baseline file (tools/lint_baseline.json), which this
/// repo keeps empty.  Reports are emitted as human-readable text, JSON, or
/// SARIF 2.1.0.

namespace hublab::lint {

namespace fs = std::filesystem;

/// One reported violation, repo-relative.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Rule metadata for the SARIF `rules` array and the documentation table.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Every implemented rule, in stable catalog order.
const std::vector<RuleInfo>& rule_catalog();

/// One `#include` directive found in a file.
struct IncludeEdge {
  std::string target;     ///< text between the quotes / angle brackets
  std::size_t line = 0;   ///< 1-based
  bool quoted = false;    ///< `"..."` (project) vs `<...>` (system)
};

/// The shared per-file model every pass consumes.
struct SourceFile {
  fs::path abs;                        ///< absolute path on disk
  std::string rel;                     ///< repo-relative, generic separators
  std::string module;                  ///< "util", "graph", ..., "tools", "tests", "bench"
  std::string text;                    ///< raw bytes
  std::vector<std::string> raw_lines;  ///< raw text split at '\n'
  std::vector<std::string> code;       ///< comment/string-stripped, same line count
  std::string flat;                    ///< stripped lines joined with '\n'
  std::vector<std::size_t> flat_line;  ///< flat offset -> 1-based line number
  std::vector<IncludeEdge> includes;
  bool is_header = false;
  bool in_src = false;
};

/// Collects findings, applying inline suppression markers as they arrive.
class Sink {
 public:
  /// Record a finding anchored in a scanned file; dropped (and counted) when
  /// an inline `hublab-lint-allow(rule)` marker covers the line.
  void add(const SourceFile& file, std::size_t line, const std::string& rule,
           std::string message);

  /// Record a finding in a file outside the scanned tree (e.g. the
  /// observability doc); inline suppression does not apply.
  void add_external(std::string file, std::size_t line, const std::string& rule,
                    std::string message);

  std::vector<Finding> findings;
  std::size_t suppressed = 0;
};

struct Options {
  fs::path root;
  std::string compiler = "c++";
  bool check_headers = true;        ///< run the -fsyntax-only self-containment probe
  bool use_baseline = true;         ///< apply ROOT/tools/lint_baseline.json when present
  fs::path baseline_path;           ///< explicit baseline file; empty = default
};

struct Report {
  std::vector<Finding> findings;    ///< surviving, sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;       ///< silenced by inline markers
  std::size_t baselined = 0;        ///< silenced by the baseline file
};

/// Run every pass over `opt.root` and return the surviving findings.
/// Throws std::runtime_error on configuration errors (missing src/,
/// unreadable or malformed baseline).
Report run_lint(const Options& opt);

// --- source model (source_model.cpp) ---------------------------------------

[[nodiscard]] bool is_ident_char(char c);

/// True when `text` contains `ident` as a whole identifier (not a substring
/// of a longer identifier).
[[nodiscard]] bool contains_identifier(const std::string& text, const std::string& ident);

/// The last identifier of a range-for range expression: `st.groups` ->
/// "groups", `adj_[u]` -> "adj_", `dist` -> "dist".  Empty when none.
[[nodiscard]] std::string last_identifier(const std::string& expr);

/// Load every .cpp/.hpp under root/{src,tools,tests,bench}, sorted by
/// relative path.  Directories named `lint_fixtures` are skipped so the
/// seeded violation trees under tests/ never count against the real repo.
[[nodiscard]] std::vector<SourceFile> load_tree(const fs::path& root);

/// True when line `line` (1-based) of `file` carries an inline suppression
/// marker for `rule` on itself or the line above.
[[nodiscard]] bool inline_suppressed(const SourceFile& file, std::size_t line,
                                     const std::string& rule);

// --- passes ----------------------------------------------------------------

void pass_style(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);
void pass_layering(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);
void pass_determinism(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);
void pass_concurrency(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);
void pass_drift(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);
void pass_simd(const std::vector<SourceFile>& files, const Options& opt, Sink& sink);

// --- baseline (baseline.cpp) -----------------------------------------------

/// Grandfathered findings: every (file, rule) pair listed in the baseline is
/// silenced (line numbers in the file are advisory, so line churn does not
/// invalidate entries).  This repo ships an empty baseline.
struct BaselineEntry {
  std::string file;
  std::string rule;
};

/// Parse tools/lint_baseline.json: {"version": 1, "findings": [{"file":
/// "...", "rule": "..."}]}.  Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<BaselineEntry> load_baseline(const fs::path& path);

// --- reporting (report.cpp) ------------------------------------------------

void write_text(std::ostream& out, const Report& report);
void write_json(std::ostream& out, const Report& report);
void write_sarif(std::ostream& out, const Report& report);

}  // namespace hublab::lint
