#include "rs/rs_graph.hpp"

#include <map>
#include <string>

#include "rs/behrend.hpp"
#include "util/error.hpp"

namespace hublab::rs {

RsGraph build_rs_graph(std::uint64_t M, const std::vector<std::uint64_t>& progression_free_set) {
  if (M == 0) throw InvalidArgument("build_rs_graph needs M >= 1");
  for (std::uint64_t a : progression_free_set) {
    if (a >= M) throw InvalidArgument("build_rs_graph: set element >= M");
  }
  if (!is_progression_free(progression_free_set)) {
    throw InvalidArgument("build_rs_graph: set is not 3-AP-free");
  }

  RsGraph out;
  out.M = M;
  out.set_size = progression_free_set.size();

  GraphBuilder b(3 * M);
  // Edge classes keyed by apex h = x + 2a.
  std::map<std::uint64_t, EdgeList> classes;
  for (std::uint64_t x = 0; x < M; ++x) {
    for (std::uint64_t a : progression_free_set) {
      const auto u = static_cast<Vertex>(x);
      const auto v = static_cast<Vertex>(M + x + a);
      b.add_edge(u, v);
      classes[x + 2 * a].emplace_back(u, v);
    }
  }
  out.graph = b.build();
  out.partition.matchings.reserve(classes.size());
  for (auto& [h, edges] : classes) out.partition.matchings.push_back(std::move(edges));
  return out;
}

RsGraph behrend_rs_graph(std::uint64_t M) { return build_rs_graph(M, behrend_set(M)); }

RsWitness measure_rs_witness(const Graph& g) {
  RsWitness w;
  w.num_vertices = g.num_vertices();
  w.num_edges = g.num_edges();
  const auto part = greedy_induced_partition(g);
  w.num_matchings = part.num_matchings();
  w.density_ratio = w.num_edges == 0
                        ? 0.0
                        : static_cast<double>(w.num_vertices) * static_cast<double>(w.num_vertices) /
                              static_cast<double>(w.num_edges);
  return w;
}

AuditReport audit_rs_graph(const RsGraph& rs) {
  AuditReport report;
  const std::string ctx = "rs";
  const std::uint64_t M = rs.M;

  if (!report.require(rs.graph.num_vertices() == 3 * M, ctx,
                      "graph has " + std::to_string(rs.graph.num_vertices()) +
                          " vertices, expected 3M = " + std::to_string(3 * M))) {
    return report;
  }
  report.require(rs.graph.num_edges() == M * rs.set_size, ctx,
                 "graph has " + std::to_string(rs.graph.num_edges()) +
                     " edges, expected M * |A| = " + std::to_string(M * rs.set_size));

  // Every edge crosses from X = [0, M) to Y = [M, 3M) with x + a = y - M,
  // so the Y endpoint is at most x + 2M - 1.
  for (Vertex u = 0; u < M; ++u) {
    for (const Arc& a : rs.graph.arcs(u)) {
      report.require(a.to >= M && a.to < u + 2 * M, ctx,
                     "edge {" + std::to_string(u) + ", " + std::to_string(a.to) +
                         "} leaves the bipartite X-Y pattern (M = " + std::to_string(M) + ")");
    }
  }
  for (auto v = static_cast<Vertex>(M); v < 3 * M; ++v) {
    for (const Arc& a : rs.graph.arcs(v)) {
      report.require(a.to < M, ctx,
                     "edge {" + std::to_string(v) + ", " + std::to_string(a.to) +
                         "} joins two Y-side vertices (M = " + std::to_string(M) + ")");
    }
  }

  report.require(rs.partition.num_matchings() <= rs.graph.num_vertices(), ctx,
                 "partition uses " + std::to_string(rs.partition.num_matchings()) +
                     " classes, Definition 1.3 allows at most n = " +
                     std::to_string(rs.graph.num_vertices()));
  for (std::size_t c = 0; c < rs.partition.matchings.size(); ++c) {
    report.require(!rs.partition.matchings[c].empty(), ctx,
                   "partition class #" + std::to_string(c) + " is empty");
  }
  report.require(is_valid_induced_partition(rs.graph, rs.partition), ctx,
                 "partition is not a valid edge partition into induced matchings");
  return report;
}

}  // namespace hublab::rs
