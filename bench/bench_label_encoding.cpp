/// \file bench_label_encoding.cpp
/// Ablation: bit-level encodings of distance labels (the paper measures
/// labelings in bits; Section 1.1 notes that careful encoding is what turns
/// O(n/log n) hubsets into O(n/log n * loglog n)-bit labels).
///
/// Compares, per vertex: hub labels under gamma/delta/fixed distance
/// codecs, the flat distance-row baseline, and the approximate-hubs +
/// 2-bit-corrections scheme ([AGHP16a] paradigm from the related work).

#include <cstdio>

#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "labeling/distance_labeling.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

namespace {

HubLabeling pll_factory(const Graph& g) { return pruned_landmark_labeling(g); }

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "label_encoding",
                         "Ablation: label encodings (bits per vertex)");

  struct Family {
    std::string name;
    Graph graph;
    bool unweighted;
  };
  const std::size_t n = harness.smoke() ? 150 : 400;
  std::vector<Family> families;
  {
    Rng rng(1);
    families.push_back({"gnm m=2n", gen::connected_gnm(n, 2 * n, rng), true});
  }
  {
    Rng rng(2);
    families.push_back({"road-like 20x20 (weights<=10)", gen::road_like(20, 20, 0.2, 10, rng),
                        false});
  }
  families.push_back({"gadget H_{3,2} (weights ~1.5k)",
                      lb::LayeredGadget(lb::GadgetParams{3, 2}).graph(), false});
  {
    Rng rng(3);
    families.push_back({"barabasi-albert k=2", gen::barabasi_albert(n, 2, rng), true});
  }

  TextTable table({"family", "avg hubs", "hub+gamma", "hub+delta", "hub+fixed32", "flat rows",
                   "approx+corr"});
  for (const auto& f : families) {
    const Graph& g = f.graph;
    harness.add_graph(f.name, g.num_vertices(), g.num_edges());
    auto family_span = harness.phase("encode-" + f.name);
    const HubLabeling pll = pruned_landmark_labeling(g);
    const double gamma =
        HubDistanceLabeling::encode_labeling(pll, DistCodec::kGamma).average_bits();
    const double delta =
        HubDistanceLabeling::encode_labeling(pll, DistCodec::kDelta).average_bits();
    const double fixed =
        HubDistanceLabeling::encode_labeling(pll, DistCodec::kFixed32).average_bits();
    const double flat = FlatDistanceLabeling().encode(g).average_bits();
    std::string corr = "-";
    if (f.unweighted) {
      corr = fmt_double(CorrectedApproxLabeling(&pll_factory).encode(g).average_bits(), 1);
    }
    table.add_row({f.name, fmt_double(pll.average_label_size(), 1), fmt_double(gamma, 1),
                   fmt_double(delta, 1), fmt_double(fixed, 1), fmt_double(flat, 1), corr});
  }
  harness.print(table,
                "average bits per label (all schemes decode exactly; approx+corr unweighted only)");

  return harness.finish("label encoding ablation", true);
}
