#include "labeling/distance_labeling.hpp"

#include <algorithm>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "hub/approx.hpp"
#include "hub/labeling.hpp"
#include "util/error.hpp"

namespace hublab {

std::size_t EncodedLabels::total_bits() const {
  std::size_t total = 0;
  for (const auto& l : labels) total += l.size_bits();
  return total;
}

double EncodedLabels::average_bits() const {
  if (labels.empty()) return 0.0;
  return static_cast<double>(total_bits()) / static_cast<double>(labels.size());
}

std::size_t EncodedLabels::max_bits() const {
  std::size_t best = 0;
  for (const auto& l : labels) best = std::max(best, l.size_bits());
  return best;
}

HubDistanceLabeling::HubDistanceLabeling(Factory factory, std::string name, DistCodec codec)
    : factory_(factory), name_(std::move(name)), codec_(codec) {
  HUBLAB_ASSERT(factory_ != nullptr);
}

namespace {

void put_dist(BitWriter& w, DistCodec codec, Dist d) {
  switch (codec) {
    case DistCodec::kGamma:
      w.put_gamma0(d);
      break;
    case DistCodec::kDelta:
      w.put_delta0(d);
      break;
    case DistCodec::kFixed32:
      HUBLAB_ASSERT_MSG(d <= 0xffffffffULL, "distance exceeds fixed-32 codec");
      w.put_bits(d, 32);
      break;
  }
}

Dist get_dist(BitReader& r, DistCodec codec) {
  switch (codec) {
    case DistCodec::kGamma:
      return r.get_gamma0();
    case DistCodec::kDelta:
      return r.get_delta0();
    case DistCodec::kFixed32:
      return r.get_bits(32);
  }
  throw ParseError("hub label: unknown codec");
}

}  // namespace

EncodedLabels HubDistanceLabeling::encode_labeling(const HubLabeling& labeling, DistCodec codec) {
  EncodedLabels out;
  out.labels.reserve(labeling.num_vertices());
  for (Vertex v = 0; v < labeling.num_vertices(); ++v) {
    BitWriter w;
    const auto label = labeling.label(v);
    w.put_bits(static_cast<std::uint64_t>(codec), 2);  // self-describing codec tag
    w.put_gamma0(label.size());
    Vertex prev_plus_one = 0;  // hubs are strictly ascending
    for (const HubEntry& e : label) {
      w.put_gamma(e.hub + 1 - prev_plus_one);  // gap >= 1
      prev_plus_one = e.hub + 1;
      put_dist(w, codec, e.dist);
    }
    out.labels.push_back(w.take());
  }
  return out;
}

EncodedLabels HubDistanceLabeling::encode(const Graph& g) const {
  const HubLabeling labeling = factory_(g);
  return encode_labeling(labeling, codec_);
}

namespace {

struct DecodedHubLabel {
  std::vector<HubEntry> entries;  // ascending hub ids
};

DecodedHubLabel parse_hub_label(const BitString& bits) {
  BitReader r(bits);
  DecodedHubLabel out;
  const std::uint64_t codec_tag = r.get_bits(2);
  if (codec_tag > 2) throw ParseError("hub label: unknown codec tag");
  const auto codec = static_cast<DistCodec>(codec_tag);
  const std::uint64_t count = r.get_gamma0();
  if (count > bits.size_bits()) throw ParseError("hub label: implausible entry count");
  out.entries.reserve(count);
  std::uint64_t hub_plus_one = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    hub_plus_one += r.get_gamma();
    const Dist dist = get_dist(r, codec);
    if (hub_plus_one - 1 > std::numeric_limits<Vertex>::max()) {
      throw ParseError("hub label: hub id overflow");
    }
    out.entries.push_back(HubEntry{static_cast<Vertex>(hub_plus_one - 1), dist});
  }
  return out;
}

}  // namespace

Dist HubDistanceLabeling::decode(const BitString& label_u, const BitString& label_v) const {
  const DecodedHubLabel a = parse_hub_label(label_u);
  const DecodedHubLabel b = parse_hub_label(label_v);
  Dist best = kInfDist;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].hub < b.entries[j].hub) {
      ++i;
    } else if (a.entries[i].hub > b.entries[j].hub) {
      ++j;
    } else {
      best = std::min(best, a.entries[i].dist + b.entries[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

EncodedLabels FlatDistanceLabeling::encode(const Graph& g) const {
  const auto n = static_cast<Vertex>(g.num_vertices());
  // Find the largest finite distance to size the fixed-width cells.
  Dist max_dist = 0;
  std::vector<std::vector<Dist>> rows(n);
  for (Vertex u = 0; u < n; ++u) {
    rows[u] = sssp_distances(g, u);
    for (Dist d : rows[u]) {
      if (d != kInfDist) max_dist = std::max(max_dist, d);
    }
  }
  const Dist inf_cell = max_dist + 1;  // sentinel for unreachable
  const unsigned width = ceil_log2(inf_cell + 1);

  EncodedLabels out;
  out.labels.reserve(n);
  for (Vertex u = 0; u < n; ++u) {
    BitWriter w;
    w.put_gamma(n + 1);         // n (gamma needs >= 1)
    w.put_gamma(width + 1);     // cell width
    w.put_gamma0(inf_cell);     // unreachable sentinel value
    w.put_bits(u, 32);          // own id, fixed 32 bits
    for (Vertex v = 0; v < n; ++v) {
      w.put_bits(rows[u][v] == kInfDist ? inf_cell : rows[u][v], width);
    }
    out.labels.push_back(w.take());
  }
  return out;
}

Dist FlatDistanceLabeling::decode(const BitString& label_u, const BitString& label_v) const {
  BitReader ru(label_u);
  const std::uint64_t n = ru.get_gamma() - 1;
  const auto width = static_cast<unsigned>(ru.get_gamma() - 1);
  if (width > 64) throw ParseError("flat label: bad width");
  const std::uint64_t inf_cell = ru.get_gamma0();
  [[maybe_unused]] const std::uint64_t id_u = ru.get_bits(32);

  BitReader rv(label_v);
  const std::uint64_t n2 = rv.get_gamma() - 1;
  const auto width2 = static_cast<unsigned>(rv.get_gamma() - 1);
  const std::uint64_t inf2 = rv.get_gamma0();
  if (n != n2 || width != width2 || inf_cell != inf2) {
    throw ParseError("flat label: header mismatch");
  }
  const std::uint64_t id_v = rv.get_bits(32);
  if (id_v >= n) throw ParseError("flat label: id out of range");

  // Seek into u's row.
  std::uint64_t cell = 0;
  for (std::uint64_t v = 0; v <= id_v; ++v) cell = ru.get_bits(width);
  return cell == inf_cell ? kInfDist : cell;
}

CorrectedApproxLabeling::CorrectedApproxLabeling(Factory exact_factory)
    : exact_factory_(exact_factory) {
  HUBLAB_ASSERT(exact_factory_ != nullptr);
}

namespace {

/// Write one approx-hub block: gamma0 count, then (gap, dist) gamma pairs.
void write_hub_block(BitWriter& w, std::span<const HubEntry> label) {
  w.put_gamma0(label.size());
  Vertex prev_plus_one = 0;
  for (const HubEntry& e : label) {
    w.put_gamma(e.hub + 1 - prev_plus_one);
    prev_plus_one = e.hub + 1;
    w.put_gamma0(e.dist);
  }
}

std::vector<HubEntry> read_hub_block(BitReader& r, std::size_t bit_budget) {
  const std::uint64_t count = r.get_gamma0();
  if (count > bit_budget) throw ParseError("approx label: implausible entry count");
  std::vector<HubEntry> entries;
  entries.reserve(count);
  std::uint64_t hub_plus_one = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    hub_plus_one += r.get_gamma();
    const std::uint64_t dist = r.get_gamma0();
    entries.push_back(HubEntry{static_cast<Vertex>(hub_plus_one - 1), dist});
  }
  return entries;
}

constexpr std::uint64_t kCorrUnreachable = 3;

}  // namespace

EncodedLabels CorrectedApproxLabeling::encode(const Graph& g) const {
  const auto n = static_cast<Vertex>(g.num_vertices());
  const HubLabeling exact = exact_factory_(g);
  const DistanceMatrix truth = DistanceMatrix::compute(g);
  const ApproxHubLabeling approx = approximate_labeling(g, exact, truth);

  EncodedLabels out;
  out.labels.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    BitWriter w;
    w.put_gamma(static_cast<std::uint64_t>(n) + 1);
    w.put_bits(v, 32);
    write_hub_block(w, approx.labels.label(v));
    // 2-bit corrections: est - actual in {0,1,2}; 3 marks unreachable.
    for (Vertex u = 0; u < n; ++u) {
      const Dist actual = truth.at(v, u);
      if (actual == kInfDist) {
        w.put_bits(kCorrUnreachable, 2);
        continue;
      }
      const Dist est = approx.estimate(v, u);
      HUBLAB_ASSERT_MSG(est != kInfDist && est >= actual && est - actual <= 2,
                        "additive guarantee violated");
      w.put_bits(est - actual, 2);
    }
    out.labels.push_back(w.take());
  }
  return out;
}

Dist CorrectedApproxLabeling::decode(const BitString& label_u, const BitString& label_v) const {
  BitReader ru(label_u);
  const std::uint64_t n = ru.get_gamma() - 1;
  [[maybe_unused]] const std::uint64_t id_u = ru.get_bits(32);
  const auto hubs_u = read_hub_block(ru, label_u.size_bits());

  BitReader rv(label_v);
  const std::uint64_t n2 = rv.get_gamma() - 1;
  if (n != n2) throw ParseError("approx label: header mismatch");
  const std::uint64_t id_v = rv.get_bits(32);
  if (id_v >= n) throw ParseError("approx label: id out of range");
  const auto hubs_v = read_hub_block(rv, label_v.size_bits());

  // Approximate estimate by hub merge.
  Dist est = kInfDist;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < hubs_u.size() && j < hubs_v.size()) {
    if (hubs_u[i].hub < hubs_v[j].hub) {
      ++i;
    } else if (hubs_u[i].hub > hubs_v[j].hub) {
      ++j;
    } else {
      est = std::min(est, hubs_u[i].dist + hubs_v[j].dist);
      ++i;
      ++j;
    }
  }

  // Correction from u's table at position id_v.
  std::uint64_t corr = kCorrUnreachable;
  for (std::uint64_t k = 0; k <= id_v; ++k) corr = ru.get_bits(2);
  if (corr == kCorrUnreachable) return kInfDist;
  if (est == kInfDist || est < corr) throw ParseError("approx label: inconsistent correction");
  return est - corr;
}

}  // namespace hublab
