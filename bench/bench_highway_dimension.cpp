/// \file bench_highway_dimension.cpp
/// Experiment for the Section 1.1 discussion of [ADF+16]: hub labeling is
/// cheap exactly where the *highway dimension* is low.
///
/// For each family, build the multiscale shortest-path-cover labeling and
/// report the per-scale greedy cover sizes and ball loads.  Road-like and
/// path-like networks show small loads (a handful of "highways" per
/// scale); random regular graphs (expander-like) and the paper's gadget
/// show large loads -- the same dichotomy Theorem 1.1 formalizes.

#include <cstdio>
#include <iostream>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/highway.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "util/table.hpp"

using namespace hublab;

int main() {
  std::printf("Experiment HWY: highway-dimension proxy across graph families\n");
  bool all_ok = true;

  struct Family {
    std::string name;
    Graph graph;
  };
  std::vector<Family> families;
  families.push_back({"grid 14x14 (road-like)", gen::grid(14, 14)});
  families.push_back({"path n=196", gen::path(196)});
  {
    Rng rng(1);
    families.push_back({"random 3-regular n=196", gen::random_regular(196, 3, rng)});
  }
  {
    Rng rng(2);
    families.push_back({"barabasi-albert n=196", gen::barabasi_albert(196, 2, rng)});
  }
  {
    // Degree-3 gadget of Theorem 2.1 (unweighted expansion of H_{1,1}).
    const lb::LayeredGadget h(lb::GadgetParams{1, 1});
    families.push_back({"gadget G_{1,1} (n=90)", lb::Degree3Gadget(h).graph()});
  }

  TextTable table({"family", "n", "h estimate", "scales", "sum covers", "avg label",
                   "PLL avg", "exact"});
  for (const auto& f : families) {
    const Graph& g = f.graph;
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    MultiscaleStats stats;
    const HubLabeling l = multiscale_cover_labeling(g, truth, &stats);
    const bool exact = !verify_labeling(g, l, truth).has_value();
    all_ok = all_ok && exact;
    std::size_t sum_covers = 0;
    for (const auto& s : stats.scales) sum_covers += s.cover_size;
    const HubLabeling pll = pruned_landmark_labeling(g);
    table.add_row({f.name, fmt_u64(g.num_vertices()),
                   fmt_u64(stats.highway_dimension_estimate()), fmt_u64(stats.scales.size()),
                   fmt_u64(sum_covers), fmt_double(l.average_label_size(), 2),
                   fmt_double(pll.average_label_size(), 2), exact ? "ok" : "FAIL"});
  }
  table.print(std::cout, "multiscale SP-cover labeling; 'h estimate' = max per-scale ball load");

  // Per-scale detail for the two extremes.
  for (const char* pick : {"grid 14x14 (road-like)", "random 3-regular n=196"}) {
    for (const auto& f : families) {
      if (f.name != pick) continue;
      const DistanceMatrix truth = DistanceMatrix::compute(f.graph);
      MultiscaleStats stats;
      (void)multiscale_cover_labeling(f.graph, truth, &stats);
      TextTable detail({"scale r", "covers d in", "|C_r|", "max ball load"});
      for (const auto& s : stats.scales) {
        detail.add_row({fmt_u64(s.r),
                        "(" + fmt_u64(s.r) + "," + fmt_u64(2 * s.r) + "]",
                        fmt_u64(s.cover_size), fmt_u64(s.max_ball_load)});
      }
      detail.print(std::cout, std::string("per-scale detail: ") + pick);
    }
  }

  std::printf("\nHWY experiment: %s\n", all_ok ? "OK" : "MISMATCH");
  return all_ok ? 0 : 1;
}
