/// \file bench_counting_lower.cpp
/// Experiment for the "Lower bounds" paragraph of Section 1.1: the classic
/// counting technique of [GPPR04], run as executable mathematics, next to
/// the shape this paper's technique targets.
///
/// For k terminals the counting family forces >= (k-1)/2 bits per terminal
/// label -- Theta(sqrt(n)) in the instance size.  The paper's contribution
/// (Theorems 1.1/1.6) is a *different* mechanism reaching n/2^{Theta(sqrt
/// (log n))}, exponentially above sqrt(n); the last two columns contrast
/// the curves at equal n.

#include <cmath>
#include <cstdio>

#include "algo/shortest_paths.hpp"
#include "bench/harness.hpp"
#include "lowerbound/counting.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(
      argc, argv, "counting_lower",
      "Experiment CNT: the counting lower bound vs the paper's target shape");

  TextTable table({"k", "n", "m (ones)", "family bits", "counting LB (bits/term)", "sqrt n",
                   "paper target n/2^sqrt(lg n)", "decode"});
  bool all_ok = true;
  Rng rng(1);

  auto sweep_span = harness.phase("counting-family-sweep");
  const std::vector<std::size_t> full_ks{4, 8, 16, 32, 64};
  const std::vector<std::size_t> smoke_ks{4, 8, 16};
  for (const std::size_t k : harness.smoke() ? smoke_ks : full_ks) {
    const lb::CountingFamily fam(k);
    std::vector<std::uint8_t> bits(fam.num_bits());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
    const Graph g = fam.instance(bits);
    harness.add_graph("counting-family", g.num_vertices(), g.num_edges());

    // Verify the decoding on this member.  The per-terminal SSSP decodes
    // are independent, so they split over the harness's worker threads;
    // the AND-reduction over per-chunk flags is order-insensitive, so the
    // verdict is identical for every thread count.
    const auto chunks = par::static_chunks(0, k, harness.threads());
    std::vector<std::uint8_t> chunk_ok(chunks.size(), 1);
    par::run_chunks(chunks, harness.threads(), [&](const par::ChunkRange& chunk) {
      for (std::size_t i = chunk.begin; i < chunk.end && chunk_ok[chunk.index] != 0; ++i) {
        const auto dist = sssp_distances(g, fam.terminal(i));
        for (std::size_t j = i + 1; j < k; ++j) {
          if (lb::CountingFamily::decode_bit(dist[fam.terminal(j)]) !=
              static_cast<int>(bits[fam.bit_index(i, j)])) {
            chunk_ok[chunk.index] = 0;
            break;
          }
        }
      }
    });
    bool decode_ok = true;
    for (const std::uint8_t ok : chunk_ok) decode_ok = decode_ok && ok != 0;
    all_ok = all_ok && decode_ok;

    const double n = static_cast<double>(g.num_vertices());
    const double paper_target = n / std::pow(2.0, std::sqrt(std::log2(n)));
    table.add_row({fmt_u64(k), fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_u64(fam.num_bits()), fmt_double(fam.implied_avg_terminal_bits(), 1),
                   fmt_double(std::sqrt(n), 1), fmt_double(paper_target, 1),
                   decode_ok ? "ok" : "FAIL"});
  }
  sweep_span.end();
  harness.print(table,
      "counting technique: LB tracks sqrt(n); the paper's hub-label bound lives at "
      "n/2^{Theta(sqrt(log n))} -- exponentially higher (last column)");

  return harness.finish("CNT experiment", all_ok);
}
