file(REMOVE_RECURSE
  "../bench/bench_dynamic_updates"
  "../bench/bench_dynamic_updates.pdb"
  "CMakeFiles/bench_dynamic_updates.dir/bench_dynamic_updates.cpp.o"
  "CMakeFiles/bench_dynamic_updates.dir/bench_dynamic_updates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
