#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/constructions.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(HubLabeling, EmptyQueryIsInfinite) {
  HubLabeling l(2);
  l.finalize();
  EXPECT_EQ(l.query(0, 1), kInfDist);
  EXPECT_EQ(l.query_with_hub(0, 1).meeting_hub, kInvalidVertex);
}

TEST(HubLabeling, HandBuiltQuery) {
  // Path 0-1-2, hub = vertex 1 for everyone.
  HubLabeling l(3);
  l.add_hub(0, 1, 1);
  l.add_hub(1, 1, 0);
  l.add_hub(2, 1, 1);
  l.finalize();
  EXPECT_EQ(l.query(0, 2), 2u);
  EXPECT_EQ(l.query(0, 1), 1u);
  EXPECT_EQ(l.query_with_hub(0, 2).meeting_hub, 1u);
}

TEST(HubLabeling, PicksMinimumOverCommonHubs) {
  HubLabeling l(2);
  l.add_hub(0, 0, 0);
  l.add_hub(0, 1, 9);
  l.add_hub(1, 0, 4);
  l.add_hub(1, 1, 0);
  l.finalize();
  EXPECT_EQ(l.query(0, 1), 4u);
  EXPECT_EQ(l.query_with_hub(0, 1).meeting_hub, 0u);
}

TEST(HubLabeling, FinalizeDedupsKeepingMin) {
  HubLabeling l(1);
  l.add_hub(0, 5, 10);
  l.add_hub(0, 5, 3);
  l.add_hub(0, 5, 7);
  l.finalize();
  ASSERT_EQ(l.label(0).size(), 1u);
  EXPECT_EQ(l.label(0)[0].dist, 3u);
}

TEST(HubLabeling, FinalizeSortsByHub) {
  HubLabeling l(1);
  l.add_hub(0, 9, 1);
  l.add_hub(0, 2, 1);
  l.add_hub(0, 5, 1);
  l.finalize();
  const auto lab = l.label(0);
  ASSERT_EQ(lab.size(), 3u);
  EXPECT_EQ(lab[0].hub, 2u);
  EXPECT_EQ(lab[2].hub, 9u);
}

TEST(HubLabeling, HasHub) {
  HubLabeling l(2);
  l.add_hub(0, 3, 1);
  l.finalize();
  EXPECT_TRUE(l.has_hub(0, 3));
  EXPECT_FALSE(l.has_hub(0, 2));
  EXPECT_FALSE(l.has_hub(1, 3));
}

TEST(HubLabeling, Statistics) {
  HubLabeling l(3);
  l.add_hub(0, 0, 0);
  l.add_hub(1, 0, 1);
  l.add_hub(1, 1, 0);
  l.finalize();
  EXPECT_EQ(l.total_hubs(), 3u);
  EXPECT_DOUBLE_EQ(l.average_label_size(), 1.0);
  EXPECT_EQ(l.max_label_size(), 2u);
  // payload counts entries only; the heap footprint additionally carries the
  // per-vertex vector headers and any capacity slack.
  EXPECT_EQ(l.payload_bytes(), 3 * sizeof(HubEntry));
  EXPECT_GE(l.memory_bytes(),
            l.payload_bytes() + 3 * sizeof(std::vector<HubEntry>));
}

TEST(VerifyLabeling, AcceptsCorrectCover) {
  const Graph g = gen::grid(3, 3);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling full = full_labeling(g, truth);
  EXPECT_FALSE(verify_labeling(g, full, truth).has_value());
}

TEST(VerifyLabeling, DetectsWrongDistance) {
  const Graph g = gen::path(3);
  const auto truth = DistanceMatrix::compute(g);
  // An undercutting wrong distance (true dist(0,2) is 2, stored 1).
  HubLabeling bad(3);
  bad.add_hub(0, 2, 1);  // true distance is 2
  bad.add_hub(2, 2, 0);
  bad.add_hub(0, 0, 0);
  bad.add_hub(1, 0, 1);
  bad.add_hub(1, 1, 0);
  bad.add_hub(2, 1, 1);
  bad.finalize();
  const auto defect = verify_labeling(g, bad, truth);
  ASSERT_TRUE(defect.has_value());
  EXPECT_EQ(defect->kind, LabelingDefect::Kind::kWrongDistance);
}

TEST(VerifyLabeling, DetectsUncoveredPair) {
  const Graph g = gen::path(3);
  const auto truth = DistanceMatrix::compute(g);
  HubLabeling l(3);
  for (Vertex v = 0; v < 3; ++v) l.add_hub(v, v, 0);  // only self-hubs
  l.finalize();
  const auto defect = verify_labeling(g, l, truth);
  ASSERT_TRUE(defect.has_value());
  EXPECT_EQ(defect->kind, LabelingDefect::Kind::kUncoveredPair);
}

TEST(VerifyLabelingSampled, AcceptsCorrectCover) {
  Rng rng(1);
  const Graph g = gen::connected_gnm(60, 120, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  EXPECT_FALSE(verify_labeling_sampled(g, pll, 200, 7).has_value());
}

TEST(VerifyLabelingSampled, CatchesPlantedDefect) {
  const Graph g = gen::path(10);
  HubLabeling l(10);
  for (Vertex v = 0; v < 10; ++v) l.add_hub(v, v, 0);
  l.finalize();
  // With many samples the sampled verifier must find an uncovered pair.
  EXPECT_TRUE(verify_labeling_sampled(g, l, 500, 3).has_value());
}

TEST(MonotoneClosure, StillACover) {
  Rng rng(2);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  EXPECT_FALSE(verify_labeling(g, closed, truth).has_value());
}

TEST(MonotoneClosure, ContainsOriginalHubs) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(30, 60, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  for (Vertex v = 0; v < 30; ++v) {
    for (const HubEntry& e : pll.label(v)) {
      EXPECT_TRUE(closed.has_hub(v, e.hub));
    }
  }
  EXPECT_GE(closed.total_hubs(), pll.total_hubs());
}

TEST(MonotoneClosure, BoundedByDiameterFactor) {
  const Graph g = gen::grid(5, 5);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  const Dist diam = diameter_exact(g);
  EXPECT_LE(closed.total_hubs(), (diam + 1) * pll.total_hubs() + g.num_vertices());
}

TEST(MonotoneClosure, ClosedUnderTreeAncestors) {
  // On a path with natural PLL order, the closure of any label must contain
  // every vertex between v and its furthest hub.
  const Graph g = gen::path(8);
  const HubLabeling pll = pruned_landmark_labeling(g, VertexOrder::kNatural);
  const HubLabeling closed = monotone_closure(g, pll);
  for (Vertex v = 0; v < 8; ++v) {
    for (const HubEntry& e : closed.label(v)) {
      // Every vertex strictly between v and e.hub on the path is a hub too.
      const Vertex lo = std::min(v, e.hub);
      const Vertex hi = std::max(v, e.hub);
      for (Vertex x = lo; x <= hi; ++x) EXPECT_TRUE(closed.has_hub(v, x));
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts: every parallel entry point must return
// bit-identical results for threads = 1 and threads = 4 (the contract of
// util/parallel.hpp / docs/performance.md).
// ---------------------------------------------------------------------------

void expect_same_labels(const HubLabeling& a, const HubLabeling& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto la = a.label(v);
    const auto lb = b.label(v);
    ASSERT_EQ(la.size(), lb.size()) << "label size differs at v=" << v;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i], lb[i]) << "entry " << i << " of v=" << v;
    }
  }
}

TEST(ParallelDeterminism, DistanceMatrixMatchesSequential) {
  Rng rng(11);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const auto seq = DistanceMatrix::compute(g, 1);
  const auto par4 = DistanceMatrix::compute(g, 4);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(seq.at(u, v), par4.at(u, v)) << "dist(" << u << "," << v << ")";
    }
  }
}

TEST(ParallelDeterminism, VerifyLabelingFindsSameFirstDefect) {
  const Graph g = gen::path(9);
  const auto truth = DistanceMatrix::compute(g);
  // Two planted wrong distances; the reported defect must be the first in
  // sequential scan order regardless of which chunk scans it.
  HubLabeling bad(9);
  for (Vertex v = 0; v < 9; ++v) bad.add_hub(v, 0, v);  // hub 0 covers all
  bad.add_hub(3, 8, 1);  // true dist(3,8) = 5
  bad.add_hub(7, 8, 9);  // true dist(7,8) = 1
  bad.finalize();
  const auto seq = verify_labeling(g, bad, truth, 1);
  const auto par4 = verify_labeling(g, bad, truth, 4);
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(par4.has_value());
  EXPECT_EQ(seq->kind, par4->kind);
  EXPECT_EQ(seq->u, par4->u);
  EXPECT_EQ(seq->v, par4->v);
  EXPECT_EQ(seq->stored, par4->stored);
  EXPECT_EQ(seq->actual, par4->actual);
}

TEST(ParallelDeterminism, VerifyLabelingAcceptsCoverAtAnyThreadCount) {
  Rng rng(12);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling pll = pruned_landmark_labeling(g);
  EXPECT_FALSE(verify_labeling(g, pll, truth, 1).has_value());
  EXPECT_FALSE(verify_labeling(g, pll, truth, 4).has_value());
}

TEST(ParallelDeterminism, SampledVerifierDrawsSameSamples) {
  const Graph g = gen::path(12);
  HubLabeling l(12);
  for (Vertex v = 0; v < 12; ++v) l.add_hub(v, v, 0);  // only self-hubs
  l.finalize();
  const auto seq = verify_labeling_sampled(g, l, 300, 5, 1);
  const auto par4 = verify_labeling_sampled(g, l, 300, 5, 4);
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(par4.has_value());
  EXPECT_EQ(seq->u, par4->u);
  EXPECT_EQ(seq->v, par4->v);
  EXPECT_EQ(static_cast<int>(seq->kind), static_cast<int>(par4->kind));
}

TEST(ParallelDeterminism, MonotoneClosureIsThreadCountInvariant) {
  Rng rng(13);
  const Graph g = gen::connected_gnm(45, 90, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling seq = monotone_closure(g, pll, 1);
  const HubLabeling par4 = monotone_closure(g, pll, 4);
  expect_same_labels(seq, par4);
}

TEST(ParallelDeterminism, AuditReportIsThreadCountInvariant) {
  Rng rng(14);
  const Graph g = gen::connected_gnm(40, 80, rng);
  // A corrupted labeling so the report actually carries issues.
  HubLabeling bad = pruned_landmark_labeling(g);
  HubLabeling twisted(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const HubEntry& e : bad.label(v)) {
      twisted.add_hub(v, e.hub, e.dist + (v % 3 == 0 ? 1 : 0));
    }
  }
  twisted.finalize();
  const AuditReport seq = twisted.audit(g, 24, 9, 1);
  const AuditReport par4 = twisted.audit(g, 24, 9, 4);
  EXPECT_EQ(seq.ok(), par4.ok());
  EXPECT_EQ(seq.num_issues(), par4.num_issues());
  EXPECT_EQ(seq.to_string(), par4.to_string());

  // And a clean labeling audits clean at every thread count.
  const AuditReport clean1 = bad.audit(g, 24, 9, 1);
  const AuditReport clean4 = bad.audit(g, 24, 9, 4);
  EXPECT_TRUE(clean1.ok());
  EXPECT_EQ(clean1.to_string(), clean4.to_string());
}

}  // namespace
}  // namespace hublab
