#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "labeling/distance_labeling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

void expect_scheme_exact(const DistanceLabelingScheme& scheme, const Graph& g) {
  const EncodedLabels labels = scheme.encode(g);
  ASSERT_EQ(labels.num_vertices(), g.num_vertices());
  const auto truth = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(scheme.decode(labels.labels[u], labels.labels[v]), truth.at(u, v))
          << scheme.name() << " " << u << "-" << v;
    }
  }
}

TEST(HubScheme, ExactOnGrid) {
  const HubDistanceLabeling scheme(&pll_natural);
  expect_scheme_exact(scheme, gen::grid(4, 5));
}

TEST(HubScheme, ExactOnWeighted) {
  Rng rng(1);
  const HubDistanceLabeling scheme(&pll_natural);
  expect_scheme_exact(scheme, gen::road_like(4, 4, 0.2, 7, rng));
}

TEST(HubScheme, ExactOnDisconnected) {
  Rng rng(2);
  const HubDistanceLabeling scheme(&pll_natural);
  expect_scheme_exact(scheme, gen::gnm(30, 25, rng));
}

TEST(HubScheme, NameAndDeterminism) {
  const HubDistanceLabeling scheme(&pll_natural, "pll-natural");
  EXPECT_EQ(scheme.name(), "pll-natural");
  const Graph g = gen::grid(3, 3);
  const EncodedLabels a = scheme.encode(g);
  const EncodedLabels b = scheme.encode(g);
  for (Vertex v = 0; v < 9; ++v) EXPECT_EQ(a.labels[v], b.labels[v]);
}

TEST(HubScheme, EncodeExistingLabelingMatchesQueries) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const EncodedLabels enc = HubDistanceLabeling::encode_labeling(pll);
  const HubDistanceLabeling scheme(&pll_natural);
  for (Vertex u = 0; u < 40; u += 3) {
    for (Vertex v = 0; v < 40; v += 5) {
      EXPECT_EQ(scheme.decode(enc.labels[u], enc.labels[v]), pll.query(u, v));
    }
  }
}

TEST(HubScheme, BitSizeMatchesEntryCodes) {
  // Single-vertex labeling with known entries: size must equal the sum of
  // the gamma code lengths.
  HubLabeling l(1);
  l.add_hub(0, 4, 7);
  l.finalize();
  const EncodedLabels enc = HubDistanceLabeling::encode_labeling(l);
  const std::size_t expected = 2                          // codec tag
                               + gamma_code_length(1 + 1)  // count 1 -> gamma0
                               + gamma_code_length(5)      // hub gap 4+1
                               + gamma_code_length(8);     // dist 7 -> gamma0
  EXPECT_EQ(enc.labels[0].size_bits(), expected);
}

TEST(HubScheme, MalformedLabelThrows) {
  const HubDistanceLabeling scheme(&pll_natural);
  BitWriter w;
  w.put_bits(0, 2);    // gamma codec tag
  w.put_gamma0(1000);  // claims 1000 entries, then nothing
  const BitString bogus = w.take();
  BitWriter w2;
  w2.put_bits(0, 2);
  w2.put_gamma0(0);
  const BitString empty_label = w2.take();
  EXPECT_THROW((void)scheme.decode(bogus, empty_label), ParseError);
}

TEST(HubScheme, BadCodecTagThrows) {
  const HubDistanceLabeling scheme(&pll_natural);
  BitWriter w;
  w.put_bits(3, 2);  // reserved codec tag
  w.put_gamma0(0);
  const BitString bad = w.take();
  EXPECT_THROW((void)scheme.decode(bad, bad), ParseError);
}

TEST(HubScheme, EmptyLabelsDecodeToInfinity) {
  const HubDistanceLabeling scheme(&pll_natural);
  BitWriter w;
  w.put_bits(0, 2);
  w.put_gamma0(0);
  const BitString a = w.take();
  BitWriter w2;
  w2.put_bits(0, 2);
  w2.put_gamma0(0);
  const BitString b = w2.take();
  EXPECT_EQ(scheme.decode(a, b), kInfDist);
}

class CodecSweep : public ::testing::TestWithParam<DistCodec> {};

TEST_P(CodecSweep, RoundTripsOnWeightedGraph) {
  Rng rng(9);
  Graph g = gen::connected_gnm(40, 80, rng);
  g = gen::randomize_weights(g, 1000, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const EncodedLabels enc = HubDistanceLabeling::encode_labeling(pll, GetParam());
  const HubDistanceLabeling scheme(&pll_natural);
  for (Vertex u = 0; u < 40; u += 3) {
    for (Vertex v = 0; v < 40; v += 2) {
      EXPECT_EQ(scheme.decode(enc.labels[u], enc.labels[v]), pll.query(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecSweep,
                         ::testing::Values(DistCodec::kGamma, DistCodec::kDelta,
                                           DistCodec::kFixed32));

TEST(Codecs, DeltaWinsOnLargeDistances) {
  // The weighted gadget has distances ~ 2lA; delta codes beat gamma there.
  HubLabeling l(1);
  l.add_hub(0, 0, 1 << 20);
  l.finalize();
  const auto gamma = HubDistanceLabeling::encode_labeling(l, DistCodec::kGamma);
  const auto delta = HubDistanceLabeling::encode_labeling(l, DistCodec::kDelta);
  EXPECT_LT(delta.total_bits(), gamma.total_bits());
}

TEST(Codecs, GammaWinsOnSmallDistances) {
  HubLabeling l(1);
  for (Vertex h = 0; h < 20; ++h) l.add_hub(0, h, h % 4);
  l.finalize();
  const auto gamma = HubDistanceLabeling::encode_labeling(l, DistCodec::kGamma);
  const auto fixed = HubDistanceLabeling::encode_labeling(l, DistCodec::kFixed32);
  EXPECT_LT(gamma.total_bits(), fixed.total_bits());
}

TEST(CorrectedApprox, ExactOnUnweightedGraphs) {
  const CorrectedApproxLabeling scheme(&pll_natural);
  expect_scheme_exact(scheme, gen::grid(4, 4));
  Rng rng(10);
  expect_scheme_exact(scheme, gen::connected_gnm(35, 70, rng));
}

TEST(CorrectedApprox, ExactOnDisconnected) {
  Rng rng(11);
  const CorrectedApproxLabeling scheme(&pll_natural);
  expect_scheme_exact(scheme, gen::gnm(30, 25, rng));
}

TEST(CorrectedApprox, BeatsFlatRowsOnBoundedDiameter) {
  // Flat rows pay ceil(log2 diam) per vertex; corrections pay 2.
  Rng rng(12);
  const Graph g = gen::barabasi_albert(120, 3, rng);  // tiny diameter, n cells
  const CorrectedApproxLabeling corrected(&pll_natural);
  const FlatDistanceLabeling flat;
  EXPECT_LT(corrected.encode(g).total_bits(), flat.encode(g).total_bits());
}

TEST(CorrectedApprox, HeaderMismatchThrows) {
  const CorrectedApproxLabeling scheme(&pll_natural);
  const EncodedLabels a = scheme.encode(gen::grid(3, 3));
  const EncodedLabels b = scheme.encode(gen::grid(4, 4));
  EXPECT_THROW((void)scheme.decode(a.labels[0], b.labels[0]), ParseError);
}

TEST(FlatScheme, ExactOnGrid) {
  const FlatDistanceLabeling scheme;
  expect_scheme_exact(scheme, gen::grid(4, 4));
}

TEST(FlatScheme, ExactOnWeightedAndDisconnected) {
  Rng rng(4);
  const FlatDistanceLabeling scheme;
  Graph g = gen::gnm(25, 30, rng);
  g = gen::randomize_weights(g, 9, rng);
  expect_scheme_exact(scheme, g);
}

TEST(FlatScheme, HeaderMismatchThrows) {
  const FlatDistanceLabeling scheme;
  const EncodedLabels a = scheme.encode(gen::grid(3, 3));
  const EncodedLabels b = scheme.encode(gen::grid(4, 4));
  EXPECT_THROW((void)scheme.decode(a.labels[0], b.labels[0]), ParseError);
}

TEST(FlatScheme, LabelSizeIsLinear) {
  const FlatDistanceLabeling scheme;
  const Graph g = gen::path(50);
  const EncodedLabels enc = scheme.encode(g);
  // Each label: header + 50 cells of ceil(log2(50)) = 6 bits.
  EXPECT_GE(enc.average_bits(), 300.0);
  EXPECT_LE(enc.average_bits(), 400.0);
}

TEST(Schemes, HubBeatsFlatOnStars) {
  // On a star PLL labels are tiny, flat labels are linear in n.
  const Graph g = gen::star(60);
  const HubDistanceLabeling hub(&pll_natural);
  const FlatDistanceLabeling flat;
  EXPECT_LT(hub.encode(g).total_bits(), flat.encode(g).total_bits());
}

TEST(EncodedLabels, Accounting) {
  EncodedLabels e;
  BitWriter w1;
  w1.put_bits(0, 10);
  e.labels.push_back(w1.take());
  BitWriter w2;
  w2.put_bits(0, 30);
  e.labels.push_back(w2.take());
  EXPECT_EQ(e.total_bits(), 40u);
  EXPECT_DOUBLE_EQ(e.average_bits(), 20.0);
  EXPECT_EQ(e.max_bits(), 30u);
}

}  // namespace
}  // namespace hublab
