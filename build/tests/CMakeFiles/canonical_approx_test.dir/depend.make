# Empty dependencies file for canonical_approx_test.
# This may be replaced when dependencies are built.
