file(REMOVE_RECURSE
  "libhublab_algo.a"
)
