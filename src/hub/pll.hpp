#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/labeling.hpp"

/// \file pll.hpp
/// Pruned Landmark Labeling (Akiba, Iwata, Yoshida; SIGMOD'13): the standard
/// practical hub-labeling construction.  Processes vertices in a fixed order
/// of decreasing importance; the k-th vertex runs a BFS/Dijkstra pruned at
/// every vertex already answered correctly by the first k-1 hubs.
///
/// PLL yields a *canonical* labeling for its order: it is exact (a
/// shortest-path cover) and minimal in the sense that no entry can be
/// dropped without breaking exactness for that order.  The paper's related
/// work positions hub labeling practice around exactly this family of
/// constructions, so PLL is the measurement yardstick in our benches.
///
/// Construction kernel (docs/performance.md, "Construction kernel"): the
/// builder keeps its in-progress labels in a chunked arena (no per-push
/// heap allocation) and, on unweighted graphs, accelerates the pruning
/// test with AIY-style *bit-parallel root tables* for the first
/// `PllConfig::bp_roots` roots of the order — exact distances plus 64-bit
/// neighborhood masks, consulted before any label scan.  Only prunes the
/// scalar builder would also take are taken, so the produced labels are
/// byte-identical to the scalar path (`bp_roots = 0`) and invariant in
/// `PllConfig::threads`.

namespace hublab {

enum class VertexOrder {
  kDegreeDescending,  ///< classic heuristic; good on scale-free graphs
  kNatural,           ///< vertex id order (deterministic baseline)
  kRandom,            ///< uniform random order (seeded)
};

/// Compute the processing order.
std::vector<Vertex> make_vertex_order(const Graph& g, VertexOrder order, std::uint64_t seed = 0);

/// Default number of bit-parallel roots (see PllConfig::bp_roots).
inline constexpr std::size_t kPllDefaultBpRoots = 64;

/// Construction-time knobs.  Every setting is a pure performance knob: the
/// produced labeling is byte-identical for every combination.
struct PllConfig {
  /// Number of highest-ranked roots that get a bit-parallel table
  /// (distance plus S_{-1}/S_0 masks over up to 64 neighbors) before the
  /// pruned searches start.  0 disables the kernel; the value is clamped
  /// to n.  Ignored (treated as 0) on weighted graphs and on graphs with
  /// more than 65535 vertices, where the 16-bit distance rows of the
  /// table could truncate.
  std::size_t bp_roots = kPllDefaultBpRoots;

  /// Worker threads for the per-root work (the bit-parallel table build
  /// and the prune scan of large BFS frontiers).  0 defers to
  /// HUBLAB_THREADS (util/parallel.hpp); label commits stay in frontier
  /// order, so the labeling does not depend on this.
  std::size_t threads = 1;
};

/// Build a PLL labeling using the given precomputed order (a permutation of
/// the vertices; order[0] is the most important vertex).
HubLabeling pruned_landmark_labeling(const Graph& g, const std::vector<Vertex>& order,
                                     const PllConfig& config = {});

/// Convenience overload choosing the order internally.
HubLabeling pruned_landmark_labeling(const Graph& g,
                                     VertexOrder order = VertexOrder::kDegreeDescending,
                                     std::uint64_t seed = 0, const PllConfig& config = {});

/// As pruned_landmark_labeling, but finalizes straight into the flat SoA
/// layout in a single pass over the builder's arena — the intermediate
/// vector-of-vectors representation is never materialized.  The result is
/// byte-identical to `FlatHubLabeling(pruned_landmark_labeling(g, order))`.
FlatHubLabeling pruned_landmark_labeling_flat(const Graph& g, const std::vector<Vertex>& order,
                                              const PllConfig& config = {});

/// Exact distances from the first min(bp_roots, n) roots of an order plus
/// Akiba–Iwata–Yoshida bit-parallel neighborhood masks, built by one
/// mask-propagating multi-source BFS per root (the 64-bit batch being the
/// root's first <= 64 neighbors).  Exposed for tests and for reuse as a
/// cheap distance-upper-bound oracle; the PLL builder consults it before
/// scanning any label.
class BitParallelRoots {
 public:
  /// Sentinel distance row value: unreachable from the root.
  static constexpr std::uint16_t kUnreachable = 0xFFFF;

  BitParallelRoots() = default;

  /// Build tables for the first min(bp_roots, n) entries of `order`.
  /// `threads` parallelizes over roots (per-root results are written to
  /// disjoint rows, so the tables are thread-count invariant).  On
  /// weighted graphs or n > 65535 the table set is empty.
  BitParallelRoots(const Graph& g, const std::vector<Vertex>& order, std::size_t bp_roots,
                   std::size_t threads);

  [[nodiscard]] std::size_t num_roots() const { return num_roots_; }
  [[nodiscard]] bool active() const { return num_roots_ > 0; }

  /// Distance row of v: dist(i) = BFS distance from the i-th root
  /// (kUnreachable when disconnected).  Valid for i < num_roots().
  [[nodiscard]] const std::uint16_t* dist_row(Vertex v) const {
    return dist_.data() + static_cast<std::size_t>(v) * num_roots_;
  }

  /// Mask rows of v: bit j of sm1(v)[i] / s0(v)[i] is set when the j-th
  /// selected neighbor s of root i satisfies dist(s, v) == dist(root, v) - 1
  /// (respectively == dist(root, v)).
  [[nodiscard]] const std::uint64_t* sm1_row(Vertex v) const {
    return sm1_.data() + static_cast<std::size_t>(v) * num_roots_;
  }
  [[nodiscard]] const std::uint64_t* s0_row(Vertex v) const {
    return s0_.data() + static_cast<std::size_t>(v) * num_roots_;
  }

  /// Upper bound on dist(u, v) through root i or one of its selected
  /// neighbors: d(r,u) + d(r,v) minus the AIY mask correction (2 when the
  /// S_{-1} masks intersect, 1 on a cross S_{-1}/S_0 hit).  kInfDist when
  /// either endpoint cannot see the root.
  [[nodiscard]] Dist estimate(Vertex u, Vertex v, std::size_t i) const;

  /// Minimum of estimate(u, v, i) over all roots.
  [[nodiscard]] Dist estimate(Vertex u, Vertex v) const;

  /// Peak BFS frontier size of root i's table build (the construction-side
  /// analog of a pruned search's peak frontier).  Valid for i < num_roots().
  [[nodiscard]] std::uint64_t peak_frontier(std::size_t i) const { return peaks_[i]; }

  /// Heap footprint of the tables in bytes.
  [[nodiscard]] std::size_t memory_bytes() const {
    return dist_.capacity() * sizeof(std::uint16_t) +
           (sm1_.capacity() + s0_.capacity()) * sizeof(std::uint64_t);
  }

 private:
  std::size_t num_roots_ = 0;
  std::vector<std::uint16_t> dist_;  ///< n rows of num_roots_ distances
  std::vector<std::uint64_t> sm1_;   ///< n rows of num_roots_ S_{-1} masks
  std::vector<std::uint64_t> s0_;    ///< n rows of num_roots_ S_0 masks
  std::vector<std::uint64_t> peaks_;  ///< per-root peak BFS frontier size
};

}  // namespace hublab
