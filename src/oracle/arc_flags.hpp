#pragma once

#include <vector>

#include "oracle/oracle.hpp"
#include "util/rng.hpp"

/// \file arc_flags.hpp
/// Arc-flags acceleration ([KMS06], cited in Section 1.1 of the paper as
/// one of the practical exact shortest-path heuristics next to contraction
/// hierarchies).
///
/// Vertices are partitioned into k regions (BFS-grown).  Every arc (u, v)
/// carries one bit per region R: set iff the arc lies on some shortest
/// path from u into R (that is, w(u,v) + dist(v, t) == dist(u, t) for some
/// t in R), or if v itself is in R.  A query towards target t runs
/// Dijkstra but relaxes only arcs whose flag for region(t) is set --
/// provably exact, often exploring a small cone towards the target.
///
/// Preprocessing here is the straightforward exact one: one SSSP per
/// vertex (O(n m log n)); fine at analysis scale and simple to audit.

namespace hublab {

class ArcFlagsOracle final : public DistanceOracle {
 public:
  /// Partition into ~num_regions BFS-grown parts (seeded; deterministic).
  ArcFlagsOracle(const Graph& g, std::size_t num_regions, std::uint64_t seed = 1);

  [[nodiscard]] std::string name() const override { return "arc-flags"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  [[nodiscard]] std::size_t space_bytes() const override;

  [[nodiscard]] std::size_t num_regions() const { return num_regions_; }
  [[nodiscard]] std::uint32_t region_of(Vertex v) const {
    HUBLAB_ASSERT(v < region_.size());
    return region_[v];
  }

  /// Fraction of (arc, region) flag bits that are set; the pruning power
  /// indicator (lower = more pruning).
  [[nodiscard]] double flag_density() const;

  /// Number of vertices settled by the last distance() call (diagnostics
  /// for the benches; not thread-safe, like the rest of the class).
  [[nodiscard]] std::size_t last_settled() const { return last_settled_; }

 private:
  const Graph* g_;
  std::size_t num_regions_;
  std::vector<std::uint32_t> region_;
  /// flags_[arc_index * num_regions_ + region] packed as bytes.
  std::vector<std::uint8_t> flags_;
  std::vector<std::size_t> arc_offset_;  ///< vertex -> first arc index
  mutable std::size_t last_settled_ = 0;
};

}  // namespace hublab
