// hublab_lint: project-specific lint rules that clang-tidy cannot express.
//
// Scope: src/, tools/, tests/, bench/ under --root.  Rules (see
// docs/correctness.md):
//
//   rng-source        Randomness outside util/rng.hpp is banned: every
//                     randomized component takes an explicit hublab::Rng so
//                     results reproduce across runs and platforms.
//   stdout-in-library Library code (src/) never writes to stdout; it reports
//                     through return values and exceptions.  Report binaries
//                     pass their own std::ostream (see util/table.hpp).
//   raw-io            Library code (src/) never writes diagnostics through
//                     fprintf or std::cerr; it goes through the structured
//                     logger (util/log.hpp).  log.cpp owns the sink; crash
//                     paths opt out with a `hublab-lint: allow raw-io`
//                     comment.
//   raw-thread        Library code (src/) never spawns raw std::thread /
//                     std::jthread / std::async; parallelism goes through
//                     util/parallel.hpp so the determinism contract
//                     (docs/performance.md) holds.  parallel.cpp owns the
//                     pool; opt out with `hublab-lint: allow raw-thread`.
//   pragma-once       Every header starts with #pragma once.
//   include-hygiene   No "../" includes; quoted includes name project files
//                     rooted at src/ (or the repo root for tools/), and they
//                     must exist.
//   file-doc          Every src/ header carries a `/// \file` comment
//                     explaining its role.
//   assert-guard      Public mutating APIs in graph/, hub/ and lowerbound/
//                     (add_*/insert_*/remove_*/set_*) validate their inputs
//                     with HUBLAB_ASSERT* or by throwing before mutating.
//   self-contained    Every src/ header compiles on its own
//                     (-fsyntax-only); disable with --no-header-check.
//   bench-harness     Every bench binary (bench/bench_*.cpp) goes through
//                     bench/harness.hpp so it honours --smoke/--json-out and
//                     emits schema-valid BENCH_*.json.
//
// Banned tokens are assembled from fragments below so this file does not
// flag itself.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text` contains `ident` as a whole identifier (not a substring
/// of a longer identifier).  A leading "::" qualifier still matches.
bool contains_identifier(const std::string& text, const std::string& ident) {
  std::size_t pos = 0;
  while ((pos = text.find(ident, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Strip // and /* */ comments (tracking block state across lines) and
/// string/char literals, so lint tokens inside either never count.
std::vector<std::string> stripped_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  bool in_block = false;
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      in_string = in_char = false;  // unterminated literals never span lines here
      continue;
    }
    if (in_block) {
      if (c == '*' && next == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (in_char) {
      if (c == '\\') ++i;
      else if (c == '\'') in_char = false;
      continue;
    }
    if (c == '/' && next == '/') {
      // Skip to end of line.
      while (i + 1 < text.size() && text[i + 1] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += ' ';
      continue;
    }
    if (c == '\'' && !(i > 0 && is_ident_char(text[i - 1]))) {
      // A char literal; identifier-adjacent ' is a digit separator (1'000).
      in_char = true;
      continue;
    }
    current += c;
  }
  lines.push_back(current);
  return lines;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class Linter {
 public:
  Linter(fs::path root, std::string compiler, bool check_headers)
      : root_(std::move(root)), compiler_(std::move(compiler)), check_headers_(check_headers) {}

  int run() {
    std::vector<fs::path> files;
    for (const char* dir : {"src", "tools", "tests", "bench"}) {
      const fs::path base = root_ / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());

    for (const fs::path& file : files) lint_file(file);
    if (check_headers_) check_header_self_containment(files);

    for (const Violation& v : violations_) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
    }
    std::cout << "hublab_lint: " << files.size() << " files, " << violations_.size()
              << " violation(s)\n";
    return violations_.empty() ? 0 : 1;
  }

 private:
  void fail(const fs::path& file, std::size_t line, const std::string& rule,
            const std::string& message) {
    violations_.push_back(
        Violation{fs::relative(file, root_).generic_string(), line, rule, message});
  }

  [[nodiscard]] std::string rel(const fs::path& file) const {
    return fs::relative(file, root_).generic_string();
  }

  void lint_file(const fs::path& file) {
    const std::string text = read_file(file);
    const std::vector<std::string> lines = stripped_lines(text);
    const std::string path = rel(file);
    const bool in_src = path.rfind("src/", 0) == 0;
    const bool is_header = file.extension() == ".hpp";

    check_banned_tokens(file, lines, path, in_src);
    if (in_src) {
      check_raw_io(file, text, lines, path);
      check_raw_thread(file, text, lines, path);
    }
    check_includes(file, lines, path);
    // Raw text, not stripped lines: the include target lives inside quotes.
    if (path.rfind("bench/bench_", 0) == 0 && !is_header &&
        text.find("#include \"bench/harness.hpp\"") == std::string::npos) {
      fail(file, 1, "bench-harness",
           "bench binaries construct a bench::Harness (bench/harness.hpp) so they honour "
           "--smoke/--json-out and emit schema-valid BENCH_*.json");
    }
    if (is_header) {
      check_pragma_once(file, lines);
      if (in_src && text.find("\\file") == std::string::npos) {
        fail(file, 1, "file-doc", "src/ headers document their role with a `/// \\file` comment");
      }
    }
    if (in_src && (path.rfind("src/graph/", 0) == 0 || path.rfind("src/hub/", 0) == 0 ||
                   path.rfind("src/lowerbound/", 0) == 0)) {
      check_mutator_guards(file, lines);
    }
  }

  void check_banned_tokens(const fs::path& file, const std::vector<std::string>& lines,
                           const std::string& path, bool in_src) {
    // Identifiers assembled from fragments so this file stays clean.
    const std::string k_mt = std::string("mt19") + "937";
    const std::string k_mt64 = k_mt + "_64";
    const std::string k_rand = std::string("ra") + "nd";
    const std::string k_srand = "s" + k_rand;
    const std::string k_rand_dev = k_rand + "om_device";
    const std::string k_rand_eng = "default_" + k_rand + "om_engine";
    const std::string k_minstd = std::string("minstd_") + k_rand;
    const std::vector<std::string> rng_idents = {k_mt,       k_mt64,     k_rand,
                                                 k_srand,    k_rand_dev, k_rand_eng,
                                                 k_minstd};

    const std::string k_cout = std::string("co") + "ut";
    const std::string k_printf = std::string("print") + "f";
    const std::string k_puts = std::string("pu") + "ts";
    const std::string k_putchar = std::string("put") + "char";
    const std::string k_stdout = std::string("std") + "out";
    const std::vector<std::string> stdout_idents = {k_cout, k_printf, k_puts, k_putchar,
                                                    k_stdout};

    const bool rng_allowed = path == "src/util/rng.hpp";
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!rng_allowed) {
        for (const std::string& ident : rng_idents) {
          if (contains_identifier(lines[i], ident)) {
            fail(file, i + 1, "rng-source",
                 "`" + ident + "` bypasses the deterministic hublab::Rng; " +
                     "take an explicit seed and use util/rng.hpp");
          }
        }
      }
      if (in_src) {
        for (const std::string& ident : stdout_idents) {
          if (contains_identifier(lines[i], ident)) {
            fail(file, i + 1, "stdout-in-library",
                 "`" + ident + "` writes to stdout from library code; report through " +
                     "return values/exceptions or a caller-supplied std::ostream");
          }
        }
      }
    }
  }

  /// raw-io: src/ never writes diagnostics through fprintf / std::cerr
  /// directly; everything routes through the structured logger
  /// (util/log.hpp), whose sink (log.cpp) is the one sanctioned writer.
  /// Crash paths that cannot trust the logger opt out with a
  /// `hublab-lint: allow raw-io` comment on the offending line or the line
  /// above (checked against the RAW text, because stripping removes it).
  void check_raw_io(const fs::path& file, const std::string& text,
                    const std::vector<std::string>& lines, const std::string& path) {
    if (path == "src/util/log.cpp") return;  // the logger's default sink
    const std::string k_fprintf = std::string("fpr") + "intf";
    const std::string k_cerr = std::string("ce") + "rr";
    const std::string k_marker = std::string("hublab-lint: allow ") + "raw-io";

    std::vector<std::string> raw_lines;
    std::istringstream stream(text);
    std::string raw;
    while (std::getline(stream, raw)) raw_lines.push_back(raw);

    const auto allowed = [&](std::size_t i) {
      return (i < raw_lines.size() && raw_lines[i].find(k_marker) != std::string::npos) ||
             (i > 0 && i - 1 < raw_lines.size() &&
              raw_lines[i - 1].find(k_marker) != std::string::npos);
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (const std::string& ident : {k_fprintf, k_cerr}) {
        if (contains_identifier(lines[i], ident) && !allowed(i)) {
          fail(file, i + 1, "raw-io",
               "`" + ident + "` bypasses the structured logger; use HUBLAB_LOG_* " +
                   "(util/log.hpp), or mark an untrusted crash path with `" + k_marker + "`");
        }
      }
    }
  }

  /// raw-thread: src/ never spawns threads directly — std::thread,
  /// std::jthread and std::async (and their <thread> include) are confined
  /// to util/parallel.cpp, the pool behind parallel_for.  Everything else
  /// expresses parallelism through util/parallel.hpp, which is what keeps
  /// results bit-identical across thread counts (docs/performance.md).
  /// Escape hatch: a `hublab-lint: allow raw-thread` comment on the line
  /// or the line above, mirroring the raw-io rule.
  void check_raw_thread(const fs::path& file, const std::string& text,
                        const std::vector<std::string>& lines, const std::string& path) {
    if (path == "src/util/parallel.cpp") return;  // the sanctioned pool
    const std::string k_thread = std::string("th") + "read";
    const std::string k_jthread = "j" + k_thread;
    const std::string k_async = std::string("as") + "ync";
    const std::string k_marker = std::string("hublab-lint: allow ") + "raw-" + k_thread;

    std::vector<std::string> raw_lines;
    std::istringstream stream(text);
    std::string raw;
    while (std::getline(stream, raw)) raw_lines.push_back(raw);

    const auto allowed = [&](std::size_t i) {
      return (i < raw_lines.size() && raw_lines[i].find(k_marker) != std::string::npos) ||
             (i > 0 && i - 1 < raw_lines.size() &&
              raw_lines[i - 1].find(k_marker) != std::string::npos);
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (const std::string& ident : {k_thread, k_jthread, k_async}) {
        if (contains_identifier(lines[i], ident) && !allowed(i)) {
          fail(file, i + 1, "raw-" + k_thread,
               "`" + ident + "` spawns threads outside util/parallel.cpp; use parallel_for " +
                   "(util/parallel.hpp) so results stay deterministic across thread counts, " +
                   "or mark a sanctioned use with `" + k_marker + "`");
        }
      }
    }
  }

  void check_pragma_once(const fs::path& file, const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      const std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;  // blank / comment-only line
      if (line.compare(first, 12, "#pragma once") == 0) return;
      fail(file, 1, "pragma-once", "headers start with #pragma once");
      return;
    }
    fail(file, 1, "pragma-once", "headers start with #pragma once");
  }

  void check_includes(const fs::path& file, const std::vector<std::string>& lines,
                      const std::string& path) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const std::size_t hash = line.find_first_not_of(" \t");
      if (hash == std::string::npos || line[hash] != '#') continue;
      const std::size_t inc = line.find("include", hash);
      if (inc == std::string::npos) continue;
      const std::size_t open = line.find_first_of("\"<", inc);
      if (open == std::string::npos) continue;
      const char close_char = line[open] == '"' ? '"' : '>';
      const std::size_t close = line.find(close_char, open + 1);
      if (close == std::string::npos) continue;
      const std::string target = line.substr(open + 1, close - open - 1);

      if (target.find("..") != std::string::npos) {
        fail(file, i + 1, "include-hygiene",
             "#include \"" + target + "\" uses a relative ../ path; include project headers " +
                 "by their path from src/");
        continue;
      }
      if (line[open] == '"') {
        // Quoted includes are project headers addressed from src/ (library)
        // or from the repo root (tools/ headers used by tools and tests).
        const bool from_src = fs::exists(root_ / "src" / target);
        const bool from_root = fs::exists(root_ / target);
        if (!from_src && !from_root) {
          fail(file, i + 1, "include-hygiene",
               "#include \"" + target + "\" does not resolve under src/ or the repo root; " +
                   "system headers use <...>, project headers their canonical path");
        }
        (void)path;
      }
    }
  }

  /// Public mutating APIs must validate before mutating.  Finds definitions
  /// of add_*/insert_*/remove_*/set_* functions and requires HUBLAB_ASSERT*
  /// or a throw in the body.  `add_vertex` is exempt: appending a fresh
  /// vertex has no precondition.
  void check_mutator_guards(const fs::path& file, const std::vector<std::string>& lines) {
    std::string text;
    std::vector<std::size_t> line_of;  // char offset -> line number
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (std::size_t k = 0; k <= lines[i].size(); ++k) line_of.push_back(i + 1);
      text += lines[i];
      text += '\n';
    }

    static const std::vector<std::string> kPrefixes = {"add_", "insert_", "remove_", "set_"};
    static const std::vector<std::string> kExempt = {"add_vertex"};

    std::size_t pos = 0;
    while (pos < text.size()) {
      // Find the next identifier starting with a mutator prefix.
      std::size_t best = std::string::npos;
      for (const std::string& prefix : kPrefixes) {
        std::size_t p = text.find(prefix, pos);
        while (p != std::string::npos && p > 0 && is_ident_char(text[p - 1])) {
          p = text.find(prefix, p + 1);
        }
        if (p != std::string::npos && (best == std::string::npos || p < best)) best = p;
      }
      if (best == std::string::npos) break;

      std::size_t end = best;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      const std::string name = text.substr(best, end - best);
      pos = end;

      if (std::find(kExempt.begin(), kExempt.end(), name) != kExempt.end()) continue;
      // Member calls (`b.add_edge(...)`, `ptr->insert_edge(...)`) are uses,
      // not definitions.
      if (best > 0 && (text[best - 1] == '.' ||
                       (best > 1 && text[best - 2] == '-' && text[best - 1] == '>'))) {
        continue;
      }
      std::size_t after = end;
      while (after < text.size() && std::isspace(static_cast<unsigned char>(text[after])) != 0) {
        ++after;
      }
      if (after >= text.size() || text[after] != '(') continue;

      // Match the parameter list, then look for `{` (definition) vs `;`.
      std::size_t depth = 0;
      std::size_t scan = after;
      while (scan < text.size()) {
        if (text[scan] == '(') ++depth;
        if (text[scan] == ')' && --depth == 0) break;
        ++scan;
      }
      if (scan >= text.size()) continue;
      ++scan;
      while (scan < text.size() && text[scan] != '{' && text[scan] != ';' && text[scan] != ',' &&
             text[scan] != ')' && text[scan] != '=') {
        ++scan;
      }
      if (scan >= text.size() || text[scan] != '{') continue;  // declaration or call

      // Brace-match the body.
      const std::size_t body_begin = scan;
      std::size_t braces = 0;
      while (scan < text.size()) {
        if (text[scan] == '{') ++braces;
        if (text[scan] == '}' && --braces == 0) break;
        ++scan;
      }
      const std::string body = text.substr(body_begin, scan - body_begin);
      const bool guarded = body.find("HUBLAB_ASSERT") != std::string::npos ||
                           contains_identifier(body, "throw");
      if (!guarded) {
        fail(file, line_of[std::min(best, line_of.size() - 1)], "assert-guard",
             "public mutating API `" + name +
                 "` has no HUBLAB_ASSERT*/throw precondition before mutating");
      }
      pos = scan;
    }
  }

  void check_header_self_containment(const std::vector<fs::path>& files) {
    const fs::path probe = fs::temp_directory_path() / "hublab_lint_header_probe.cpp";
    for (const fs::path& file : files) {
      const std::string path = rel(file);
      if (file.extension() != ".hpp" || path.rfind("src/", 0) != 0) continue;
      {
        std::ofstream out(probe, std::ios::trunc);
        out << "#include \"" << path.substr(4) << "\"\n";  // path from src/
      }
      const std::string cmd = compiler_ + " -std=c++20 -fsyntax-only -I \"" +
                              (root_ / "src").string() + "\" \"" + probe.string() + "\"";
      if (std::system(cmd.c_str()) != 0) {
        fail(file, 1, "self-contained",
             "header does not compile on its own; add the includes it is missing");
      }
    }
    fs::remove(probe);
  }

  fs::path root_;
  std::string compiler_;
  bool check_headers_;
  std::vector<Violation> violations_;
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string compiler = "c++";
  bool check_headers = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compiler" && i + 1 < argc) {
      compiler = argv[++i];
    } else if (arg == "--no-header-check") {
      check_headers = false;
    } else {
      std::cerr << "usage: hublab_lint [--root DIR] [--compiler CXX] [--no-header-check]\n";
      return 2;
    }
  }
  if (!fs::exists(root / "src")) {
    std::cerr << "hublab_lint: " << root.string() << " has no src/ directory\n";
    return 2;
  }
  return Linter(fs::canonical(root), compiler, check_headers).run();
}
