// AVX2 tier of the batched query kernel (see simd_kernel.hpp): 8-lane
// block intersection of two ascending hub columns.  Each step compares one
// 8-hub block of A against all 8 rotations of one 8-hub block of B
// (all-pairs equality via _mm256_permutevar8x32_epi32 + cmpeq), resolves
// the rare matches scalarly against the split distance columns, and
// advances whichever block's maximum is not larger — the standard
// vectorized sorted-set-intersection walk, which visits every common hub
// exactly once and in globally ascending hub order.  Tails shorter than a
// block finish on the sentinel merge.  The lexicographic (dist, hub)
// minimum makes the answer byte-identical to the scalar kernel: smallest
// distance, and among ties the smallest hub id.
//
// This TU is compiled with -mavx2 only when the toolchain supports it
// (src/hub/CMakeLists.txt); raw intrinsics stay confined to the
// src/hub/simd_kernel* TUs (the `simd` lint pass).

#include "hub/simd_kernel.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hublab::simd::detail {

namespace {

/// Fold a matched hub into the running (dist, hub) lexicographic minimum.
inline void fold_match(HubQueryResult& best, Vertex hub, Dist d) {
  if (d < best.dist || (d == best.dist && hub < best.meeting_hub)) {
    best.dist = d;
    best.meeting_hub = hub;
  }
}

/// Sentinel-merge the tails into `best` (same update rule).
void merge_tail(HubQueryResult& best, const Vertex* hubs_a, const Dist* dists_a,
                const Vertex* hubs_b, const Dist* dists_b) {
  for (;;) {
    const Vertex a = *hubs_a;
    const Vertex b = *hubs_b;
    if (a == b) {
      if (a == kInvalidVertex) break;
      fold_match(best, a, *dists_a + *dists_b);
      ++hubs_a, ++dists_a;
      ++hubs_b, ++dists_b;
    } else if (a < b) {
      ++hubs_a, ++dists_a;
    } else {
      ++hubs_b, ++dists_b;
    }
  }
}

}  // namespace

HubQueryResult intersect_avx2(const Vertex* hubs_a, const Dist* dists_a, std::size_t size_a,
                              const Vertex* hubs_b, const Dist* dists_b, std::size_t size_b) {
  HubQueryResult best;
  std::size_t ia = 0;
  std::size_t ib = 0;
  // Rotation index vectors for the 8x8 all-pairs compare, all applied to
  // the *original* B block so the seven permutes are independent; the
  // compares are hand-unrolled and OR-reduced as a balanced tree.  (GCC at
  // -O2 compiles the obvious rotate-accumulate loop into a 7-trip loop
  // with a loop-carried OR — ~4x the per-block cost.)
  const __m256i r1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i r2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i r3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i r4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i r5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i r6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i r7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  while (ia + 8 <= size_a && ib + 8 <= size_b) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hubs_a + ia));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hubs_b + ib));
    const __m256i e0 = _mm256_cmpeq_epi32(va, vb);
    const __m256i e1 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r1));
    const __m256i e2 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r2));
    const __m256i e3 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r3));
    const __m256i e4 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r4));
    const __m256i e5 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r5));
    const __m256i e6 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r6));
    const __m256i e7 = _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, r7));
    const __m256i eq = _mm256_or_si256(
        _mm256_or_si256(_mm256_or_si256(e0, e1), _mm256_or_si256(e2, e3)),
        _mm256_or_si256(_mm256_or_si256(e4, e5), _mm256_or_si256(e6, e7)));
    auto mask = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    // Matches are rare (a handful per query), so this branch is a
    // predictable not-taken; everything else in the loop body is
    // branch-free.
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      const Vertex hub = hubs_a[ia + static_cast<std::size_t>(lane)];
      for (std::size_t j = 0; j < 8; ++j) {  // hubs are unique: first hit wins
        if (hubs_b[ib + j] == hub) {
          fold_match(best, hub, dists_a[ia + static_cast<std::size_t>(lane)] + dists_b[ib + j]);
          break;
        }
      }
    }
    // Branchless block advance: whichever side's maximum is not larger
    // steps (both on a tie).  A conditional branch here is data-dependent
    // and ~50/50, so mispredicts would dominate the whole kernel.
    const Vertex amax = hubs_a[ia + 7];
    const Vertex bmax = hubs_b[ib + 7];
    ia += static_cast<std::size_t>(amax <= bmax) * 8;
    ib += static_cast<std::size_t>(bmax <= amax) * 8;
  }
  merge_tail(best, hubs_a + ia, dists_a + ia, hubs_b + ib, dists_b + ib);
  return best;
}

HubQueryResult probe_avx2(const Vertex* hubs_t, const Dist* dists_t, std::size_t size_t_,
                          const std::uint32_t* stamp, const Dist* sdist, std::uint32_t current) {
  HubQueryResult best;
  const __m256i vcur = _mm256_set1_epi32(static_cast<int>(current));
  std::size_t i = 0;
  // 8 target hubs per step: gather their stamps (the table is L1/L2
  // resident — the gather hits cache), compare against the group stamp,
  // resolve the rare hits scalarly.  No data-dependent advance: the scan
  // is a straight line over the target label.
  for (; i + 8 <= size_t_; i += 8) {
    const __m256i vh = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hubs_t + i));
    const __m256i vs =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(stamp), vh, sizeof(std::uint32_t));
    const __m256i eq = _mm256_cmpeq_epi32(vs, vcur);
    auto mask = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    while (mask != 0) {
      const auto lane = static_cast<std::size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      const Vertex h = hubs_t[i + lane];
      fold_match(best, h, sdist[h] + dists_t[i + lane]);
    }
  }
  for (; i < size_t_; ++i) {
    const Vertex h = hubs_t[i];
    if (stamp[h] == current) fold_match(best, h, sdist[h] + dists_t[i]);
  }
  return best;
}

}  // namespace hublab::simd::detail

#endif  // defined(__AVX2__)
