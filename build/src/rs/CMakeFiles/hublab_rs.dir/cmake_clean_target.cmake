file(REMOVE_RECURSE
  "libhublab_rs.a"
)
