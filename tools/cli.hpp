#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file cli.hpp
/// The `hublab` command-line tool, as a testable library function.
///
/// Subcommands:
///   gen <family> [options] -o FILE      generate a graph (edge list)
///   stats FILE                          print graph statistics
///   label FILE [-o LABELS] [--order X]  build a PLL labeling, print stats
///   query GRAPH LABELS U V              answer a distance query from disk
///   verify GRAPH LABELS [--samples N]   verify labels against the graph
///   certify-gadget B L                  Lemma 2.2 + counting bound
///   sumindex B L [--trials N]           run the Theorem 1.6 protocol
///   trace GRAPH [--chrome FILE]         phase-traced PLL pipeline
///   serve-sim GRAPH [--oracle K]        query-serving latency simulation
///                                       (--perf-counters adds hardware
///                                       counters where available)
///   profile [--hz N] [--folded FILE] <command...>
///                                       run any subcommand under the
///                                       sampling profiler; writes folded
///                                       stacks for flamegraph tooling
///   validate-bench [--quiet] FILE...    schema-check run reports
///                                       (exit 0 ok / 1 invalid / 2 io)
///   bench-compare BASE NEW [--threshold PCT]
///                                       regression-diff two run reports
///                                       (exit 0 ok / 1 regressed or
///                                       invalid / 2 io)
///
/// Returns a process exit code; all output goes to the provided streams.

namespace hublab::cli {

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace hublab::cli
