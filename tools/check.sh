#!/usr/bin/env bash
# Full correctness matrix (see docs/correctness.md):
#
#   1. RelWithDebInfo build + full test suite        (preset dev)
#   2. ASan+UBSan build + full test suite            (preset asan-ubsan)
#   3. clang-tidy gate                               (run-tidy; skips w/o clang-tidy)
#   4. hublab_lint incl. header self-containment     (run-lint)
#   5. -Wall -Wextra -Werror build of the full tree  (preset werror)
#
# Exits non-zero on the first failing stage.  Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

stage() {
  echo
  echo "=== check.sh: $* ==="
}

stage "1/5 RelWithDebInfo build + tests"
cmake --preset dev
cmake --build --preset dev -j "${jobs}"
ctest --preset dev -j "${jobs}"

stage "2/5 ASan+UBSan build + tests"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${jobs}"
ctest --preset asan-ubsan -j "${jobs}"

stage "3/5 clang-tidy gate"
cmake --build --preset dev --target run-tidy

stage "4/5 hublab_lint (with header self-containment)"
cmake --build --preset dev --target run-lint

stage "5/5 Werror build"
cmake --preset werror
cmake --build --preset werror -j "${jobs}"

stage "all stages passed"
