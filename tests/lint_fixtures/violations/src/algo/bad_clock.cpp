// Fixture: wall-clock -- a raw clock read outside util/timer.hpp.

namespace fixture {

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
