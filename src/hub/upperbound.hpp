#pragma once

#include <cstdint>
#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/graph.hpp"
#include "hub/labeling.hpp"
#include "util/rng.hpp"

/// \file upperbound.hpp
/// The hub-labeling construction of Theorem 4.1 / Theorem 1.4 of the paper:
/// for graphs of constant maximum degree (resp. constant average degree via
/// the degree-reduction gadget), total hub size O(D^5 n^2 / RS(n)) with
/// D = RS(n)^{1/6}.
///
/// Pipeline, with threshold parameter D:
///   (*)  a shared random set S of ~ (n/D) ln D vertices covers most pairs
///        with |H_uv| >= D valid hubs; the missed ones go to Q_u;
///   (c)  a random D^3-coloring of V; pairs whose hub set H_uv (<= D hubs)
///        is *not* rainbow-colored go to R_u;
///   (F)  for every hub h and split a + b = dist(u, v), the rainbow pairs
///        form bipartite graphs E^h_{a,b}; a Koenig minimum vertex cover
///        of each assigns h to F_u or F_v.  Lemma 4.2 bounds sum |F_v| by
///        relating the per-color unions of the maximum matchings to
///        Ruzsa-Szemeredi graphs.
///   Final labels:  S(v) = S  union  Q_v  union  R_v  union  N(F_v).
///
/// The construction works for {0,1} edge weights (needed after degree
/// reduction); the code asserts max edge weight <= 1.

namespace hublab {

/// Per-stage accounting of the Theorem 4.1 pipeline.
struct UpperBoundStats {
  std::size_t n = 0;
  std::size_t D = 0;
  std::size_t sample_size = 0;        ///< |S|
  std::size_t sum_q = 0;              ///< sum |Q_v|
  std::size_t sum_r = 0;              ///< sum |R_v|
  std::size_t sum_f = 0;              ///< sum |F_v| (excluding the seeded v itself)
  std::size_t sum_nf = 0;             ///< sum |N(F_v)|
  std::size_t num_groups = 0;         ///< number of nonempty E^h_{a,b}
  std::size_t sum_matchings = 0;      ///< sum of maximum matching sizes
  std::size_t total_hubs = 0;         ///< final sum |S(v)|
  double average_label_size = 0.0;
};

/// Theorem 4.1: constant-max-degree graphs with {0,1} weights.
/// D >= 2.  Deterministic given `rng`'s state.
HubLabeling upper_bound_labeling(const Graph& g, const DistanceMatrix& truth, std::size_t D,
                                 Rng& rng, UpperBoundStats* stats_out = nullptr);

/// Theorem 1.4: arbitrary sparse graphs.  Applies reduce_degree with
/// cap = ceil(m/n), runs the pipeline on the gadget, and projects hubs back
/// to original vertices.  The input must be unweighted.
HubLabeling upper_bound_labeling_sparse(const Graph& g, std::size_t D, Rng& rng,
                                        UpperBoundStats* stats_out = nullptr);

/// Empirical check of Lemma 4.2 on a small graph: re-runs the grouping
/// stage and verifies that every maximum matching MM^h_{a,b} is an induced
/// matching inside the union graph G^c_{a,b} of its color class.
/// Returns false iff some matching is not induced (would contradict the
/// lemma; used as a property test).
bool verify_lemma_4_2(const Graph& g, const DistanceMatrix& truth, std::size_t D, Rng& rng);

}  // namespace hublab
