#pragma once

#include <cstdint>
#include <vector>

/// \file behrend.hpp
/// Progression-free (3-AP-free) sets of integers.
///
/// The Ruzsa-Szemeredi function RS(n) (Definition 1.3 of the paper) is
/// sandwiched between 2^{Omega(log* n)} and 2^{O(sqrt(log n))}; the upper
/// bound side comes from Behrend's 1946 construction of dense sets with no
/// three-term arithmetic progression.  This module implements:
///  - Behrend's sphere construction (digits on a sphere, no carries),
///  - the Erdos-Turan base-3 greedy set (digits 0/1 in base 3),
///  - an exhaustive optimum for tiny N (testing oracle),
///  - a 3-AP-freeness checker.

namespace hublab::rs {

/// True if `set` (strictly increasing) contains no x < y < z with x+z == 2y.
bool is_progression_free(const std::vector<std::uint64_t>& set);

/// Behrend's construction: a 3-AP-free subset of [0, N) of size
/// N / 2^{O(sqrt(log N))}.  Deterministic; searches over the digit/base
/// parameters and returns the densest sphere found.  Sorted ascending.
std::vector<std::uint64_t> behrend_set(std::uint64_t N);

/// Elements of [0, N) whose base-3 representation uses only digits 0 and 1
/// (Erdos-Turan); 3-AP-free of size ~ N^{0.63}.  Sorted ascending.
std::vector<std::uint64_t> base3_set(std::uint64_t N);

/// Largest 3-AP-free subset of [0, N) by branch-and-bound; N <= 40.
std::vector<std::uint64_t> optimal_set(std::uint64_t N);

/// Parameters chosen by behrend_set for reporting.
struct BehrendParams {
  std::uint64_t dimension = 0;     ///< d, number of digits
  std::uint64_t digit_bound = 0;   ///< k, digits range over [0, k]
  std::uint64_t radius = 0;        ///< chosen squared radius r
  std::uint64_t set_size = 0;
};

/// As behrend_set, but also reports the chosen parameters.
std::vector<std::uint64_t> behrend_set_with_params(std::uint64_t N, BehrendParams& params_out);

/// The denser of behrend_set(N) and base3_set(N).  At practically-sized N
/// the base-3 set often wins (Behrend's advantage is asymptotic); benches
/// that just need a large 3-AP-free witness should use this.
std::vector<std::uint64_t> dense_set(std::uint64_t N);

}  // namespace hublab::rs
