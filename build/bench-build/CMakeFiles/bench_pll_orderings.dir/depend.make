# Empty dependencies file for bench_pll_orderings.
# This may be replaced when dependencies are built.
