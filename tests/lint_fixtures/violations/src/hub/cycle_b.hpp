#pragma once

/// \file cycle_b.hpp
/// Fixture: layer-cycle -- the second half of the include cycle.

#include "hub/cycle_a.hpp"
