#pragma once

#include <chrono>

/// \file timer.hpp
/// Wall-clock stopwatch used by the benchmark harness for coarse phase
/// timings (google-benchmark handles the micro-level measurements).

namespace hublab {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hublab
