# Empty compiler generated dependencies file for labeling_scheme_test.
# This may be replaced when dependencies are built.
