file(REMOVE_RECURSE
  "CMakeFiles/canonical_approx_test.dir/canonical_approx_test.cpp.o"
  "CMakeFiles/canonical_approx_test.dir/canonical_approx_test.cpp.o.d"
  "canonical_approx_test"
  "canonical_approx_test.pdb"
  "canonical_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canonical_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
