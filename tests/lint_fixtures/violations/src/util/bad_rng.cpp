// Fixture: rng-source -- a raw standard-library engine outside util/rng.hpp.

namespace fixture {

int roll() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace fixture
