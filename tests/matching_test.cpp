#include <gtest/gtest.h>

#include "matching/bipartite.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

BipartiteGraph perfect_ladder(std::size_t n) {
  BipartiteGraph g(n, n);
  for (std::uint32_t i = 0; i < n; ++i) g.add_edge(i, i);
  return g;
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(3, 4);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(is_matching(g, m));
}

TEST(HopcroftKarp, PerfectLadder) {
  const auto g = perfect_ladder(6);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_TRUE(is_matching(g, m));
}

TEST(HopcroftKarp, NeedsAugmentingPaths) {
  // Classic instance where greedy gets stuck: crossing preferences.
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 2);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 3u);
}

TEST(HopcroftKarp, StarLimitedByCenter) {
  BipartiteGraph g(5, 1);
  for (std::uint32_t i = 0; i < 5; ++i) g.add_edge(i, 0);
  EXPECT_EQ(hopcroft_karp(g).size(), 1u);
}

TEST(HopcroftKarp, UnbalancedSides) {
  BipartiteGraph g(2, 8);
  g.add_edge(0, 5);
  g.add_edge(1, 5);
  g.add_edge(1, 7);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(is_matching(g, m));
}

class HkMatchesBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HkMatchesBruteForce, RandomBipartite) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nl = 2 + rng.next_below(8);
    const std::size_t nr = 2 + rng.next_below(8);
    BipartiteGraph g(nl, nr);
    for (std::uint32_t u = 0; u < nl; ++u) {
      for (std::uint32_t r = 0; r < nr; ++r) {
        if (rng.next_bool(0.35)) g.add_edge(u, r);
      }
    }
    const Matching m = hopcroft_karp(g);
    EXPECT_TRUE(is_matching(g, m));
    EXPECT_EQ(m.size(), brute_force_max_matching(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkMatchesBruteForce, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Koenig, CoverSizeEqualsMatching) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t nl = 2 + rng.next_below(12);
    const std::size_t nr = 2 + rng.next_below(12);
    BipartiteGraph g(nl, nr);
    for (std::uint32_t u = 0; u < nl; ++u) {
      for (std::uint32_t r = 0; r < nr; ++r) {
        if (rng.next_bool(0.3)) g.add_edge(u, r);
      }
    }
    const Matching m = hopcroft_karp(g);
    const VertexCover vc = koenig_cover(g, m);
    EXPECT_TRUE(is_vertex_cover(g, vc));
    EXPECT_EQ(vc.size(), m.size());
  }
}

TEST(Koenig, EmptyGraphEmptyCover) {
  BipartiteGraph g(4, 4);
  const VertexCover vc = koenig_cover(g, hopcroft_karp(g));
  EXPECT_EQ(vc.size(), 0u);
  EXPECT_TRUE(is_vertex_cover(g, vc));
}

TEST(Koenig, StarCoverIsCenter) {
  BipartiteGraph g(5, 1);
  for (std::uint32_t i = 0; i < 5; ++i) g.add_edge(i, 0);
  const VertexCover vc = koenig_cover(g, hopcroft_karp(g));
  ASSERT_EQ(vc.size(), 1u);
  ASSERT_EQ(vc.right.size(), 1u);
  EXPECT_EQ(vc.right[0], 0u);
}

TEST(IsVertexCover, DetectsUncoveredEdge) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  VertexCover vc;
  vc.left = {0};
  EXPECT_FALSE(is_vertex_cover(g, vc));
  vc.right = {1};
  EXPECT_TRUE(is_vertex_cover(g, vc));
}

TEST(IsMatching, RejectsInconsistentPartnerArrays) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  Matching m;
  m.left_match = {0, kUnmatched};
  m.right_match = {kUnmatched, kUnmatched};  // inconsistent: right 0 not set
  EXPECT_FALSE(is_matching(g, m));
}

TEST(IsMatching, RejectsNonEdgePair) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  Matching m;
  m.left_match = {1, kUnmatched};  // (0,1) not an edge
  m.right_match = {kUnmatched, 0};
  EXPECT_FALSE(is_matching(g, m));
}

}  // namespace
}  // namespace hublab
