#include "hub/pll.hpp"

#include <algorithm>
#include <utility>

#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/qsketch.hpp"
#include "util/rng.hpp"

namespace hublab {

std::vector<Vertex> make_vertex_order(const Graph& g, VertexOrder order, std::uint64_t seed) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  std::vector<Vertex> result(n);
  for (Vertex v = 0; v < n; ++v) result[v] = v;
  switch (order) {
    case VertexOrder::kNatural:
      break;
    case VertexOrder::kRandom: {
      Rng rng(seed);
      shuffle(result, rng);
      break;
    }
    case VertexOrder::kDegreeDescending:
      std::stable_sort(result.begin(), result.end(),
                       [&g](Vertex a, Vertex b) { return g.degree(a) > g.degree(b); });
      break;
    default:
      HUBLAB_UNREACHABLE();
  }
  return result;
}

BitParallelRoots::BitParallelRoots(const Graph& g, const std::vector<Vertex>& order,
                                   std::size_t bp_roots, std::size_t threads) {
  const std::size_t n = g.num_vertices();
  // 16-bit distance rows: any finite BFS distance is < n, so n <= 65535
  // guarantees the tables never truncate (kUnreachable is the only
  // sentinel).  Weighted graphs use Dijkstra and never consult the tables.
  if (g.is_weighted() || n == 0 || n > 0xFFFF || bp_roots == 0) return;
  num_roots_ = std::min(bp_roots, n);
  const std::size_t stride = num_roots_;
  dist_.assign(n * stride, kUnreachable);
  sm1_.assign(n * stride, 0);
  s0_.assign(n * stride, 0);
  peaks_.assign(num_roots_, 0);

  metrics::Counter& c_visited = metrics::registry().counter("pll.bp_visited");
  // One mask-propagating BFS per root.  Each BFS runs in contiguous
  // per-root scratch (the strided table rows would cost a cache line per
  // arc) and scatters into its column once at the end; roots write
  // disjoint columns, so the fan-out over the pool is race-free and
  // thread-count invariant.
  par::parallel_for(0, num_roots_, threads, [&](const par::ChunkRange& chunk) {
    std::vector<Vertex> frontier;
    std::vector<Vertex> next;
    std::vector<std::uint16_t> dist;
    std::vector<std::uint64_t> sm1;
    std::vector<std::uint64_t> s0;
    std::uint64_t visited = 0;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      const Vertex root = order[i];
      dist.assign(n, kUnreachable);
      sm1.assign(n, 0);
      s0.assign(n, 0);
      dist[root] = 0;
      ++visited;
      frontier.assign(1, root);
      std::uint16_t level = 0;
      bool seeded = false;
      while (!frontier.empty()) {
        peaks_[i] = std::max(peaks_[i], static_cast<std::uint64_t>(frontier.size()));
        // Pass 1 — same-level edges: dist(s, v) == dist(root, v) exactly
        // when a selected neighbor's S_{-1} mask crosses a level-parallel
        // edge.  Runs before expansion so S_0 of this level is complete
        // before it propagates to the next level.
        for (const Vertex u : frontier) {
          const std::uint64_t mask = sm1[u];
          if (mask == 0) continue;
          for (const Arc& a : g.arcs(u)) {
            if (dist[a.to] == level) s0[a.to] |= mask;
          }
        }
        // Pass 2 — expansion: discover the next level and push both masks
        // down tree/cross edges into it.
        for (const Vertex u : frontier) {
          const std::uint64_t sm1_u = sm1[u];
          const std::uint64_t s0_u = s0[u];
          for (const Arc& a : g.arcs(u)) {
            std::uint16_t& dv = dist[a.to];
            if (dv == kUnreachable) {
              dv = static_cast<std::uint16_t>(level + 1);
              ++visited;
              next.push_back(a.to);
            }
            if (dv == level + 1) {
              sm1[a.to] |= sm1_u;
              s0[a.to] |= s0_u;
            }
          }
        }
        if (!seeded) {
          // The 64-bit batch: the root's first <= 64 neighbors, seeded
          // after discovery (dist(s, s) == 0 == dist(root, s) - 1 puts
          // each s in its own S_{-1}).
          std::uint64_t bit = 1;
          for (const Arc& a : g.arcs(root)) {
            sm1[a.to] |= bit;
            if (bit == (1ULL << 63)) break;
            bit <<= 1;
          }
          seeded = true;
        }
        ++level;
        frontier.swap(next);
        next.clear();
      }
      for (std::size_t v = 0; v < n; ++v) {
        dist_[v * stride + i] = dist[v];
        sm1_[v * stride + i] = sm1[v];
        s0_[v * stride + i] = s0[v];
      }
    }
    c_visited.add(visited);
  });
}

Dist BitParallelRoots::estimate(Vertex u, Vertex v, std::size_t i) const {
  HUBLAB_ASSERT_RANGE(i, num_roots_);
  const std::uint16_t du = dist_row(u)[i];
  const std::uint16_t dv = dist_row(v)[i];
  if (du == kUnreachable || dv == kUnreachable) return kInfDist;
  Dist d = static_cast<Dist>(du) + static_cast<Dist>(dv);
  if ((sm1_row(u)[i] & sm1_row(v)[i]) != 0) {
    d -= 2;
  } else if (((sm1_row(u)[i] & s0_row(v)[i]) | (s0_row(u)[i] & sm1_row(v)[i])) != 0) {
    d -= 1;
  }
  return d;
}

Dist BitParallelRoots::estimate(Vertex u, Vertex v) const {
  Dist best = kInfDist;
  for (std::size_t i = 0; i < num_roots_; ++i) best = std::min(best, estimate(u, v, i));
  return best;
}

namespace {

/// Internal label entry keyed by hub *rank* so that labels built in rank
/// order are automatically sorted and query merges need no lookup table.
struct RankEntry {
  Vertex rank;
  Dist dist;
};

/// Chunked per-vertex label storage: entries live in one shared slot pool,
/// grouped into per-vertex blocks of geometrically growing capacity that
/// are linked in append order.  A push never allocates on its own (the
/// pool grows amortized like a vector), iteration walks at most
/// O(log(label size)) blocks, and the whole structure frees in O(1) —
/// replacing the vector-of-vectors layout whose per-vertex reallocation
/// dominated construction.
class LabelArena {
 public:
  static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

  /// A resumable scan position (see cursor()/scan_from()).
  struct Cursor {
    std::uint32_t block = kNoBlock;
    std::uint32_t offset = 0;
  };

  /// `g` supplies degree hints: vertices above twice the average degree
  /// rank early under the degree heuristic and keep short labels, so they
  /// start with a smaller first block.
  explicit LabelArena(const Graph& g) : head_(g.num_vertices(), kNoBlock), tail_(head_) {
    const std::size_t n = g.num_vertices();
    slots_.reserve(n * 4);
    blocks_.reserve(n + n / 2);
    const double avg = g.average_degree();
    first_cap_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      first_cap_[v] = static_cast<double>(g.degree(v)) >= 2.0 * avg ? 4 : 8;
    }
  }

  void push(Vertex v, RankEntry e) {
    std::uint32_t tail = tail_[v];
    if (tail == kNoBlock || blocks_[tail].count == blocks_[tail].capacity) tail = grow(v);
    Block& b = blocks_[tail];
    slots_[b.first + b.count] = e;
    ++b.count;
  }

  [[nodiscard]] std::size_t size(Vertex v) const {
    std::size_t total = 0;
    for (std::uint32_t b = head_[v]; b != kNoBlock; b = blocks_[b].next) total += blocks_[b].count;
    return total;
  }

  /// Current end of v's label; scan_from() started here visits exactly the
  /// entries pushed after this call.
  [[nodiscard]] Cursor cursor(Vertex v) const {
    const std::uint32_t tail = tail_[v];
    if (tail == kNoBlock) return Cursor{};
    return Cursor{tail, blocks_[tail].count};
  }

  template <typename Fn>
  void for_each(Vertex v, Fn&& fn) const {
    for (std::uint32_t b = head_[v]; b != kNoBlock; b = blocks_[b].next) {
      const Block& blk = blocks_[b];
      for (std::uint32_t i = 0; i < blk.count; ++i) fn(slots_[blk.first + i]);
    }
  }

  /// Visit entries from `c` (a cursor taken for v, or a default cursor for
  /// the whole label) until `fn` returns true; returns whether it did.
  template <typename Fn>
  [[nodiscard]] bool scan_from(Vertex v, Cursor c, Fn&& fn) const {
    std::uint32_t b = c.block == kNoBlock ? head_[v] : c.block;
    std::uint32_t offset = c.block == kNoBlock ? 0 : c.offset;
    for (; b != kNoBlock; b = blocks_[b].next, offset = 0) {
      const Block& blk = blocks_[b];
      for (std::uint32_t i = offset; i < blk.count; ++i) {
        if (fn(slots_[blk.first + i])) return true;
      }
    }
    return false;
  }

 private:
  struct Block {
    std::size_t first;       ///< index of the block's first slot
    std::uint32_t next;      ///< kNoBlock at the chain tail
    std::uint32_t count;
    std::uint32_t capacity;
  };

  std::uint32_t grow(Vertex v) {
    const std::uint32_t tail = tail_[v];
    const std::uint32_t cap =
        tail == kNoBlock ? first_cap_[v]
                         : std::min<std::uint32_t>(blocks_[tail].capacity * 2, kMaxBlockCap);
    const auto id = static_cast<std::uint32_t>(blocks_.size());
    blocks_.push_back(Block{slots_.size(), kNoBlock, 0, cap});
    slots_.resize(slots_.size() + cap);
    if (tail == kNoBlock) {
      head_[v] = id;
    } else {
      blocks_[tail].next = id;
    }
    tail_[v] = id;
    return id;
  }

  static constexpr std::uint32_t kMaxBlockCap = 64;

  std::vector<RankEntry> slots_;
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint8_t> first_cap_;
};

/// Frontier prune decisions, encoded so the sequential commit loop can
/// batch the per-kind counters without atomics in the parallel scan.
enum class Prune : std::uint8_t { kNone = 0, kBpDist, kBpMask, kLabel };

class PllBuilder {
 public:
  PllBuilder(const Graph& g, const std::vector<Vertex>& order, const PllConfig& config)
      : g_(g),
        order_(order),
        threads_(par::resolve_threads(config.threads)),
        bp_(g, order, config.bp_roots, threads_),
        arena_(g),
        root_dist_(g.num_vertices(), kInfDist),
        dist_(g.num_vertices(), kInfDist) {
    HUBLAB_ASSERT_MSG(order.size() == g.num_vertices(), "order must be a permutation");
    // Ranks are stored as 32-bit values next to the kInvalidVertex
    // sentinel, and the rank loop compares a size_t bound, so the vertex
    // count must stay strictly below the Vertex maximum.
    HUBLAB_ASSERT_MSG(g.num_vertices() < static_cast<std::size_t>(kInvalidVertex),
                      "graph too large: vertex count must stay below kInvalidVertex");
    metrics::Registry& reg = metrics::registry();
    reg.gauge("pll.bp_roots").set(static_cast<std::int64_t>(bp_.num_roots()));
    reg.gauge("pll.bp_table_bytes").set(static_cast<std::int64_t>(bp_.memory_bytes()));
  }

  HubLabeling run() {
    build_labels();
    // Single pass: rank-keyed arena entries to vertex-keyed public labels,
    // each row exactly reserved; finalize() sorts rows by hub id.
    const std::size_t n = g_.num_vertices();
    std::vector<std::vector<HubEntry>> labels(n);
    metrics::Histogram& label_sizes = metrics::registry().histogram("pll.label_size");
    for (Vertex v = 0; v < n; ++v) {
      std::vector<HubEntry>& label = labels[v];
      label.reserve(arena_.size(v));
      arena_.for_each(v,
                      [&](const RankEntry& e) { label.push_back(HubEntry{order_[e.rank], e.dist}); });
      label_sizes.record(label.size());
    }
    HubLabeling out(std::move(labels));
    out.finalize();
    return out;
  }

  FlatHubLabeling run_flat() {
    build_labels();
    // Single pass straight into the SoA layout: per row, map ranks to hub
    // ids, sort by hub (ranks are unique, so rows have no duplicates) and
    // append with the sentinel.  Matches FlatHubLabeling(HubLabeling) on
    // the finalized labeling bit for bit.
    const std::size_t n = g_.num_vertices();
    metrics::Histogram& label_sizes = metrics::registry().histogram("pll.label_size");
    std::size_t slots = n;  // one sentinel per label
    for (Vertex v = 0; v < n; ++v) slots += arena_.size(v);
    std::vector<std::size_t> offsets;
    std::vector<Vertex> hubs;
    std::vector<Dist> dists;
    offsets.reserve(n + 1);
    hubs.reserve(slots);
    dists.reserve(slots);
    std::vector<HubEntry> row;
    for (Vertex v = 0; v < n; ++v) {
      offsets.push_back(hubs.size());
      row.clear();
      arena_.for_each(v,
                      [&](const RankEntry& e) { row.push_back(HubEntry{order_[e.rank], e.dist}); });
      label_sizes.record(row.size());
      std::sort(row.begin(), row.end(),
                [](const HubEntry& a, const HubEntry& b) { return a.hub < b.hub; });
      for (const HubEntry& e : row) {
        hubs.push_back(e.hub);
        dists.push_back(e.dist);
      }
      hubs.push_back(kInvalidVertex);
      dists.push_back(kInfDist);
    }
    offsets.push_back(hubs.size());
    return FlatHubLabeling(n, std::move(offsets), std::move(hubs), std::move(dists));
  }

 private:
  /// Run the per-rank pruned searches.  The searches share every piece of
  /// scratch state (frontier buffers, the Dijkstra heap, touched lists),
  /// so per-root work allocates nothing after warm-up.
  void build_labels() {
    const bool weighted = g_.is_weighted();
    const std::size_t num_ranks = order_.size();
    std::size_t start_rank = 0;
    if (bp_.active()) {
      synthesize_table_ranks();
      for (std::size_t i = 0; i < bp_.num_roots(); ++i) {
        frontier_sizes_.record(bp_.peak_frontier(i));
      }
      snapshot_cursors();
      start_rank = bp_.num_roots();
    }
    for (std::size_t k = start_rank; k < num_ranks; ++k) {
      peak_frontier_ = 0;
      if (weighted) {
        pruned_dijkstra(k);
      } else {
        pruned_bfs(k);
      }
      frontier_sizes_.record(peak_frontier_);
    }
    metrics::Registry& reg = metrics::registry();
    reg.sketch("pll.frontier_size").merge(frontier_sizes_);
    reg.counter("pll.visited").add(c_visited_);
    reg.counter("pll.pruned").add(c_pruned_);
    reg.counter("pll.label_pushes").add(c_pushes_);
    reg.counter("pll.bp_dist_prunes").add(c_bp_dist_prunes_);
    reg.counter("pll.bp_mask_prunes").add(c_bp_mask_prunes_);
  }

  /// Emit the labels of every table rank without running a pruned search.
  /// The scalar builder produces exactly the *canonical* labeling: rank k
  /// labels u iff no i < k has d(r_i, u) + d(r_i, r_k) <= d(r_k, u) (a
  /// pruned BFS reaches u at d(r_k, u) precisely when the pair is not
  /// already covered — see docs/performance.md for the argument).  For
  /// k < bp_.num_roots() every distance in that test sits in the tables,
  /// so the entries are computed directly: the k most expensive pruned
  /// searches (the early ranks prune the least) collapse into a rank-major
  /// scan of the distance rows.  Rank-major order keeps each vertex's
  /// arena entries sorted by rank, exactly as the searches would have.
  void synthesize_table_ranks() {
    const std::size_t n = g_.num_vertices();
    const std::size_t num_roots = bp_.num_roots();
    // root_root[k * num_roots + i] = d(r_i, r_k), gathered once so the
    // inner loop touches two contiguous rows.
    std::vector<std::uint32_t> root_root(num_roots * num_roots);
    for (std::size_t k = 0; k < num_roots; ++k) {
      const std::uint16_t* row = bp_.dist_row(order_[k]);
      for (std::size_t i = 0; i < num_roots; ++i) root_root[k * num_roots + i] = row[i];
    }
    for (std::size_t k = 0; k < num_roots; ++k) {
      const std::uint32_t* to_root = root_root.data() + k * num_roots;
      for (Vertex v = 0; v < n; ++v) {
        const std::uint16_t* row = bp_.dist_row(v);
        const std::uint32_t d = row[k];
        // Unreachable pairs get no entry; unreachable candidates below
        // never cover (kUnreachable summands keep t > d).
        if (d == BitParallelRoots::kUnreachable) continue;
        bool covered = false;
        for (std::size_t i = 0; i < k; ++i) {
          if (row[i] + to_root[i] <= d) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        arena_.push(v, RankEntry{static_cast<Vertex>(k), static_cast<Dist>(d)});
        ++c_pushes_;
      }
    }
  }

  /// Record, per vertex, where entries of rank >= bp_.num_roots() will
  /// start: the bit-parallel tables subsume every lower rank, so later
  /// prune scans resume from here instead of rescanning the dense prefix
  /// the highest-ranked hubs put into almost every label.
  void snapshot_cursors() {
    const std::size_t n = g_.num_vertices();
    cursors_.resize(n);
    for (Vertex v = 0; v < n; ++v) cursors_[v] = arena_.cursor(v);
  }

  /// Covered test for u at candidate distance d from the current root
  /// (rank k): true exactly when some hub of rank < k answers (u, root)
  /// within d.  Consults the bit-parallel tables first; `scan_labels`
  /// callers guarantee root_dist_ holds the root's label (ranks >=
  /// bp_.num_roots() suffice — lower ranks are the tables' job).
  [[nodiscard]] Prune covered_by(Vertex u, Dist d, std::size_t bp_limit, bool scan_labels) const {
    if (bp_limit > 0) {
      // Branchless minimum over the table columns: unreachable rows hold
      // kUnreachable, so their sums stay above any finite candidate and
      // need no special case.  The loop vectorizes, which beats an early
      // exit even when the first root would have pruned.
      const std::uint16_t* du = bp_.dist_row(u);
      std::uint32_t best = 0xFFFFFFFFu;
      for (std::size_t i = 0; i < bp_limit; ++i) {
        best = std::min(best, du[i] + bp_root_dist_[i]);
      }
      // best is the exact distance through the best table root — the same
      // candidate the scalar pruning minimum contains.
      if (best <= d) return Prune::kBpDist;
      if (best == d + 1) {
        // Mask shortcut: an S_{-1} intersection certifies a path of
        // length best - 2 through a shared neighbor.  That neighbor is
        // not a pruning candidate itself, but best - 2 < d proves the
        // true distance is below the BFS level, and any vertex reached
        // above its true distance is covered by an earlier hub (see
        // docs/performance.md), so the scalar builder prunes here too.
        const std::uint64_t* mu = bp_.sm1_row(u);
        for (std::size_t i = 0; i < bp_limit; ++i) {
          if (du[i] + bp_root_dist_[i] == best && (mu[i] & bp_root_sm1_[i]) != 0) {
            return Prune::kBpMask;
          }
        }
      }
    }
    if (scan_labels) {
      const LabelArena::Cursor from = cursors_.empty() ? LabelArena::Cursor{} : cursors_[u];
      const bool hit = arena_.scan_from(u, from, [&](const RankEntry& e) {
        const Dist rd = root_dist_[e.rank];
        return rd != kInfDist && e.dist + rd <= d;
      });
      if (hit) return Prune::kLabel;
    }
    return Prune::kNone;
  }

  /// Fill prune_flags_[0..frontier_.size()) with the per-vertex decision.
  /// The scan is read-only (labels mutate only in the commit loop), so
  /// fanning it out over static chunks cannot change any flag — the
  /// labeling stays bit-identical for every thread count.
  void decide_prunes(Dist level, std::size_t bp_limit, bool scan_labels) {
    prune_flags_.resize(frontier_.size());
    if (threads_ > 1 && frontier_.size() >= kParallelFrontierMin && !par::in_parallel_region()) {
      par::parallel_for(0, frontier_.size(), threads_, [&](const par::ChunkRange& chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          prune_flags_[i] = covered_by(frontier_[i], level, bp_limit, scan_labels);
        }
      });
    } else {
      for (std::size_t i = 0; i < frontier_.size(); ++i) {
        prune_flags_[i] = covered_by(frontier_[i], level, bp_limit, scan_labels);
      }
    }
  }

  void count_prune(Prune kind) {
    ++c_pruned_;
    if (kind == Prune::kBpDist) {
      ++c_bp_dist_prunes_;
    } else if (kind == Prune::kBpMask) {
      ++c_bp_mask_prunes_;
    }
  }

  void scatter_root_label(Vertex root, std::size_t min_rank) {
    arena_.for_each(root, [&](const RankEntry& e) {
      if (e.rank >= min_rank) root_dist_[e.rank] = e.dist;
    });
  }

  void clear_root_label(Vertex root, std::size_t min_rank) {
    arena_.for_each(root, [&](const RankEntry& e) {
      if (e.rank >= min_rank) root_dist_[e.rank] = kInfDist;
    });
  }

  void pruned_bfs(std::size_t k) {
    const Vertex root = order_[k];
    const std::size_t bp_limit = std::min(k, bp_.num_roots());
    // Ranks below bp_.num_roots() are answered exactly by the tables;
    // label scans (and the root_dist_ scatter feeding them) only matter
    // once ranks beyond the tables exist.
    const bool scan_labels = k > bp_.num_roots();
    if (scan_labels) scatter_root_label(root, bp_.num_roots());
    if (bp_limit > 0) {
      const std::uint16_t* rd = bp_.dist_row(root);
      const std::uint64_t* rm = bp_.sm1_row(root);
      bp_root_dist_.assign(rd, rd + bp_limit);
      bp_root_sm1_.assign(rm, rm + bp_limit);
    }
    frontier_.assign(1, root);
    touched_.assign(1, root);
    dist_[root] = 0;
    Dist level = 0;
    while (!frontier_.empty()) {
      peak_frontier_ = std::max(peak_frontier_, static_cast<std::uint64_t>(frontier_.size()));
      decide_prunes(level, bp_limit, scan_labels);
      // Commit in frontier order: label pushes and frontier discovery are
      // exactly the scalar builder's, whatever chunking decided the flags.
      for (std::size_t i = 0; i < frontier_.size(); ++i) {
        const Vertex u = frontier_[i];
        ++c_visited_;
        if (prune_flags_[i] != Prune::kNone) {
          count_prune(prune_flags_[i]);
          continue;
        }
        arena_.push(u, RankEntry{static_cast<Vertex>(k), level});
        ++c_pushes_;
        for (const Arc& a : g_.arcs(u)) {
          if (dist_[a.to] == kInfDist) {
            dist_[a.to] = level + 1;
            touched_.push_back(a.to);
            next_.push_back(a.to);
          }
        }
      }
      ++level;
      frontier_.swap(next_);
      next_.clear();
    }
    for (const Vertex v : touched_) dist_[v] = kInfDist;
    if (scan_labels) clear_root_label(root, bp_.num_roots());
  }

  void pruned_dijkstra(std::size_t k) {
    const Vertex root = order_[k];
    scatter_root_label(root, 0);
    using Item = std::pair<Dist, Vertex>;
    // The heap lives in a member buffer reused across roots (push_heap /
    // pop_heap are exactly what priority_queue runs underneath, so the pop
    // order — and hence the labeling — is unchanged).
    heap_.clear();
    touched_.assign(1, root);
    dist_[root] = 0;
    heap_.emplace_back(0, root);
    const auto cmp = [](const Item& a, const Item& b) { return a > b; };
    while (!heap_.empty()) {
      peak_frontier_ = std::max(peak_frontier_, static_cast<std::uint64_t>(heap_.size()));
      const auto [d, u] = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
      if (d != dist_[u]) continue;
      ++c_visited_;
      const Prune kind = covered_by(u, d, 0, true);
      if (kind != Prune::kNone) {
        count_prune(kind);
        continue;
      }
      arena_.push(u, RankEntry{static_cast<Vertex>(k), d});
      ++c_pushes_;
      for (const Arc& a : g_.arcs(u)) {
        const Dist nd = d + a.weight;
        if (nd < dist_[a.to]) {
          if (dist_[a.to] == kInfDist) touched_.push_back(a.to);
          dist_[a.to] = nd;
          heap_.emplace_back(nd, a.to);
          std::push_heap(heap_.begin(), heap_.end(), cmp);
        }
      }
    }
    for (const Vertex v : touched_) dist_[v] = kInfDist;
    clear_root_label(root, 0);
  }

  /// Frontiers below this size are pruned inline: the fan-out overhead
  /// would outweigh the scan.
  static constexpr std::size_t kParallelFrontierMin = 512;

  const Graph& g_;
  const std::vector<Vertex>& order_;
  std::size_t threads_;
  BitParallelRoots bp_;
  LabelArena arena_;
  std::vector<Dist> root_dist_;  ///< rank-indexed distances of current root
  std::vector<Dist> dist_;       ///< per-search tentative distances
  std::vector<LabelArena::Cursor> cursors_;  ///< per-vertex scan start (rank >= bp roots)
  std::vector<std::uint32_t> bp_root_dist_;  ///< current root's table column
  std::vector<std::uint64_t> bp_root_sm1_;   ///< current root's S_{-1} column
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::vector<Vertex> touched_;
  std::vector<Prune> prune_flags_;
  std::vector<std::pair<Dist, Vertex>> heap_;  ///< reused Dijkstra heap
  QuantileSketch frontier_sizes_;  ///< peak frontier / heap size per root
  std::uint64_t peak_frontier_ = 0;
  std::uint64_t c_visited_ = 0;
  std::uint64_t c_pruned_ = 0;
  std::uint64_t c_pushes_ = 0;
  std::uint64_t c_bp_dist_prunes_ = 0;
  std::uint64_t c_bp_mask_prunes_ = 0;
};

}  // namespace

HubLabeling pruned_landmark_labeling(const Graph& g, const std::vector<Vertex>& order,
                                     const PllConfig& config) {
  return PllBuilder(g, order, config).run();
}

HubLabeling pruned_landmark_labeling(const Graph& g, VertexOrder order, std::uint64_t seed,
                                     const PllConfig& config) {
  return pruned_landmark_labeling(g, make_vertex_order(g, order, seed), config);
}

FlatHubLabeling pruned_landmark_labeling_flat(const Graph& g, const std::vector<Vertex>& order,
                                              const PllConfig& config) {
  return PllBuilder(g, order, config).run_flat();
}

}  // namespace hublab
