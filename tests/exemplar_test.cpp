#include "util/exemplar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "util/heavyhitter.hpp"
#include "util/querystats.hpp"

namespace hublab::metrics {
namespace {

Exemplar make_exemplar(std::uint64_t seq, std::uint64_t latency_ns) {
  Exemplar e;
  e.seq = seq;
  e.s = static_cast<std::uint32_t>(seq * 3 + 1);
  e.t = static_cast<std::uint32_t>(seq * 7 + 2);
  e.latency_ns = latency_ns;
  e.scan_cost = seq + 10;
  e.meeting_hub = static_cast<std::uint32_t>(seq % 5);
  return e;
}

// --- ExemplarReservoir ----------------------------------------------------

TEST(ExemplarReservoir, SameSeedAndOfferOrderReproduceTheReservoir) {
  ExemplarReservoir a(42, 2);
  ExemplarReservoir b(42, 2);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Exemplar e = make_exemplar(i, (i % 13) * 100 + 1);
    a.offer(e);
    b.offer(e);
  }
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].le, sb[i].le);
    EXPECT_EQ(sa[i].count, sb[i].count);
    ASSERT_EQ(sa[i].exemplars.size(), sb[i].exemplars.size());
    for (std::size_t j = 0; j < sa[i].exemplars.size(); ++j) {
      EXPECT_EQ(sa[i].exemplars[j].seq, sb[i].exemplars[j].seq);
    }
  }
  EXPECT_EQ(a.count(), 500U);
}

TEST(ExemplarReservoir, BucketsArePow2UpperBoundsAndCountsAreExact) {
  ExemplarReservoir r(1, 4);
  // Latencies 0, 1, 2, 3, 7, 8 land in buckets le=0, le=1, le=3, le=3,
  // le=7, le=15.
  for (const std::uint64_t lat : {0ULL, 1ULL, 2ULL, 3ULL, 7ULL, 8ULL}) {
    r.offer(make_exemplar(lat, lat));
  }
  const auto snap = r.snapshot();
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const ExemplarBucket& b : snap) counts[b.le] = b.count;
  const std::map<std::uint64_t, std::uint64_t> expected = {
      {0, 1}, {1, 1}, {3, 2}, {7, 1}, {15, 1}};
  EXPECT_EQ(counts, expected);
  // Ascending le, retained exemplars ascending by seq.
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LT(snap[i - 1].le, snap[i].le);
  for (const ExemplarBucket& b : snap) {
    EXPECT_LE(b.exemplars.size(), 4U);
    for (std::size_t j = 1; j < b.exemplars.size(); ++j) {
      EXPECT_LT(b.exemplars[j - 1].seq, b.exemplars[j].seq);
    }
  }
}

TEST(ExemplarReservoir, RetentionIsBoundedPerBucket) {
  ExemplarReservoir r(7, 3);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    r.offer(make_exemplar(i, 100));  // all in one bucket
  }
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1U);
  EXPECT_EQ(snap[0].count, 1000U);
  EXPECT_EQ(snap[0].exemplars.size(), 3U);
}

TEST(ExemplarReservoir, MergePreservesCountsAndDeterminism) {
  // Chunked capture merged in chunk order must be reproducible and must
  // keep exact offer counts.
  ExemplarReservoir merged_a(9, 2);
  ExemplarReservoir merged_b(9, 2);
  for (int round = 0; round < 2; ++round) {
    ExemplarReservoir* merged = round == 0 ? &merged_a : &merged_b;
    for (std::uint64_t chunk = 0; chunk < 4; ++chunk) {
      ExemplarReservoir part(9 ^ (chunk + 1), 2);
      for (std::uint64_t i = 0; i < 50; ++i) {
        part.offer(make_exemplar(chunk * 50 + i, (chunk * 50 + i) % 300));
      }
      merged->merge(part);
    }
  }
  EXPECT_EQ(merged_a.count(), 200U);
  const auto sa = merged_a.snapshot();
  const auto sb = merged_b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].count, sb[i].count);
    total += sa[i].count;
    ASSERT_EQ(sa[i].exemplars.size(), sb[i].exemplars.size());
    for (std::size_t j = 0; j < sa[i].exemplars.size(); ++j) {
      EXPECT_EQ(sa[i].exemplars[j].seq, sb[i].exemplars[j].seq);
      EXPECT_EQ(sa[i].exemplars[j].latency_ns, sb[i].exemplars[j].latency_ns);
    }
  }
  EXPECT_EQ(total, 200U);
}

TEST(ExemplarReservoir, ResetDropsCapturesButKeepsCapacity) {
  ExemplarReservoir r(3, 5);
  for (std::uint64_t i = 0; i < 20; ++i) r.offer(make_exemplar(i, i));
  r.reset();
  EXPECT_EQ(r.count(), 0U);
  EXPECT_TRUE(r.snapshot().empty());
  EXPECT_EQ(r.per_bucket(), 5U);
}

// --- SlowQueryLog ---------------------------------------------------------

TEST(SlowQueryLog, ZeroThresholdDisablesCapture) {
  SlowQueryLog log(0, 8);
  log.offer(make_exemplar(1, 1'000'000'000));
  EXPECT_EQ(log.total_slow(), 0U);
  EXPECT_TRUE(log.entries().empty());
}

TEST(SlowQueryLog, CapturesAtOrOverThresholdWorstFirst) {
  SlowQueryLog log(100, 8);
  log.offer(make_exemplar(0, 99));    // below: dropped
  log.offer(make_exemplar(1, 100));   // at threshold: kept
  log.offer(make_exemplar(2, 500));
  log.offer(make_exemplar(3, 300));
  EXPECT_EQ(log.total_slow(), 3U);
  ASSERT_EQ(log.entries().size(), 3U);
  EXPECT_EQ(log.entries()[0].latency_ns, 500U);
  EXPECT_EQ(log.entries()[1].latency_ns, 300U);
  EXPECT_EQ(log.entries()[2].latency_ns, 100U);
}

TEST(SlowQueryLog, CapacityKeepsTheSlowestAndTiesBreakBySeq) {
  SlowQueryLog log(1, 3);
  log.offer(make_exemplar(5, 10));
  log.offer(make_exemplar(1, 40));
  log.offer(make_exemplar(2, 40));
  log.offer(make_exemplar(3, 30));
  log.offer(make_exemplar(4, 20));
  EXPECT_EQ(log.total_slow(), 5U);  // every match counts, evicted or not
  ASSERT_EQ(log.entries().size(), 3U);
  EXPECT_EQ(log.entries()[0].seq, 1U);  // 40ns, earlier seq first
  EXPECT_EQ(log.entries()[1].seq, 2U);  // 40ns
  EXPECT_EQ(log.entries()[2].seq, 3U);  // 30ns
}

TEST(SlowQueryLog, MergeCombinesEntriesAndTotals) {
  SlowQueryLog a(50, 4);
  SlowQueryLog b(50, 4);
  a.offer(make_exemplar(0, 60));
  a.offer(make_exemplar(1, 300));
  b.offer(make_exemplar(2, 200));
  b.offer(make_exemplar(3, 55));
  a.merge(b);
  EXPECT_EQ(a.total_slow(), 4U);
  ASSERT_EQ(a.entries().size(), 4U);
  EXPECT_EQ(a.entries()[0].latency_ns, 300U);
  EXPECT_EQ(a.entries()[1].latency_ns, 200U);
}

// --- SpaceSavingSketch ----------------------------------------------------

TEST(SpaceSavingSketch, ExactUnderCapacity) {
  SpaceSavingSketch s(8);
  s.add(3, 10);
  s.add(1, 5);
  s.add(3, 10);
  s.add(2, 7);
  EXPECT_EQ(s.total_weight(), 32U);
  const auto top = s.top();
  ASSERT_EQ(top.size(), 3U);
  EXPECT_EQ(top[0].key, 3U);
  EXPECT_EQ(top[0].weight, 20U);
  EXPECT_EQ(top[0].error, 0U);
  EXPECT_EQ(top[1].key, 2U);
  EXPECT_EQ(top[2].key, 1U);
}

TEST(SpaceSavingSketch, HeavyKeysSurviveEvictionWithBoundedError) {
  // Capacity 4, one dominant key plus a stream of singletons.  The classic
  // guarantee: any key with weight > W/m is retained, and `weight - error`
  // never exceeds the true weight.
  SpaceSavingSketch s(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    s.add(1000, 10);      // true weight 1000 by the end
    s.add(2000 + i, 1);   // 100 distinct light keys
  }
  EXPECT_EQ(s.total_weight(), 1100U);
  const auto top = s.top(1);
  ASSERT_EQ(top.size(), 1U);
  EXPECT_EQ(top[0].key, 1000U);
  EXPECT_GE(top[0].weight, 1000U);                    // overestimate
  EXPECT_LE(top[0].weight - top[0].error, 1000U);     // lower bound is sound
  EXPECT_EQ(s.size(), 4U);
}

TEST(SpaceSavingSketch, IdenticalStreamsProduceIdenticalSketches) {
  SpaceSavingSketch a(4);
  SpaceSavingSketch b(4);
  for (std::uint64_t i = 0; i < 200; ++i) {
    a.add(i % 17, (i % 3) + 1);
    b.add(i % 17, (i % 3) + 1);
  }
  const auto ta = a.top();
  const auto tb = b.top();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].weight, tb[i].weight);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
}

TEST(SpaceSavingSketch, MergeKeepsTotalsExact) {
  SpaceSavingSketch a(4);
  SpaceSavingSketch b(4);
  a.add(1, 100);
  a.add(2, 50);
  b.add(1, 30);
  b.add(3, 70);
  a.merge(b);
  EXPECT_EQ(a.total_weight(), 250U);
  const auto top = a.top(1);
  ASSERT_EQ(top.size(), 1U);
  EXPECT_EQ(top[0].key, 1U);
  EXPECT_GE(top[0].weight, 130U);
}

TEST(SpaceSavingSketch, ZeroWeightAddsAreIgnored) {
  SpaceSavingSketch s(4);
  s.add(7, 0);
  EXPECT_EQ(s.total_weight(), 0U);
  EXPECT_EQ(s.size(), 0U);
}

// --- QueryStats -----------------------------------------------------------

TEST(QueryStats, RecordsAndClampsWhenEnabled) {
  QueryStats stats;
  stats.labels(4, 9);
  stats.scanned(10);
  stats.matched(3);
  stats.meeting(12);
  if (QueryStats::kEnabled) {
    EXPECT_EQ(stats.hubs_scanned(), 10U);
    EXPECT_EQ(stats.hubs_matched(), 3U);
    EXPECT_EQ(stats.hubs_pruned(), 7U);
    EXPECT_EQ(stats.scan_cost(), 10U);
    EXPECT_EQ(stats.label_size_s(), 4U);
    EXPECT_EQ(stats.label_size_t(), 9U);
    EXPECT_EQ(stats.meeting_hub(), 12U);
  } else {
    EXPECT_EQ(stats.hubs_scanned(), 0U);
    EXPECT_EQ(stats.meeting_hub(), kNoMeetingHub);
  }
  stats.reset();
  EXPECT_EQ(stats.hubs_scanned(), 0U);
  EXPECT_EQ(stats.meeting_hub(), kNoMeetingHub);
}

TEST(QueryStats, PrunedNeverUnderflows) {
  QueryStats stats;
  stats.matched(5);  // matched without scanned: clamp, don't wrap
  EXPECT_EQ(stats.hubs_pruned(), 0U);
}

}  // namespace
}  // namespace hublab::metrics
