// Fixture: mutex-guard -- manual lock()/unlock() instead of RAII.

#include <mutex>

namespace fixture {

struct Locked {
  std::mutex mu;
  int value = 0;
  void update(int v) {
    mu.lock();
    value = v;
    mu.unlock();
  }
};

}  // namespace fixture
