// Fixture: atomic-order -- atomic ops with the implicit seq_cst default.

#include <atomic>

namespace fixture {

struct Counter {
  std::atomic<int> hits;
  void bump() { hits.store(hits.load() + 1); }
};

}  // namespace fixture
