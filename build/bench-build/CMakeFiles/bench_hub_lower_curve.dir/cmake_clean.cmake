file(REMOVE_RECURSE
  "../bench/bench_hub_lower_curve"
  "../bench/bench_hub_lower_curve.pdb"
  "CMakeFiles/bench_hub_lower_curve.dir/bench_hub_lower_curve.cpp.o"
  "CMakeFiles/bench_hub_lower_curve.dir/bench_hub_lower_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hub_lower_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
