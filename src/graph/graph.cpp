#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace hublab {

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (Vertex u = 0; u < num_vertices(); ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_arcs()) / static_cast<double>(num_vertices());
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto out = arcs(u);
  const auto it = std::lower_bound(out.begin(), out.end(), v,
                                   [](const Arc& a, Vertex t) { return a.to < t; });
  return it != out.end() && it->to == v;
}

Dist Graph::edge_weight(Vertex u, Vertex v) const {
  const auto out = arcs(u);
  const auto it = std::lower_bound(out.begin(), out.end(), v,
                                   [](const Arc& a, Vertex t) { return a.to < t; });
  if (it == out.end() || it->to != v) return kInfDist;
  return it->weight;
}

Weight Graph::max_weight() const {
  Weight best = 1;
  for (const Arc& a : arcs_) best = std::max(best, a.weight);
  return best;
}

namespace {

std::string arc_name(Vertex u, std::size_t slot, const Arc& a) {
  return "arc #" + std::to_string(slot) + " (" + std::to_string(u) + " -> " +
         std::to_string(a.to) + ", w=" + std::to_string(a.weight) + ")";
}

}  // namespace

AuditReport Graph::audit() const {
  AuditReport report;
  const std::string ctx = "graph";

  if (offsets_.empty()) {
    report.require(arcs_.empty(), ctx,
                   "empty offset array but " + std::to_string(arcs_.size()) + " arcs stored");
    report.require(!weighted_, ctx, "empty graph flagged as weighted");
    return report;
  }

  const std::size_t n = offsets_.size() - 1;
  report.require(offsets_.front() == 0, ctx,
                 "offsets[0] expected 0, observed " + std::to_string(offsets_.front()));
  report.require(offsets_.back() == arcs_.size(), ctx,
                 "offsets[n] expected " + std::to_string(arcs_.size()) + " (arc count), observed " +
                     std::to_string(offsets_.back()));
  for (std::size_t u = 0; u + 1 < offsets_.size(); ++u) {
    if (!report.require(offsets_[u] <= offsets_[u + 1], ctx,
                        "offsets not monotone at vertex " + std::to_string(u) + ": " +
                            std::to_string(offsets_[u]) + " > " +
                            std::to_string(offsets_[u + 1]))) {
      return report;  // adjacency ranges are meaningless past this point
    }
  }
  if (offsets_.back() > arcs_.size()) return report;

  bool any_nonunit = false;
  for (Vertex u = 0; u < n; ++u) {
    for (std::size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      const Arc& a = arcs_[i];
      if (!report.require(a.to < n, ctx,
                          arc_name(u, i, a) + " target out of range, n=" + std::to_string(n))) {
        continue;
      }
      report.require(a.to != u, ctx, arc_name(u, i, a) + " is a self-loop");
      if (i > offsets_[u]) {
        report.require(arcs_[i - 1].to < a.to, ctx,
                       arc_name(u, i, a) + " not strictly after previous target " +
                           std::to_string(arcs_[i - 1].to) + " (unsorted or duplicate)");
      }
      if (a.weight != 1) any_nonunit = true;
      // Undirected symmetry: the reverse arc exists with equal weight.
      const Dist back = edge_weight(a.to, u);
      report.require(back == a.weight, ctx,
                     arc_name(u, i, a) + " reverse arc " +
                         (back == kInfDist ? std::string("missing")
                                           : "has weight " + std::to_string(back)));
    }
  }
  report.require(weighted_ == any_nonunit, ctx,
                 std::string("weighted flag is ") + (weighted_ ? "true" : "false") +
                     " but a non-unit weight arc " + (any_nonunit ? "exists" : "does not exist"));
  return report;
}

void GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw InvalidArgument("edge endpoint out of range");
  }
  if (u == v) throw InvalidArgument("self-loops are not supported");
  edges_u_.push_back(u);
  edges_v_.push_back(v);
  edge_w_.push_back(weight);
}

Graph GraphBuilder::build() {
  Graph g;
  const std::size_t n = num_vertices_;
  const std::size_t m = edges_u_.size();

  // Counting sort arcs by source; each undirected edge yields two arcs.
  std::vector<std::size_t> counts(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++counts[edges_u_[e] + 1];
    ++counts[edges_v_[e] + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  std::vector<Arc> arcs(2 * m);
  {
    std::vector<std::size_t> cursor = counts;
    for (std::size_t e = 0; e < m; ++e) {
      arcs[cursor[edges_u_[e]]++] = Arc{edges_v_[e], edge_w_[e]};
      arcs[cursor[edges_v_[e]]++] = Arc{edges_u_[e], edge_w_[e]};
    }
  }

  // Sort each adjacency list and collapse parallel edges to min weight.
  std::vector<std::size_t> new_offsets(n + 1, 0);
  std::size_t write = 0;
  for (Vertex u = 0; u < n; ++u) {
    const std::size_t lo = counts[u];
    const std::size_t hi = counts[u + 1];
    std::sort(arcs.begin() + static_cast<std::ptrdiff_t>(lo),
              arcs.begin() + static_cast<std::ptrdiff_t>(hi),
              [](const Arc& a, const Arc& b) {
                return a.to != b.to ? a.to < b.to : a.weight < b.weight;
              });
    new_offsets[u] = write;
    for (std::size_t i = lo; i < hi; ++i) {
      if (write > new_offsets[u] && arcs[write - 1].to == arcs[i].to) continue;  // dup: keep min
      arcs[write++] = arcs[i];
    }
  }
  new_offsets[n] = write;
  arcs.resize(write);
  arcs.shrink_to_fit();

  g.offsets_ = std::move(new_offsets);
  g.arcs_ = std::move(arcs);
  g.weighted_ =
      std::any_of(g.arcs_.begin(), g.arcs_.end(), [](const Arc& a) { return a.weight != 1; });

  edges_u_.clear();
  edges_v_.clear();
  edge_w_.clear();
  return g;
}

}  // namespace hublab
