/// \file flightrec_test.cpp
/// Flight recorder (util/flightrec.hpp): ring recording and dump format,
/// wraparound accounting, async-signal-safe formatting, and the crash path
/// itself — forked children die on SIGSEGV / a failed HUBLAB_ASSERT inside
/// a pooled worker, and the parent checks the dump they leave behind.

#include "util/flightrec.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace hublab {
namespace {

TEST(FormatU64, FormatsDecimalWithoutStdio) {
  char buf[24];
  ASSERT_EQ(fr::format_u64(buf, sizeof buf, 0), 1u);
  EXPECT_EQ(buf[0], '0');
  ASSERT_EQ(fr::format_u64(buf, sizeof buf, 12345), 5u);
  EXPECT_EQ(std::string(buf, 5), "12345");
  const std::uint64_t max = ~std::uint64_t{0};
  ASSERT_EQ(fr::format_u64(buf, sizeof buf, max), 20u);
  EXPECT_EQ(std::string(buf, 20), "18446744073709551615");
}

TEST(FormatU64, ReportsBufferTooSmall) {
  char buf[4];
  EXPECT_EQ(fr::format_u64(buf, 4, 12345), 0u);  // needs 5
  EXPECT_EQ(fr::format_u64(buf, 0, 7), 0u);
  EXPECT_EQ(fr::format_u64(buf, 1, 7), 1u);  // exactly fits
}

std::string dump_text() {
  std::ostringstream os;
  fr::dump(os);
  return os.str();
}

TEST(FlightRecorder, RecordAndDump) {
  const std::uint64_t before = fr::events_recorded();
  fr::record(fr::EventKind::kNote, "unit-test-breadcrumb", 42);
  EXPECT_GT(fr::events_recorded(), before);
  const std::string text = dump_text();
  EXPECT_NE(text.find("hublab-flightrec v1"), std::string::npos);
  EXPECT_NE(text.find("signal -1"), std::string::npos) << text;
  EXPECT_NE(text.find("note 42 unit-test-breadcrumb"), std::string::npos) << text;
}

TEST(FlightRecorder, TruncatesLongText) {
  std::string longtext(fr::kEventTextMax + 30, 'x');
  longtext[0] = 'y';  // make the prefix recognizable
  fr::record(fr::EventKind::kNote, longtext.c_str(), 1);
  const std::string text = dump_text();
  const std::string kept = "y" + std::string(fr::kEventTextMax - 1, 'x');
  EXPECT_NE(text.find(kept), std::string::npos);
  EXPECT_EQ(text.find(kept + "x"), std::string::npos);  // nothing beyond the cap
}

TEST(FlightRecorder, SpanBreadcrumbsFromTracer) {
  Tracer tracer;
  { auto span = tracer.span("fr-span-probe"); }
  const std::string text = dump_text();
  EXPECT_NE(text.find("span-begin 0 fr-span-probe"), std::string::npos) << text;
  EXPECT_NE(text.find("span-end 0 fr-span-probe"), std::string::npos) << text;
}

TEST(FlightRecorder, RingWraparoundReportsDrops) {
  for (std::uint64_t i = 0; i < 2 * fr::kEventsPerThread; ++i) {
    fr::record(fr::EventKind::kNote, "wrap-evt", i);
  }
  const std::string text = dump_text();
  // The newest event survives; the dump's per-thread header admits to the
  // overwritten ones ("dropped <D>" with D > 0 on this thread's line).
  const std::string newest =
      "note " + std::to_string(2 * fr::kEventsPerThread - 1) + " wrap-evt";
  EXPECT_NE(text.find(newest), std::string::npos) << text;
  bool some_thread_dropped = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t pos = line.find("dropped ");
    if (pos == std::string::npos) continue;
    if (std::stoull(line.substr(pos + 8)) > 0) some_thread_dropped = true;
  }
  EXPECT_TRUE(some_thread_dropped) << text;
}

TEST(FlightRecorder, DumpToFdMatchesStreamDump) {
  // dump_to_fd is the handler's path: exercise it against a real fd and
  // check the same document shape comes out.
  char path[] = "/tmp/hublab_fr_fd_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  fr::record(fr::EventKind::kNote, "fd-dump-probe", 9);
  fr::dump_to_fd(fd, SIGABRT);
  close(fd);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("hublab-flightrec v1"), std::string::npos);
  EXPECT_NE(text.find("signal 6"), std::string::npos) << text;
  EXPECT_NE(text.find("fd-dump-probe"), std::string::npos);
  std::remove(path);
}

// --- crash-path tests: everything below runs the risky part in a forked
// --- child so the gtest process never installs the signal handlers itself
// --- (install is idempotent process-wide; a parent install would pin the
// --- dump path for every later child).

std::string child_dump_path(const char* tag) {
  return testing::TempDir() + "hublab_fr_" + tag + "_" + std::to_string(getpid()) + ".dump";
}

int wait_for(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightRecorderCrash, InstallIsIdempotentFirstPathWins) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    fr::install_crash_handler("first.dump");
    if (!fr::crash_handler_installed()) _exit(10);
    fr::install_crash_handler("second.dump");
    if (std::strcmp(fr::dump_path(), "first.dump") != 0) _exit(11);
    _exit(0);
  }
  const int status = wait_for(pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(FlightRecorderCrash, AssertFailureInWorkerProducesDump) {
  const std::string path = child_dump_path("assert");
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    fr::install_crash_handler(path.c_str());
    Tracer tracer;
    auto span = tracer.span("doomed-phase");
    // The assert fires inside a parallel loop body — the scenario the
    // recorder exists for: which phase/chunk was live when a worker died.
    // (parallel_for cuts [0,8) into `threads` chunks, so the chunk index
    // that must trip is 1, not an item index.)
    par::parallel_for(0, 8, 2, [](const par::ChunkRange& chunk) {
      fr::record(fr::EventKind::kNote, "chunk-running", chunk.index);
      HUBLAB_ASSERT_MSG(chunk.index != 1, "flightrec crash test");
    });
    _exit(0);  // not reached
  }
  const int status = wait_for(pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT)
      << "status=" << status;
  const std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty()) << "no dump at " << path;
  EXPECT_NE(dump.find("hublab-flightrec v1"), std::string::npos);
  EXPECT_NE(dump.find("signal 6"), std::string::npos) << dump;
  EXPECT_NE(dump.find("span-begin 0 doomed-phase"), std::string::npos) << dump;
  EXPECT_NE(dump.find("chunk-running"), std::string::npos) << dump;
  // The failing expression itself is the most recent breadcrumb.
  EXPECT_NE(dump.find("assert"), std::string::npos) << dump;
  EXPECT_NE(dump.find("chunk.index != 1"), std::string::npos) << dump;
  std::remove(path.c_str());
}

TEST(FlightRecorderCrash, SegfaultProducesDump) {
  const std::string path = child_dump_path("segv");
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    fr::install_crash_handler(path.c_str());
    fr::record(fr::EventKind::kNote, "about-to-corrupt", 7);
    volatile int* wild = reinterpret_cast<volatile int*>(0xdeadULL);
    *wild = 1;  // unmapped page -> SIGSEGV
    _exit(0);   // not reached
  }
  const int status = wait_for(pid);
  // Sanitizer runtimes may claim the fault before our handler; only when
  // the child genuinely died on SIGSEGV is the dump required.
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGSEGV) {
    GTEST_SKIP() << "SIGSEGV intercepted by the runtime (status=" << status << ")";
  }
  const std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty()) << "no dump at " << path;
  EXPECT_NE(dump.find("signal 11"), std::string::npos) << dump;
  EXPECT_NE(dump.find("about-to-corrupt"), std::string::npos) << dump;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hublab
