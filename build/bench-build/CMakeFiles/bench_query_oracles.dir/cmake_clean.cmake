file(REMOVE_RECURSE
  "../bench/bench_query_oracles"
  "../bench/bench_query_oracles.pdb"
  "CMakeFiles/bench_query_oracles.dir/bench_query_oracles.cpp.o"
  "CMakeFiles/bench_query_oracles.dir/bench_query_oracles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
