#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/induced_matching.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(InducedMatching, SingleEdgeIsInduced) {
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_induced_matching(g, {{0, 1}}));
}

TEST(InducedMatching, AdjacentEdgesNotAMatching) {
  const Graph g = gen::path(4);
  EXPECT_FALSE(is_matching_in_graph(g, {{0, 1}, {1, 2}}));
  EXPECT_FALSE(is_induced_matching(g, {{0, 1}, {1, 2}}));
}

TEST(InducedMatching, PathEndpointsTouchingMiddle) {
  // In P4 = 0-1-2-3, edges {0,1} and {2,3} form a matching but the edge
  // {1,2} connects their endpoints, so it is NOT induced.
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_matching_in_graph(g, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_induced_matching(g, {{0, 1}, {2, 3}}));
}

TEST(InducedMatching, DistantEdgesAreInduced) {
  const Graph g = gen::path(6);
  EXPECT_TRUE(is_induced_matching(g, {{0, 1}, {3, 4}}));
}

TEST(InducedMatching, NonEdgeRejected) {
  const Graph g = gen::path(4);
  EXPECT_FALSE(is_matching_in_graph(g, {{0, 2}}));
}

TEST(InducedMatching, EmptyMatchingIsInduced) {
  const Graph g = gen::path(4);
  EXPECT_TRUE(is_induced_matching(g, {}));
}

TEST(GreedyPartition, CoversAllEdges) {
  const Graph g = gen::grid(4, 4);
  const auto part = greedy_induced_partition(g);
  EXPECT_TRUE(is_valid_induced_partition(g, part));
  EXPECT_EQ(part.num_edges(), g.num_edges());
}

TEST(GreedyPartition, CompleteGraphNeedsManyClasses) {
  // In K_n every induced matching has exactly one edge.
  const Graph g = gen::complete(6);
  const auto part = greedy_induced_partition(g);
  EXPECT_TRUE(is_valid_induced_partition(g, part));
  EXPECT_EQ(part.num_matchings(), g.num_edges());
  EXPECT_EQ(part.min_matching_size(), 1u);
}

TEST(GreedyPartition, PerfectMatchingGraphOneClass) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const auto part = greedy_induced_partition(g);
  EXPECT_EQ(part.num_matchings(), 1u);
  EXPECT_EQ(part.avg_matching_size(), 3.0);
}

class GreedyPartitionRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyPartitionRandom, AlwaysValid) {
  Rng rng(GetParam());
  const Graph g = gen::gnm(40, 120, rng);
  const auto part = greedy_induced_partition(g);
  EXPECT_TRUE(is_valid_induced_partition(g, part));
  EXPECT_EQ(part.num_edges(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPartitionRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(PartitionValidation, RejectsDuplicateEdge) {
  const Graph g = gen::path(5);
  InducedMatchingPartition p;
  p.matchings.push_back({{0, 1}});
  p.matchings.push_back({{0, 1}, {3, 4}});
  EXPECT_FALSE(is_valid_induced_partition(g, p));
}

TEST(PartitionValidation, RejectsIncompleteCover) {
  const Graph g = gen::path(5);
  InducedMatchingPartition p;
  p.matchings.push_back({{0, 1}});
  EXPECT_FALSE(is_valid_induced_partition(g, p));
}

TEST(Repair, DropsOffendingEdges) {
  const Graph g = gen::path(4);
  const EdgeList repaired = repair_to_induced(g, {{0, 1}, {2, 3}});
  EXPECT_EQ(repaired.size(), 1u);
  EXPECT_TRUE(is_induced_matching(g, repaired));
}

TEST(Repair, KeepsAlreadyInduced) {
  const Graph g = gen::path(6);
  const EdgeList m{{0, 1}, {3, 4}};
  EXPECT_EQ(repair_to_induced(g, m), m);
}

TEST(Repair, SkipsNonEdges) {
  const Graph g = gen::path(6);
  const EdgeList repaired = repair_to_induced(g, {{0, 3}, {4, 5}});
  EXPECT_EQ(repaired.size(), 1u);
  EXPECT_EQ(repaired[0], (std::pair<Vertex, Vertex>{4, 5}));
}

TEST(PartitionStats, MinAndAverage) {
  InducedMatchingPartition p;
  p.matchings.push_back({{0, 1}});
  p.matchings.push_back({{2, 3}, {4, 5}, {6, 7}});
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_EQ(p.min_matching_size(), 1u);
  EXPECT_DOUBLE_EQ(p.avg_matching_size(), 2.0);
}

}  // namespace
}  // namespace hublab
