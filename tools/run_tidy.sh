#!/usr/bin/env bash
# clang-tidy over every first-party translation unit, using the compile
# database of an existing build directory.  Degrades to a skip (exit 0) when
# clang-tidy is not installed so the `run-tidy` target stays callable on
# minimal toolchains; CI images with clang get the real gate.
#
# Usage: run_tidy.sh [SOURCE_DIR] [BUILD_DIR]
set -u

src_dir="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
build_dir="${2:-${src_dir}/build}"

tidy="${HUBLAB_CLANG_TIDY:-}"
if [ -z "${tidy}" ] || [ "${tidy}" = "HUBLAB_CLANG_TIDY_EXE-NOTFOUND" ]; then
  tidy="$(command -v clang-tidy || true)"
fi
if [ -z "${tidy}" ]; then
  echo "run-tidy: clang-tidy not found on PATH; skipping (install clang-tidy to enable the gate)"
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run-tidy: ${build_dir}/compile_commands.json not found; configure first" >&2
  exit 1
fi

cd "${src_dir}" || exit 1
files=$(find src tools tests -name '*.cpp' | sort)

status=0
for f in ${files}; do
  # Only lint files the build actually compiles (check.sh configures the
  # full tree, so in practice this is every first-party .cpp).
  if ! grep -q "$(basename "${f}")" "${build_dir}/compile_commands.json"; then
    echo "run-tidy: ${f} not in compile database; skipping"
    continue
  fi
  echo "run-tidy: ${f}"
  "${tidy}" -p "${build_dir}" --quiet --warnings-as-errors='*' "${f}" || status=1
done

if [ "${status}" -ne 0 ]; then
  echo "run-tidy: FAILED (findings above)" >&2
else
  echo "run-tidy: clean"
fi
exit "${status}"
