#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/metrics.hpp"
#include "util/perfcount.hpp"
#include "util/timer.hpp"

/// \file trace.hpp
/// Scoped-span phase tracing.  A `Tracer` records a tree of named spans
/// (RAII `Span` objects); each completed span carries its wall time and the
/// per-counter deltas of the metrics registry over its lifetime, so a phase
/// report reads "build-pll: 1.2s, pll.visited +48210, pll.pruned +31984".
///
/// When hardware counters are enabled (util/perfcount.hpp, opt-in via
/// `perf::set_enabled`), each span additionally carries the cycle /
/// instruction / cache-miss deltas over its lifetime (`Record::hw`), which
/// the bench reports emit as the per-phase `hw` object (schema v3).  Spans
/// also record the worker index of the opening thread (`Record::tid`) so
/// Chrome traces lay out on real lanes, and leave begin/end breadcrumbs in
/// the flight recorder (util/flightrec.hpp) for post-mortem dumps.
///
/// Output formats: an indented tree (`write_tree`), and Chrome
/// `trace_event` JSON (`write_chrome_trace`) loadable in `chrome://tracing`
/// / Perfetto.  With `HUBLAB_METRICS=OFF` spans still measure wall time;
/// the counter deltas are simply empty.
///
/// Spans must close LIFO (natural with scoping).  Not thread-safe: one
/// tracer belongs to one thread of execution, like the benches and CLI
/// that drive it.

namespace hublab {

class Tracer {
 public:
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  struct Record {
    std::string name;
    double start_s = 0.0;  ///< relative to tracer construction
    double dur_s = 0.0;
    int depth = 0;
    std::size_t parent = kNoParent;
    std::uint64_t tid = 0;  ///< par::worker_index() of the opening thread
    bool open = true;
    std::vector<metrics::CounterSnapshot> counter_deltas;  ///< nonzero deltas only
    perf::HwCounters hw;  ///< hardware-counter deltas; hw.valid when captured
  };

  /// RAII handle: closes its span on destruction (or explicit end()).
  class Span {
   public:
    Span(Span&& other) noexcept : tracer_(other.tracer_), index_(other.index_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /// Close the span now; idempotent.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t index) : tracer_(tracer), index_(index) {}
    Tracer* tracer_;
    std::size_t index_;
  };

  /// Spans report counter deltas against `reg` (default: the global
  /// registry the instrumented library code writes to).
  explicit Tracer(metrics::Registry& reg = metrics::registry());

  /// Open a nested span.  Keep the returned handle alive for the duration
  /// of the phase; spans close in LIFO order.
  [[nodiscard]] Span span(std::string name);

  /// Completed and open spans in creation order.
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// Seconds since the tracer was constructed.
  [[nodiscard]] double elapsed_s() const { return timer_.elapsed_s(); }

  /// Indented tree: one line per span with wall time and counter deltas.
  void write_tree(std::ostream& out) const;

  /// Chrome trace_event JSON ("X" complete events; deltas in args).
  void write_chrome_trace(std::ostream& out) const;

  /// Drop all records and open-span state; the clock keeps running.
  void clear();

 private:
  void end_span(std::size_t index);

  metrics::Registry& registry_;
  Timer timer_;
  std::vector<Record> records_;
  std::vector<std::size_t> open_stack_;
  /// Registry counter snapshot at each open span's start, parallel to
  /// open_stack_.
  std::vector<std::vector<metrics::CounterSnapshot>> open_snapshots_;
  /// Hardware-counter snapshot at each open span's start, parallel to
  /// open_stack_ (invalid entries when counters are disabled).
  std::vector<perf::HwCounters> open_hw_;
};

}  // namespace hublab
