// Style pass: the line-level conventions inherited from the original
// single-pass linter.  Rules: rng-source, stdout-in-library, raw-io,
// raw-thread, pragma-once, include-hygiene, file-doc, assert-guard,
// self-contained, bench-harness.
//
// Banned tokens are assembled from fragments below so this file does not
// flag itself.

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

void check_banned_tokens(const SourceFile& f, Sink& sink) {
  // Identifiers assembled from fragments so this file stays clean.
  const std::string k_mt = std::string("mt19") + "937";
  const std::string k_mt64 = k_mt + "_64";
  const std::string k_rand = std::string("ra") + "nd";
  const std::string k_srand = "s" + k_rand;
  const std::string k_rand_dev = k_rand + "om_device";
  const std::string k_rand_eng = "default_" + k_rand + "om_engine";
  const std::string k_minstd = std::string("minstd_") + k_rand;
  const std::vector<std::string> rng_idents = {k_mt,    k_mt64,     k_rand,    k_srand,
                                               k_rand_dev, k_rand_eng, k_minstd};

  const std::string k_cout = std::string("co") + "ut";
  const std::string k_printf = std::string("print") + "f";
  const std::string k_puts = std::string("pu") + "ts";
  const std::string k_putchar = std::string("put") + "char";
  const std::string k_stdout = std::string("std") + "out";
  const std::vector<std::string> stdout_idents = {k_cout, k_printf, k_puts, k_putchar,
                                                  k_stdout};

  const bool rng_allowed = f.rel == "src/util/rng.hpp";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!rng_allowed) {
      for (const std::string& ident : rng_idents) {
        if (contains_identifier(f.code[i], ident)) {
          sink.add(f, i + 1, "rng-source",
                   "`" + ident + "` bypasses the deterministic hublab::Rng; " +
                       "take an explicit seed and use util/rng.hpp");
        }
      }
    }
    if (f.in_src) {
      for (const std::string& ident : stdout_idents) {
        if (contains_identifier(f.code[i], ident)) {
          sink.add(f, i + 1, "stdout-in-library",
                   "`" + ident + "` writes to stdout from library code; report through " +
                       "return values/exceptions or a caller-supplied std::ostream");
        }
      }
    }
  }
}

/// raw-io: src/ never writes diagnostics through fprintf / std::cerr
/// directly; everything routes through the structured logger (util/log.hpp),
/// whose sink (log.cpp) is the one sanctioned writer.
void check_raw_io(const SourceFile& f, Sink& sink) {
  if (f.rel == "src/util/log.cpp") return;  // the logger's default sink
  const std::string k_fprintf = std::string("fpr") + "intf";
  const std::string k_cerr = std::string("ce") + "rr";
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const std::string& ident : {k_fprintf, k_cerr}) {
      if (contains_identifier(f.code[i], ident)) {
        sink.add(f, i + 1, "raw-io",
                 "`" + ident + "` bypasses the structured logger; use HUBLAB_LOG_* " +
                     "(util/log.hpp), or mark an untrusted crash path with " +
                     "`hublab-lint-allow(raw-io)`");
      }
    }
  }
}

/// raw-thread: src/ never spawns threads directly -- std::thread,
/// std::jthread and std::async are confined to util/parallel.cpp, the pool
/// behind parallel_for (docs/performance.md).
void check_raw_thread(const SourceFile& f, Sink& sink) {
  if (f.rel == "src/util/parallel.cpp") return;  // the sanctioned pool
  const std::string k_thread = std::string("th") + "read";
  const std::string k_jthread = "j" + k_thread;
  const std::string k_async = std::string("as") + "ync";
  const std::string rule = "raw-" + k_thread;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const std::string& ident : {k_thread, k_jthread, k_async}) {
      if (contains_identifier(f.code[i], ident)) {
        sink.add(f, i + 1, rule,
                 "`" + ident + "` spawns threads outside util/parallel.cpp; use parallel_for " +
                     "(util/parallel.hpp) so results stay deterministic across thread counts, " +
                     "or mark a sanctioned use with `hublab-lint-allow(" + rule + ")`");
      }
    }
  }
}

void check_pragma_once(const SourceFile& f, Sink& sink) {
  for (const std::string& line : f.code) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank / comment-only line
    if (line.compare(first, 12, "#pragma once") == 0) return;
    break;
  }
  sink.add(f, 1, "pragma-once", "headers start with #pragma once");
}

void check_includes(const SourceFile& f, const Options& opt, Sink& sink) {
  for (const IncludeEdge& inc : f.includes) {
    if (inc.target.find("..") != std::string::npos) {
      sink.add(f, inc.line, "include-hygiene",
               "#include \"" + inc.target + "\" uses a relative ../ path; include project " +
                   "headers by their path from src/");
      continue;
    }
    if (inc.quoted) {
      // Quoted includes are project headers addressed from src/ (library)
      // or from the repo root (tools/ headers used by tools and tests).
      const bool from_src = fs::exists(opt.root / "src" / inc.target);
      const bool from_root = fs::exists(opt.root / inc.target);
      if (!from_src && !from_root) {
        sink.add(f, inc.line, "include-hygiene",
                 "#include \"" + inc.target + "\" does not resolve under src/ or the repo " +
                     "root; system headers use <...>, project headers their canonical path");
      }
    }
  }
}

/// Public mutating APIs must validate before mutating.  Finds definitions
/// of add_*/insert_*/remove_*/set_* functions and requires HUBLAB_ASSERT*
/// or a throw in the body.  `add_vertex` is exempt: appending a fresh
/// vertex has no precondition.
void check_mutator_guards(const SourceFile& f, Sink& sink) {
  const std::string& text = f.flat;
  static const std::vector<std::string> kPrefixes = {"add_", "insert_", "remove_", "set_"};
  static const std::vector<std::string> kExempt = {"add_vertex"};

  std::size_t pos = 0;
  while (pos < text.size()) {
    // Find the next identifier starting with a mutator prefix.
    std::size_t best = std::string::npos;
    for (const std::string& prefix : kPrefixes) {
      std::size_t p = text.find(prefix, pos);
      while (p != std::string::npos && p > 0 && is_ident_char(text[p - 1])) {
        p = text.find(prefix, p + 1);
      }
      if (p != std::string::npos && (best == std::string::npos || p < best)) best = p;
    }
    if (best == std::string::npos) break;

    std::size_t end = best;
    while (end < text.size() && is_ident_char(text[end])) ++end;
    const std::string name = text.substr(best, end - best);
    pos = end;

    if (std::find(kExempt.begin(), kExempt.end(), name) != kExempt.end()) continue;
    // Member calls (`b.add_edge(...)`, `ptr->insert_edge(...)`) are uses,
    // not definitions.
    if (best > 0 && (text[best - 1] == '.' ||
                     (best > 1 && text[best - 2] == '-' && text[best - 1] == '>'))) {
      continue;
    }
    std::size_t after = end;
    while (after < text.size() && std::isspace(static_cast<unsigned char>(text[after])) != 0) {
      ++after;
    }
    if (after >= text.size() || text[after] != '(') continue;

    // Match the parameter list, then look for `{` (definition) vs `;`.
    std::size_t depth = 0;
    std::size_t scan = after;
    while (scan < text.size()) {
      if (text[scan] == '(') ++depth;
      if (text[scan] == ')' && --depth == 0) break;
      ++scan;
    }
    if (scan >= text.size()) continue;
    ++scan;
    while (scan < text.size() && text[scan] != '{' && text[scan] != ';' && text[scan] != ',' &&
           text[scan] != ')' && text[scan] != '=') {
      ++scan;
    }
    if (scan >= text.size() || text[scan] != '{') continue;  // declaration or call

    // Brace-match the body.
    const std::size_t body_begin = scan;
    std::size_t braces = 0;
    while (scan < text.size()) {
      if (text[scan] == '{') ++braces;
      if (text[scan] == '}' && --braces == 0) break;
      ++scan;
    }
    const std::string body = text.substr(body_begin, scan - body_begin);
    const bool guarded = body.find("HUBLAB_ASSERT") != std::string::npos ||
                         contains_identifier(body, "throw");
    if (!guarded) {
      sink.add(f, f.flat_line[std::min(best, f.flat_line.size() - 1)], "assert-guard",
               "public mutating API `" + name +
                   "` has no HUBLAB_ASSERT*/throw precondition before mutating");
    }
    pos = scan;
  }
}

void check_header_self_containment(const std::vector<SourceFile>& files, const Options& opt,
                                   Sink& sink) {
  const fs::path probe = fs::temp_directory_path() / "hublab_lint_header_probe.cpp";
  for (const SourceFile& f : files) {
    if (!f.is_header || !f.in_src) continue;
    {
      std::ofstream out(probe, std::ios::trunc);
      out << "#include \"" << f.rel.substr(4) << "\"\n";  // path from src/
    }
    const std::string cmd = opt.compiler + " -std=c++20 -fsyntax-only -I \"" +
                            (opt.root / "src").string() + "\" \"" + probe.string() + "\"";
    if (std::system(cmd.c_str()) != 0) {
      sink.add(f, 1, "self-contained",
               "header does not compile on its own; add the includes it is missing");
    }
  }
  fs::remove(probe);
}

}  // namespace

void pass_style(const std::vector<SourceFile>& files, const Options& opt, Sink& sink) {
  for (const SourceFile& f : files) {
    check_banned_tokens(f, sink);
    if (f.in_src) {
      check_raw_io(f, sink);
      check_raw_thread(f, sink);
    }
    check_includes(f, opt, sink);
    // Raw text, not stripped lines: the include target lives inside quotes.
    if (f.rel.rfind("bench/bench_", 0) == 0 && !f.is_header &&
        f.text.find("#include \"bench/harness.hpp\"") == std::string::npos) {
      sink.add(f, 1, "bench-harness",
               "bench binaries construct a bench::Harness (bench/harness.hpp) so they honour "
               "--smoke/--json-out and emit schema-valid BENCH_*.json");
    }
    if (f.is_header) {
      check_pragma_once(f, sink);
      if (f.in_src && f.text.find("\\file") == std::string::npos) {
        sink.add(f, 1, "file-doc",
                 "src/ headers document their role with a `/// \\file` comment");
      }
    }
    if (f.in_src && (f.rel.rfind("src/graph/", 0) == 0 || f.rel.rfind("src/hub/", 0) == 0 ||
                     f.rel.rfind("src/lowerbound/", 0) == 0)) {
      check_mutator_guards(f, sink);
    }
  }
  if (opt.check_headers) check_header_self_containment(files, opt, sink);
}

}  // namespace hublab::lint
