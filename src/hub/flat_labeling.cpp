#include "hub/flat_labeling.hpp"

#include <algorithm>
#include <numeric>

#include "util/metrics.hpp"

namespace hublab {

FlatHubLabeling::FlatHubLabeling(const HubLabeling& labels)
    : num_vertices_(labels.num_vertices()) {
  const std::size_t slots = labels.total_hubs() + num_vertices_;  // one sentinel per label
  offsets_.reserve(num_vertices_ + 1);
  hubs_.reserve(slots);
  dists_.reserve(slots);
  for (Vertex v = 0; v < num_vertices_; ++v) {
    const std::size_t first = hubs_.size();
    offsets_.push_back(first);
    for (const HubEntry& e : labels.label(v)) {
      HUBLAB_ASSERT_MSG(e.hub != kInvalidVertex, "kInvalidVertex is reserved as the sentinel");
      HUBLAB_ASSERT_MSG(hubs_.size() == first || hubs_.back() < e.hub,
                        "FlatHubLabeling requires a finalized (sorted, deduplicated) labeling");
      hubs_.push_back(e.hub);
      dists_.push_back(e.dist);
    }
    hubs_.push_back(kInvalidVertex);
    dists_.push_back(kInfDist);
  }
  offsets_.push_back(hubs_.size());
}

FlatHubLabeling::FlatHubLabeling(std::size_t num_vertices, std::vector<std::size_t> offsets,
                                 std::vector<Vertex> hubs, std::vector<Dist> dists)
    : num_vertices_(num_vertices),
      offsets_(std::move(offsets)),
      hubs_(std::move(hubs)),
      dists_(std::move(dists)) {
  HUBLAB_ASSERT_MSG(offsets_.size() == num_vertices_ + 1, "offsets must have n + 1 entries");
  HUBLAB_ASSERT_MSG(hubs_.size() == dists_.size(), "hub/dist arrays must be parallel");
  HUBLAB_ASSERT_MSG(offsets_.empty() || offsets_.back() == hubs_.size(),
                    "final offset must close the hub array");
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    const std::size_t first = offsets_[v];
    const std::size_t last = offsets_[v + 1] - 1;  // sentinel slot
    HUBLAB_ASSERT_MSG(hubs_[last] == kInvalidVertex && dists_[last] == kInfDist,
                      "every label must be sentinel-terminated");
    for (std::size_t i = first + 1; i < last; ++i) {
      HUBLAB_ASSERT_MSG(hubs_[i - 1] < hubs_[i], "labels must be sorted and deduplicated");
    }
  }
}

void FlatHubLabeling::query_batch(std::span<const std::pair<Vertex, Vertex>> pairs,
                                  std::span<HubQueryResult> out) const {
  query_batch_tier(pairs, out, simd::active_tier());
}

namespace {

/// Below this block size the per-pair merge kernel wins: the stamp-table
/// path pays an O(num_vertices) scratch allocation per call, which only
/// amortizes over enough pairs.  Both paths are byte-identical, so the
/// threshold is invisible in the answers.
constexpr std::size_t kStampBatchThreshold = 32;

}  // namespace

void FlatHubLabeling::query_batch_tier(std::span<const std::pair<Vertex, Vertex>> pairs,
                                       std::span<HubQueryResult> out, simd::Tier tier) const {
  HUBLAB_ASSERT_MSG(pairs.size() == out.size(), "query_batch: pairs and out must be parallel");
  // Group the block by source vertex: a deterministic stable index sort,
  // so consecutive queries share the same source label (the cache-blocking
  // win) while results land at their original positions.
  std::vector<std::uint32_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return pairs[x].first < pairs[y].first;
  });
  std::uint64_t groups = 0;
  Vertex prev_source = kInvalidVertex;  // never a valid source
  if (pairs.size() >= kStampBatchThreshold) {
    // Stamp-table path: scatter each source group's label into dense
    // per-hub tables once (`stamp[h] == group` marks membership, sdist[h]
    // the distance), then answer every query of the group with one linear
    // probe scan of its target label — no merge, no data-dependent
    // branches, and the tables stay cache-resident across the group.
    const simd::ProbeFn probe = simd::probe_for(tier);  // one dispatch per block
    std::vector<std::uint32_t> stamp(num_vertices_, 0);
    std::vector<Dist> sdist(num_vertices_);
    for (const std::uint32_t idx : order) {
      const auto [u, v] = pairs[idx];
      HUBLAB_ASSERT_RANGE(u, num_vertices_);
      HUBLAB_ASSERT_RANGE(v, num_vertices_);
      if (u != prev_source) {
        ++groups;
        HUBLAB_ASSERT_MSG(groups < kInvalidVertex, "query_batch: group stamp overflow");
        const Vertex* sh = hubs_.data() + offsets_[u];
        const Dist* sd = dists_.data() + offsets_[u];
        const std::size_t sn = label_size(u);
        for (std::size_t i = 0; i < sn; ++i) {
          stamp[sh[i]] = static_cast<std::uint32_t>(groups);
          sdist[sh[i]] = sd[i];
        }
        prev_source = u;
      }
      out[idx] = probe(hubs_.data() + offsets_[v], dists_.data() + offsets_[v], label_size(v),
                       stamp.data(), sdist.data(), static_cast<std::uint32_t>(groups));
    }
  } else {
    const simd::KernelFn kernel = simd::kernel_for(tier);
    for (const std::uint32_t idx : order) {
      const auto [u, v] = pairs[idx];
      HUBLAB_ASSERT_RANGE(u, num_vertices_);
      HUBLAB_ASSERT_RANGE(v, num_vertices_);
      if (u != prev_source) {
        ++groups;
        prev_source = u;
      }
      out[idx] = kernel(hubs_.data() + offsets_[u], dists_.data() + offsets_[u], label_size(u),
                        hubs_.data() + offsets_[v], dists_.data() + offsets_[v], label_size(v));
    }
  }
  metrics::Registry& reg = metrics::registry();
  reg.counter("query.batch.calls").add(1);
  reg.counter("query.batch.pairs").add(pairs.size());
  reg.counter("query.batch.source_groups").add(groups);
}

}  // namespace hublab
