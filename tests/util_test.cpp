#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hublab {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(5);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  shuffle(w, rng);
  EXPECT_NE(v, w);
}

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<bool> bits{true, false, false, true, true, true, false, true, false};
  for (bool b : bits) w.put_bit(b);
  const BitString s = w.take();
  EXPECT_EQ(s.size_bits(), bits.size());
  BitReader r(s);
  for (bool b : bits) EXPECT_EQ(r.get_bit(), b);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, FixedWidthRoundTrip) {
  BitWriter w;
  w.put_bits(0x2a, 6);
  w.put_bits(0, 0);
  w.put_bits(0xffffffffffffffffULL, 64);
  w.put_bits(5, 3);
  const BitString s = w.take();
  BitReader r(s);
  EXPECT_EQ(r.get_bits(6), 0x2au);
  EXPECT_EQ(r.get_bits(0), 0u);
  EXPECT_EQ(r.get_bits(64), 0xffffffffffffffffULL);
  EXPECT_EQ(r.get_bits(3), 5u);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.put_bits(3, 2);
  const BitString s = w.take();
  BitReader r(s);
  (void)r.get_bits(2);
  EXPECT_THROW((void)r.get_bit(), ParseError);
}

TEST(BitStream, GammaKnownCodes) {
  // gamma(1) = "1"; gamma(2) = "010" reversed-LSB layout: check lengths.
  EXPECT_EQ(gamma_code_length(1), 1u);
  EXPECT_EQ(gamma_code_length(2), 3u);
  EXPECT_EQ(gamma_code_length(3), 3u);
  EXPECT_EQ(gamma_code_length(4), 5u);
  EXPECT_EQ(gamma_code_length(255), 15u);
}

TEST(BitStream, DeltaShorterThanGammaForLarge) {
  EXPECT_LT(delta_code_length(1u << 20), gamma_code_length(1u << 20));
}

class GammaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaRoundTrip, Value) {
  const std::uint64_t v = GetParam();
  BitWriter w;
  w.put_gamma(v);
  w.put_delta(v);
  w.put_gamma0(v - 1);
  w.put_delta0(v - 1);
  const BitString s = w.take();
  EXPECT_EQ(s.size_bits(), gamma_code_length(v) + delta_code_length(v) +
                               gamma_code_length(v) + delta_code_length(v));
  BitReader r(s);
  EXPECT_EQ(r.get_gamma(), v);
  EXPECT_EQ(r.get_delta(), v);
  EXPECT_EQ(r.get_gamma0(), v - 1);
  EXPECT_EQ(r.get_delta0(), v - 1);
}

INSTANTIATE_TEST_SUITE_P(Values, GammaRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1023, 1024, 999983,
                                           1ULL << 32, (1ULL << 62) + 12345));

TEST(BitStream, InterleavedCodesRoundTrip) {
  Rng rng(99);
  std::vector<std::uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_below(1'000'000) + 1;
    values.push_back(v);
    if (i % 2 == 0) w.put_gamma(v);
    else w.put_delta(v);
  }
  const BitString s = w.take();
  BitReader r(s);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = (i % 2 == 0) ? r.get_gamma() : r.get_delta();
    EXPECT_EQ(v, values[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, TruncatedGammaThrows) {
  BitWriter w;
  w.put_bit(false);
  w.put_bit(false);
  const BitString s = w.take();
  BitReader r(s);
  EXPECT_THROW((void)r.get_gamma(), ParseError);
}

TEST(BitStream, CeilFloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(TextTable, RendersAllRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_u64(123456789ULL), "123456789");
  EXPECT_NE(fmt_sci(12345.0).find('e'), std::string::npos);
}

TEST(Timer, RunsOnConstruction) {
  const Timer t;
  EXPECT_TRUE(t.running());
  EXPECT_GE(t.elapsed_s(), 0.0);
}

TEST(Timer, PauseFreezesElapsed) {
  Timer t;
  t.pause();
  EXPECT_FALSE(t.running());
  const double frozen = t.elapsed_s();
  // Busy-wait a little; the paused timer must not see it.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
  EXPECT_EQ(t.elapsed_s(), frozen);
}

TEST(Timer, PauseAndResumeAreIdempotent) {
  Timer t;
  t.pause();
  const double frozen = t.elapsed_s();
  t.pause();  // no-op
  EXPECT_EQ(t.elapsed_s(), frozen);
  t.resume();
  t.resume();  // no-op
  EXPECT_TRUE(t.running());
  EXPECT_GE(t.elapsed_s(), frozen);
}

TEST(Timer, ResumeAccumulatesAcrossPauses) {
  Timer t;
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 1'000'000; ++i) sink = sink + i;
  t.pause();
  const double first = t.elapsed_s();
  EXPECT_GT(first, 0.0);
  t.resume();
  for (std::uint64_t i = 0; i < 1'000'000; ++i) sink = sink + i;
  t.pause();
  EXPECT_GT(t.elapsed_s(), first);
}

TEST(Timer, ResetDiscardsAccumulatedTime) {
  Timer t;
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 20'000'000; ++i) sink = sink + i;
  t.pause();
  const double before = t.elapsed_s();
  EXPECT_GT(before, 0.0);
  t.reset();
  EXPECT_TRUE(t.running());
  t.pause();
  // reset() -> pause() spans no work, so the pre-reset busy loop is gone.
  EXPECT_LT(t.elapsed_s(), before);
}

}  // namespace
}  // namespace hublab
