#include "util/resource.hpp"

#include <atomic>

#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#if defined(__linux__)
#include <fcntl.h>
#endif

namespace hublab {

namespace {

std::atomic<std::uint64_t> g_sampled_peak{0};

#if defined(__linux__)
/// Page size, cached by static initialization so the signal-handler path
/// (sample_rss_peak from the profiler tick) never calls sysconf itself.
const long g_page_size = sysconf(_SC_PAGESIZE);
#endif

}  // namespace

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.  open/read/
  // close and manual parsing only — this runs inside SIGPROF.
  const int fd = open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[128];
  const ssize_t n = read(fd, buf, sizeof buf - 1);
  close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // Skip the first field (total program size), parse the second (resident).
  ssize_t i = 0;
  while (i < n && buf[i] != ' ') ++i;
  while (i < n && buf[i] == ' ') ++i;
  std::uint64_t pages = 0;
  while (i < n && buf[i] >= '0' && buf[i] <= '9') {
    pages = pages * 10 + static_cast<std::uint64_t>(buf[i] - '0');
    ++i;
  }
  const std::uint64_t page = g_page_size > 0 ? static_cast<std::uint64_t>(g_page_size) : 4096;
  return pages * page;
#else
  return 0;
#endif
}

void sample_rss_peak() {
  const std::uint64_t now = current_rss_bytes();
  if (now == 0) return;
  std::uint64_t prev = g_sampled_peak.load(std::memory_order_relaxed);
  while (now > prev && !g_sampled_peak.compare_exchange_weak(prev, now,
                                                             std::memory_order_relaxed,
                                                             std::memory_order_relaxed)) {
  }
}

std::uint64_t sampled_peak_rss_bytes() {
  return g_sampled_peak.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_bytes() {
  std::uint64_t peak = sampled_peak_rss_bytes();
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    const auto kernel_peak = static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    const auto kernel_peak = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
    if (kernel_peak > peak) peak = kernel_peak;
  }
#endif
  return peak;
}

std::uint64_t unix_time_ms() { return wall_unix_ms(); }

}  // namespace hublab
