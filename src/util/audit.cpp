#include "util/audit.hpp"

namespace hublab {

void AuditReport::fail(const std::string& context, const std::string& message) {
  ++num_issues_;
  if (issues_.size() < kMaxRecorded) issues_.push_back(AuditIssue{context, message});
}

bool AuditReport::require(bool ok, const std::string& context, const std::string& message) {
  if (!ok) fail(context, message);
  return ok;
}

std::string AuditReport::to_string() const {
  if (ok()) return "audit: ok\n";
  std::string out = "audit: " + std::to_string(num_issues_) + " issue(s)\n";
  for (const AuditIssue& issue : issues_) {
    out += "  " + issue.to_string() + "\n";
  }
  if (num_issues_ > issues_.size()) {
    out += "  ... and " + std::to_string(num_issues_ - issues_.size()) + " more\n";
  }
  return out;
}

void AuditReport::merge(const AuditReport& other) {
  for (const AuditIssue& issue : other.issues_) {
    if (issues_.size() < kMaxRecorded) issues_.push_back(issue);
  }
  num_issues_ += other.num_issues_;
}

}  // namespace hublab
