# Empty dependencies file for induced_matching_test.
# This may be replaced when dependencies are built.
