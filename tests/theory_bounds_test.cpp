#include <gtest/gtest.h>

#include <cmath>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "hub/constructions.hpp"
#include "hub/structured.hpp"
#include "hub/upperbound.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "util/rng.hpp"

/// Statistical verification of the paper's quantitative claims: not just
/// "the construction is exact" but "the sizes behave as the proofs say",
/// within generous constant slack, averaged over seeds.

namespace hublab {
namespace {

/// Paper Sec. 1.2 / proof of Thm 4.1, step (*): a random set S of size
/// ~ (n/D) ln D leaves at most ~ n^2/D far pairs uncovered (in
/// expectation).  We check the measured residuals against 4x that budget.
TEST(TheoryBounds, DistantCoverResidualIsBounded) {
  const std::size_t n = 300;
  for (const std::size_t D : {3u, 5u, 8u}) {
    double total_patched = 0;
    const int seeds = 5;
    for (int s = 1; s <= seeds; ++s) {
      Rng rng(static_cast<std::uint64_t>(s) * 100 + D);
      const Graph g = gen::random_regular(n, 3, rng);
      const DistanceMatrix truth = DistanceMatrix::compute(g);
      DistantCoverStats stats;
      (void)random_distant_cover(g, truth, D, rng, &stats);
      total_patched += static_cast<double>(stats.patched_pairs);
    }
    const double avg_patched = total_patched / seeds;
    const double budget = 4.0 * static_cast<double>(n) * static_cast<double>(n) /
                          static_cast<double>(D);
    EXPECT_LE(avg_patched, budget) << "D=" << D;
  }
}

/// Thm 4.1 accounting: sum |Q_v| (far pairs the sample missed) must stay
/// within the same n^2/D style budget; the shared part n|S| is
/// (n^2/D) ln D by construction.
TEST(TheoryBounds, PipelineStageBudgets) {
  const std::size_t n = 300;
  for (const std::size_t D : {3u, 4u, 6u}) {
    Rng gen_rng(n + D);
    const Graph g = gen::random_regular(n, 3, gen_rng);
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    Rng rng(D);
    UpperBoundStats stats;
    (void)upper_bound_labeling(g, truth, D, rng, &stats);
    const double nn = static_cast<double>(n) * static_cast<double>(n);
    EXPECT_LE(static_cast<double>(stats.sum_q), 4.0 * nn / static_cast<double>(D)) << D;
    // Color conflicts hit pairs with |H| <= D under D^3 colors: expected
    // fraction <= 1/D of the small pairs.
    EXPECT_LE(static_cast<double>(stats.sum_r), 2.0 * nn / static_cast<double>(D)) << D;
    // n|S| = n * ceil((n/D) ln D + 1).
    const double expected_sample =
        static_cast<double>(n) / static_cast<double>(D) * std::log(static_cast<double>(D));
    EXPECT_LE(static_cast<double>(stats.sample_size), expected_sample + 2.0) << D;
  }
}

/// Thm 2.1 (iii): the certified bound grows like layer_size within a fixed
/// level count -- doubling b at fixed l multiplies the bound by ~2^l
/// (T scales by 4^l, n by 2^l).
TEST(TheoryBounds, CountingBoundScalesWithSideLength) {
  const double b3 = lb::certified_bound_h(lb::GadgetParams{3, 2});
  const double b4 = lb::certified_bound_h(lb::GadgetParams{4, 2});
  const double b5 = lb::certified_bound_h(lb::GadgetParams{5, 2});
  ASSERT_GT(b3, 0.0);
  // Ratio approaches 2^l = 4 from below (the "-1" correction fades).
  EXPECT_GT(b4 / b3, 3.0);
  EXPECT_LT(b4 / b3, 6.5);
  EXPECT_GT(b5 / b4, 3.4);
  EXPECT_LT(b5 / b4, 4.6);
}

/// Tree labels: centroid decomposition gives max label <= floor(log2 n)+1
/// exactly (not just asymptotically).
TEST(TheoryBounds, CentroidDepthIsLogExact) {
  for (const std::size_t n : {15u, 31u, 63u, 127u, 255u}) {
    const Graph g = gen::path(n);
    const HubLabeling l = tree_centroid_labeling(g);
    const auto limit = static_cast<std::size_t>(std::floor(std::log2(n))) + 1;
    EXPECT_LE(l.max_label_size(), limit) << n;
  }
}

/// The gadget hop diameter claimed by GadgetParams is attained exactly on
/// small instances (4l hops corner to corner... bounded by, and close to).
TEST(TheoryBounds, HopDiameterBoundTight) {
  for (const auto& p : {lb::GadgetParams{2, 1}, lb::GadgetParams{2, 2}}) {
    const lb::LayeredGadget h(p);
    const Dist hop = diameter_exact(unweighted_copy(h.graph()));
    EXPECT_LE(hop, p.hop_diameter_bound());
    EXPECT_GE(hop, p.hop_diameter_bound() / 2);  // within 2x: levels alone force 2l
  }
}

}  // namespace
}  // namespace hublab
