#pragma once

#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/graph.hpp"
#include "hub/labeling.hpp"

/// \file approx.hpp
/// Additive-approximation hub labelings (Section 1.1 of the paper).
///
/// The related-work discussion describes the paradigm behind the best
/// general distance labelings [AGHP16a]: build an *approximate* hub cover
/// where, for every pair (u, v), some common hub w has a neighbor on a
/// shortest u-v path (so the hub estimate overshoots by at most 2), then
/// repair exactness with small explicit correction tables.
///
/// Our construction: pick a dominating set D of G; replace every hub h of
/// an exact labeling by its dominator dom(h) in D, keeping the *exact*
/// distance to the dominator.  For any pair, the exact meeting hub h lies
/// on a shortest path and dom(h) is h itself or a neighbor, so
///   dist(u,v) <= est(u,v) = dist(u,dom) + dist(dom,v) <= dist(u,v) + 2.
/// Distinct hubs often share a dominator, so labels shrink after dedup.

namespace hublab {

/// Greedy dominating set (every vertex is in D or adjacent to D).
std::vector<Vertex> greedy_dominating_set(const Graph& g);

/// An approximate hub labeling plus its certified error bound.
struct ApproxHubLabeling {
  HubLabeling labels;
  std::size_t num_dominators = 0;

  /// Estimate (exact + at most +2); kInfDist for disconnected pairs.
  [[nodiscard]] Dist estimate(Vertex u, Vertex v) const { return labels.query(u, v); }
};

/// Build the dominator-compressed approximate labeling from an exact one.
/// `truth` supplies the exact distances to dominators.
ApproxHubLabeling approximate_labeling(const Graph& g, const HubLabeling& exact,
                                       const DistanceMatrix& truth);

/// Verify the +2 guarantee over all connected pairs; returns the maximum
/// observed additive error (or a value > 2 if the guarantee is violated).
std::size_t max_additive_error(const Graph& g, const ApproxHubLabeling& approx,
                               const DistanceMatrix& truth);

}  // namespace hublab
