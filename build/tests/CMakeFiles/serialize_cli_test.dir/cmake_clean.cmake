file(REMOVE_RECURSE
  "CMakeFiles/serialize_cli_test.dir/serialize_cli_test.cpp.o"
  "CMakeFiles/serialize_cli_test.dir/serialize_cli_test.cpp.o.d"
  "serialize_cli_test"
  "serialize_cli_test.pdb"
  "serialize_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
