/// \file bench_pll_orderings.cpp
/// Ablation: how the PLL vertex order drives label size (DESIGN.md calls
/// out the order as the key design choice; the paper's related work notes
/// that practical schemes hinge on choosing good hubs).
///
/// Families where the answer differs: scale-free (degree order shines),
/// grids/roads (betweenness shines, natural order is poor), random regular
/// (no signal -- everything is similar), the adversarial gadget (nothing
/// helps, by Theorem 2.1).

#include <cstdio>

#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/order.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "util/table.hpp"

using namespace hublab;

namespace {

double avg_for_order(const Graph& g, const std::vector<Vertex>& order) {
  return pruned_landmark_labeling(g, order).average_label_size();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "pll_orderings",
                         "Ablation: PLL vertex orderings across graph families");

  TextTable table({"family", "n", "m", "degree", "betweenness~", "random", "natural",
                   "CH-derived"});

  struct Family {
    std::string name;
    Graph graph;
  };
  const std::size_t n = harness.smoke() ? 200 : 600;
  std::vector<Family> families;
  {
    Rng rng(1);
    families.push_back({"barabasi-albert k=3", gen::barabasi_albert(n, 3, rng)});
  }
  {
    Rng rng(2);
    families.push_back({"road-like 24x24", gen::road_like(24, 24, 0.2, 9, rng)});
  }
  {
    Rng rng(3);
    families.push_back({"random 3-regular", gen::random_regular(n, 3, rng)});
  }
  {
    Rng rng(4);
    families.push_back({"gnm m=2n", gen::connected_gnm(n, 2 * n, rng)});
  }
  families.push_back({"gadget H_{3,2}", lb::LayeredGadget(lb::GadgetParams{3, 2}).graph()});
  if (!harness.smoke()) families.push_back({"grid 25x25", gen::grid(25, 25)});

  for (const auto& f : families) {
    const Graph& g = f.graph;
    harness.add_graph(f.name, g.num_vertices(), g.num_edges());
    auto family_span = harness.phase("orderings-" + f.name);
    Rng bt_rng(7);
    const auto bt_order = betweenness_order(g, std::min<std::size_t>(64, g.num_vertices()), bt_rng);
    // Hub labels read off a contraction hierarchy (the CH ordering is its
    // own heuristic; Section 1.1's point that CH reduces to hub labeling).
    const double ch_avg = ContractionHierarchy(g).extract_hub_labeling().average_label_size();
    table.add_row({f.name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kDegreeDescending)), 2),
                   fmt_double(avg_for_order(g, bt_order), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kRandom, 11)), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kNatural)), 2),
                   fmt_double(ch_avg, 2)});
  }
  harness.print(table, "average |S(v)| by PLL order (all labelings exact by construction)");

  std::printf("\nNote the gadget row: per Theorem 2.1 no ordering can make its labels small.\n");
  return harness.finish("PLL ordering ablation", true);
}
