#include "util/log.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "util/flightrec.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace hublab::log {

namespace {

void format_double(std::string& out, double v) {
  char buf[32];
  // %.17g round-trips but litters; %.6g is plenty for log fields.
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: break;
  }
  return "off";
}

Field::Field(std::string_view k, double v) : key(k) { format_double(value, v); }

Field::Field(std::string_view k, std::uint64_t v) : key(k), value(std::to_string(v)) {}

Field::Field(std::string_view k, std::int64_t v) : key(k), value(std::to_string(v)) {}

RateLimiter::RateLimiter(std::uint64_t max_per_window, double window_s)
    : max_per_window_(max_per_window), window_s_(window_s > 0 ? window_s : 1.0) {}

RateLimiter::Bucket* RateLimiter::find(std::string_view key) {
  for (auto& [name, bucket] : buckets_) {
    if (name == key) return &bucket;
  }
  buckets_.emplace_back(std::string(key), Bucket{});
  return &buckets_.back().second;
}

bool RateLimiter::allow(std::string_view key, double now_s) {
  if (max_per_window_ == 0) return true;
  Bucket* bucket = find(key);
  const auto window = static_cast<std::uint64_t>(std::floor(now_s / window_s_));
  if (window != bucket->window) {
    bucket->window = window;
    bucket->in_window = 0;
  }
  if (bucket->in_window >= max_per_window_) {
    ++bucket->suppressed;
    return false;
  }
  ++bucket->in_window;
  return true;
}

std::uint64_t RateLimiter::suppressed(std::string_view key) const {
  for (const auto& [name, bucket] : buckets_) {
    if (name == key) return bucket.suppressed;
  }
  return 0;
}

// util/log.cpp is the allowlisted home of raw stderr output (see the raw-io
// rule in docs/correctness.md): everything else in src/ logs through here.
Logger::Logger() : sink_(&std::cerr), epoch_ns_(monotonic_ns()) {}

double Logger::now_s() const {
  return static_cast<double>(monotonic_ns() - epoch_ns_) * 1e-9;
}

void Logger::set_rate_limit(std::uint64_t max_per_window, double window_s) {
  limiter_ = RateLimiter(max_per_window, window_s);
  limiting_ = max_per_window > 0;
}

void Logger::write(Level level, std::string_view component, std::string_view message,
                   std::initializer_list<Field> fields) {
  if (!enabled(level) || level == Level::kOff || sink_ == nullptr) return;
  // Flight-recorder breadcrumb: every emitted log line also lands in the
  // crash ring (truncated), so post-mortem dumps show recent logging.
  {
    char crumb[fr::kEventTextMax + 1];
    const std::size_t n = message.size() < fr::kEventTextMax ? message.size() : fr::kEventTextMax;
    message.copy(crumb, n);
    crumb[n] = '\0';
    fr::record(fr::EventKind::kLog, crumb, static_cast<std::uint64_t>(level));
  }
  const double ts = now_s();
  std::uint64_t suppressed = 0;
  if (limiting_) {
    std::string key(component);
    key += '/';
    key += message;
    RateLimiter::Bucket* bucket = limiter_.find(key);
    if (!limiter_.allow(key, ts)) return;
    suppressed = bucket->suppressed;
    bucket->suppressed = 0;
  }

  std::string line;
  if (format_ == Format::kText) {
    line += "level=";
    line += level_name(level);
    line += " ts=";
    format_double(line, ts);
    line += " component=";
    line += component;
    line += " msg=";
    line += JsonWriter::escape(message);
    for (const Field& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (f.quoted) {
        line += JsonWriter::escape(f.value);
      } else {
        line += f.value;
      }
    }
    if (suppressed > 0) {
      line += " suppressed=";
      line += std::to_string(suppressed);
    }
  } else {
    line += "{\"level\": ";
    line += JsonWriter::escape(level_name(level));
    line += ", \"ts\": ";
    format_double(line, ts);
    line += ", \"component\": ";
    line += JsonWriter::escape(component);
    line += ", \"msg\": ";
    line += JsonWriter::escape(message);
    for (const Field& f : fields) {
      line += ", ";
      line += JsonWriter::escape(f.key);
      line += ": ";
      if (f.quoted) {
        line += JsonWriter::escape(f.value);
      } else {
        line += f.value;
      }
    }
    if (suppressed > 0) {
      line += ", \"suppressed\": ";
      line += std::to_string(suppressed);
    }
    line += '}';
  }
  line += '\n';
  *sink_ << line;
  sink_->flush();
  ++records_written_;
}

Logger& logger() {
  static Logger instance;
  return instance;
}

}  // namespace hublab::log
