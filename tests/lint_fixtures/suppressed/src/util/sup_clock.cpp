// Fixture: legacy suppression marker on the line above.

namespace fixture {

long long stamp() {
  // hublab-lint: allow wall-clock
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
