// Metric/span-name drift pass: the taxonomy tables in
// docs/observability.md are the contract for every registry metric and
// tracer span name, in both directions.
//
//   metric-doc-drift  a dotted metric name registered in src/ is missing
//                     from the tables, or a documented metric is never
//                     registered anywhere (src/, bench/ or tools/);
//   span-doc-drift    same for tracer span names (kebab-case strings
//                     passed to Tracer::span).
//
// Names are extracted from the RAW lines (string literals are blanked in
// the stripped model) but only where the stripped line still carries the
// call token, so names quoted in comments never count.  Literals followed
// by `+` are runtime-concatenated; when such a literal ends in a dot
// (`"serve.window.qps." + idx`) it names a *dynamic metric family* and
// must be documented as a wildcard row (`serve.window.qps.*`) — checked in
// both directions like concrete names.  Dynamic literals with any other
// shape (e.g. the `order-<name>` span) stay exempt from the taxonomy.
// All call tokens below are assembled from fragments so this file never
// extracts from itself.

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

struct Use {
  const SourceFile* file;
  std::size_t line;
};

bool is_dotted_metric_name(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool has_dot = false;
  char prev = '\0';
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.') {
      if (prev == '.') return false;
      has_dot = true;
    }
    prev = c;
  }
  return has_dot;
}

bool is_kebab_span_name(const std::string& name) {
  if (name.empty() || name.front() == '-' || name.back() == '-') return false;
  bool has_alpha = false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
    if (c >= 'a' && c <= 'z') has_alpha = true;
  }
  return has_alpha;
}

/// Extract the string literal argument of every `<token>"..."` occurrence
/// in `f` (token must be immediately followed by the opening quote).
/// Records the first use per name.  Literals whose next non-whitespace
/// character is `+` are runtime-concatenated: those ending in `.` are
/// recorded into `wildcard_out` (when given) as `<prefix>*` — a dynamic
/// metric family — and every other dynamic shape is skipped.
void extract_names(const SourceFile& f, const std::string& token,
                   std::map<std::string, Use>& out,
                   std::map<std::string, Use>* wildcard_out = nullptr) {
  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    // Comment guard: the stripped line must still carry the call.
    if (i >= f.code.size() || f.code[i].find(token) == std::string::npos) continue;
    const std::string& raw = f.raw_lines[i];
    std::size_t pos = 0;
    while ((pos = raw.find(token, pos)) != std::string::npos) {
      const std::size_t open = pos + token.size();
      pos = open;
      if (open >= raw.size() || raw[open] != '"') continue;
      const std::size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      pos = close + 1;
      std::size_t after = close + 1;
      while (after < raw.size() && (raw[after] == ' ' || raw[after] == '\t')) ++after;
      const std::string name = raw.substr(open + 1, close - open - 1);
      if (after < raw.size() && raw[after] == '+') {  // runtime concatenation
        if (wildcard_out != nullptr && name.size() > 1 && name.back() == '.' &&
            is_dotted_metric_name(name.substr(0, name.size() - 1))) {
          wildcard_out->emplace(name + "*", Use{&f, i + 1});
        }
        continue;
      }
      out.emplace(name, Use{&f, i + 1});  // keeps the first use
    }
  }
}

struct DocEntry {
  std::size_t line;
};

struct DocNames {
  std::map<std::string, DocEntry> metrics;
  /// Dynamic-family rows, keyed by the full wildcard token (`serve.window.qps.*`).
  std::map<std::string, DocEntry> metric_wildcards;
  std::map<std::string, DocEntry> spans;
  bool found = false;
};

/// Parse the taxonomy tables: markdown table rows (lines starting with
/// `|`), first cell only, backticked tokens.  Tables under a heading that
/// mentions "Span" feed the span set; dotted tokens elsewhere feed the
/// metric set.  Prose and code blocks never start with `|`, so only the
/// tables count.
DocNames parse_observability_doc(const fs::path& path) {
  DocNames doc;
  std::ifstream in(path);
  if (!in) return doc;
  doc.found = true;

  std::string line;
  std::size_t lineno = 0;
  bool span_section = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      span_section = line.find("Span") != std::string::npos ||
                     line.find("span") != std::string::npos;
      continue;
    }
    if (line[first] != '|') continue;
    const std::size_t cell_end = line.find('|', first + 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(first + 1, cell_end - first - 1);

    std::size_t pos = 0;
    while ((pos = cell.find('`', pos)) != std::string::npos) {
      const std::size_t close = cell.find('`', pos + 1);
      if (close == std::string::npos) break;
      const std::string token = cell.substr(pos + 1, close - pos - 1);
      pos = close + 1;
      if (span_section) {
        if (is_kebab_span_name(token)) doc.spans.emplace(token, DocEntry{lineno});
      } else if (token.size() > 2 && token.compare(token.size() - 2, 2, ".*") == 0 &&
                 is_dotted_metric_name(token.substr(0, token.size() - 2))) {
        doc.metric_wildcards.emplace(token, DocEntry{lineno});
      } else if (is_dotted_metric_name(token)) {
        doc.metrics.emplace(token, DocEntry{lineno});
      }
    }
  }
  return doc;
}

}  // namespace

void pass_drift(const std::vector<SourceFile>& files, const Options& opt, Sink& sink) {
  // Call tokens, assembled so this file stays invisible to itself.
  const std::string k_open = "(";
  const std::vector<std::string> metric_tokens = {
      std::string("coun") + "ter" + k_open,      std::string("ga") + "uge" + k_open,
      std::string("histo") + "gram" + k_open,    std::string("ske") + "tch" + k_open,
      std::string("exem") + "plar" + k_open,     std::string("heavy_") + "hitter" + k_open};
  const std::string span_token = std::string(".sp") + "an" + k_open;

  // Presence: src + bench + tools (tests may poke ad-hoc names).  The doc
  // requirement runs against src only; bench/tools names are documented at
  // the maintainers' discretion but documented names must exist somewhere.
  std::map<std::string, Use> metrics_src;
  std::map<std::string, Use> metrics_all;
  std::map<std::string, Use> wildcards_src;
  std::map<std::string, Use> wildcards_all;
  std::map<std::string, Use> spans_src;
  std::map<std::string, Use> spans_all;
  for (const SourceFile& f : files) {
    if (f.module == "tests") continue;
    std::map<std::string, Use> local_metrics;
    std::map<std::string, Use> local_wildcards;
    for (const std::string& token : metric_tokens) {
      extract_names(f, "." + token, local_metrics, &local_wildcards);
    }
    std::map<std::string, Use> local_spans;
    extract_names(f, span_token, local_spans);

    for (const auto& [name, use] : local_metrics) {
      if (!is_dotted_metric_name(name)) continue;
      metrics_all.emplace(name, use);
      if (f.in_src) metrics_src.emplace(name, use);
    }
    for (const auto& [name, use] : local_wildcards) {
      wildcards_all.emplace(name, use);
      if (f.in_src) wildcards_src.emplace(name, use);
    }
    for (const auto& [name, use] : local_spans) {
      if (!is_kebab_span_name(name)) continue;
      spans_all.emplace(name, use);
      if (f.in_src) spans_src.emplace(name, use);
    }
  }

  const fs::path doc_path = opt.root / "docs" / "observability.md";
  const DocNames doc = parse_observability_doc(doc_path);
  const std::string doc_rel = "docs/observability.md";

  for (const auto& [name, use] : metrics_src) {
    if (doc.metrics.count(name) != 0) continue;
    sink.add(*use.file, use.line, "metric-doc-drift",
             "metric `" + name + "` is registered here but missing from the taxonomy "
                 "tables in " + doc_rel + "; add a row (name, kind, where, paper quantity)");
  }
  for (const auto& [name, entry] : doc.metrics) {
    if (metrics_all.count(name) != 0) continue;
    sink.add_external(doc_rel, entry.line, "metric-doc-drift",
                      "metric `" + name + "` is documented but never registered in src/, "
                          "bench/ or tools/; delete the row or restore the metric");
  }
  for (const auto& [name, use] : wildcards_src) {
    if (doc.metric_wildcards.count(name) != 0) continue;
    sink.add(*use.file, use.line, "metric-doc-drift",
             "dynamic metric family `" + name + "` is registered here but missing from the "
                 "taxonomy tables in " + doc_rel + "; add a wildcard row (name, kind, where, "
                 "paper quantity)");
  }
  for (const auto& [name, entry] : doc.metric_wildcards) {
    if (wildcards_all.count(name) != 0) continue;
    sink.add_external(doc_rel, entry.line, "metric-doc-drift",
                      "dynamic metric family `" + name + "` is documented but never registered "
                          "in src/, bench/ or tools/; delete the row or restore the family");
  }
  for (const auto& [name, use] : spans_src) {
    if (doc.spans.count(name) != 0) continue;
    sink.add(*use.file, use.line, "span-doc-drift",
             "tracer span `" + name + "` is opened here but missing from the span taxonomy "
                 "table in " + doc_rel + "; add a row (name, where, phase meaning)");
  }
  for (const auto& [name, entry] : doc.spans) {
    if (spans_all.count(name) != 0) continue;
    sink.add_external(doc_rel, entry.line, "span-doc-drift",
                      "tracer span `" + name + "` is documented but never opened in src/, "
                          "bench/ or tools/; delete the row or restore the span");
  }
}

}  // namespace hublab::lint
