#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"

/// \file incremental.hpp
/// Incremental (insert-only) pruned landmark labeling, after Akiba, Iwata
/// and Yoshida's dynamic PLL: when an edge (a, b) is inserted, distances
/// can only decrease, and any pair whose distance improved has a new
/// shortest path through the edge.  Resuming a pruned search from b for
/// every hub of a (and vice versa) -- seeded with the hub's distance
/// through the new edge, pruned by the more-important-hub query exactly
/// like static PLL -- restores the cover.  Deletions are not supported
/// (decremental labeling is a genuinely different problem).
///
/// Labels after updates remain exact but may be slightly larger than a
/// from-scratch rebuild; `labels()` exports the current state for
/// inspection or persistence.

namespace hublab {

class IncrementalPll {
 public:
  /// Build the initial labeling for g with the given vertex order
  /// (order[0] = most important).
  IncrementalPll(const Graph& g, const std::vector<Vertex>& order);

  /// Convenience: degree-descending order.
  explicit IncrementalPll(const Graph& g);

  /// Insert an undirected edge and repair the labeling.  Parallel edges
  /// are allowed (kept if they improve the weight); self-loops rejected.
  void insert_edge(Vertex a, Vertex b, Weight weight = 1);

  /// Exact distance query on the current graph.
  [[nodiscard]] Dist query(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t num_vertices() const { return adj_.size(); }
  [[nodiscard]] std::size_t total_hubs() const;

  /// Export the current labels as a standard HubLabeling.
  [[nodiscard]] HubLabeling labels() const;

 private:
  /// Rank-keyed entry; labels_ lists are sorted by rank ascending.
  struct RankEntry {
    Vertex rank;
    Dist dist;
  };

  /// min over common hubs of rank < rank_limit.
  [[nodiscard]] Dist query_upto(Vertex u, Vertex v, Vertex rank_limit) const;

  /// Update-or-insert entry (rank, dist) into labels_[v]; true if improved.
  bool improve_entry(Vertex v, Vertex rank, Dist dist);

  /// Resume a pruned Dijkstra for hub `rank` from `seed` at distance
  /// `seed_dist`.
  void resume(Vertex rank, Vertex seed, Dist seed_dist);

  std::vector<std::vector<Arc>> adj_;
  std::vector<Vertex> order_;            ///< rank -> vertex
  std::vector<Vertex> rank_of_;          ///< vertex -> rank
  std::vector<std::vector<RankEntry>> labels_;
};

/// Reconstruct an actual shortest path from any exact hub labeling by
/// greedy neighbor descent: from u, repeatedly step to a neighbor w with
/// w(u,w) + dist(w,v) == dist(u,v) (queried from the labels).  Returns the
/// vertex sequence u..v, or empty if unreachable.  O(len * deg * |label|).
std::vector<Vertex> unpack_shortest_path(const Graph& g, const HubLabeling& labels, Vertex u,
                                         Vertex v);

}  // namespace hublab
