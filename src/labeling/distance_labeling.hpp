#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitstream.hpp"

/// \file distance_labeling.hpp
/// Distance labeling schemes: assign a binary string label(v) to every
/// vertex such that dist(u, v) is computable from label(u) and label(v)
/// alone.  The decoder is deliberately *stateless* -- it sees nothing but
/// the two bit strings -- which is exactly what the Sum-Index reduction of
/// Theorem 1.6 requires from Alice's and Bob's messages.

namespace hublab {

/// The encoded labels of one graph plus size accounting.
struct EncodedLabels {
  std::vector<BitString> labels;

  [[nodiscard]] std::size_t num_vertices() const { return labels.size(); }
  [[nodiscard]] std::size_t total_bits() const;
  [[nodiscard]] double average_bits() const;
  [[nodiscard]] std::size_t max_bits() const;
};

/// Interface of a distance labeling scheme.
class DistanceLabelingScheme {
 public:
  virtual ~DistanceLabelingScheme() = default;

  /// Human-readable scheme name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Encode all labels for g.  Deterministic for a given scheme instance.
  [[nodiscard]] virtual EncodedLabels encode(const Graph& g) const = 0;

  /// Decode the u-v distance from the two labels only.
  /// Returns kInfDist when the labels prove no common information
  /// (disconnected pair).  Throws ParseError on malformed labels.
  [[nodiscard]] virtual Dist decode(const BitString& label_u, const BitString& label_v) const = 0;
};

class HubLabeling;

/// Integer code used for the distance fields of hub labels.  Hub id gaps
/// are always gamma-coded (they are small by construction); distances have
/// different profiles per graph family, so the codec is selectable and
/// recorded in a 2-bit label header for self-describing decoding.
enum class DistCodec : std::uint8_t {
  kGamma = 0,    ///< Elias gamma; best for small distances
  kDelta = 1,    ///< Elias delta; best for large (weighted-gadget) distances
  kFixed32 = 2,  ///< fixed 32-bit; predictable, fastest to decode
};

/// Distance labeling backed by a hub labeling.  Per vertex we store a
/// codec tag, the label size, then the gamma-coded hub id gaps (ascending)
/// and codec-coded distances.  Decoding merges the two hub lists exactly
/// like HubLabeling::query.
///
/// The constructor takes a factory so the scheme owns its construction
/// policy (the Sum-Index protocol requires Alice and Bob to build identical
/// labelings independently).
class HubDistanceLabeling final : public DistanceLabelingScheme {
 public:
  using Factory = HubLabeling (*)(const Graph&);

  explicit HubDistanceLabeling(Factory factory, std::string name = "hub-labels",
                               DistCodec codec = DistCodec::kGamma);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] EncodedLabels encode(const Graph& g) const override;
  [[nodiscard]] Dist decode(const BitString& label_u, const BitString& label_v) const override;

  /// Encode an already-built hub labeling (static helper, also used by
  /// benches that want size accounting for an arbitrary labeling).
  static EncodedLabels encode_labeling(const HubLabeling& labeling,
                                       DistCodec codec = DistCodec::kGamma);

 private:
  Factory factory_;
  std::string name_;
  DistCodec codec_;
};

/// Baseline: every vertex stores its id and the full distance row in
/// fixed width.  O(n log(diam)) bits per label; always works.
class FlatDistanceLabeling final : public DistanceLabelingScheme {
 public:
  [[nodiscard]] std::string name() const override { return "flat-rows"; }
  [[nodiscard]] EncodedLabels encode(const Graph& g) const override;
  [[nodiscard]] Dist decode(const BitString& label_u, const BitString& label_v) const override;
};

/// The [AGHP16a]-style paradigm from Section 1.1 of the paper: an
/// *approximate* hub labeling (dominator-compressed, additive error <= 2)
/// plus a per-vertex correction table of 2-bit entries.  Decoding returns
/// approx_estimate(u, v) - correction_u[v], which is exact.  Per label:
/// |approx hub bits| + 2n + O(log n) -- the correction table replaces the
/// O(log diam) factor of flat rows by a constant 2 bits per vertex.
/// Requires an unweighted graph (the +2 guarantee counts hops).
class CorrectedApproxLabeling final : public DistanceLabelingScheme {
 public:
  using Factory = HubLabeling (*)(const Graph&);

  explicit CorrectedApproxLabeling(Factory exact_factory);

  [[nodiscard]] std::string name() const override { return "approx-hubs+corrections"; }
  [[nodiscard]] EncodedLabels encode(const Graph& g) const override;
  [[nodiscard]] Dist decode(const BitString& label_u, const BitString& label_v) const override;

 private:
  Factory exact_factory_;
};

}  // namespace hublab
