file(REMOVE_RECURSE
  "CMakeFiles/hublab.dir/main.cpp.o"
  "CMakeFiles/hublab.dir/main.cpp.o.d"
  "hublab"
  "hublab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
