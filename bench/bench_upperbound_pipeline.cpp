/// \file bench_upperbound_pipeline.cpp
/// Experiment THM4.1 (DESIGN.md): the Theorem 4.1 hub-labeling pipeline on
/// constant-max-degree graphs.
///
/// For random 3-regular graphs across n and the threshold D, this runs the
/// full pipeline (random distant-pair cover S, Q/R residuals, D^3-coloring,
/// per-(h,a,b) vertex covers), verifies exactness against ground truth, and
/// reports the per-stage contributions that the proof bounds:
///   n|S| = O(n^2 log D / D),  sum|Q|, sum|R| = O(n^2/D),
///   sum|F| = O(D^5 n^2 / RS(n))  (Lemma 4.2).
/// PLL is shown as the practical yardstick.

#include <cstdio>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "hub/upperbound.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "upperbound_pipeline",
                         "Experiment THM4.1: upper-bound pipeline on random 3-regular graphs");

  TextTable table({"n", "D", "n|S|", "sum|Q|", "sum|R|", "sum|F|", "groups", "avg label",
                   "PLL avg", "exact", "time(s)"});
  bool all_ok = true;

  const std::vector<std::size_t> full_sizes{100, 200, 400, 800};
  const std::vector<std::size_t> smoke_sizes{100, 200};
  for (const std::size_t n : harness.smoke() ? smoke_sizes : full_sizes) {
    auto size_span = harness.phase("pipeline-n" + std::to_string(n));
    Rng gen_rng(n);
    const Graph g = gen::random_regular(n, 3, gen_rng);
    harness.add_graph("random-3-regular", g.num_vertices(), g.num_edges());
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    const HubLabeling pll = pruned_landmark_labeling(g, VertexOrder::kDegreeDescending, 0,
                                                     harness.pll_config());

    for (const std::size_t D : {2u, 3u, 4u, 6u}) {
      Rng rng(1000 + D);
      Timer timer;
      UpperBoundStats stats;
      const HubLabeling l = upper_bound_labeling(g, truth, D, rng, &stats);
      const double elapsed = timer.elapsed_s();
      const bool exact = !verify_labeling(g, l, truth).has_value();
      all_ok = all_ok && exact;

      table.add_row({fmt_u64(n), fmt_u64(D), fmt_u64(n * stats.sample_size),
                     fmt_u64(stats.sum_q), fmt_u64(stats.sum_r), fmt_u64(stats.sum_f),
                     fmt_u64(stats.num_groups), fmt_double(stats.average_label_size, 2),
                     fmt_double(pll.average_label_size(), 2), exact ? "ok" : "FAIL",
                     fmt_double(elapsed, 2)});
    }
  }
  harness.print(table, "Theorem 4.1 pipeline (all rows must be exact shortest-path covers)");

  // Lemma 4.2 verification on a mid-size instance.
  {
    auto lemma_span = harness.phase("lemma-4.2");
    Rng rng(7);
    const Graph g = gen::random_regular(200, 3, rng);
    const DistanceMatrix truth = DistanceMatrix::compute(g);
    Rng lemma_rng(8);
    const bool lemma_ok = verify_lemma_4_2(g, truth, 3, lemma_rng);
    lemma_span.end();
    std::printf("\nLemma 4.2 (per-color matchings are induced): %s\n",
                lemma_ok ? "verified" : "VIOLATED");
    all_ok = all_ok && lemma_ok;
  }

  return harness.finish("THM4.1 pipeline", all_ok);
}
