#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

void expect_exact(const Graph& g, const HubLabeling& l) {
  const auto truth = DistanceMatrix::compute(g);
  const auto defect = verify_labeling(g, l, truth);
  EXPECT_FALSE(defect.has_value())
      << "defect at u=" << (defect ? defect->u : 0) << " v=" << (defect ? defect->v : 0)
      << " stored=" << (defect ? defect->stored : 0) << " actual=" << (defect ? defect->actual : 0);
}

TEST(Pll, PathGraph) { expect_exact(gen::path(12), pruned_landmark_labeling(gen::path(12))); }

TEST(Pll, CycleGraph) { expect_exact(gen::cycle(13), pruned_landmark_labeling(gen::cycle(13))); }

TEST(Pll, GridGraph) {
  const Graph g = gen::grid(5, 6);
  expect_exact(g, pruned_landmark_labeling(g));
}

TEST(Pll, StarGraph) {
  const Graph g = gen::star(20);
  const HubLabeling l = pruned_landmark_labeling(g);
  expect_exact(g, l);
  // Degree order processes the center first; every label then needs at most
  // the center plus itself.
  EXPECT_LE(l.average_label_size(), 2.1);
}

TEST(Pll, CompleteGraph) {
  const Graph g = gen::complete(9);
  expect_exact(g, pruned_landmark_labeling(g));
}

TEST(Pll, DisconnectedGraph) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const HubLabeling l = pruned_landmark_labeling(g);
  expect_exact(g, l);
  EXPECT_EQ(l.query(0, 3), kInfDist);
  EXPECT_EQ(l.query(0, 5), kInfDist);
}

TEST(Pll, SingleVertex) {
  const Graph g = gen::path(1);
  const HubLabeling l = pruned_landmark_labeling(g);
  EXPECT_EQ(l.query(0, 0), 0u);
}

TEST(Pll, WeightedRoadLike) {
  Rng rng(21);
  const Graph g = gen::road_like(6, 6, 0.25, 9, rng);
  expect_exact(g, pruned_landmark_labeling(g));
}

TEST(Pll, ZeroWeightEdges) {
  // Degree-reduction gadgets have weight-0 chains; PLL must stay exact.
  Rng rng(22);
  const Graph base = gen::connected_gnm(40, 120, rng);
  const DegreeReduction red = reduce_degree(base, 2);
  expect_exact(red.graph, pruned_landmark_labeling(red.graph));
}

TEST(Pll, DeterministicForFixedOrder) {
  Rng rng(23);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const HubLabeling a = pruned_landmark_labeling(g, VertexOrder::kNatural);
  const HubLabeling b = pruned_landmark_labeling(g, VertexOrder::kNatural);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (Vertex v = 0; v < 50; ++v) {
    const auto la = a.label(v);
    const auto lb = b.label(v);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
  }
}

TEST(Pll, FirstVertexInOrderIsUniversalHub) {
  Rng rng(24);
  const Graph g = gen::connected_gnm(40, 90, rng);
  const auto order = make_vertex_order(g, VertexOrder::kNatural);
  const HubLabeling l = pruned_landmark_labeling(g, order);
  for (Vertex v = 0; v < 40; ++v) EXPECT_TRUE(l.has_hub(v, order[0]));
}

TEST(Pll, EveryVertexHasItself) {
  Rng rng(25);
  const Graph g = gen::connected_gnm(40, 90, rng);
  const HubLabeling l = pruned_landmark_labeling(g);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_TRUE(l.has_hub(v, v));
    EXPECT_EQ(l.query(v, v), 0u);
  }
}

TEST(MakeVertexOrder, DegreeDescending) {
  const Graph g = gen::star(10);
  const auto order = make_vertex_order(g, VertexOrder::kDegreeDescending);
  EXPECT_EQ(order[0], 0u);  // center has max degree
}

TEST(MakeVertexOrder, RandomIsSeededPermutation) {
  const Graph g = gen::path(30);
  const auto a = make_vertex_order(g, VertexOrder::kRandom, 5);
  const auto b = make_vertex_order(g, VertexOrder::kRandom, 5);
  const auto c = make_vertex_order(g, VertexOrder::kRandom, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (Vertex v = 0; v < 30; ++v) EXPECT_EQ(sorted[v], v);
}

struct PllSweepCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t m;
  Weight max_weight;  // 1 = unweighted
  VertexOrder order;
};

class PllRandomSweep : public ::testing::TestWithParam<PllSweepCase> {};

TEST_P(PllRandomSweep, ExactOnRandomGraphs) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  Graph g = gen::gnm(c.n, c.m, rng);
  if (c.max_weight > 1) g = gen::randomize_weights(g, c.max_weight, rng);
  expect_exact(g, pruned_landmark_labeling(g, c.order, c.seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PllRandomSweep,
    ::testing::Values(
        PllSweepCase{1, 30, 29, 1, VertexOrder::kDegreeDescending},
        PllSweepCase{2, 50, 100, 1, VertexOrder::kDegreeDescending},
        PllSweepCase{3, 50, 100, 1, VertexOrder::kNatural},
        PllSweepCase{4, 50, 100, 1, VertexOrder::kRandom},
        PllSweepCase{5, 80, 160, 1, VertexOrder::kDegreeDescending},
        PllSweepCase{6, 50, 100, 10, VertexOrder::kDegreeDescending},
        PllSweepCase{7, 50, 100, 10, VertexOrder::kRandom},
        PllSweepCase{8, 60, 240, 5, VertexOrder::kDegreeDescending},
        PllSweepCase{9, 40, 60, 100, VertexOrder::kNatural},
        PllSweepCase{10, 100, 150, 1, VertexOrder::kDegreeDescending},
        PllSweepCase{11, 100, 300, 3, VertexOrder::kRandom},
        PllSweepCase{12, 25, 40, 2, VertexOrder::kNatural}));

TEST(Pll, TreeLabelsAreSmall) {
  Rng rng(26);
  const Graph g = gen::random_tree(200, rng);
  const HubLabeling l = pruned_landmark_labeling(g);
  expect_exact(g, l);
  // Hub labelings of trees need only O(log n) average size; allow slack.
  EXPECT_LE(l.average_label_size(), 25.0);
}

}  // namespace
}  // namespace hublab
