#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal JSON support for the observability layer: a streaming
/// `JsonWriter` (used by the bench harness, the tracer's Chrome
/// `trace_event` dump, and the metrics registry) and a small recursive-
/// descent parser (used by the BENCH_*.json schema validator and the
/// round-trip tests).  No external dependencies; the writer takes a
/// caller-supplied `std::ostream&` like every other emitter in hublab.

namespace hublab {

/// Streaming JSON emitter with correct commas, escaping and (optional)
/// pretty-printing.  Usage errors (value without a key inside an object,
/// unbalanced end_*) trip HUBLAB_ASSERT via internal state checks.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value_null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once the single top-level value is complete.
  [[nodiscard]] bool done() const;

  /// Escape and quote `s` as a JSON string literal (exposed for tests).
  static std::string escape(std::string_view s);

 private:
  void before_value();
  void newline_indent();

  struct Frame {
    bool is_object = false;
    bool has_members = false;
    bool key_pending = false;
  };

  std::ostream& out_;
  int indent_;
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

/// Parsed JSON document (numbers held as double; good enough for schema
/// checks and round-trip tests, not a general-purpose DOM).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_members;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view name) const;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace hublab
