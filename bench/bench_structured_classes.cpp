/// \file bench_structured_classes.cpp
/// Experiment for the Section 1.1 survey: hub labelings of structured
/// classes, making the paper's contrast concrete.
///
///   trees  -> Theta(log n) hubs   (centroid decomposition, [Pel00]-style)
///   grids  -> Theta(sqrt n) hubs  (recursive separators, [GPPR04]-style)
///   sparse -> n / 2^{Theta(sqrt(log n))}  (Theorems 1.1/1.4 -- the gap
///             this paper explains)
///
/// The tables print measured average label sizes next to the predicted
/// scale so the growth exponent is visible directly.

#include <cmath>
#include <cstdio>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "hub/structured.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "structured_classes",
                         "Experiment STRUCT: hub labelings of trees and grids (Sec. 1.1 survey)");
  bool all_ok = true;

  auto trees_span = harness.phase("tree-centroid-labels");
  TextTable trees({"n", "centroid avg", "centroid max", "log2 n", "max/log2 n", "exact"});
  const std::vector<std::size_t> full_tree_ns{100, 1000, 10000, 100000};
  const std::vector<std::size_t> smoke_tree_ns{100, 1000};
  for (const std::size_t n : harness.smoke() ? smoke_tree_ns : full_tree_ns) {
    Rng rng(n);
    const Graph g = gen::random_tree(n, rng);
    harness.add_graph("random-tree", g.num_vertices(), g.num_edges());
    const HubLabeling l = tree_centroid_labeling(g);
    const double lg = std::log2(static_cast<double>(n));
    bool exact = true;
    if (n <= 2000) {
      const auto truth = DistanceMatrix::compute(g);
      exact = !verify_labeling(g, l, truth).has_value();
    } else {
      exact = !verify_labeling_sampled(g, l, 200, 7).has_value();
    }
    all_ok = all_ok && exact;
    trees.add_row({fmt_u64(n), fmt_double(l.average_label_size(), 2),
                   fmt_u64(l.max_label_size()), fmt_double(lg, 1),
                   fmt_double(static_cast<double>(l.max_label_size()) / lg, 2),
                   exact ? "ok" : "FAIL"});
  }
  trees_span.end();
  harness.print(trees, "random trees: centroid labels scale as log n (max/log2n stays ~1)");

  auto grids_span = harness.phase("grid-separator-labels");
  TextTable grids({"side", "n", "separator avg", "sqrt n", "avg/sqrt n", "PLL avg", "exact"});
  const std::vector<std::size_t> full_sides{8, 16, 24, 32, 48};
  const std::vector<std::size_t> smoke_sides{8, 16};
  for (const std::size_t side : harness.smoke() ? smoke_sides : full_sides) {
    const Graph g = gen::grid(side, side);
    harness.add_graph("grid", g.num_vertices(), g.num_edges());
    const HubLabeling l = grid_separator_labeling(g, side, side);
    const double rt = std::sqrt(static_cast<double>(g.num_vertices()));
    bool exact = true;
    std::string pll_avg = "-";
    if (g.num_vertices() <= 1200) {
      const auto truth = DistanceMatrix::compute(g);
      exact = !verify_labeling(g, l, truth).has_value();
      pll_avg = fmt_double(pruned_landmark_labeling(g).average_label_size(), 2);
    } else {
      exact = !verify_labeling_sampled(g, l, 100, 7).has_value();
    }
    all_ok = all_ok && exact;
    grids.add_row({fmt_u64(side), fmt_u64(g.num_vertices()),
                   fmt_double(l.average_label_size(), 2), fmt_double(rt, 1),
                   fmt_double(l.average_label_size() / rt, 2), pll_avg, exact ? "ok" : "FAIL"});
  }
  grids_span.end();
  harness.print(grids,
                "square grids: separator labels scale as sqrt n (avg/sqrt n stays ~constant)");

  std::printf(
      "\nContrast: Theorem 1.1 shows sparse graphs in general sit at n/2^{Theta(sqrt(log n))} --\n"
      "exponentially worse than either structured class above.\n");
  return harness.finish("STRUCT experiment", all_ok);
}
