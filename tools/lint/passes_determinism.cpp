// Determinism pass: bans order-unstable idioms in library code (src/), the
// static side of the byte-identical contract in docs/performance.md.
//
//   unordered-iter  range-for over a std::unordered_map/set: hash-table
//                   iteration order is implementation-defined, so any
//                   result built in that order silently varies across
//                   standard libraries.  Copy the elements out and sort, or
//                   use an ordered container.
//   wall-clock      clock reads outside util/timer.hpp and util/rng.hpp:
//                   every timestamp flows through the sanctioned helpers so
//                   measured time never leaks into results.
//   float-reduce    floating-point accumulation (+=, -=, *=) inside a
//                   parallel_for / run_chunks body: FP addition is not
//                   associative, so the reduction order must be fixed by
//                   per-chunk slots reduced in chunk order, never by direct
//                   accumulation from the body.
//
// Banned tokens are assembled from fragments so this file stays clean.

#include <cctype>
#include <set>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

/// Skip a balanced template argument list starting at `pos` (which must
/// point at '<').  Returns the offset just past the matching '>', or npos.
std::size_t skip_template_args(const std::string& text, std::size_t pos) {
  if (pos >= text.size() || text[pos] != '<') return std::string::npos;
  std::size_t depth = 0;
  while (pos < text.size()) {
    if (text[pos] == '<') ++depth;
    if (text[pos] == '>' && --depth == 0) return pos + 1;
    ++pos;
  }
  return std::string::npos;
}

/// Identifiers declared with any of `type_tokens` in `flat`: finds
/// `<token>` [template args] [& or *] <identifier>.  Heuristic but
/// effective: declarations, members and parameters all match.
std::set<std::string> declared_names(const std::string& flat,
                                     const std::vector<std::string>& type_tokens) {
  std::set<std::string> names;
  for (const std::string& token : type_tokens) {
    std::size_t pos = 0;
    while ((pos = flat.find(token, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += token.size();
      const bool left_ok = start == 0 || !is_ident_char(flat[start - 1]);
      if (!left_ok) continue;
      std::size_t p = pos;
      if (p < flat.size() && flat[p] == '<') {
        p = skip_template_args(flat, p);
        if (p == std::string::npos) continue;
      } else if (p < flat.size() && is_ident_char(flat[p])) {
        continue;  // longer identifier, e.g. token is a prefix
      }
      while (p < flat.size() &&
             (std::isspace(static_cast<unsigned char>(flat[p])) != 0 || flat[p] == '&' ||
              flat[p] == '*')) {
        ++p;
      }
      std::size_t end = p;
      while (end < flat.size() && is_ident_char(flat[end])) ++end;
      if (end == p) continue;            // temporary / cast / return type
      if (end < flat.size() && flat[end] == '(') continue;  // function declaration
      names.insert(flat.substr(p, end - p));
    }
  }
  return names;
}

void check_unordered_iter(const SourceFile& f, Sink& sink) {
  static const std::vector<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  const std::set<std::string> unordered = declared_names(f.flat, kUnorderedTypes);
  if (unordered.empty()) return;

  const std::string& flat = f.flat;
  std::size_t pos = 0;
  while ((pos = flat.find("for", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 3;
    const bool is_for = (start == 0 || !is_ident_char(flat[start - 1])) &&
                        (pos >= flat.size() || !is_ident_char(flat[pos]));
    if (!is_for) continue;
    std::size_t open = pos;
    while (open < flat.size() && std::isspace(static_cast<unsigned char>(flat[open])) != 0) {
      ++open;
    }
    if (open >= flat.size() || flat[open] != '(') continue;
    std::size_t depth = 0;
    std::size_t close = open;
    std::size_t colon = std::string::npos;
    while (close < flat.size()) {
      const char c = flat[close];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (c == ')' && depth == 1) break;
        --depth;
      }
      if (c == ':' && depth == 1) {
        const bool scope = (close + 1 < flat.size() && flat[close + 1] == ':') ||
                           (close > 0 && flat[close - 1] == ':');
        if (!scope && colon == std::string::npos) colon = close;
      }
      ++close;
    }
    if (close >= flat.size() || colon == std::string::npos) continue;
    const std::string range_expr = flat.substr(colon + 1, close - colon - 1);
    const std::string name = last_identifier(range_expr);
    const bool direct = range_expr.find("unordered_") != std::string::npos;
    if (direct || (!name.empty() && unordered.count(name) != 0)) {
      sink.add(f, f.flat_line[start], "unordered-iter",
               "range-for over unordered container `" + (direct ? range_expr : name) +
                   "`: hash iteration order is implementation-defined; copy the elements "
                   "out and sort them, or use an ordered container");
    }
  }
}

void check_wall_clock(const SourceFile& f, Sink& sink) {
  if (f.rel == "src/util/timer.hpp" || f.rel == "src/util/rng.hpp") return;
  // Assembled so this file never flags itself.
  const std::string k_clock = std::string("cl") + "ock";
  const std::vector<std::string> idents = {
      std::string("system_") + k_clock,     std::string("steady_") + k_clock,
      std::string("high_resolution_") + k_clock, k_clock + "_gettime",
      std::string("gettime") + "ofday",     std::string("timespec_") + "get"};
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const std::string& ident : idents) {
      if (contains_identifier(f.code[i], ident)) {
        sink.add(f, i + 1, "wall-clock",
                 "`" + ident + "` reads a clock outside util/timer.hpp; route timestamps "
                     "through hublab::Timer / monotonic_ns() / wall_unix_ms() so measured "
                     "time never feeds back into results");
      }
    }
  }
}

void check_float_reduce(const SourceFile& f, Sink& sink) {
  static const std::vector<std::string> kFloatTypes = {"double", "float"};
  const std::set<std::string> floats = declared_names(f.flat, kFloatTypes);
  if (floats.empty()) return;

  const std::string& flat = f.flat;
  for (const char* entry : {"parallel_for", "run_chunks"}) {
    std::size_t pos = 0;
    while ((pos = flat.find(entry, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += std::string(entry).size();
      if (start > 0 && is_ident_char(flat[start - 1])) continue;
      std::size_t open = pos;
      while (open < flat.size() && flat[open] != '(' && flat[open] != '\n') ++open;
      if (open >= flat.size() || flat[open] != '(') continue;
      std::size_t depth = 0;
      std::size_t close = open;
      while (close < flat.size()) {
        if (flat[close] == '(') ++depth;
        if (flat[close] == ')' && --depth == 0) break;
        ++close;
      }
      if (close >= flat.size()) continue;

      // Inside the call (which contains the body lambda), flag compound
      // FP accumulation into any identifier of floating type.
      for (std::size_t i = open; i + 1 < close; ++i) {
        if ((flat[i] == '+' || flat[i] == '-' || flat[i] == '*') && flat[i + 1] == '=') {
          std::size_t end = i;
          while (end > open && std::isspace(static_cast<unsigned char>(flat[end - 1])) != 0) {
            --end;
          }
          std::size_t begin = end;
          while (begin > open && is_ident_char(flat[begin - 1])) --begin;
          const std::string name = flat.substr(begin, end - begin);
          if (!name.empty() && floats.count(name) != 0) {
            sink.add(f, f.flat_line[i], "float-reduce",
                     "floating-point accumulation into `" + name + "` inside a " + entry +
                         " body: FP addition is not associative, so accumulate into "
                         "per-chunk slots and reduce them in chunk order on the caller");
          }
        }
      }
      pos = close;
    }
  }
}

}  // namespace

void pass_determinism(const std::vector<SourceFile>& files, const Options& opt, Sink& sink) {
  (void)opt;
  for (const SourceFile& f : files) {
    if (!f.in_src) continue;
    check_unordered_iter(f, sink);
    check_wall_clock(f, sink);
    check_float_reduce(f, sink);
  }
}

}  // namespace hublab::lint
