/// \file bench_pll_orderings.cpp
/// Ablation: how the PLL vertex order drives label size (DESIGN.md calls
/// out the order as the key design choice; the paper's related work notes
/// that practical schemes hinge on choosing good hubs).
///
/// Families where the answer differs: scale-free (degree order shines),
/// grids/roads (betweenness shines, natural order is poor), random regular
/// (no signal -- everything is similar), the adversarial gadget (nothing
/// helps, by Theorem 2.1).

#include <cstdio>
#include <iostream>

#include "graph/generators.hpp"
#include "hub/order.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

namespace {

double avg_for_order(const Graph& g, const std::vector<Vertex>& order) {
  return pruned_landmark_labeling(g, order).average_label_size();
}

}  // namespace

int main() {
  std::printf("Ablation: PLL vertex orderings across graph families\n");

  TextTable table({"family", "n", "m", "degree", "betweenness~", "random", "natural",
                   "CH-derived"});

  struct Family {
    std::string name;
    Graph graph;
  };
  std::vector<Family> families;
  {
    Rng rng(1);
    families.push_back({"barabasi-albert k=3", gen::barabasi_albert(600, 3, rng)});
  }
  {
    Rng rng(2);
    families.push_back({"road-like 24x24", gen::road_like(24, 24, 0.2, 9, rng)});
  }
  {
    Rng rng(3);
    families.push_back({"random 3-regular", gen::random_regular(600, 3, rng)});
  }
  {
    Rng rng(4);
    families.push_back({"gnm m=2n", gen::connected_gnm(600, 1200, rng)});
  }
  families.push_back({"gadget H_{3,2}", lb::LayeredGadget(lb::GadgetParams{3, 2}).graph()});
  families.push_back({"grid 25x25", gen::grid(25, 25)});

  for (const auto& f : families) {
    const Graph& g = f.graph;
    Rng bt_rng(7);
    const auto bt_order = betweenness_order(g, std::min<std::size_t>(64, g.num_vertices()), bt_rng);
    // Hub labels read off a contraction hierarchy (the CH ordering is its
    // own heuristic; Section 1.1's point that CH reduces to hub labeling).
    const double ch_avg = ContractionHierarchy(g).extract_hub_labeling().average_label_size();
    table.add_row({f.name, fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kDegreeDescending)), 2),
                   fmt_double(avg_for_order(g, bt_order), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kRandom, 11)), 2),
                   fmt_double(avg_for_order(g, make_vertex_order(g, VertexOrder::kNatural)), 2),
                   fmt_double(ch_avg, 2)});
  }
  table.print(std::cout, "average |S(v)| by PLL order (all labelings exact by construction)");

  std::printf("\nNote the gadget row: per Theorem 2.1 no ordering can make its labels small.\n");
  std::printf("\nPLL ordering ablation: OK\n");
  return 0;
}
