#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/constructions.hpp"
#include "hub/pll.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(FullLabeling, AlwaysExact) {
  Rng rng(1);
  const Graph g = gen::gnm(30, 50, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = full_labeling(g, truth);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(FullLabeling, SizeIsComponentBound) {
  const Graph g = gen::grid(4, 4);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = full_labeling(g, truth);
  EXPECT_EQ(l.total_hubs(), 16u * 16u);
}

TEST(GreedyCover, ExactOnSmallGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::connected_gnm(25, 50, rng);
    const auto truth = DistanceMatrix::compute(g);
    const HubLabeling l = greedy_cover(g, truth);
    EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  }
}

TEST(GreedyCover, BeatsFullLabeling) {
  const Graph g = gen::grid(5, 5);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_LT(greedy_cover(g, truth).total_hubs(), full_labeling(g, truth).total_hubs());
}

TEST(GreedyCover, StarUsesCenter) {
  const Graph g = gen::star(15);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = greedy_cover(g, truth);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  // Center + self per vertex at most (first pick covers everything via 0).
  EXPECT_LE(l.average_label_size(), 2.5);
}

TEST(GreedyCover, LargeGraphRejected) {
  Rng rng(3);
  const Graph g = gen::gnm(500, 800, rng);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_THROW(greedy_cover(g, truth), InvalidArgument);
}

TEST(GreedyCover, ComparableToPll) {
  Rng rng(4);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const auto truth = DistanceMatrix::compute(g);
  const auto greedy = greedy_cover(g, truth);
  const auto pll = pruned_landmark_labeling(g);
  // Both are exact; neither should be grotesquely larger than the other.
  EXPECT_LT(greedy.total_hubs(), 5 * pll.total_hubs());
}

class DistantCoverSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(DistantCoverSweep, ExactForAllD) {
  const auto [seed, D] = GetParam();
  Rng rng(seed);
  const Graph g = gen::connected_gnm(70, 140, rng);
  const auto truth = DistanceMatrix::compute(g);
  DistantCoverStats stats;
  const HubLabeling l = random_distant_cover(g, truth, D, rng, &stats);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  EXPECT_GE(stats.sample_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistantCoverSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 3, 5, 8)));

TEST(DistantCover, RejectsTinyD) {
  Rng rng(5);
  const Graph g = gen::path(10);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_THROW(random_distant_cover(g, truth, 1, rng), InvalidArgument);
}

TEST(DistantCover, WorksOnDisconnectedGraphs) {
  Rng rng(6);
  const Graph g = gen::gnm(60, 70, rng);  // likely disconnected
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = random_distant_cover(g, truth, 4, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(DistantCover, HeavyTailDegrees) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(80, 2, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = random_distant_cover(g, truth, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(DistantCover, BallContainsSelfAndNeighbors) {
  Rng rng(8);
  const Graph g = gen::cycle(20);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = random_distant_cover(g, truth, 3, rng);
  for (Vertex v = 0; v < 20; ++v) {
    EXPECT_TRUE(l.has_hub(v, v));
    for (const Arc& a : g.arcs(v)) EXPECT_TRUE(l.has_hub(v, a.to));
  }
}

}  // namespace
}  // namespace hublab
