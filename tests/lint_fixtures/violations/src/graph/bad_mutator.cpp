// Fixture: assert-guard -- a mutating API with no precondition check.

namespace fixture {

struct Box {
  int value = 0;
  void set_value(int v) { value = v; }
};

}  // namespace fixture
