# Empty dependencies file for hublab_graph.
# This may be replaced when dependencies are built.
