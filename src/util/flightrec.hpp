#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

/// \file flightrec.hpp
/// Always-on crash flight recorder: a bounded per-thread ring of recent
/// span begin/end, log and assert events, dumped async-signal-safely when
/// the process dies on SIGSEGV / SIGBUS / SIGFPE / SIGILL / SIGABRT
/// (which includes every HUBLAB_ASSERT failure).  A crash inside a pooled
/// `parallel_for` worker is otherwise a bare "Segmentation fault" with no
/// clue which phase, which chunk, which worker — the dump answers exactly
/// that from the last `kEventsPerThread` events of every thread.
///
/// Recording (`record()`) is a few stores into a thread-local ring: one
/// timestamp, one small copy, one release publish — cheap enough to stay
/// on in release builds (the Tracer and the logger call it unconditionally).
/// Rings register themselves on a lock-free singly linked list the first
/// time a thread records; nodes are never freed (bounded by the thread
/// count, and the list must stay walkable from a signal handler).
///
/// The crash path is strictly async-signal-safe: pre-copied dump path,
/// `open`/`write`/`close`, manual integer formatting (`format_u64` is
/// exposed for the signal-safety unit tests), no allocation, no locks, no
/// stdio.  The handler re-raises with the default disposition after
/// dumping, so exit codes and core dumps are unchanged.  `dump()` writes
/// the same format to an ostream for tests and tooling.

namespace hublab::fr {

/// Ring capacity per thread; older events are overwritten (the dump
/// reports how many were dropped).
inline constexpr std::size_t kEventsPerThread = 256;

/// Fixed text payload per event (truncating copy; no allocation).
inline constexpr std::size_t kEventTextMax = 47;

/// Default dump file, written to the working directory of the crashing
/// process.
inline constexpr const char* kDefaultDumpPath = "hublab_flightrec.dump";

enum class EventKind : std::uint8_t {
  kSpanBegin = 0,  ///< Tracer span opened (text = span name)
  kSpanEnd,        ///< Tracer span closed (text = span name)
  kLog,            ///< logger line (text = message, truncated; arg = level)
  kNote,           ///< free-form breadcrumb
  kAssert,         ///< HUBLAB_ASSERT failure (text = expression, arg = line)
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

struct Event {
  std::uint64_t t_ns = 0;  ///< monotonic, relative to the recorder epoch
  std::uint64_t arg = 0;
  EventKind kind = EventKind::kNote;
  char text[kEventTextMax + 1] = {};
};

/// Append one event to the calling thread's ring (registering the ring on
/// first use).  Safe from any non-signal context; never blocks.
void record(EventKind kind, const char* text, std::uint64_t arg = 0) noexcept;

/// Install the crash-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that dump the rings to `dump_path` and re-raise.  Idempotent:
/// the first caller's path wins.  Pass nullptr for kDefaultDumpPath.
void install_crash_handler(const char* path = nullptr) noexcept;

[[nodiscard]] bool crash_handler_installed() noexcept;

/// The path the crash handler will write (valid after install).
[[nodiscard]] const char* dump_path() noexcept;

/// Total events recorded process-wide (monotone; for tests).
[[nodiscard]] std::uint64_t events_recorded() noexcept;

/// Write the dump to an open file descriptor.  Async-signal-safe; this is
/// what the crash handler calls.  `signal_number` < 0 means "not a crash"
/// (the signal line is still printed, as -1).
void dump_to_fd(int fd, int signal_number) noexcept;

/// Same document on an ostream (tests, post-mortem tooling).
void dump(std::ostream& out);

/// Async-signal-safe unsigned decimal formatting: writes the digits of
/// `value` into `buf` (capacity `cap`, no NUL appended) and returns the
/// number of characters written, 0 when the buffer is too small.
std::size_t format_u64(char* buf, std::size_t cap, std::uint64_t value) noexcept;

}  // namespace hublab::fr
