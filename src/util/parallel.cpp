#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace hublab::par {

namespace {

thread_local bool t_in_parallel_region = false;
thread_local std::size_t t_worker_index = 0;  ///< 0 = not a pool worker

/// One in-flight run_chunks call.  Chunks are claimed by an atomic ticket
/// (any executor may run any chunk); exceptions are parked per chunk index
/// so the caller rethrows the lowest one regardless of scheduling.
struct Job {
  const std::vector<ChunkRange>* chunks = nullptr;
  const std::function<void(const ChunkRange&)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t completed = 0;  ///< chunks fully executed; guarded by Pool::mutex_
  std::vector<std::exception_ptr> errors;
};

/// Lazily grown pool of recycled worker threads.  One job runs at a time
/// (run() serializes); the calling thread participates, so a job with
/// `threads` executors uses `threads - 1` workers.
class Pool {
 public:
  ~Pool() {
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void run(const std::vector<ChunkRange>& chunks, std::size_t threads,
           const std::function<void(const ChunkRange&)>& body) {
    const std::scoped_lock serial(run_mutex_);
    Job job;
    job.chunks = &chunks;
    job.body = &body;
    job.errors.assign(chunks.size(), nullptr);
    {
      const std::scoped_lock lock(mutex_);
      while (workers_.size() + 1 < threads) {
        // Worker i gets executor index i + 1 (the caller is 0), assigned
        // once before the loop so worker_index() is stable for its life.
        const std::size_t index = workers_.size() + 1;
        workers_.emplace_back([this, index] {
          t_worker_index = index;
          worker_loop();
        });
      }
      job_ = &job;
      ++generation_;
    }
    wake_.notify_all();
    participate(job);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // `job` may not leave this frame while any worker still holds a
      // pointer to it, hence the active_ == 0 condition.
      done_.wait(lock, [&] { return job.completed == chunks.size() && active_ == 0; });
      job_ = nullptr;
    }
    for (const std::exception_ptr& e : job.errors) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
        if (job == nullptr) continue;  // the job already drained
        ++active_;
      }
      participate(*job);
      {
        const std::scoped_lock lock(mutex_);
        --active_;
      }
      done_.notify_all();
    }
  }

  void participate(Job& job) {
    t_in_parallel_region = true;
    const std::size_t total = job.chunks->size();
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      try {
        (*job.body)((*job.chunks)[i]);
      } catch (...) {
        job.errors[i] = std::current_exception();
      }
      bool last = false;
      {
        const std::scoped_lock lock(mutex_);
        last = ++job.completed == total;
      }
      if (last) done_.notify_all();
    }
    t_in_parallel_region = false;
  }

  std::mutex run_mutex_;  ///< serializes concurrent run() callers
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;            ///< guarded by mutex_
  std::uint64_t generation_ = 0;  ///< guarded by mutex_
  std::size_t active_ = 0;        ///< workers inside participate(); guarded by mutex_
  bool stop_ = false;             ///< guarded by mutex_
};

Pool& pool() {
  static Pool p;  // joined at static destruction
  return p;
}

}  // namespace

std::vector<ChunkRange> static_chunks(std::size_t begin, std::size_t end, std::size_t chunks) {
  std::vector<ChunkRange> out;
  if (end <= begin || chunks == 0) return out;
  const std::size_t len = end - begin;
  const std::size_t k = std::min(chunks, len);
  out.reserve(k);
  const std::size_t base = len / k;
  const std::size_t extra = len % k;
  std::size_t at = begin;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    out.push_back(ChunkRange{at, at + size, i});
    at += size;
  }
  return out;
}

std::size_t resolve_threads(std::size_t requested) {
  std::size_t t = requested;
  if (t == 0) {
    // Read once, before any worker threads exist; nothing in the process
    // mutates the environment.
    if (const char* env = std::getenv("HUBLAB_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) t = static_cast<std::size_t>(v);
    }
  }
  if (t == 0) t = 1;
  return std::min(t, kMaxThreads);
}

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

bool in_parallel_region() { return t_in_parallel_region; }

void yield() { std::this_thread::yield(); }

std::size_t worker_index() { return t_worker_index; }

void run_chunks(const std::vector<ChunkRange>& chunks, std::size_t threads,
                const std::function<void(const ChunkRange&)>& body) {
  if (chunks.empty()) return;
  threads = std::min(resolve_threads(threads), chunks.size());
  if (threads <= 1 || in_parallel_region()) {
    // Same contract as the pooled path: every chunk runs, then the
    // lowest-indexed exception (if any) is rethrown.
    std::vector<std::exception_ptr> errors(chunks.size());
    for (const ChunkRange& chunk : chunks) {
      try {
        body(chunk);
      } catch (...) {
        errors[chunk.index] = std::current_exception();
      }
    }
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return;
  }
  pool().run(chunks, threads, body);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(const ChunkRange&)>& body) {
  threads = resolve_threads(threads);
  run_chunks(static_chunks(begin, end, threads), threads, body);
}

}  // namespace hublab::par
