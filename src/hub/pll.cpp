#include "hub/pll.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hublab {

std::vector<Vertex> make_vertex_order(const Graph& g, VertexOrder order, std::uint64_t seed) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  std::vector<Vertex> result(n);
  for (Vertex v = 0; v < n; ++v) result[v] = v;
  switch (order) {
    case VertexOrder::kNatural:
      break;
    case VertexOrder::kRandom: {
      Rng rng(seed);
      shuffle(result, rng);
      break;
    }
    case VertexOrder::kDegreeDescending:
      std::stable_sort(result.begin(), result.end(),
                       [&g](Vertex a, Vertex b) { return g.degree(a) > g.degree(b); });
      break;
    default:
      HUBLAB_UNREACHABLE();
  }
  return result;
}

namespace {

/// Internal label entry keyed by hub *rank* so that labels built in rank
/// order are automatically sorted and query merges need no lookup table.
struct RankEntry {
  Vertex rank;
  Dist dist;
};

class PllBuilder {
 public:
  PllBuilder(const Graph& g, const std::vector<Vertex>& order)
      : g_(g), order_(order), labels_(g.num_vertices()), root_dist_(g.num_vertices(), kInfDist),
        dist_(g.num_vertices(), kInfDist) {
    HUBLAB_ASSERT_MSG(order.size() == g.num_vertices(), "order must be a permutation");
  }

  HubLabeling run() {
    const bool weighted = g_.is_weighted();
    for (Vertex k = 0; k < order_.size(); ++k) {
      if (weighted) {
        pruned_dijkstra(k);
      } else {
        pruned_bfs(k);
      }
    }
    // Convert rank-keyed entries to vertex-keyed public labels.
    HubLabeling out(g_.num_vertices());
    metrics::Histogram& label_sizes = metrics::registry().histogram("pll.label_size");
    for (Vertex v = 0; v < g_.num_vertices(); ++v) {
      label_sizes.record(labels_[v].size());
      for (const RankEntry& e : labels_[v]) out.add_hub(v, order_[e.rank], e.dist);
    }
    out.finalize();
    return out;
  }

 private:
  /// Query v against the root's label using root_dist_ (label of the current
  /// root scattered into an array indexed by rank).
  [[nodiscard]] Dist query_via_labels(Vertex v) const {
    Dist best = kInfDist;
    for (const RankEntry& e : labels_[v]) {
      const Dist rd = root_dist_[e.rank];
      if (rd != kInfDist && e.dist + rd < best) best = e.dist + rd;
    }
    return best;
  }

  void scatter_root_label(Vertex root) {
    for (const RankEntry& e : labels_[root]) root_dist_[e.rank] = e.dist;
  }

  void clear_root_label(Vertex root) {
    for (const RankEntry& e : labels_[root]) root_dist_[e.rank] = kInfDist;
  }

  void pruned_bfs(Vertex k) {
    const Vertex root = order_[k];
    scatter_root_label(root);
    std::vector<Vertex> frontier{root};
    std::vector<Vertex> touched{root};
    dist_[root] = 0;
    Dist level = 0;
    std::vector<Vertex> next;
    std::uint64_t visited = 0;
    std::uint64_t pruned = 0;
    std::uint64_t pushes = 0;
    while (!frontier.empty()) {
      for (Vertex u : frontier) {
        ++visited;
        // Prune: already answered at distance <= level by earlier hubs.
        if (query_via_labels(u) <= level) {
          ++pruned;
          continue;
        }
        labels_[u].push_back(RankEntry{k, level});
        ++pushes;
        for (const Arc& a : g_.arcs(u)) {
          if (dist_[a.to] == kInfDist) {
            dist_[a.to] = level + 1;
            touched.push_back(a.to);
            next.push_back(a.to);
          }
        }
      }
      ++level;
      frontier.swap(next);
      next.clear();
    }
    for (Vertex v : touched) dist_[v] = kInfDist;
    clear_root_label(root);
    c_visited_.add(visited);
    c_pruned_.add(pruned);
    c_pushes_.add(pushes);
  }

  void pruned_dijkstra(Vertex k) {
    const Vertex root = order_[k];
    scatter_root_label(root);
    using Item = std::pair<Dist, Vertex>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    std::vector<Vertex> touched{root};
    dist_[root] = 0;
    pq.emplace(0, root);
    std::uint64_t visited = 0;
    std::uint64_t pruned = 0;
    std::uint64_t pushes = 0;
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != dist_[u]) continue;
      ++visited;
      if (query_via_labels(u) <= d) {  // prune
        ++pruned;
        continue;
      }
      labels_[u].push_back(RankEntry{k, d});
      ++pushes;
      for (const Arc& a : g_.arcs(u)) {
        const Dist nd = d + a.weight;
        if (nd < dist_[a.to]) {
          if (dist_[a.to] == kInfDist) touched.push_back(a.to);
          dist_[a.to] = nd;
          pq.emplace(nd, a.to);
        }
      }
    }
    for (Vertex v : touched) dist_[v] = kInfDist;
    clear_root_label(root);
    c_visited_.add(visited);
    c_pruned_.add(pruned);
    c_pushes_.add(pushes);
  }

  const Graph& g_;
  const std::vector<Vertex>& order_;
  std::vector<std::vector<RankEntry>> labels_;
  std::vector<Dist> root_dist_;  ///< rank-indexed distances of current root
  std::vector<Dist> dist_;       ///< per-BFS tentative distances
  metrics::Counter& c_visited_ = metrics::registry().counter("pll.visited");
  metrics::Counter& c_pruned_ = metrics::registry().counter("pll.pruned");
  metrics::Counter& c_pushes_ = metrics::registry().counter("pll.label_pushes");
};

}  // namespace

HubLabeling pruned_landmark_labeling(const Graph& g, const std::vector<Vertex>& order) {
  return PllBuilder(g, order).run();
}

HubLabeling pruned_landmark_labeling(const Graph& g, VertexOrder order, std::uint64_t seed) {
  return pruned_landmark_labeling(g, make_vertex_order(g, order, seed));
}

}  // namespace hublab
