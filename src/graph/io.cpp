#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace hublab::io {

Graph read_edge_list(std::istream& in) {
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(in >> n >> m)) throw ParseError("edge list: missing 'n m' header");
  GraphBuilder b(n);
  std::string rest;
  std::getline(in, rest);  // consume end of header line
  std::size_t seen = 0;
  std::string line;
  while (seen < m && std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 1;
    if (!(ls >> u >> v)) throw ParseError("edge list: malformed edge line: " + line);
    ls >> w;  // optional
    if (u >= n || v >= n) throw ParseError("edge list: vertex id out of range: " + line);
    if (w > std::numeric_limits<Weight>::max()) throw ParseError("edge list: weight too large");
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v), static_cast<Weight>(w));
    ++seen;
  }
  if (seen < m) throw ParseError("edge list: fewer edges than declared");
  return b.build();
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) out << u << ' ' << a.to << ' ' << a.weight << '\n';
    }
  }
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  bool have_header = false;
  GraphBuilder b(0);
  // Use a set-free approach: GraphBuilder collapses duplicate arcs.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      std::size_t m = 0;
      if (!(ls >> tag >> n >> m) || tag != "sp") throw ParseError("dimacs: bad 'p sp n m' line");
      b = GraphBuilder(n);
      have_header = true;
    } else if (kind == 'a') {
      if (!have_header) throw ParseError("dimacs: arc before header");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      std::uint64_t w = 1;
      if (!(ls >> u >> v >> w)) throw ParseError("dimacs: malformed arc line: " + line);
      if (u == 0 || v == 0 || u > n || v > n) throw ParseError("dimacs: vertex id out of range");
      if (u == v) continue;
      if (w > std::numeric_limits<Weight>::max()) throw ParseError("dimacs: weight too large");
      b.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1), static_cast<Weight>(w));
    } else {
      throw ParseError("dimacs: unknown line kind: " + line);
    }
  }
  if (!have_header) throw ParseError("dimacs: missing header");
  return b.build();
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c hublab graph\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_arcs() << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      out << "a " << (u + 1) << ' ' << (a.to + 1) << ' ' << a.weight << '\n';
    }
  }
}

void write_dot(const Graph& g, std::ostream& out, const std::string& name) {
  out << "graph " << name << " {\n";
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) {
        out << "  " << u << " -- " << a.to;
        if (g.is_weighted()) out << " [label=\"" << a.weight << "\"]";
        out << ";\n";
      }
    }
  }
  out << "}\n";
}

Graph load_edge_list(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in) throw Error("cannot open file: " + file_path);
  return read_edge_list(in);
}

void save_edge_list(const Graph& g, const std::string& file_path) {
  std::ofstream out(file_path);
  if (!out) throw Error("cannot open file for writing: " + file_path);
  write_edge_list(g, out);
  if (!out) throw Error("write failed: " + file_path);
}

}  // namespace hublab::io
