/// \file bench_compare.cpp
/// Standalone entry point for the run-report regression differ:
/// `bench_compare BASE.json NEW.json [--threshold PCT]` behaves exactly
/// like `hublab bench-compare ...` (tools/cli.hpp documents the exit
/// codes).  Exists so CI pipelines can gate on a single small binary.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  args.emplace_back("bench-compare");
  args.insert(args.end(), argv + 1, argv + argc);
  return hublab::cli::run(args, std::cout, std::cerr);
}
