// SIMD-confinement pass:
//
//   simd   raw SIMD intrinsics — `_mm*` calls and the `__m128`/`__m256`/
//          `__m512` vector types (and their mask kin) — are confined to
//          the `src/hub/simd_kernel*` translation units, the three-tier
//          batched query kernel of docs/performance.md.  Everything else
//          goes through that kernel's dispatch API, so exactly one place
//          carries per-ISA code, per-ISA compile flags, and the
//          byte-identity proof.  `hublab-lint-allow(simd)` escapes a line
//          that genuinely needs an intrinsic elsewhere.
//
// The detection tokens are assembled from fragments so this pass (and the
// analyzer's own sources) never flag themselves.

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

/// True when `line` uses a raw SIMD identifier: an identifier starting
/// `_mm` (intrinsics and widths: _mm_, _mm256_, _mm512_, __mmask...) or a
/// vector type `__m<digit>` (e.g. __m128i, __m256, __m512i).
bool uses_simd_identifier(const std::string& line) {
  const std::string call = std::string("_m") + "m";      // "_mm"
  const std::string type = std::string("__") + "m";      // "__m"
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '_') continue;
    if (i > 0 && is_ident_char(line[i - 1])) continue;  // mid-identifier
    if (line.compare(i, call.size(), call) == 0) return true;
    if (line.compare(i, type.size(), type) == 0 && i + type.size() < line.size() &&
        line[i + type.size()] >= '0' && line[i + type.size()] <= '9') {
      return true;
    }
  }
  return false;
}

}  // namespace

void pass_simd(const std::vector<SourceFile>& files, const Options& /*opt*/, Sink& sink) {
  const std::string kernel_prefix = "src/hub/simd_kernel";
  for (const SourceFile& f : files) {
    if (f.rel.rfind(kernel_prefix, 0) == 0) continue;  // the sanctioned TUs
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (!uses_simd_identifier(f.code[i])) continue;
      sink.add(f, i + 1, "simd",
               "raw SIMD intrinsics are confined to the src/hub/simd_kernel* TUs; go through "
               "the hublab::simd dispatch API");
    }
  }
}

}  // namespace hublab::lint
