#include "oracle/oracle.hpp"

#include <algorithm>

#include "algo/shortest_paths.hpp"

namespace hublab {

Dist SsspOracle::distance(Vertex u, Vertex v) const { return sssp_distances(*g_, u)[v]; }

Dist BidirectionalOracle::distance(Vertex u, Vertex v) const {
  return bidirectional_distance(*g_, u, v);
}

Dist BidirectionalOracle::distance_with_stats(Vertex u, Vertex v,
                                              metrics::QueryStats& stats) const {
  return bidirectional_distance_with_stats(*g_, u, v, stats);
}

HubLabelOracle::HubLabelOracle(const Graph& g, HubLabeling labeling)
    : labels_(std::move(labeling)) {
  HUBLAB_ASSERT(labels_.num_vertices() == g.num_vertices());
}

LandmarkOracle::LandmarkOracle(const Graph& g, const std::vector<Vertex>& landmarks) {
  rows_.reserve(landmarks.size());
  for (Vertex l : landmarks) rows_.push_back(sssp_distances(g, l));
}

Dist LandmarkOracle::distance(Vertex u, Vertex v) const {
  Dist best = kInfDist;
  for (const auto& row : rows_) {
    if (row[u] != kInfDist && row[v] != kInfDist) best = std::min(best, row[u] + row[v]);
  }
  return best;
}

}  // namespace hublab
