/// \file lowerbound_gadget.cpp
/// Walk through the paper's lower-bound construction (Section 2).
///
/// Usage: lowerbound_gadget [b] [l]       (defaults: b=2 l=2)
///
/// Builds H_{b,l} and its degree-3 expansion G_{b,l}, verifies Lemma 2.2,
/// computes the certified counting bound of Theorem 2.1 (iii), and -- for
/// small instances -- shows that an actual PLL labeling cannot beat it.

#include <cstdio>
#include <cstdlib>

#include "algo/shortest_paths.hpp"
#include "graph/transforms.hpp"
#include "hub/pll.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  lb::GadgetParams p{2, 2};
  if (argc > 1) p.b = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) p.ell = static_cast<std::uint32_t>(std::atoi(argv[2]));

  std::printf("== H_{%u,%u}: the weighted layered gadget ==\n", p.b, p.ell);
  const lb::LayeredGadget h(p);
  std::printf("s=%llu levels=%llu layer=%llu A=%llu  =>  n=%zu m=%zu\n",
              static_cast<unsigned long long>(p.s()),
              static_cast<unsigned long long>(p.num_levels()),
              static_cast<unsigned long long>(p.layer_size()),
              static_cast<unsigned long long>(p.base_weight()), h.graph().num_vertices(),
              h.graph().num_edges());

  std::printf("\n== Lemma 2.2: unique shortest paths through the midlevel ==\n");
  const lb::Lemma22Report report = verify_lemma_2_2(h, /*max_sources=*/128, /*seed=*/1);
  std::printf("checked %llu (x,z) pairs from %llu sources: %s\n",
              static_cast<unsigned long long>(report.pairs_checked),
              static_cast<unsigned long long>(report.sources_checked),
              report.ok() ? "all unique, all through v_{l,(x+z)/2}" : "FAILED");

  std::printf("\n== Theorem 2.1 (iii): the counting lower bound ==\n");
  const std::uint64_t T = p.num_triplets();
  const Dist hop_diam = h.graph().num_vertices() <= 2000
                            ? diameter_exact(unweighted_copy(h.graph()))
                            : p.hop_diameter_bound();
  const double bound =
      lb::certified_avg_hub_lower_bound(T, h.graph().num_vertices(), hop_diam);
  std::printf("triplets T = %llu, hop diameter %llu  =>  ANY hub labeling of H needs\n"
              "average |S(v)| >= %.3f\n",
              static_cast<unsigned long long>(T), static_cast<unsigned long long>(hop_diam),
              bound);

  if (h.graph().num_vertices() <= 4000) {
    const HubLabeling pll = pruned_landmark_labeling(h.graph());
    std::printf("PLL measured average: %.3f  (>= certified bound: %s)\n",
                pll.average_label_size(), pll.average_label_size() >= bound ? "yes" : "NO");
    const lb::ClosureAudit audit = lb::audit_closure_bound(h.graph(), pll, T);
    std::printf("monotone closure pays for all triplets: sum|S*| = %llu >= T = %llu (%s)\n",
                static_cast<unsigned long long>(audit.sum_closure),
                static_cast<unsigned long long>(audit.required), audit.ok() ? "ok" : "NO");
  }

  if (p.num_h_vertices() <= 400) {
    std::printf("\n== G_{%u,%u}: the max-degree-3 expansion ==\n", p.b, p.ell);
    const lb::Degree3Gadget g3(h);
    std::printf("n=%zu m=%zu max_degree=%zu (trees: %zu, subdivision: %zu)\n",
                g3.graph().num_vertices(), g3.graph().num_edges(), g3.graph().max_degree(),
                g3.num_tree_vertices(), g3.num_path_vertices());
    std::printf("certified avg hub bound on G: %.6f\n",
                lb::certified_bound_g(p, g3.graph().num_vertices()));
  } else {
    std::printf("\n(G_{%u,%u} too large to materialize in this walkthrough)\n", p.b, p.ell);
  }
  return 0;
}
