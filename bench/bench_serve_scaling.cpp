/// \file bench_serve_scaling.cpp
/// Experiment PRACT, open-loop edition: throughput-vs-latency scaling of
/// the concurrent query server (oracle/server.hpp) over the SIMD batched
/// kernel, on the same connected-gnm(2000, 4000) family the query
/// microbenches use.
///
/// Two configurations ride an offered-load ladder under `kBlock` admission
/// (nothing is shed, so completed == offered deterministically at every
/// rung): `scalar1w` (one worker, per-query drain) and `batch4w` (four
/// workers draining blocks of 32 through FlatHubLabeling::query_batch).
/// The headline gauges are each configuration's peak sustained throughput
/// (`pract.serve_peak_qps.<label>`, higher is better — bench-compare's
/// qps class gates *decreases*) and the arrival-to-completion p99 at the
/// ladder rung nearest half the peak (`pract.serve_p99_at_halfpeak_ns.
/// <label>`, the SLO-at-half-capacity number), plus the scalar peak as a
/// percent of the batched peak.  Absolute peaks depend on the host's core
/// count — single-core CI boxes time-slice the workers, so cross-host
/// numbers are not comparable; the committed baseline pins *this* host.
///
/// The virtual-time phases exercise the parts wall clocks cannot gate:
/// under `TimingMode::kVirtual` the latency / queue-depth / shed numbers
/// come from the deterministic M/D/c pre-simulation, so a sub-capacity run
/// must shed nothing, an over-capacity run against a small ring must shed
/// a byte-stable count, and two identical overload runs must agree on
/// every latency quantile, the checksum, and the merged-window series.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "oracle/oracle.hpp"
#include "oracle/serve.hpp"
#include "oracle/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace hublab {
namespace {

struct LadderPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

struct LadderSummary {
  std::vector<LadderPoint> points;
  double peak_qps = 0.0;
  std::uint64_t p99_at_halfpeak_ns = 0;
  bool ok = true;
};

serve::ServerConfig base_config(const bench::Harness& harness) {
  serve::ServerConfig config;
  config.oracle = serve::OracleKind::kPllFlat;
  config.workload = serve::WorkloadKind::kUniform;
  config.num_queries = harness.smoke() ? 2000 : 20000;
  config.seed = 1;
  config.bp_roots = harness.bp_roots();
  config.register_metrics = false;  // committed baselines carry only pract gauges
  return config;
}

/// Drive one configuration up the offered-load ladder under kBlock
/// admission and summarize its throughput curve.
LadderSummary run_ladder(const Graph& g, const DistanceOracle& oracle,
                         const bench::Harness& harness, const char* label,
                         std::size_t workers, std::size_t batch, Tracer& tracer) {
  const std::vector<double> ladder =
      harness.smoke() ? std::vector<double>{50e3, 200e3, 800e3}
                      : std::vector<double>{25e3, 50e3, 100e3, 200e3, 400e3, 800e3, 1.6e6};
  LadderSummary summary;
  serve::ServerConfig config = base_config(harness);
  config.workers = workers;
  config.batch = batch;
  config.admission = serve::AdmissionPolicy::kBlock;
  // Each rung runs a few times, keeping the best achieved rate and the
  // cleanest p99: open-loop wall numbers on a shared box carry multi-ms
  // scheduler stalls in single runs, and the committed-baseline gate needs
  // the envelope, not one draw.
  // Smoke rungs are short (tens of ms), so a stall contaminates a larger
  // fraction of them — they get more repeats, not fewer.
  const std::size_t reps = harness.smoke() ? 4 : 3;
  for (const double qps : ladder) {
    config.qps = qps;
    LadderPoint point;
    point.offered_qps = qps;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const serve::ServerResult r = serve::run_server_on(g, oracle, config, &tracer);
      // Block admission answers everything; shedding here would be a bug.
      if (r.completed + r.rejected != r.offered || r.rejected != 0) summary.ok = false;
      // The serve loop cannot complete meaningfully faster than the
      // offered schedule spans (small Poisson slack allowed).
      if (r.achieved_qps > qps * 1.25) summary.ok = false;
      point.completed = r.completed;
      point.rejected = r.rejected;
      if (r.achieved_qps > point.achieved_qps) point.achieved_qps = r.achieved_qps;
      const std::uint64_t p50 = r.latency_ns.quantile(0.5);
      const std::uint64_t p99 = r.latency_ns.quantile(0.99);
      if (rep == 0 || p50 < point.p50_ns) point.p50_ns = p50;
      if (rep == 0 || p99 < point.p99_ns) point.p99_ns = p99;
    }
    summary.points.push_back(point);
    if (point.achieved_qps > summary.peak_qps) summary.peak_qps = point.achieved_qps;
  }
  // SLO-at-half-capacity: the p99 of the ladder rung whose offered rate is
  // nearest half the measured peak — among rungs the server actually kept
  // up with (achieved >= 90% of offered).  A rung past the box's true
  // capacity has queueing-dominated p99 orders of magnitude above the
  // served regime, which would make the committed gauge meaningless noise.
  double best_gap = -1.0;
  for (const LadderPoint& p : summary.points) {
    if (p.achieved_qps < 0.9 * p.offered_qps) continue;
    const double gap = p.offered_qps > summary.peak_qps / 2.0
                           ? p.offered_qps - summary.peak_qps / 2.0
                           : summary.peak_qps / 2.0 - p.offered_qps;
    if (best_gap < 0.0 || gap < best_gap) {
      best_gap = gap;
      summary.p99_at_halfpeak_ns = p.p99_ns;
    }
  }
  if (best_gap < 0.0 && !summary.points.empty()) {
    summary.p99_at_halfpeak_ns = summary.points.front().p99_ns;
  }
  if (summary.peak_qps <= 0.0) summary.ok = false;
  std::printf("%s: peak=%.0f qps, p99@halfpeak=%llu ns\n", label, summary.peak_qps,
              static_cast<unsigned long long>(summary.p99_at_halfpeak_ns));
  return summary;
}

void print_ladder(bench::Harness& harness, const char* label, const LadderSummary& s) {
  TextTable table({"offered_qps", "achieved_qps", "completed", "rejected", "p50_ns", "p99_ns"});
  for (const LadderPoint& p : s.points) {
    table.add_row({fmt_double(p.offered_qps, 0), fmt_double(p.achieved_qps, 0),
                   std::to_string(p.completed), std::to_string(p.rejected),
                   std::to_string(p.p50_ns), std::to_string(p.p99_ns)});
  }
  harness.print(table, std::string("open-loop ladder: ") + label);
}

/// Virtual-time semantics: sub-capacity traffic sheds nothing; overload
/// against a small ring sheds deterministically; two identical overload
/// runs agree byte-for-byte on everything the determinism contract names.
bool run_virtual_checks(const Graph& g, const DistanceOracle& oracle,
                        const bench::Harness& harness, Tracer& tracer) {
  bool ok = true;
  serve::ServerConfig config = base_config(harness);
  config.workers = 4;
  config.batch = 32;
  config.timing = serve::TimingMode::kVirtual;
  config.virtual_service_ns = 1000;  // 1M queries/s/worker simulated capacity

  config.qps = 200e3;  // well under 4 workers x 1M/s
  config.admission = serve::AdmissionPolicy::kShed;
  {
    const serve::ServerResult r = serve::run_server_on(g, oracle, config, &tracer);
    if (r.rejected != 0 || r.completed != r.offered) {
      std::printf("virtual sub-capacity: unexpected shedding (rejected=%llu)\n",
                  static_cast<unsigned long long>(r.rejected));
      ok = false;
    }
  }

  config.qps = 16e6;  // 4x the simulated capacity; the small ring must shed
  config.ring_capacity = 256;
  const serve::ServerResult first = serve::run_server_on(g, oracle, config, &tracer);
  const serve::ServerResult second = serve::run_server_on(g, oracle, config, &tracer);
  if (first.rejected == 0) {
    std::printf("virtual overload: expected shedding, saw none\n");
    ok = false;
  }
  const bool identical =
      first.rejected == second.rejected && first.completed == second.completed &&
      first.checksum == second.checksum && first.reachable == second.reachable &&
      first.latency_ns.quantile(0.5) == second.latency_ns.quantile(0.5) &&
      first.latency_ns.quantile(0.99) == second.latency_ns.quantile(0.99) &&
      first.queue_depth.quantile(0.99) == second.queue_depth.quantile(0.99) &&
      first.windows.size() == second.windows.size();
  if (!identical) {
    std::printf("virtual overload: two identical runs DISAGREE\n");
    ok = false;
  }
  std::printf("virtual: subcap clean, overload rejected=%llu/%llu, rerun %s\n",
              static_cast<unsigned long long>(first.rejected),
              static_cast<unsigned long long>(first.offered),
              identical ? "identical" : "DIVERGED");
  return ok;
}

}  // namespace
}  // namespace hublab

int main(int argc, char** argv) {
  using namespace hublab;
  bench::Harness harness(argc, argv, "serve_scaling",
                         "Experiment PRACT: open-loop serve scaling (SPSC shards over the "
                         "batched kernel)");

  Rng rng(3);
  const Graph g = gen::connected_gnm(2000, 4000, rng);
  harness.add_graph("connected-gnm", g.num_vertices(), g.num_edges());

  std::unique_ptr<DistanceOracle> oracle;
  {
    auto span = harness.phase("build-oracle");
    serve::SimConfig build;
    build.oracle = serve::OracleKind::kPllFlat;
    build.bp_roots = harness.bp_roots();
    build.threads = harness.threads();
    oracle = serve::make_oracle(g, build);
  }

  LadderSummary scalar1w;
  {
    auto span = harness.phase("wall-ladder-scalar1w");
    scalar1w = run_ladder(g, *oracle, harness, "scalar1w", 1, 1, harness.tracer());
  }
  LadderSummary batch4w;
  {
    auto span = harness.phase("wall-ladder-batch4w");
    batch4w = run_ladder(g, *oracle, harness, "batch4w", 4, 32, harness.tracer());
  }
  print_ladder(harness, "scalar1w", scalar1w);
  print_ladder(harness, "batch4w", batch4w);

  bool virtual_ok = false;
  {
    auto span = harness.phase("virtual-determinism");
    virtual_ok = run_virtual_checks(g, *oracle, harness, harness.tracer());
  }

  // The serve runs kept the registry untouched (register_metrics=false),
  // but the PLL build and the batch kernel registered timing-dependent
  // counters (query.batch.calls varies with drain-block sizes).  Zero
  // everything, then set only the deterministic headline gauges, so the
  // committed baseline diff is meaningful.
  metrics::registry().reset();
  metrics::Registry& reg = metrics::registry();
  const auto commit = [&reg](const std::string& label, const LadderSummary& s) {
    reg.gauge("pract.serve_peak_qps." + label).set(static_cast<std::int64_t>(s.peak_qps));
    reg.gauge("pract.serve_p99_at_halfpeak_ns." + label)
        .set(static_cast<std::int64_t>(s.p99_at_halfpeak_ns));
  };
  commit("scalar1w", scalar1w);
  commit("batch4w", batch4w);
  // The cross-config ratio is printed, not committed: on few-core hosts
  // the two peaks time-slice the same cores and their quotient is pure
  // scheduler noise, far outside any honest structural threshold.
  if (batch4w.peak_qps > 0.0) {
    std::printf("scalar1w peak is %.0f%% of batch4w peak\n",
                100.0 * scalar1w.peak_qps / batch4w.peak_qps);
  }

  const bool ok = scalar1w.ok && batch4w.ok && virtual_ok;
  return harness.finish("PRACT serve scaling", ok);
}
