#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/parallel.hpp"

namespace hublab {
namespace {

// ---------------------------------------------------------------------------
// static_chunks: the chunking is the determinism anchor — boundaries must
// depend only on (range, chunk count), cover the range exactly, and differ
// in size by at most one.
// ---------------------------------------------------------------------------

void expect_valid_partition(std::size_t begin, std::size_t end, std::size_t chunks) {
  const auto parts = par::static_chunks(begin, end, chunks);
  const std::size_t size = end - begin;
  ASSERT_EQ(parts.size(), std::min(chunks, size));
  std::size_t cursor = begin;
  std::size_t min_len = size;
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].index, i);
    EXPECT_EQ(parts[i].begin, cursor);
    EXPECT_LT(parts[i].begin, parts[i].end) << "empty chunk emitted";
    const std::size_t len = parts[i].end - parts[i].begin;
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);
    cursor = parts[i].end;
  }
  EXPECT_EQ(cursor, end);
  if (!parts.empty()) {
    EXPECT_LE(max_len - min_len, 1u);
  }
}

TEST(StaticChunks, PartitionsExactlyAndEvenly) {
  expect_valid_partition(0, 10, 3);
  expect_valid_partition(0, 10, 10);
  expect_valid_partition(0, 3, 10);  // more chunks than items: no empties
  expect_valid_partition(5, 25, 4);
  expect_valid_partition(0, 1, 1);
  expect_valid_partition(7, 1000, 64);
}

TEST(StaticChunks, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(par::static_chunks(0, 0, 4).empty());
  EXPECT_TRUE(par::static_chunks(9, 9, 1).empty());
}

TEST(StaticChunks, LargerChunksComeFirst) {
  // 10 items over 3 chunks: 4, 3, 3.
  const auto parts = par::static_chunks(0, 10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].end - parts[0].begin, 4u);
  EXPECT_EQ(parts[1].end - parts[1].begin, 3u);
  EXPECT_EQ(parts[2].end - parts[2].begin, 3u);
}

TEST(StaticChunks, DependsOnlyOnRangeAndCount) {
  const auto a = par::static_chunks(3, 77, 5);
  const auto b = par::static_chunks(3, 77, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

// ---------------------------------------------------------------------------
// resolve_threads
// ---------------------------------------------------------------------------

TEST(ResolveThreads, ExplicitRequestWins) {
  ::setenv("HUBLAB_THREADS", "8", 1);
  EXPECT_EQ(par::resolve_threads(3), 3u);
  ::unsetenv("HUBLAB_THREADS");
}

TEST(ResolveThreads, FallsBackToEnvironmentThenOne) {
  ::unsetenv("HUBLAB_THREADS");
  EXPECT_EQ(par::resolve_threads(0), 1u);
  ::setenv("HUBLAB_THREADS", "6", 1);
  EXPECT_EQ(par::resolve_threads(0), 6u);
  ::setenv("HUBLAB_THREADS", "not-a-number", 1);
  EXPECT_EQ(par::resolve_threads(0), 1u);
  ::setenv("HUBLAB_THREADS", "0", 1);
  EXPECT_EQ(par::resolve_threads(0), 1u);
  ::unsetenv("HUBLAB_THREADS");
}

TEST(ResolveThreads, ClampsToMaxThreads) {
  EXPECT_EQ(par::resolve_threads(1'000'000), par::kMaxThreads);
  ::setenv("HUBLAB_THREADS", "99999", 1);
  EXPECT_EQ(par::resolve_threads(0), par::kMaxThreads);
  ::unsetenv("HUBLAB_THREADS");
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(par::hardware_threads(), 1u); }

// ---------------------------------------------------------------------------
// parallel_for / run_chunks semantics
// ---------------------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<std::atomic<int>> visits(257);
    par::parallel_for(0, visits.size(), threads, [&](const par::ChunkRange& chunk) {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " with threads=" << threads;
    }
  }
}

TEST(ParallelFor, ChunkOrderReductionIsThreadCountInvariant) {
  // The canonical usage pattern: per-chunk slots keyed by chunk.index,
  // reduced in chunk order.  With a chunk count fixed by the caller, the
  // result must not depend on how many workers execute the chunks.
  const auto chunks = par::static_chunks(0, 1000, 8);
  auto run = [&](std::size_t threads) {
    std::vector<std::uint64_t> slots(chunks.size(), 0);
    par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        slots[chunk.index] = slots[chunk.index] * 31 + i;
      }
    });
    std::uint64_t acc = 0;
    for (const std::uint64_t s : slots) acc = acc * 1315423911u + s;
    return acc;
  };
  const std::uint64_t one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
  EXPECT_EQ(run(7), one);
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool ran = false;
  par::parallel_for(5, 5, 4, [&](const par::ChunkRange&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> inner_runs{0};
  std::atomic<int> nested_seen{0};
  par::parallel_for(0, 4, 4, [&](const par::ChunkRange&) {
    EXPECT_TRUE(par::in_parallel_region());
    par::parallel_for(0, 3, 4, [&](const par::ChunkRange&) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
      if (par::in_parallel_region()) nested_seen.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(par::in_parallel_region());
  // 4 outer chunks each run 3 inner chunks inline.
  EXPECT_EQ(inner_runs.load(), 12);
  EXPECT_EQ(nested_seen.load(), 12);
}

TEST(ParallelFor, RethrowsLowestIndexedChunkException) {
  // Same 4-way chunking executed by 1 and by 4 workers: both paths must
  // surface the lowest-indexed failing chunk (deterministic across
  // schedules).
  const auto chunks = par::static_chunks(0, 100, 4);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      par::run_chunks(chunks, threads, [&](const par::ChunkRange& chunk) {
        if (chunk.index == 1 || chunk.index == 3) {
          throw std::runtime_error("chunk " + std::to_string(chunk.index));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 1") << "threads=" << threads;
    }
  }
}

TEST(ParallelFor, PoolIsReusableAfterAnException) {
  EXPECT_THROW(
      par::parallel_for(0, 8, 4, [](const par::ChunkRange&) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::atomic<std::uint64_t> sum{0};
  par::parallel_for(0, 100, 4, [&](const par::ChunkRange& chunk) {
    std::uint64_t local = 0;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(RunChunks, HonorsCallerSuppliedChunkList) {
  // Caller-fixed chunking (the serve-sim pattern): 5 uneven chunks, results
  // keyed by index.
  const std::vector<par::ChunkRange> chunks{
      {0, 10, 0}, {10, 11, 1}, {11, 40, 2}, {40, 41, 3}, {41, 64, 4}};
  std::vector<std::size_t> counts(chunks.size(), 0);
  par::run_chunks(chunks, 4, [&](const par::ChunkRange& chunk) {
    counts[chunk.index] = chunk.end - chunk.begin;
  });
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), 64u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[4], 23u);
}

TEST(RunChunks, EmptyListIsANoop) {
  par::run_chunks({}, 4, [](const par::ChunkRange&) { FAIL() << "body ran"; });
}

TEST(WorkerIndex, CallerIsZeroAndPoolIndicesAreBounded) {
  // The observability layer (Tracer tid, per-worker busy accounting,
  // profiler stack roots) keys on worker_index(): 0 is the caller, pool
  // workers get fixed indices in [1, kMaxThreads).
  EXPECT_EQ(par::worker_index(), 0u);
  // 16 single-item chunks on 4 executors: every chunk must see a fixed
  // executor index below the cap (0 = caller, 1+ = pool workers).
  std::vector<par::ChunkRange> chunks;
  for (std::size_t i = 0; i < 16; ++i) chunks.push_back({i, i + 1, i});
  std::vector<std::size_t> by_chunk(chunks.size(), par::kMaxThreads);
  par::run_chunks(chunks, 4, [&](const par::ChunkRange& chunk) {
    by_chunk[chunk.index] = par::worker_index();
  });
  for (std::size_t i = 0; i < by_chunk.size(); ++i) {
    EXPECT_LT(by_chunk[i], par::kMaxThreads) << "chunk " << i << " never ran";
  }
  // threads==1 runs everything inline on the caller (index 0), and the
  // caller is back at 0 afterwards.
  std::vector<std::size_t> inline_run(2, par::kMaxThreads);
  par::run_chunks({{0, 1, 0}, {1, 2, 1}}, 1, [&](const par::ChunkRange& chunk) {
    inline_run[chunk.index] = par::worker_index();
  });
  EXPECT_EQ(inline_run[0], 0u);
  EXPECT_EQ(inline_run[1], 0u);
  EXPECT_EQ(par::worker_index(), 0u);
}

}  // namespace
}  // namespace hublab
