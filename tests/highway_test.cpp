#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/highway.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(SpCover, PathMidScale) {
  const Graph g = gen::path(9);
  const auto truth = DistanceMatrix::compute(g);
  const auto cover = greedy_sp_cover(g, truth, 4);  // pairs with d in (4, 8]
  EXPECT_TRUE(is_sp_cover(truth, cover, 4));
  // One well-placed vertex (the middle) hits all long paths in P9.
  EXPECT_EQ(cover.size(), 1u);
}

TEST(SpCover, EmptyWhenNoPairsInRange) {
  const Graph g = gen::path(4);
  const auto truth = DistanceMatrix::compute(g);
  const auto cover = greedy_sp_cover(g, truth, 10);
  EXPECT_TRUE(cover.empty());
  EXPECT_TRUE(is_sp_cover(truth, cover, 10));
}

TEST(SpCover, VerifierRejectsBadCover) {
  const Graph g = gen::path(9);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_FALSE(is_sp_cover(truth, {0}, 4));  // endpoint misses interior paths
}

TEST(SpCover, RejectsWeighted) {
  Rng rng(1);
  const Graph g = gen::randomize_weights(gen::grid(3, 3), 5, rng);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_THROW(greedy_sp_cover(g, truth, 2), InvalidArgument);
}

class SpCoverSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, Dist>> {};

TEST_P(SpCoverSweep, GreedyCoverIsValid) {
  const auto [seed, r] = GetParam();
  Rng rng(seed);
  const Graph g = gen::connected_gnm(60, 120, rng);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_TRUE(is_sp_cover(truth, greedy_sp_cover(g, truth, r), r));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpCoverSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

void expect_multiscale_exact(const Graph& g) {
  const auto truth = DistanceMatrix::compute(g);
  MultiscaleStats stats;
  const HubLabeling l = multiscale_cover_labeling(g, truth, &stats);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(Multiscale, ExactOnGrid) { expect_multiscale_exact(gen::grid(6, 6)); }

TEST(Multiscale, ExactOnPathAndCycle) {
  expect_multiscale_exact(gen::path(20));
  expect_multiscale_exact(gen::cycle(17));
}

TEST(Multiscale, ExactOnRandomAndDisconnected) {
  Rng rng(2);
  expect_multiscale_exact(gen::gnm(50, 90, rng));
  expect_multiscale_exact(gen::barabasi_albert(60, 2, rng));
}

TEST(Multiscale, StatsReported) {
  const Graph g = gen::grid(6, 6);
  const auto truth = DistanceMatrix::compute(g);
  MultiscaleStats stats;
  (void)multiscale_cover_labeling(g, truth, &stats);
  ASSERT_FALSE(stats.scales.empty());
  EXPECT_EQ(stats.scales.front().r, 1u);
  for (const auto& s : stats.scales) {
    EXPECT_LE(s.max_ball_load, s.cover_size);
  }
  EXPECT_GT(stats.highway_dimension_estimate(), 0u);
}

TEST(Multiscale, LowLoadOnPathHighOnExpander) {
  // The highway-dimension proxy separates "road-like" from expander-like.
  const Graph path = gen::path(64);
  const auto pt = DistanceMatrix::compute(path);
  MultiscaleStats ps;
  (void)multiscale_cover_labeling(path, pt, &ps);

  Rng rng(3);
  const Graph expander = gen::random_regular(64, 3, rng);
  const auto et = DistanceMatrix::compute(expander);
  MultiscaleStats es;
  (void)multiscale_cover_labeling(expander, et, &es);

  EXPECT_LT(ps.highway_dimension_estimate(), es.highway_dimension_estimate());
}

TEST(Multiscale, RejectsWeighted) {
  Rng rng(4);
  const Graph g = gen::randomize_weights(gen::grid(3, 3), 5, rng);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_THROW(multiscale_cover_labeling(g, truth), InvalidArgument);
}

}  // namespace
}  // namespace hublab
