// hublab_lint: the repo's multi-pass static analyzer (see docs/correctness.md
// and tools/lint/lint.hpp for the pass and rule catalog).
//
// Usage:
//   hublab_lint [--root DIR] [--compiler CXX] [--no-header-check]
//               [--baseline FILE | --no-baseline]
//               [--json] [--sarif OUT.sarif]
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error.  Text (or
// --json) goes to stdout; --sarif additionally writes a SARIF 2.1.0 file.

#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "tools/lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--compiler CXX] [--no-header-check]\n"
               "       [--baseline FILE | --no-baseline] [--json] [--sarif OUT.sarif]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hublab::lint::Options opt;
  opt.root = hublab::lint::fs::current_path();
  bool json = false;
  std::string sarif_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--compiler" && i + 1 < argc) {
      opt.compiler = argv[++i];
    } else if (arg == "--no-header-check") {
      opt.check_headers = false;
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      opt.use_baseline = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!opt.use_baseline && !opt.baseline_path.empty()) return usage(argv[0]);

  hublab::lint::Report report;
  try {
    report = hublab::lint::run_lint(opt);
  } catch (const std::exception& e) {
    std::cerr << "hublab_lint: " << e.what() << "\n";
    return 2;
  }

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::trunc);
    if (!out) {
      std::cerr << "hublab_lint: cannot write " << sarif_out << "\n";
      return 2;
    }
    hublab::lint::write_sarif(out, report);
  }
  if (json) {
    hublab::lint::write_json(std::cout, report);
  } else {
    hublab::lint::write_text(std::cout, report);
  }
  return report.findings.empty() ? 0 : 1;
}
