# Empty compiler generated dependencies file for constructions_test.
# This may be replaced when dependencies are built.
