# Empty dependencies file for hublab_rs.
# This may be replaced when dependencies are built.
