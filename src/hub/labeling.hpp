#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/querystats.hpp"

/// \file labeling.hpp
/// Hub labelings (2-hop covers, [CHKZ03]): every vertex v stores a hubset
/// S(v) with exact distances; the distance query u-v returns
///   min_{w in S(u) cap S(v)} dist(u, w) + dist(w, v),
/// which is exact iff the family {S(v)} is a *shortest-path cover*:
/// every connected pair has a common hub on a shortest path.

namespace hublab {

/// One label entry: a hub and the exact distance to it.
struct HubEntry {
  Vertex hub;
  Dist dist;

  bool operator==(const HubEntry&) const = default;
};

/// Result of a hub query: the distance estimate and the hub realizing it.
struct HubQueryResult {
  Dist dist = kInfDist;
  Vertex meeting_hub = kInvalidVertex;
};

/// A hub labeling for an n-vertex undirected graph.
///
/// Entries are kept sorted by hub id so that queries are a linear merge of
/// the two labels, O(|S(u)| + |S(v)|).
class HubLabeling {
 public:
  HubLabeling() = default;
  explicit HubLabeling(std::size_t n) : labels_(n) {}

  /// Adopt pre-built labels (e.g. assembled per-vertex by parallel
  /// builders); call finalize() before querying.
  explicit HubLabeling(std::vector<std::vector<HubEntry>> labels)
      : labels_(std::move(labels)), finalized_(false) {}

  [[nodiscard]] std::size_t num_vertices() const { return labels_.size(); }

  /// Append an entry; call finalize() before querying.
  void add_hub(Vertex v, Vertex hub, Dist dist) {
    HUBLAB_ASSERT_RANGE(v, labels_.size());
    labels_[v].push_back(HubEntry{hub, dist});
    finalized_ = false;
  }

  /// Sort every label by hub id and collapse duplicate hubs to the minimum
  /// distance.  Idempotent.
  void finalize();

  /// Exact-or-overestimate distance via the common-hub minimum; kInfDist if
  /// the labels share no hub.
  [[nodiscard]] Dist query(Vertex u, Vertex v) const;

  /// As query(), also reporting the meeting hub.
  [[nodiscard]] HubQueryResult query_with_hub(Vertex u, Vertex v) const;

  /// Attribution variant (`hublab explain`, slow-query capture): same
  /// result as query_with_hub(), plus the probe records label sizes, hub
  /// entries scanned, common hubs compared and the meeting hub.  A
  /// separate entry point so the plain query path stays untouched.
  [[nodiscard]] HubQueryResult query_with_stats(Vertex u, Vertex v,
                                                metrics::QueryStats& stats) const;

  [[nodiscard]] std::span<const HubEntry> label(Vertex v) const {
    HUBLAB_ASSERT_RANGE(v, labels_.size());
    return labels_[v];
  }

  /// True if `hub` appears in S(v).
  [[nodiscard]] bool has_hub(Vertex v, Vertex hub) const;

  /// Sum of label sizes over all vertices.
  [[nodiscard]] std::size_t total_hubs() const;

  /// Average label size (total / n).
  [[nodiscard]] double average_label_size() const;

  [[nodiscard]] std::size_t max_label_size() const;

  /// Actual heap footprint of the representation: every label vector's
  /// *capacity* (what the allocator really holds, not just what is used)
  /// plus the per-vector bookkeeping in labels_.  This is what a serving
  /// process pays for the vector-of-vectors layout; compare with
  /// FlatHubLabeling::memory_bytes() for the SoA cost.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Payload alone: label entries actually in use, no capacity slack and
  /// no per-vector headers (the space the paper's bounds count).
  [[nodiscard]] std::size_t payload_bytes() const {
    return total_hubs() * sizeof(HubEntry);
  }

  /// Deep invariant audit (see util/audit.hpp): every label is sorted
  /// strictly by hub id (hence deduplicated) with in-range hubs, and a
  /// sampled cover-property check against per-source SSSP ground truth --
  /// `num_samples` random sources have every label entry's distance
  /// re-derived and `num_samples` random pairs must query to the exact
  /// distance.  Pass num_samples = 0 to audit structure only.
  ///
  /// `threads` parallelizes the per-vertex and per-sample loops
  /// (util/parallel.hpp); the report is bit-identical for every thread
  /// count (per-chunk reports merged in chunk order).
  [[nodiscard]] AuditReport audit(const Graph& g, std::size_t num_samples = 32,
                                  std::uint64_t seed = 1, std::size_t threads = 1) const;

 private:
  std::vector<std::vector<HubEntry>> labels_;
  bool finalized_ = true;
};

class DistanceMatrix;  // algo/distance_matrix.hpp

/// A witness that a labeling is wrong: either a label entry with a wrong
/// distance, or an uncovered pair.
struct LabelingDefect {
  enum class Kind { kWrongDistance, kUncoveredPair } kind;
  Vertex u;
  Vertex v;              ///< hub for kWrongDistance; second endpoint otherwise
  Dist stored;           ///< labeling's answer
  Dist actual;           ///< ground truth
};

/// Full verification against ground truth: every entry's distance is exact
/// and every connected pair queries to the true distance.
/// Returns nullopt when the labeling is a correct shortest-path cover.
///
/// `threads` splits the scans over deterministic static chunks; the
/// returned defect is always the *first* one in sequential scan order,
/// independent of the thread count (later chunks abort early once an
/// earlier chunk has found a defect).
std::optional<LabelingDefect> verify_labeling(const Graph& g, const HubLabeling& labeling,
                                              const DistanceMatrix& truth,
                                              std::size_t threads = 1);

/// Sampled verification for larger graphs: checks `num_samples` random pairs
/// (and all label entries of the sampled endpoints) against per-source SSSP.
/// The sample pairs are drawn sequentially up front, so the samples — and
/// the first defect in sample order — are identical for every `threads`.
std::optional<LabelingDefect> verify_labeling_sampled(const Graph& g, const HubLabeling& labeling,
                                                      std::size_t num_samples, std::uint64_t seed,
                                                      std::size_t threads = 1);

/// Monotone closure S*_v from the proof of Theorem 2.1: fix a shortest-path
/// tree T_v per vertex and replace S(v) by the vertex set of the minimal
/// subtree of T_v containing S(v) (i.e., all tree ancestors of each hub).
/// |S*_v| <= diam(G) * |S_v| and the result is still a shortest-path cover.
/// The per-vertex loop is parallelized over `threads`; the closed labeling
/// is bit-identical for every thread count.
HubLabeling monotone_closure(const Graph& g, const HubLabeling& labeling,
                             std::size_t threads = 1);

}  // namespace hublab
