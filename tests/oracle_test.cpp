#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "oracle/oracle.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

class OracleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleAgreement, AllExactOraclesAgree) {
  Rng rng(GetParam());
  Graph g = gen::connected_gnm(60, 130, rng);
  if (GetParam() % 2 == 0) g = gen::randomize_weights(g, 11, rng);
  const auto truth = DistanceMatrix::compute(g);

  const ApspOracle apsp(g);
  const SsspOracle sssp_oracle(g);
  const BidirectionalOracle bidir(g);
  const HubLabelOracle hubs(g, pruned_landmark_labeling(g));
  const FlatHubLabelOracle flat(hubs.labeling());

  Rng pick(GetParam() + 100);
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<Vertex>(pick.next_below(60));
    const auto v = static_cast<Vertex>(pick.next_below(60));
    const Dist expected = truth.at(u, v);
    EXPECT_EQ(apsp.distance(u, v), expected);
    EXPECT_EQ(sssp_oracle.distance(u, v), expected);
    EXPECT_EQ(bidir.distance(u, v), expected);
    EXPECT_EQ(hubs.distance(u, v), expected);
    EXPECT_EQ(flat.distance(u, v), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement, ::testing::Values(1, 2, 3, 4));

TEST(LandmarkOracle, IsUpperBound) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(50, 110, rng);
  const auto truth = DistanceMatrix::compute(g);
  const LandmarkOracle lm(g, {0, 7, 13, 42});
  for (Vertex u = 0; u < 50; ++u) {
    for (Vertex v = 0; v < 50; ++v) {
      EXPECT_GE(lm.distance(u, v), truth.at(u, v));
    }
  }
}

TEST(LandmarkOracle, ExactThroughLandmark) {
  const Graph g = gen::star(10);
  const LandmarkOracle lm(g, {0});  // the center hits every shortest path
  EXPECT_EQ(lm.distance(1, 2), 2u);
  EXPECT_EQ(lm.distance(0, 5), 1u);
}

TEST(Oracles, SpaceAccounting) {
  const Graph g = gen::grid(6, 6);
  const ApspOracle apsp(g);
  EXPECT_EQ(apsp.space_bytes(), 36u * 36u * sizeof(Dist));
  const SsspOracle od(g);
  EXPECT_EQ(od.space_bytes(), 0u);
  // Hub-label space is the real heap footprint (capacities + per-vector
  // headers), bounded below by the entry payload the paper's bounds count.
  const HubLabelOracle hubs(g, pruned_landmark_labeling(g));
  EXPECT_EQ(hubs.space_bytes(), hubs.labeling().memory_bytes());
  EXPECT_GE(hubs.space_bytes(), hubs.labeling().payload_bytes());
  // The flat SoA layout drops the per-vertex headers, so it always
  // undercuts the vector-of-vectors footprint of the same labeling.
  const FlatHubLabelOracle flat(hubs.labeling());
  EXPECT_EQ(flat.space_bytes(), flat.labeling().memory_bytes());
  EXPECT_LT(flat.space_bytes(), hubs.space_bytes());
  const LandmarkOracle lm(g, {0, 1, 2});
  EXPECT_EQ(lm.space_bytes(), 3u * 36u * sizeof(Dist));
}

TEST(Oracles, Names) {
  const Graph g = gen::path(4);
  EXPECT_EQ(ApspOracle(g).name(), "apsp-table");
  EXPECT_EQ(SsspOracle(g).name(), "on-demand-sssp");
  EXPECT_EQ(BidirectionalOracle(g).name(), "bidirectional-dijkstra");
}

TEST(Oracles, DisconnectedPairs) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const ApspOracle apsp(g);
  const HubLabelOracle hubs(g, pruned_landmark_labeling(g));
  const LandmarkOracle lm(g, {0});
  EXPECT_EQ(apsp.distance(0, 2), kInfDist);
  EXPECT_EQ(hubs.distance(0, 2), kInfDist);
  EXPECT_EQ(lm.distance(0, 2), kInfDist);
}

}  // namespace
}  // namespace hublab
