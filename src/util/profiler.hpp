#pragma once

#include <cstdint>
#include <iosfwd>

/// \file profiler.hpp
/// Timer-driven sampling profiler: SIGPROF fires at `hz` (CPU time, so
/// idle threads cost nothing), the handler captures a backtrace into the
/// sampling thread's lock-free ring, and `write_folded` aggregates the
/// rings into folded-stack lines ("frame;frame;frame count") ready for
/// flamegraph tooling.  `hublab profile <subcommand…>` wraps any CLI
/// command with exactly this.
///
/// Design constraints:
///
///  - **Signal-handler discipline**: rings live in static storage (no
///    allocation when a new thread takes its slot), `backtrace()` is
///    pre-warmed at `start()` so its lazy libgcc initialization never runs
///    in a handler, and each ring has a single writer publishing with a
///    release store.  Symbolization (dladdr + demangle) happens only in
///    `write_folded`, in normal context.
///  - **Bounded**: at most `kMaxThreads` sampled threads, `kMaxSamples`
///    samples per thread, `kMaxDepth` frames per sample; overflow
///    increments a drop counter instead of growing.
///  - **RSS piggyback**: every tick also calls `sample_rss_peak()`
///    (util/resource.hpp), so any profiled run records its true peak
///    resident set, not just the end-of-run reading.
///
/// The profiler is process-global (ITIMER_PROF is); `start()` while
/// running returns false.  `perf.samples` / `perf.sample_drops` counters
/// land in the metrics registry at `stop()`.

namespace hublab::prof {

inline constexpr std::uint64_t kDefaultHz = 97;  ///< prime, avoids lockstep with periodic work
inline constexpr std::size_t kMaxDepth = 32;     ///< frames kept per sample
inline constexpr std::size_t kMaxThreads = 32;   ///< sampled-thread slots
inline constexpr std::size_t kMaxSamples = 1024;  ///< per-thread sample capacity

struct ProfilerConfig {
  std::uint64_t hz = kDefaultHz;  ///< SIGPROF rate (clamped to [1, 1000])
};

/// True when the platform has the pieces (setitimer + backtrace).
[[nodiscard]] bool supported() noexcept;

/// Arm the profiler.  False when unsupported or already running.
[[nodiscard]] bool start(const ProfilerConfig& config = {});

/// Disarm, restore the previous SIGPROF disposition, and publish the
/// `perf.samples` / `perf.sample_drops` counters.  No-op when stopped.
void stop();

[[nodiscard]] bool running() noexcept;

/// Samples captured (process-wide, since the last reset()).
[[nodiscard]] std::uint64_t samples() noexcept;

/// Samples dropped to ring or thread-slot exhaustion.
[[nodiscard]] std::uint64_t dropped() noexcept;

/// Aggregate all rings into folded-stack lines, deterministically sorted
/// by stack string: `main;hublab::foo;hublab::bar 42`.  Frames without a
/// symbol fall back to `module+0xOFFSET` or a raw hex address.  Call with
/// the profiler stopped.
void write_folded(std::ostream& out);

/// Drop all captured samples and counters (profiler must be stopped).
void reset();

}  // namespace hublab::prof
