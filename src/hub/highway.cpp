#include "hub/highway.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hublab {

std::vector<Vertex> greedy_sp_cover(const Graph& g, const DistanceMatrix& truth, Dist r) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (g.is_weighted()) throw InvalidArgument("greedy_sp_cover requires an unweighted graph");

  // Collect the target pairs.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Dist d = truth.at(u, v);
      if (d != kInfDist && d > r && d <= 2 * r) pairs.emplace_back(u, v);
    }
  }

  std::vector<Vertex> cover;
  while (!pairs.empty()) {
    // Gain of candidate h = number of uncovered pairs it hits.
    std::vector<std::size_t> gain(n, 0);
    for (const auto& [u, v] : pairs) {
      const Dist d = truth.at(u, v);
      const Dist* ru = truth.row(u);
      const Dist* rv = truth.row(v);
      for (Vertex h = 0; h < n; ++h) {
        if (ru[h] != kInfDist && rv[h] != kInfDist && ru[h] + rv[h] == d) ++gain[h];
      }
    }
    const Vertex best =
        static_cast<Vertex>(std::max_element(gain.begin(), gain.end()) - gain.begin());
    HUBLAB_ASSERT(gain[best] > 0);
    cover.push_back(best);

    std::vector<std::pair<Vertex, Vertex>> still;
    still.reserve(pairs.size() - gain[best]);
    for (const auto& [u, v] : pairs) {
      const Dist d = truth.at(u, v);
      if (!(truth.at(u, best) != kInfDist && truth.at(best, v) != kInfDist &&
            truth.at(u, best) + truth.at(best, v) == d)) {
        still.emplace_back(u, v);
      }
    }
    pairs.swap(still);
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

bool is_sp_cover(const DistanceMatrix& truth, const std::vector<Vertex>& cover, Dist r) {
  const auto n = static_cast<Vertex>(truth.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Dist d = truth.at(u, v);
      if (d == kInfDist || d <= r || d > 2 * r) continue;
      bool hit = false;
      for (Vertex h : cover) {
        if (truth.at(u, h) != kInfDist && truth.at(h, v) != kInfDist &&
            truth.at(u, h) + truth.at(h, v) == d) {
          hit = true;
          break;
        }
      }
      if (!hit) return false;
    }
  }
  return true;
}

std::size_t MultiscaleStats::highway_dimension_estimate() const {
  std::size_t best = 0;
  for (const auto& s : scales) best = std::max(best, s.max_ball_load);
  return best;
}

HubLabeling multiscale_cover_labeling(const Graph& g, const DistanceMatrix& truth,
                                      MultiscaleStats* stats_out) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (g.is_weighted()) {
    throw InvalidArgument("multiscale_cover_labeling requires an unweighted graph");
  }
  HubLabeling labeling(n);
  MultiscaleStats stats;

  // Base: self and neighbors (covers d <= 1).
  for (Vertex v = 0; v < n; ++v) {
    labeling.add_hub(v, v, 0);
    for (const Arc& a : g.arcs(v)) labeling.add_hub(v, a.to, truth.at(v, a.to));
  }

  // Largest finite distance determines the number of scales.
  Dist max_d = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Dist d = truth.at(u, v);
      if (d != kInfDist) max_d = std::max(max_d, d);
    }
  }

  for (Dist r = 1; r < max_d; r *= 2) {
    const std::vector<Vertex> cover = greedy_sp_cover(g, truth, r);
    ScaleStats scale;
    scale.r = r;
    scale.cover_size = cover.size();
    for (Vertex v = 0; v < n; ++v) {
      std::size_t load = 0;
      for (Vertex w : cover) {
        const Dist d = truth.at(v, w);
        if (d != kInfDist && d <= 2 * r) {
          labeling.add_hub(v, w, d);
          ++load;
        }
      }
      scale.max_ball_load = std::max(scale.max_ball_load, load);
    }
    stats.scales.push_back(scale);
  }

  labeling.finalize();
  if (stats_out != nullptr) *stats_out = stats;
  return labeling;
}

}  // namespace hublab
