# Empty dependencies file for sumindex_test.
# This may be replaced when dependencies are built.
