# Empty dependencies file for bench_counting_lower.
# This may be replaced when dependencies are built.
