#pragma once

/// \file cycle_a.hpp
/// Fixture: layer-cycle -- includes cycle_b.hpp, which includes us back.

#include "hub/cycle_b.hpp"
