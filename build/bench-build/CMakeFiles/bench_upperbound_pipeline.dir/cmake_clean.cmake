file(REMOVE_RECURSE
  "../bench/bench_upperbound_pipeline"
  "../bench/bench_upperbound_pipeline.pdb"
  "CMakeFiles/bench_upperbound_pipeline.dir/bench_upperbound_pipeline.cpp.o"
  "CMakeFiles/bench_upperbound_pipeline.dir/bench_upperbound_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upperbound_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
