file(REMOVE_RECURSE
  "libhublab_hub.a"
)
