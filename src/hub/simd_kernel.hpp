#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hub/labeling.hpp"

/// \file simd_kernel.hpp
/// Vectorized sorted-hub intersection for the batched query path
/// (hub/flat_labeling.hpp, `FlatHubLabeling::query_batch`).
///
/// A hub-label query is the intersection of two ascending hub columns plus
/// a distance-sum minimum — the serving hot path the paper's Section 1.1
/// trade-off prices.  The kernels here process the columns in SIMD blocks
/// (all-lanes-vs-all-lanes equality over register rotations, the idiom of
/// vectorized sorted-set intersection), falling back to the scalar
/// sentinel merge for the tails, behind a three-tier dispatch:
///
///   1. compile time — each ISA kernel lives in its own TU
///      (`simd_kernel_avx2.cpp`, `simd_kernel_avx512.cpp`) compiled with
///      the matching `-m` flags only when the toolchain supports them;
///   2. run time — `best_supported_tier()` probes the executing CPU
///      (`__builtin_cpu_supports`) so a binary built with AVX-512 TUs
///      still runs correctly on an AVX2-only host;
///   3. fallback — `Tier::kScalar` is the sentinel merge of
///      `FlatHubLabeling::query_with_hub`, always available.
///
/// Every tier returns *byte-identical* answers — the same distance and the
/// same meeting hub (the smallest hub id achieving the minimal distance,
/// matching the scalar merge's ascending-order strict-< update).  Set
/// `HUBLAB_FORCE_SCALAR=1` in the environment to pin `active_tier()` to
/// the scalar fallback (read once, like HUBLAB_THREADS).
///
/// Raw intrinsics are confined to the `src/hub/simd_kernel*` TUs — the
/// `simd` lint pass enforces this; the header stays ISA-agnostic.

namespace hublab::simd {

/// Dispatch tiers, ordered by preference (higher = wider vectors).
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase tier name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// Best tier whose kernel is both compiled in and supported by the
/// executing CPU.  Ignores HUBLAB_FORCE_SCALAR.
[[nodiscard]] Tier best_supported_tier() noexcept;

/// Every tier reachable on this host, ascending (always starts with
/// kScalar) — the sweep set for byte-identity tests.
[[nodiscard]] std::vector<Tier> supported_tiers();

/// True when the HUBLAB_FORCE_SCALAR environment knob pins the dispatch
/// to the scalar fallback (read once at first call).
[[nodiscard]] bool force_scalar() noexcept;

/// The tier `FlatHubLabeling::query_batch` dispatches to:
/// best_supported_tier(), unless force_scalar().
[[nodiscard]] Tier active_tier() noexcept;

/// One sorted-hub intersection + distance-min over raw label columns.
/// `hubs_*` / `dists_*` point at a label of `size_*` real entries followed
/// by a kInvalidVertex/kInfDist sentinel pair (the FlatHubLabeling
/// layout); the sentinel lets the scalar tail run without bounds checks.
/// Unavailable tiers degrade to the scalar kernel (same answer).
[[nodiscard]] HubQueryResult intersect(Tier tier, const Vertex* hubs_a, const Dist* dists_a,
                                       std::size_t size_a, const Vertex* hubs_b,
                                       const Dist* dists_b, std::size_t size_b);

/// Signature shared by every tier's intersection kernel (arguments as in
/// intersect(), minus the tier).
using KernelFn = HubQueryResult (*)(const Vertex* hubs_a, const Dist* dists_a, std::size_t size_a,
                                    const Vertex* hubs_b, const Dist* dists_b, std::size_t size_b);

/// Resolve `tier` to its kernel once (unavailable tiers degrade to the
/// scalar kernel), so batch loops pay the dispatch per block instead of
/// per pair.  intersect() is kernel_for(tier)(...).
[[nodiscard]] KernelFn kernel_for(Tier tier) noexcept;

/// Stamp-table probe: the large-batch kernel.  `query_batch` scatters each
/// source group's label into dense per-hub tables (`stamp[h] == current`
/// marks h ∈ S(source), `sdist[h]` its distance), then answers every query
/// of the group with one linear scan of the *target* label — `size_t_`
/// entries of `hubs_t`/`dists_t` — probing the tables per hub.  The tables
/// are L1/L2-resident and reused across the group, so the scan has no
/// merge branches to mispredict; the AVX2/AVX-512 tiers vectorize it with
/// gathered stamp loads.  Same answer as intersect() on the same labels:
/// the lexicographic (dist, hub) minimum over the common hubs.
using ProbeFn = HubQueryResult (*)(const Vertex* hubs_t, const Dist* dists_t, std::size_t size_t_,
                                   const std::uint32_t* stamp, const Dist* sdist,
                                   std::uint32_t current);

/// Resolve `tier` to its stamp-table probe kernel (unavailable tiers
/// degrade to the scalar probe).
[[nodiscard]] ProbeFn probe_for(Tier tier) noexcept;

namespace detail {

/// The sentinel merge (identical to FlatHubLabeling::query_with_hub).
[[nodiscard]] HubQueryResult intersect_scalar(const Vertex* hubs_a, const Dist* dists_a,
                                              const Vertex* hubs_b, const Dist* dists_b);

/// 8-lane AVX2 block intersection; defined in simd_kernel_avx2.cpp (only
/// linked when the toolchain can target AVX2).
[[nodiscard]] HubQueryResult intersect_avx2(const Vertex* hubs_a, const Dist* dists_a,
                                            std::size_t size_a, const Vertex* hubs_b,
                                            const Dist* dists_b, std::size_t size_b);

/// 16-lane AVX-512 block intersection; defined in simd_kernel_avx512.cpp.
[[nodiscard]] HubQueryResult intersect_avx512(const Vertex* hubs_a, const Dist* dists_a,
                                              std::size_t size_a, const Vertex* hubs_b,
                                              const Dist* dists_b, std::size_t size_b);

/// Scalar stamp-table probe (see ProbeFn).
[[nodiscard]] HubQueryResult probe_scalar(const Vertex* hubs_t, const Dist* dists_t,
                                          std::size_t size_t_, const std::uint32_t* stamp,
                                          const Dist* sdist, std::uint32_t current);

/// 8-lane AVX2 stamp-table probe (gathered stamp loads).
[[nodiscard]] HubQueryResult probe_avx2(const Vertex* hubs_t, const Dist* dists_t,
                                        std::size_t size_t_, const std::uint32_t* stamp,
                                        const Dist* sdist, std::uint32_t current);

/// 16-lane AVX-512 stamp-table probe.
[[nodiscard]] HubQueryResult probe_avx512(const Vertex* hubs_t, const Dist* dists_t,
                                          std::size_t size_t_, const std::uint32_t* stamp,
                                          const Dist* sdist, std::uint32_t current);

}  // namespace detail

}  // namespace hublab::simd
