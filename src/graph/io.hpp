#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

/// \file io.hpp
/// Graph serialization: a simple whitespace edge-list format, the DIMACS
/// shortest-path challenge `.gr` format, and DOT export for visualisation
/// (used to regenerate Figure 1 of the paper as an artifact).

namespace hublab::io {

/// Edge list: first line "n m", then m lines "u v [w]" (0-based vertices).
/// Weight defaults to 1 when the third column is absent.
Graph read_edge_list(std::istream& in);
void write_edge_list(const Graph& g, std::ostream& out);

/// DIMACS .gr: "c" comments, "p sp n m" header, "a u v w" arcs (1-based).
/// Arcs are expected in symmetric pairs; each undirected edge may appear
/// once or twice (duplicates collapse).
Graph read_dimacs(std::istream& in);
void write_dimacs(const Graph& g, std::ostream& out);

/// Graphviz DOT (undirected), with edge weights as labels when weighted.
void write_dot(const Graph& g, std::ostream& out, const std::string& name = "G");

/// Convenience file wrappers; throw Error on I/O failure.
Graph load_edge_list(const std::string& file_path);
void save_edge_list(const Graph& g, const std::string& file_path);

}  // namespace hublab::io
