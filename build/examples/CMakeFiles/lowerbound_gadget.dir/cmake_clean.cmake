file(REMOVE_RECURSE
  "CMakeFiles/lowerbound_gadget.dir/lowerbound_gadget.cpp.o"
  "CMakeFiles/lowerbound_gadget.dir/lowerbound_gadget.cpp.o.d"
  "lowerbound_gadget"
  "lowerbound_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowerbound_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
