#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file log.hpp
/// Leveled structured logging for the serving path.
///
/// Library code reports *results* through return values and exceptions
/// (hublab_lint's stdout-in-library rule); what it may not do is narrate.
/// The serving layer, however, needs operational narration — oracle built,
/// workload generated, query loop progress, rate-limited warnings — and
/// this file is the one sanctioned channel for it:
///
///  - five levels (TRACE < DEBUG < INFO < WARN < ERROR) with both a
///    runtime filter (`Logger::set_level`) and a compile-time floor:
///    building with `-DHUBLAB_MIN_LOG_LEVEL=N` (CMake option
///    `HUBLAB_LOG_LEVEL`) makes every `HUBLAB_LOG_*` call below N compile
///    to nothing, like `HUBLAB_METRICS=OFF` does for counters;
///  - structured `key=value` fields, rendered as logfmt-style text or as
///    one JSON object per line (`Logger::set_format`), never interpolated
///    into the message string;
///  - token-less rate limiting per (component, message) key so a hot loop
///    cannot flood the sink; suppressed counts are reported on the next
///    emitted record;
///  - an explicit sink `std::ostream*` (stderr by default — stdout stays
///    reserved for program output).  `hublab_lint`'s raw-io rule forbids
///    `fprintf`/`std::cerr` everywhere else in src/, so all diagnostics
///    funnel through here.
///
/// The global `logger()` is what the macros write to; tests swap its sink
/// for a stringstream and restore it.  Not thread-safe by design (one
/// logger per thread of execution, like Tracer); the serving loop is
/// single-threaded today and the API keeps the door open for per-shard
/// loggers later.

namespace hublab::log {

enum class Level : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// "trace", "debug", "info", "warn", "error", "off".
[[nodiscard]] std::string_view level_name(Level level) noexcept;

/// One structured field.  Numbers and bools render unquoted; strings are
/// quoted (text) or escaped (JSON).
struct Field {
  Field(std::string_view k, std::string_view v) : key(k), value(v), quoted(true) {}
  Field(std::string_view k, const char* v) : key(k), value(v), quoted(true) {}
  Field(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
  Field(std::string_view k, double v);
  Field(std::string_view k, std::uint64_t v);
  Field(std::string_view k, std::int64_t v);
  Field(std::string_view k, int v) : Field(k, static_cast<std::int64_t>(v)) {}
  Field(std::string_view k, unsigned v) : Field(k, static_cast<std::uint64_t>(v)) {}

  std::string key;
  std::string value;
  bool quoted = false;
};

enum class Format { kText, kJson };

/// Deterministic sliding-window rate limiter, keyed by string.  At most
/// `max_per_window` events per key per `window_s`-second window; windows
/// are aligned to multiples of window_s since time zero.  Time is passed
/// in explicitly so the policy is unit-testable without a clock.
class RateLimiter {
 public:
  RateLimiter(std::uint64_t max_per_window, double window_s);

  /// True when the event may pass; false when suppressed.  `now_s` must be
  /// monotone non-decreasing per key.
  [[nodiscard]] bool allow(std::string_view key, double now_s);

  /// Events suppressed for `key` since the last allowed event; reset to 0
  /// by the next allowed event.
  [[nodiscard]] std::uint64_t suppressed(std::string_view key) const;

 private:
  struct Bucket {
    std::uint64_t window = 0;
    std::uint64_t in_window = 0;
    std::uint64_t suppressed = 0;
  };
  friend class Logger;
  [[nodiscard]] Bucket* find(std::string_view key);

  std::uint64_t max_per_window_;
  double window_s_;
  std::vector<std::pair<std::string, Bucket>> buckets_;  // few distinct keys
};

class Logger {
 public:
  /// Sink defaults to stderr; level to kInfo; format to text.
  Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Redirect output; nullptr silences the logger.  The stream must
  /// outlive the logger or the next set_sink call.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  void set_level(Level level) noexcept { level_ = level; }
  [[nodiscard]] Level level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(Level level) const noexcept { return level >= level_; }

  void set_format(Format format) noexcept { format_ = format; }

  /// At most `max_per_window` records per (component, message) key per
  /// `window_s` seconds; 0 disables limiting (the default).
  void set_rate_limit(std::uint64_t max_per_window, double window_s = 1.0);

  /// Emit one record.  Filtering/rate limiting happen here; prefer the
  /// HUBLAB_LOG_* macros, which add the compile-time floor.
  void write(Level level, std::string_view component, std::string_view message,
             std::initializer_list<Field> fields = {});

  /// Records emitted (post-filter, post-rate-limit) since construction.
  [[nodiscard]] std::uint64_t records_written() const noexcept { return records_written_; }

 private:
  [[nodiscard]] double now_s() const;

  std::ostream* sink_;
  Level level_ = Level::kInfo;
  Format format_ = Format::kText;
  std::uint64_t records_written_ = 0;
  RateLimiter limiter_{0, 1.0};
  bool limiting_ = false;
  std::uint64_t epoch_ns_ = 0;  ///< monotonic_ns() at construction
};

/// The process-global logger the HUBLAB_LOG_* macros write to.
Logger& logger();

}  // namespace hublab::log

/// Compile-time floor: calls below this level cost nothing (the condition
/// is `if constexpr`).  0 = trace .. 4 = error, 5 = off.
#ifndef HUBLAB_MIN_LOG_LEVEL
#define HUBLAB_MIN_LOG_LEVEL 0
#endif

#define HUBLAB_LOG_AT(level_, component_, message_, ...)                            \
  do {                                                                              \
    if constexpr (static_cast<int>(level_) >= HUBLAB_MIN_LOG_LEVEL) {               \
      auto& hublab_logger_ = ::hublab::log::logger();                               \
      if (hublab_logger_.enabled(level_)) {                                         \
        hublab_logger_.write((level_), (component_), (message_), {__VA_ARGS__});    \
      }                                                                             \
    }                                                                               \
  } while (false)

#define HUBLAB_LOG_TRACE(component_, message_, ...) \
  HUBLAB_LOG_AT(::hublab::log::Level::kTrace, component_, message_ __VA_OPT__(, ) __VA_ARGS__)
#define HUBLAB_LOG_DEBUG(component_, message_, ...) \
  HUBLAB_LOG_AT(::hublab::log::Level::kDebug, component_, message_ __VA_OPT__(, ) __VA_ARGS__)
#define HUBLAB_LOG_INFO(component_, message_, ...) \
  HUBLAB_LOG_AT(::hublab::log::Level::kInfo, component_, message_ __VA_OPT__(, ) __VA_ARGS__)
#define HUBLAB_LOG_WARN(component_, message_, ...) \
  HUBLAB_LOG_AT(::hublab::log::Level::kWarn, component_, message_ __VA_OPT__(, ) __VA_ARGS__)
#define HUBLAB_LOG_ERROR(component_, message_, ...) \
  HUBLAB_LOG_AT(::hublab::log::Level::kError, component_, message_ __VA_OPT__(, ) __VA_ARGS__)
