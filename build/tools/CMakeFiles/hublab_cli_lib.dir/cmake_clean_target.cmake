file(REMOVE_RECURSE
  "libhublab_cli_lib.a"
)
