#include "lowerbound/gadget.hpp"

#include <algorithm>
#include <string>

#include "algo/shortest_paths.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab::lb {

std::uint64_t GadgetParams::layer_size() const {
  std::uint64_t size = 1;
  for (std::uint32_t k = 0; k < ell; ++k) {
    HUBLAB_ASSERT(size <= UINT64_MAX / s());
    size *= s();
  }
  return size;
}

std::uint64_t GadgetParams::num_triplets() const {
  std::uint64_t t = layer_size();
  for (std::uint32_t k = 0; k < ell; ++k) t *= s() / 2;
  return t;
}

void GadgetParams::validate() const {
  if (b < 1 || ell < 1) throw InvalidArgument("gadget needs b >= 1 and ell >= 1");
  // Guard the s^ell computation itself before touching layer_size().
  if (static_cast<std::uint64_t>(b) * ell > 40) {
    throw InvalidArgument("gadget parameters out of supported range");
  }
  // Keep H comfortably in memory: vertices and arcs.
  const std::uint64_t n = num_h_vertices();
  const std::uint64_t arcs = 2ULL * 2ULL * ell * layer_size() * s();
  if (n > 50'000'000ULL || arcs > 400'000'000ULL) {
    throw InvalidArgument("gadget instance too large");
  }
}

LayeredGadget::LayeredGadget(GadgetParams params, const std::vector<bool>* midlevel_mask)
    : params_(params) {
  params_.validate();
  const std::uint64_t layer = params_.layer_size();
  const std::uint64_t s = params_.s();
  const std::uint64_t ell = params_.ell;

  if (midlevel_mask != nullptr) {
    if (midlevel_mask->size() != layer) {
      throw InvalidArgument("midlevel mask must have layer_size entries");
    }
    removed_ = *midlevel_mask;
  }

  GraphBuilder builder(params_.num_h_vertices());
  const std::uint64_t A = params_.base_weight();

  // Powers of s for coordinate arithmetic.
  std::vector<std::uint64_t> pow_s(ell + 1, 1);
  for (std::uint64_t k = 1; k <= ell; ++k) pow_s[k] = pow_s[k - 1] * s;

  for (std::uint64_t i = 0; i + 1 < params_.num_levels(); ++i) {
    // Coordinate changed between level i and i+1 (0-indexed):
    // going up (i < ell): coordinate i; going down (i >= ell): 2*ell-1-i.
    const std::uint64_t c = (i < ell) ? i : (2 * ell - 1 - i);
    for (std::uint64_t idx = 0; idx < layer; ++idx) {
      const std::uint64_t jc = (idx / pow_s[c]) % s;
      const Vertex u = vertex(i, idx);
      if (i == ell && midlevel_removed(idx)) continue;
      const std::uint64_t idx_base = idx - jc * pow_s[c];  // coordinate c zeroed
      for (std::uint64_t jc2 = 0; jc2 < s; ++jc2) {
        const std::uint64_t idx2 = idx_base + jc2 * pow_s[c];
        if (i + 1 == ell && midlevel_removed(idx2)) continue;
        const Vertex v = vertex(i + 1, idx2);
        const std::uint64_t delta = jc2 > jc ? jc2 - jc : jc - jc2;
        builder.add_edge(u, v, static_cast<Weight>(A + delta * delta));
      }
    }
  }
  graph_ = builder.build();
}

bool LayeredGadget::midlevel_removed(std::uint64_t index) const {
  HUBLAB_ASSERT(index < params_.layer_size());
  return !removed_.empty() && removed_[index];
}

Vertex LayeredGadget::vertex(std::uint64_t level, std::uint64_t index) const {
  HUBLAB_ASSERT(level < params_.num_levels());
  HUBLAB_ASSERT(index < params_.layer_size());
  return static_cast<Vertex>(level * params_.layer_size() + index);
}

Vertex LayeredGadget::vertex_at(std::uint64_t level, const Coords& coords) const {
  return vertex(level, coords_to_index(coords));
}

std::uint64_t LayeredGadget::level_of(Vertex v) const {
  HUBLAB_ASSERT(v < graph_.num_vertices());
  return v / params_.layer_size();
}

std::uint64_t LayeredGadget::index_of(Vertex v) const {
  HUBLAB_ASSERT(v < graph_.num_vertices());
  return v % params_.layer_size();
}

std::uint64_t LayeredGadget::coords_to_index(const Coords& coords) const {
  HUBLAB_ASSERT(coords.size() == params_.ell);
  std::uint64_t index = 0;
  std::uint64_t scale = 1;
  for (std::uint32_t k = 0; k < params_.ell; ++k) {
    HUBLAB_ASSERT(coords[k] < params_.s());
    index += coords[k] * scale;
    scale *= params_.s();
  }
  return index;
}

Coords LayeredGadget::index_to_coords(std::uint64_t index) const {
  Coords coords(params_.ell);
  for (std::uint32_t k = 0; k < params_.ell; ++k) {
    coords[k] = static_cast<std::uint32_t>(index % params_.s());
    index /= params_.s();
  }
  return coords;
}

bool LayeredGadget::all_diffs_even(const Coords& x, const Coords& z) {
  HUBLAB_ASSERT(x.size() == z.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    const std::uint32_t diff = x[k] > z[k] ? x[k] - z[k] : z[k] - x[k];
    if (diff % 2 != 0) return false;
  }
  return true;
}

Dist LayeredGadget::predicted_distance(const Coords& x, const Coords& z) const {
  HUBLAB_ASSERT(all_diffs_even(x, z));
  Dist d = 2ULL * params_.ell * params_.base_weight();
  for (std::size_t k = 0; k < x.size(); ++k) {
    const std::uint64_t half =
        (x[k] > z[k] ? x[k] - z[k] : z[k] - x[k]) / 2;
    d += 2 * half * half;
  }
  return d;
}

Vertex LayeredGadget::predicted_midpoint(const Coords& x, const Coords& z) const {
  HUBLAB_ASSERT(all_diffs_even(x, z));
  Coords mid(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    mid[k] = static_cast<std::uint32_t>((x[k] + z[k]) / 2);
  }
  return vertex_at(params_.ell, mid);
}

AuditReport LayeredGadget::audit(std::size_t num_samples, std::uint64_t seed) const {
  AuditReport report;
  const std::string ctx = "lowerbound/gadget";
  const std::uint64_t s = params_.s();
  const std::uint64_t ell = params_.ell;
  const std::uint64_t A = params_.base_weight();

  if (!report.require(graph_.num_vertices() == params_.num_h_vertices(), ctx,
                      "graph has " + std::to_string(graph_.num_vertices()) +
                          " vertices, parameters demand " +
                          std::to_string(params_.num_h_vertices()))) {
    return report;
  }

  for (Vertex u = 0; u < graph_.num_vertices(); ++u) {
    const std::uint64_t level = level_of(u);
    const std::uint64_t index = index_of(u);
    if (level == ell && midlevel_removed(index)) {
      report.require(graph_.degree(u) == 0, ctx,
                     "masked midlevel vertex v_{" + std::to_string(level) + "," +
                         std::to_string(index) + "} has degree " +
                         std::to_string(graph_.degree(u)) + ", expected 0");
      continue;
    }
    for (const Arc& a : graph_.arcs(u)) {
      const std::uint64_t nb_level = level_of(a.to);
      const std::string edge = "edge v_{" + std::to_string(level) + "," + std::to_string(index) +
                               "} - v_{" + std::to_string(nb_level) + "," +
                               std::to_string(index_of(a.to)) + "}";
      if (!report.require(nb_level == level + 1 || level == nb_level + 1, ctx,
                          edge + " does not join adjacent levels")) {
        continue;
      }
      if (nb_level != level + 1) continue;  // audit each edge once, oriented upward
      // The level-i -> level-i+1 step changes exactly coordinate c(i).
      const std::uint64_t c = (level < ell) ? level : (2 * ell - 1 - level);
      const Coords cu = index_to_coords(index);
      const Coords cv = index_to_coords(index_of(a.to));
      bool only_c_changed = true;
      for (std::uint64_t k = 0; k < ell; ++k) {
        if (k != c && cu[k] != cv[k]) only_c_changed = false;
      }
      report.require(only_c_changed, ctx,
                     edge + " changes a coordinate other than c(i)=" + std::to_string(c));
      const std::uint64_t delta =
          cu[c] > cv[c] ? cu[c] - cv[c] : cv[c] - cu[c];
      report.require(a.weight == A + delta * delta, ctx,
                     edge + " has weight " + std::to_string(a.weight) + ", expected A + delta^2 = " +
                         std::to_string(A + delta * delta));
    }
  }
  if (!report.ok() || num_samples == 0) return report;
  // Lemma 2.2 holds for the unmasked gadget; a mask may reroute distances.
  if (std::any_of(removed_.begin(), removed_.end(), [](bool r) { return r; })) return report;

  // Sampled Lemma 2.2 check: for random even-difference pairs (x, z), the
  // v_{0,x} -> v_{2l,z} distance matches the closed form and is realized
  // through the predicted midpoint hub.
  Rng rng(seed);
  for (std::size_t it = 0; it < num_samples; ++it) {
    Coords x(ell);
    Coords z(ell);
    for (std::uint64_t k = 0; k < ell; ++k) {
      x[k] = static_cast<std::uint32_t>(rng.next_below(s));
      // Same parity as x[k] so all coordinate differences are even.
      const std::uint64_t parity = x[k] % 2;
      z[k] = static_cast<std::uint32_t>(2 * rng.next_below((s - parity + 1) / 2) + parity);
    }
    const Vertex source = vertex_at(0, x);
    const Vertex target = vertex_at(2 * ell, z);
    const Vertex mid = predicted_midpoint(x, z);
    const Dist predicted = predicted_distance(x, z);
    const std::vector<Dist> from_source = sssp_distances(graph_, source);
    const std::vector<Dist> from_mid = sssp_distances(graph_, mid);
    const std::string pair = "pair v_{0," + std::to_string(coords_to_index(x)) + "} -> v_{2l," +
                             std::to_string(coords_to_index(z)) + "}";
    report.require(from_source[target] == predicted, ctx,
                   pair + " has distance " + std::to_string(from_source[target]) +
                       ", Lemma 2.2 predicts " + std::to_string(predicted));
    report.require(from_source[mid] + from_mid[target] == predicted, ctx,
                   pair + " is not realized through the predicted midpoint: " +
                       std::to_string(from_source[mid]) + " + " + std::to_string(from_mid[target]) +
                       " != " + std::to_string(predicted));
  }
  return report;
}

Degree3Gadget::Degree3Gadget(const LayeredGadget& h) {
  const GadgetParams& p = h.params();
  const Graph& hg = h.graph();
  const std::uint64_t s = p.s();
  const std::uint64_t b = p.b;
  const std::uint64_t tree_nodes = 2 * s - 1;  // balanced binary tree, s leaves

  // Estimate G's size to pre-validate memory: trees + subdivision paths.
  std::uint64_t total = hg.num_vertices();
  total += hg.num_vertices() * 2 * tree_nodes;  // upper bound (in+out trees)
  for (Vertex u = 0; u < hg.num_vertices(); ++u) {
    for (const Arc& a : hg.arcs(u)) {
      if (a.to > u) total += a.weight;  // path vertices < weight
    }
  }
  if (total > 80'000'000ULL) throw InvalidArgument("degree-3 expansion too large");

  GraphBuilder builder(0);
  image_.assign(hg.num_vertices(), kInvalidVertex);

  // Allocate the H-vertex images first.
  for (Vertex v = 0; v < hg.num_vertices(); ++v) image_[v] = builder.add_vertex();

  // leaf_out[v] / leaf_in[v]: G ids of the s leaves of v's out-/in-tree,
  // indexed by the changed-coordinate value of the neighbor.
  // Only allocated for vertices that have up/down edges.
  std::vector<std::vector<Vertex>> leaf_out(hg.num_vertices());
  std::vector<std::vector<Vertex>> leaf_in(hg.num_vertices());

  // Build one balanced binary tree with s leaves rooted next to `attach`.
  auto build_tree = [&builder, s, b, this](Vertex attach) {
    // Level-order array: 2s-1 nodes; node k has children 2k+1, 2k+2.
    std::vector<Vertex> nodes(2 * s - 1);
    for (auto& nd : nodes) nd = builder.add_vertex();
    builder.add_edge(attach, nodes[0], 1);
    for (std::uint64_t k = 0; 2 * k + 2 < nodes.size(); ++k) {
      builder.add_edge(nodes[k], nodes[2 * k + 1], 1);
      builder.add_edge(nodes[k], nodes[2 * k + 2], 1);
    }
    num_tree_vertices_ += nodes.size();
    (void)b;
    // Leaves are the last s nodes in level order.
    return std::vector<Vertex>(nodes.end() - static_cast<std::ptrdiff_t>(s), nodes.end());
  };

  const std::uint64_t ell = p.ell;
  for (Vertex v = 0; v < hg.num_vertices(); ++v) {
    const std::uint64_t level = h.level_of(v);
    if (hg.degree(v) == 0) continue;  // masked-out or isolated midlevel vertex
    if (level > 0) leaf_in[v] = build_tree(image_[v]);
    if (level + 1 < p.num_levels()) leaf_out[v] = build_tree(image_[v]);
  }

  // Subdivide each H-edge {u, v} (u one level below v) of weight w into a
  // path of w - 2b - 2 edges between u's out-leaf and v's in-leaf.
  // Leaf slots are indexed by the changed coordinate's value at the other
  // endpoint.
  std::vector<std::uint64_t> pow_s(ell + 1, 1);
  for (std::uint64_t k = 1; k <= ell; ++k) pow_s[k] = pow_s[k - 1] * s;

  for (Vertex u = 0; u < hg.num_vertices(); ++u) {
    const std::uint64_t level = h.level_of(u);
    for (const Arc& a : hg.arcs(u)) {
      if (h.level_of(a.to) != level + 1) continue;  // orient upward
      const Vertex v = a.to;
      const std::uint64_t c = (level < ell) ? level : (2 * ell - 1 - level);
      const std::uint64_t ju = (h.index_of(u) / pow_s[c]) % s;
      const std::uint64_t jv = (h.index_of(v) / pow_s[c]) % s;
      HUBLAB_ASSERT(a.weight >= 2 * b + 3);
      const std::uint64_t path_edges = a.weight - 2 * b - 2;
      Vertex prev = leaf_out[u][jv];
      for (std::uint64_t step = 1; step < path_edges; ++step) {
        const Vertex mid = builder.add_vertex();
        ++num_path_vertices_;
        builder.add_edge(prev, mid, 1);
        prev = mid;
      }
      builder.add_edge(prev, leaf_in[v][ju], 1);
    }
  }

  graph_ = builder.build();
  preimage_.assign(graph_.num_vertices(), kInvalidVertex);
  for (Vertex v = 0; v < hg.num_vertices(); ++v) preimage_[image_[v]] = v;
}

std::optional<Vertex> Degree3Gadget::preimage(Vertex g_vertex) const {
  HUBLAB_ASSERT(g_vertex < preimage_.size());
  if (preimage_[g_vertex] == kInvalidVertex) return std::nullopt;
  return preimage_[g_vertex];
}

}  // namespace hublab::lb
