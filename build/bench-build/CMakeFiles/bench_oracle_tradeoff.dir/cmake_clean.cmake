file(REMOVE_RECURSE
  "../bench/bench_oracle_tradeoff"
  "../bench/bench_oracle_tradeoff.pdb"
  "CMakeFiles/bench_oracle_tradeoff.dir/bench_oracle_tradeoff.cpp.o"
  "CMakeFiles/bench_oracle_tradeoff.dir/bench_oracle_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
