#pragma once

#include <iosfwd>
#include <string>

#include "hub/labeling.hpp"

/// \file serialize.hpp
/// Binary persistence for hub labelings.
///
/// Preprocessing is the expensive half of a hub-label deployment; this
/// stores the finalized labels so queries can start without rebuilding.
/// Format (little-endian):
///   magic "HLAB" | u32 version | u64 n | per vertex: u64 count,
///   then count x (u32 hub, u64 dist).
/// Loading validates the magic, version, monotone hub order and bounds,
/// throwing ParseError on any corruption.

namespace hublab {

/// Current on-disk format version.
inline constexpr std::uint32_t kLabelingFormatVersion = 1;

void save_labeling(const HubLabeling& labeling, std::ostream& out);
HubLabeling load_labeling(std::istream& in);

/// File helpers; throw Error on I/O failure.
void save_labeling_file(const HubLabeling& labeling, const std::string& file_path);
HubLabeling load_labeling_file(const std::string& file_path);

}  // namespace hublab
