#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/approx.hpp"
#include "hub/canonical.hpp"
#include "hub/constructions.hpp"
#include "hub/order.hpp"
#include "hub/pll.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(Canonical, FullLabelingIsNotMinimal) {
  const Graph g = gen::grid(3, 3);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling full = full_labeling(g, truth);
  EXPECT_FALSE(is_minimal(g, full, truth));
  EXPECT_TRUE(find_redundant_entry(g, full, truth).has_value());
}

class PllMinimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PllMinimality, PllIsMinimalForItsOrder) {
  Rng rng(GetParam());
  const Graph g = gen::connected_gnm(30, 60, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling pll = pruned_landmark_labeling(g, VertexOrder::kRandom, GetParam());
  EXPECT_TRUE(is_minimal(g, pll, truth));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PllMinimality, ::testing::Values(1, 2, 3, 4));

TEST(Canonical, PruneProducesMinimalExactLabeling) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(25, 50, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling full = full_labeling(g, truth);
  const HubLabeling pruned = prune_to_minimal(g, full, truth);
  EXPECT_LT(pruned.total_hubs(), full.total_hubs());
  EXPECT_FALSE(verify_labeling(g, pruned, truth).has_value());
  EXPECT_TRUE(is_minimal(g, pruned, truth));
}

TEST(Canonical, PruningDistantCoverShrinksIt) {
  Rng rng(6);
  const Graph g = gen::connected_gnm(30, 70, rng);
  const auto truth = DistanceMatrix::compute(g);
  DistantCoverStats stats;
  const HubLabeling cover = random_distant_cover(g, truth, 3, rng, &stats);
  const HubLabeling pruned = prune_to_minimal(g, cover, truth);
  EXPECT_LE(pruned.total_hubs(), cover.total_hubs());
  EXPECT_TRUE(is_minimal(g, pruned, truth));
  EXPECT_FALSE(verify_labeling(g, pruned, truth).has_value());
}

TEST(Canonical, RedundantEntryDetection) {
  // Path 0-1-2 with full hubsets: storing 0 in S(2) is redundant (hub 1
  // covers everything), but the endpoints' own entries are not.
  const Graph g = gen::path(3);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling full = full_labeling(g, truth);
  EXPECT_TRUE(entry_is_redundant(g, full, truth, 2, 0));
  // Removing (1,1) leaves pair (1,1) covered? dist(1,1)=0 needs hub 1 --
  // also reachable via hub 0 with 1+1=2 != 0, so (1,1) breaks.
  EXPECT_FALSE(entry_is_redundant(g, full, truth, 1, 1));
}

TEST(DominatingSet, CoversEveryVertex) {
  Rng rng(7);
  for (const Graph& g : {gen::grid(5, 5), gen::star(20), gen::connected_gnm(50, 100, rng)}) {
    const auto dom = greedy_dominating_set(g);
    std::vector<bool> in_d(g.num_vertices(), false);
    for (Vertex d : dom) in_d[d] = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      bool covered = in_d[v];
      for (const Arc& a : g.arcs(v)) covered = covered || in_d[a.to];
      EXPECT_TRUE(covered) << v;
    }
  }
}

TEST(DominatingSet, StarUsesCenterOnly) {
  const auto dom = greedy_dominating_set(gen::star(30));
  ASSERT_EQ(dom.size(), 1u);
  EXPECT_EQ(dom[0], 0u);
}

class ApproxErrorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxErrorSweep, AdditiveErrorAtMostTwo) {
  Rng rng(GetParam());
  const Graph g = gen::connected_gnm(60, 130, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling exact = pruned_landmark_labeling(g);
  const ApproxHubLabeling approx = approximate_labeling(g, exact, truth);
  EXPECT_LE(max_additive_error(g, approx, truth), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxErrorSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Approx, CompressesLabelsOnDenseNeighborhoods) {
  // On a star, every hub collapses to the center or a leaf's self-entry.
  const Graph g = gen::star(40);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling exact = full_labeling(g, truth);
  const ApproxHubLabeling approx = approximate_labeling(g, exact, truth);
  EXPECT_LT(approx.labels.total_hubs(), exact.total_hubs());
  EXPECT_EQ(approx.num_dominators, 1u);
}

TEST(Approx, RejectsWeightedGraphs) {
  Rng rng(8);
  const Graph g = gen::randomize_weights(gen::grid(3, 3), 5, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling exact = pruned_landmark_labeling(g);
  EXPECT_THROW(approximate_labeling(g, exact, truth), InvalidArgument);
}

TEST(Approx, WorksOnDisconnected) {
  Rng rng(9);
  const Graph g = gen::gnm(40, 35, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling exact = pruned_landmark_labeling(g);
  const ApproxHubLabeling approx = approximate_labeling(g, exact, truth);
  EXPECT_LE(max_additive_error(g, approx, truth), 2u);
}

TEST(Betweenness, PathCenterHighest) {
  const Graph g = gen::path(9);
  Rng rng(1);
  const auto score = approximate_betweenness(g, 9, rng);  // all sources: exact
  // The middle vertex lies on the most shortest paths.
  for (Vertex v = 0; v < 9; ++v) {
    if (v != 4) {
      EXPECT_GE(score[4], score[v]);
    }
  }
  EXPECT_EQ(score[0], 0.0);  // endpoints are never interior
}

TEST(Betweenness, StarCenterDominates) {
  const Graph g = gen::star(12);
  Rng rng(2);
  const auto order = betweenness_order(g, 12, rng);
  EXPECT_EQ(order[0], 0u);
}

TEST(Betweenness, ExactOnCycleIsUniform) {
  const Graph g = gen::cycle(8);
  Rng rng(3);
  const auto score = approximate_betweenness(g, 8, rng);
  for (Vertex v = 1; v < 8; ++v) EXPECT_NEAR(score[v], score[0], 1e-9);
}

TEST(Betweenness, OrderMakesExactPllLabels) {
  Rng rng(4);
  const Graph g = gen::connected_gnm(60, 120, rng);
  Rng order_rng(5);
  const auto order = betweenness_order(g, 20, order_rng);
  const HubLabeling pll = pruned_landmark_labeling(g, order);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_FALSE(verify_labeling(g, pll, truth).has_value());
}

TEST(Betweenness, GoodOrderBeatsBadOrderOnGrids) {
  const Graph g = gen::grid(7, 7);
  Rng rng(6);
  const auto bt_order = betweenness_order(g, g.num_vertices(), rng);
  const HubLabeling good = pruned_landmark_labeling(g, bt_order);
  const HubLabeling natural = pruned_landmark_labeling(g, VertexOrder::kNatural);
  // Natural order on a grid is row-major -- a poor hierarchy.
  EXPECT_LT(good.total_hubs(), natural.total_hubs());
}

}  // namespace
}  // namespace hublab
